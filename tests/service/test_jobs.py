"""Job descriptors: spec validation, lowering, content-key identity.

The load-bearing property is **key identity**: the cells a job lowers to
must carry exactly the content keys the campaign paths file results
under, or the service would stop being a cache over the store.
"""

from __future__ import annotations

import pytest

from repro.numerics.campaign import NumericsConfig, cell_content_key
from repro.functionals import get_functional
from repro.service.jobs import CellTask, Job, JobState, spec_from_payload
from repro.verifier.campaign import pair_content_key, run_campaign
from repro.verifier.verifier import VerifierConfig

TINY = {"per_call_budget": 100, "global_step_budget": 400}


class TestSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            spec_from_payload({"kind": "frobnicate"})

    def test_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            spec_from_payload(["kind", "verify"])

    def test_verify_needs_pair(self):
        with pytest.raises(ValueError, match="'functional' and 'condition'"):
            spec_from_payload({"kind": "verify", "functional": "PBE"})

    def test_unknown_functional(self):
        with pytest.raises(ValueError, match="unknown functional"):
            spec_from_payload(
                {"kind": "verify", "functional": "NOPE", "condition": "EC1"}
            )

    def test_unknown_condition(self):
        with pytest.raises(ValueError, match="unknown condition"):
            spec_from_payload(
                {"kind": "verify", "functional": "PBE", "condition": "EC99"}
            )

    def test_inapplicable_pair(self):
        # EC4 requires exchange; LYP is correlation-only
        with pytest.raises(ValueError, match="does not apply"):
            spec_from_payload(
                {"kind": "verify", "functional": "LYP", "condition": "EC4"}
            )

    def test_unknown_config_key(self):
        with pytest.raises(ValueError, match="unknown verifier config keys"):
            spec_from_payload(
                {"kind": "verify", "functional": "PBE", "condition": "EC1",
                 "config": {"warp_factor": 9}}
            )

    def test_unknown_numerics_config_key(self):
        with pytest.raises(ValueError, match="unknown numerics config keys"):
            spec_from_payload(
                {"kind": "numerics", "functionals": ["Wigner"],
                 "config": {"warp_factor": 9}}
            )

    def test_empty_table1_slice(self):
        with pytest.raises(ValueError, match="no applicable pairs"):
            spec_from_payload(
                {"kind": "table1", "functionals": ["LYP"], "conditions": ["EC4"]}
            )

    def test_empty_numerics_slice(self):
        with pytest.raises(ValueError, match="no applicable cells"):
            spec_from_payload(
                {"kind": "numerics", "functionals": ["LYP"],
                 "components": ["fx"]}  # correlation-only: fx never applies
            )

    def test_name_list_type_checked(self):
        with pytest.raises(ValueError, match="functionals must be a list"):
            spec_from_payload({"kind": "table1", "functionals": "LYP,Wigner"})

    def test_config_overrides_applied(self):
        spec = spec_from_payload(
            {"kind": "verify", "functional": "Wigner", "condition": "EC1",
             "config": TINY}
        )
        assert spec.vconfig.per_call_budget == 100
        assert spec.vconfig.global_step_budget == 400
        assert spec.vconfig.split_threshold == VerifierConfig().split_threshold

    def test_table1_defaults_to_paper_pairs(self):
        spec = spec_from_payload({"kind": "table1"})
        assert len(spec.pairs) == 31  # the paper's applicable pairs

    def test_duplicate_names_dedupe_to_unique_cells(self):
        """Duplicate names in a slice must not produce two cells with one
        address -- Job.resolved counts unique addresses against
        len(cells), so a duplicate would leave the job running forever
        (the direct paths dedupe too: dedupe_pairs, the campaign's
        seen-set)."""
        spec = spec_from_payload(
            {"kind": "table1", "functionals": ["LYP", "LYP"],
             "conditions": ["EC1", "EC1"]}
        )
        assert spec.pairs == (("LYP", "EC1"),)
        spec = spec_from_payload(
            {"kind": "numerics", "functionals": ["Wigner", "Wigner"],
             "components": ["fc", "fc"], "checks": ["continuity"]}
        )
        assert spec.cells == (("Wigner", "fc", "continuity", "-"),)

    def test_numerics_hazards_expand_to_both_semantics(self):
        spec = spec_from_payload(
            {"kind": "numerics", "functionals": ["Wigner"], "checks": ["hazards"]}
        )
        assert spec.cells == (
            ("Wigner", "fc", "hazards", "branch"),
            ("Wigner", "fc", "hazards", "ieee"),
        )


class TestCellTasks:
    def test_verify_keys_match_pair_content_key(self):
        spec = spec_from_payload(
            {"kind": "table1", "functionals": ["Wigner"], "conditions": ["EC1"],
             "config": TINY}
        )
        (task,) = spec.cell_tasks()
        assert task.kind == "verify"
        assert task.address == ("Wigner", "EC1")
        assert task.content_key == pair_content_key("Wigner", "EC1", spec.vconfig)

    def test_verify_keys_match_campaign_store_keys(self):
        """The key a job coalesces on is the key run_campaign files under."""
        spec = spec_from_payload(
            {"kind": "verify", "functional": "Wigner", "condition": "EC1",
             "config": TINY}
        )
        (task,) = spec.cell_tasks()
        result = run_campaign([("Wigner", "EC1")], spec.vconfig, max_workers=0,
                              store=None)
        # run_campaign only derives keys with a store attached; derive the
        # campaign side explicitly and require exact equality
        assert result.reports  # the campaign ran
        assert task.content_key == pair_content_key(
            "Wigner", "EC1", spec.vconfig, presplit_levels=0, steal_depth=0
        )

    def test_numerics_keys_match_cell_content_key(self):
        config = NumericsConfig(n_base_points=4, bisection_steps=8)
        spec = spec_from_payload(
            {"kind": "numerics", "functionals": ["Wigner"],
             "checks": ["continuity"],
             "config": {"n_base_points": 4, "bisection_steps": 8}}
        )
        (task,) = spec.cell_tasks()
        assert task.address == ("Wigner", "fc", "continuity", "-")
        assert task.content_key == cell_content_key(
            get_functional("Wigner"), "fc", "continuity", "-", config
        )

    def test_key_cache_amortises_and_agrees(self):
        spec = spec_from_payload(
            {"kind": "table1", "functionals": ["Wigner"], "conditions": ["EC1"],
             "config": TINY}
        )
        cache: dict = {}
        first = spec.cell_tasks(cache)
        assert len(cache) == 1
        # poison-proof: the cached value is what uncached derivation gives
        second = spec.cell_tasks(cache)
        assert [t.content_key for t in first] == [t.content_key for t in second]
        assert second[0].content_key == spec.cell_tasks()[0].content_key

    def test_semantic_config_changes_the_key(self):
        base = spec_from_payload(
            {"kind": "verify", "functional": "Wigner", "condition": "EC1",
             "config": TINY}
        )
        changed = spec_from_payload(
            {"kind": "verify", "functional": "Wigner", "condition": "EC1",
             "config": {**TINY, "global_step_budget": 500}}
        )
        perf_knob = spec_from_payload(
            {"kind": "verify", "functional": "Wigner", "condition": "EC1",
             "config": {**TINY, "solver_backend": "tape"}}
        )
        key = base.cell_tasks()[0].content_key
        assert changed.cell_tasks()[0].content_key != key
        # bit-identical perf knobs keep hitting, exactly like --resume
        assert perf_knob.cell_tasks()[0].content_key == key


def _task(name: str) -> CellTask:
    return CellTask("verify", (name, "EC1"), f"key-{name}", VerifierConfig())


class TestJobLifecycle:
    def test_all_complete_is_done(self):
        cells = [_task("A"), _task("B")]
        job = Job(id="j", spec=None, cells=cells)
        job.complete_cell(cells[0], {"x": 1}, "computed")
        assert job.state == JobState.RUNNING
        job.complete_cell(cells[1], {"x": 2}, "cache")
        assert job.state == JobState.DONE
        assert job.source_counts() == {"computed": 1, "cache": 1, "coalesced": 0}
        assert job.done

    def test_any_failure_is_failed_with_partials(self):
        cells = [_task("A"), _task("B")]
        job = Job(id="j", spec=None, cells=cells)
        job.complete_cell(cells[0], {"x": 1}, "computed")
        job.fail_cell(cells[1], "boom")
        assert job.state == JobState.FAILED
        assert job.payloads[("A", "EC1")] == {"x": 1}
        assert "boom" in job.errors[("B", "EC1")]

    def test_cancelled_cells_cancel_the_job(self):
        cells = [_task("A"), _task("B")]
        job = Job(id="j", spec=None, cells=cells)
        job.complete_cell(cells[0], {"x": 1}, "computed")
        job.cancel_cell(cells[1])
        assert job.state == JobState.CANCELLED

    def test_progress_snapshot_shape(self):
        cells = [_task("A")]
        job = Job(id="j7", spec=spec_from_payload(
            {"kind": "verify", "functional": "Wigner", "condition": "EC1"}
        ), cells=cells)
        snap = job.progress()
        assert snap["id"] == "j7"
        assert snap["kind"] == "verify"
        assert snap["cells"] == 1 and snap["resolved"] == 0
        job.complete_cell(cells[0], {}, "cache")
        assert job.progress()["resolved"] == 1
        assert job.progress()["version"] > snap["version"]
