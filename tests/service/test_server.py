"""HTTP API semantics over a real localhost socket.

Uses :class:`ThreadedService` (the embedding harness the benchmarks and
integration tests share) with stubbed compute where only protocol
behaviour is under test, and one real end-to-end verify job.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.scheduler import VerificationScheduler
from repro.service.server import ThreadedService

from .test_scheduler import TINY, stub_compute, table1_spec


@pytest.fixture
def service(tmp_path):
    with ThreadedService(tmp_path / "svc.jsonl", max_workers=0) as svc:
        yield svc


@pytest.fixture
def stub_service(tmp_path, monkeypatch):
    monkeypatch.setattr(
        VerificationScheduler, "_compute_cell", stub_compute(delay=0.05)
    )
    with ThreadedService(tmp_path / "svc.jsonl", max_workers=0) as svc:
        yield svc


class TestProtocol:
    def test_healthz(self, stub_service):
        health = ServiceClient(stub_service.url).health()
        assert health["status"] == "ok"
        assert health["store"].endswith("svc.jsonl")
        assert health["jobs"] == 0

    def test_unknown_route_404(self, stub_service):
        with pytest.raises(ServiceError) as exc:
            ServiceClient(stub_service.url)._request("GET", "/nope")
        assert exc.value.status == 404

    def test_unknown_job_404(self, stub_service):
        with pytest.raises(ServiceError) as exc:
            ServiceClient(stub_service.url).job("job-999")
        assert exc.value.status == 404

    def test_invalid_json_400(self, stub_service):
        import http.client

        conn = http.client.HTTPConnection(
            stub_service.url.split("//")[1].split(":")[0],
            int(stub_service.url.rsplit(":", 1)[1]),
        )
        conn.request("POST", "/jobs", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        assert response.status == 400
        assert "error" in json.loads(response.read())
        conn.close()

    def test_malformed_content_length_400(self, stub_service):
        import http.client

        host, port = stub_service.url.split("//")[1].rsplit(":", 1)
        for bad in ("abc", "-1"):
            conn = http.client.HTTPConnection(host, int(port))
            conn.putrequest("POST", "/jobs", skip_accept_encoding=True)
            conn.putheader("Content-Length", bad)
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400, bad
            assert "error" in json.loads(response.read())
            conn.close()

    def test_bad_spec_400(self, stub_service):
        with pytest.raises(ServiceError) as exc:
            ServiceClient(stub_service.url).submit({"kind": "frobnicate"})
        assert exc.value.status == 400
        assert "unknown job kind" in str(exc.value)

    def test_result_before_done_409(self, stub_service):
        client = ServiceClient(stub_service.url)
        snap = client.submit(table1_spec(["LYP"], ["EC1", "EC2", "EC3"]))
        with pytest.raises(ServiceError) as exc:
            client.result(snap["id"])
        assert exc.value.status == 409

    def test_jobs_listing(self, stub_service):
        client = ServiceClient(stub_service.url)
        snap = client.submit(table1_spec(["Wigner"], ["EC1"]))
        jobs = client.jobs()
        assert [j["id"] for j in jobs] == [snap["id"]]

    def test_events_stream_terminates_with_final_state(self, stub_service):
        client = ServiceClient(stub_service.url)
        snap = client.submit(table1_spec(["Wigner"], ["EC1", "EC6"]))
        events = list(client.events(snap["id"]))
        assert events, "stream yielded nothing"
        assert events[-1]["state"] == "done"
        assert events[-1]["resolved"] == 2
        versions = [e["version"] for e in events]
        assert versions == sorted(versions)

    def test_connection_refused_is_service_error(self, tmp_path):
        # a port nothing listens on: grab one, close it, then connect
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServiceError, match="cannot reach service"):
            ServiceClient(f"http://127.0.0.1:{port}", timeout=2).health()


class TestEndToEnd:
    def test_real_verify_job_roundtrip(self, service):
        client = ServiceClient(service.url)
        result = client.run(
            {"kind": "verify", "functional": "Wigner", "condition": "EC1",
             "config": dict(TINY)}
        )
        assert result["state"] == "done"
        (entry,) = result["cells"].values()
        payload = entry["payload"]
        assert payload["functional"] == "Wigner"
        assert payload["condition"] == "EC1"
        assert payload["records"], "no region records in the payload"

    def test_real_job_through_shared_process_pool(self, tmp_path):
        """The pooled path (workers >= 1): cells run on the shared
        ProcessPoolExecutor, whose workers all fork eagerly at scheduler
        start -- a lazy first-submit fork from this multi-threaded
        process could inherit a held lock and deadlock the compute
        (regression: this exact hang was observed before the eager
        warm-up)."""
        with ThreadedService(tmp_path / "svc.jsonl", max_workers=1) as svc:
            client = ServiceClient(svc.url, timeout=300)
            verify = client.run(
                {"kind": "table1", "functionals": ["Wigner"],
                 "conditions": ["EC1", "EC6"], "config": dict(TINY)}
            )
            numerics = client.run(
                {"kind": "numerics", "functionals": ["Wigner"],
                 "checks": ["continuity"],
                 "config": {"n_base_points": 4, "bisection_steps": 8}}
            )
        assert verify["state"] == "done"
        assert verify["sources"]["computed"] == 2
        assert numerics["state"] == "done"
        assert numerics["sources"]["computed"] == 1

    def test_drain_leaves_listener_up_for_result_fetch(self, tmp_path,
                                                       monkeypatch):
        """A streaming client whose job is cancelled by the drain must
        still be able to fetch the partial result: the scheduler drains
        while the listener keeps answering (serve() closes it only
        afterwards).  Pre-fix the listener closed first, the result
        fetch hit a dead port, and on Python >= 3.12.1 wait_closed even
        deadlocked the drain behind the open event stream."""
        import asyncio
        import threading

        from repro.service.server import ServiceServer
        from repro.verifier.store import open_store

        monkeypatch.setattr(
            VerificationScheduler, "_compute_cell", stub_compute(delay=0.3)
        )

        async def body():
            store = open_store(tmp_path / "svc.jsonl")
            scheduler = VerificationScheduler(store, max_workers=0,
                                              max_inflight=1)
            await scheduler.start()
            server = ServiceServer(scheduler, port=0)
            await server.start()
            url = f"http://127.0.0.1:{server.port}"
            box: dict = {}

            def client_run():
                box["result"] = ServiceClient(url, timeout=60).run(
                    table1_spec(["LYP"], ["EC1", "EC2", "EC3", "EC6", "EC7"]))

            thread = threading.Thread(target=client_run)
            thread.start()
            await asyncio.sleep(0.15)  # first cell computing, rest queued
            await scheduler.drain()    # job -> cancelled; listener still up
            await asyncio.to_thread(thread.join, 60)
            await server.stop()
            store.close()
            return box.get("result")

        result = asyncio.run(body())
        assert result is not None, "client errored instead of fetching result"
        assert result["state"] == "cancelled"
        entries = list(result["cells"].values())
        assert any("payload" in entry for entry in entries)
        assert any(entry.get("cancelled") for entry in entries)

    def test_drain_on_stop_is_graceful(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            VerificationScheduler, "_compute_cell", stub_compute(delay=0.3)
        )
        svc = ThreadedService(tmp_path / "svc.jsonl", max_workers=0)
        url = svc.start()
        client = ServiceClient(url)
        snap = client.submit(
            table1_spec(["LYP"], ["EC1", "EC2", "EC3", "EC6", "EC7"]))
        time.sleep(0.1)  # let the first cell start computing
        svc.stop()  # the same graceful drain SIGTERM triggers
        assert svc._thread is not None and not svc._thread.is_alive()
        # the server exited cleanly; cells that finished were committed
        store_path = tmp_path / "svc.jsonl"
        assert store_path.exists()
        lines = [json.loads(line) for line in store_path.read_text().splitlines()]
        assert len(lines) >= 1
        assert snap["cells"] == 5


class TestMetricsExposition:
    """/v1/metrics content negotiation: JSON by default, Prometheus on ask."""

    def fetch(self, svc, path, headers=None):
        import http.client

        host, port = svc.url.split("//")[1].rsplit(":", 1)
        conn = http.client.HTTPConnection(host, int(port))
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        body = response.read()
        conn.close()
        return response, body

    def test_default_stays_json(self, stub_service):
        response, body = self.fetch(stub_service, "/v1/metrics")
        assert response.status == 200
        assert "application/json" in response.getheader("Content-Type")
        doc = json.loads(body)
        assert "requests" in doc and "pool" in doc

    def test_format_prometheus_is_valid_exposition(self, stub_service):
        from repro.obs.metrics import CONTENT_TYPE_PROMETHEUS, lint_exposition

        response, body = self.fetch(
            stub_service, "/v1/metrics?format=prometheus"
        )
        assert response.status == 200
        assert response.getheader("Content-Type") == CONTENT_TYPE_PROMETHEUS
        text = body.decode()
        assert lint_exposition(text) == []
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_uptime_seconds" in text

    def test_accept_header_negotiates_prometheus(self, stub_service):
        from repro.obs.metrics import lint_exposition

        response, body = self.fetch(
            stub_service, "/v1/metrics", headers={"Accept": "text/plain"}
        )
        assert response.getheader("Content-Type").startswith("text/plain")
        assert lint_exposition(body.decode()) == []

    def test_unknown_format_is_400(self, stub_service):
        response, body = self.fetch(stub_service, "/v1/metrics?format=xml")
        assert response.status == 400
        assert "error" in json.loads(body)

    def test_campaign_engine_counters_fold_in(self, stub_service):
        from repro.obs.metrics import REGISTRY

        REGISTRY.counter(
            "repro_campaign_cells_resolved_total",
            "Campaign cells resolved, by how.",
        ).inc(result="computed")
        _, body = self.fetch(stub_service, "/v1/metrics?format=prometheus")
        assert "repro_campaign_cells_resolved_total" in body.decode()

    def test_scrapes_count_as_requests(self, stub_service):
        self.fetch(stub_service, "/v1/metrics?format=prometheus")
        _, body = self.fetch(stub_service, "/v1/metrics")
        doc = json.loads(body)
        assert doc["requests"]["by_route"].get("GET /metrics", 0) >= 1
