"""Histogram invariants and the /v1/metrics scrape contract.

The load-bearing invariant: bucket counts are per-bucket, so they
always sum to the observation count -- that is what makes the scrape
trivially checkable and what the benchmark's p99 gate reads.
"""

from __future__ import annotations

import math

import pytest

from repro.service.client import ServiceClient
from repro.service.metrics import BUCKET_EDGES, Histogram, ServiceMetrics
from repro.service.scheduler import VerificationScheduler
from repro.service.server import ThreadedService

from .test_scheduler import stub_compute, table1_spec


class TestHistogram:
    def test_observations_land_in_expected_buckets(self):
        histogram = Histogram()
        histogram.observe(0.0005)  # between 3.16e-4 and 1e-3
        histogram.observe(0.002)   # between 1e-3 and 3.16e-3
        histogram.observe(0.002)
        snap = histogram.snapshot()
        assert snap["buckets"] == {"le_0.001": 1, "le_0.00316228": 2}

    def test_boundary_value_goes_to_lower_bucket(self):
        histogram = Histogram()
        histogram.observe(BUCKET_EDGES[4])  # exactly on an edge: <= edge
        snap = histogram.snapshot()
        assert snap["buckets"] == {f"le_{BUCKET_EDGES[4]:g}": 1}

    def test_overflow_bucket(self):
        histogram = Histogram()
        histogram.observe(10_000.0)  # beyond the last edge (~316 s)
        assert histogram.snapshot()["buckets"] == {"inf": 1}

    def test_counts_sum_to_observation_count(self):
        histogram = Histogram()
        values = [10.0 ** (k / 7.0 - 4.0) for k in range(200)]
        for value in values:
            histogram.observe(value)
        snap = histogram.snapshot()
        assert sum(snap["buckets"].values()) == snap["count"] == len(values)
        assert snap["sum"] == pytest.approx(sum(values))
        assert snap["min"] == pytest.approx(min(values))
        assert snap["max"] == pytest.approx(max(values))

    def test_quantiles_bracket_the_data(self):
        histogram = Histogram()
        for _ in range(99):
            histogram.observe(0.001)
        histogram.observe(1.0)
        # p50 is in the bucket holding 0.001; p99 must not see the outlier
        assert histogram.quantile(0.50) == pytest.approx(0.001)
        assert histogram.quantile(0.99) <= 0.01
        # p100 rank hits the last occupied bucket
        assert histogram.quantile(1.0) >= 1.0

    def test_empty_histogram(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["buckets"] == {}
        assert snap["min"] is None
        assert Histogram().quantile(0.99) == 0.0


class TestServiceMetricsUnit:
    def test_request_counters(self):
        metrics = ServiceMetrics()
        metrics.record_request("GET /healthz", 200, deprecated=False)
        metrics.record_request("GET /healthz", 200, deprecated=True)
        metrics.record_request("POST /jobs", 400, deprecated=False)
        assert metrics.requests_total == 3
        assert metrics.requests_by_status == {"200": 2, "400": 1}
        assert metrics.requests_by_route == {"GET /healthz": 2, "POST /jobs": 1}
        assert metrics.deprecated_requests == 1

    def test_submit_latency_is_per_kind(self):
        metrics = ServiceMetrics()
        metrics.record_submit("table1", 0.01)
        metrics.record_submit("table1", 0.02)
        metrics.record_submit("verify", 0.5)
        assert metrics.submit_latency["table1"].count == 2
        assert metrics.submit_latency["verify"].count == 1


class TestMetricsOverHttp:
    @pytest.fixture
    def service(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            VerificationScheduler, "_compute_cell", stub_compute()
        )
        with ThreadedService(tmp_path / "svc.jsonl", max_workers=0) as svc:
            yield svc

    def test_scrape_after_submissions(self, service):
        client = ServiceClient(service.url)
        submissions = 5
        for _ in range(submissions):
            snap = client.submit(table1_spec(["Wigner"], ["EC1", "EC6"]))
        # wait for the last job to finish so the cache stats are stable
        for _ in client.events(snap["id"]):
            pass
        metrics = client.metrics()

        assert metrics["jobs"]["submitted"] == submissions
        assert metrics["jobs"]["by_kind"] == {"table1": submissions}
        histogram = metrics["latency"]["submit_seconds"]["table1"]
        assert histogram["count"] == submissions
        assert sum(histogram["buckets"].values()) == submissions
        assert 0 < histogram["p99"] <= 316.3

        cells = metrics["cells"]
        # 2 distinct cells computed once; the other 4*2 duplicates were
        # coalesced onto them or served from the store
        assert cells["computed"] == 2
        assert cells["cache"] + cells["coalesced"] == 2 * (submissions - 1)
        assert cells["cache_hit_ratio"] == pytest.approx(
            (submissions - 1) / submissions
        )

        assert metrics["admission"]["queue_depth"] == 0
        pool = metrics["pool"]
        assert pool["workers"] == 0  # inline mode
        assert 0 <= pool["executing"] <= pool["max_inflight"]
        assert metrics["store"]["keys"] == 2
        assert metrics["requests"]["total"] >= submissions
        assert metrics["auth"]["mode"] == "anonymous"
        assert not math.isnan(metrics["server"]["uptime_seconds"])

    def test_scrape_counts_itself_and_routes(self, service):
        client = ServiceClient(service.url)
        client.health()
        client.metrics()
        metrics = client.metrics()
        by_route = metrics["requests"]["by_route"]
        assert by_route["GET /healthz"] == 1
        assert by_route["GET /metrics"] >= 1  # the previous scrape
        assert metrics["requests"]["by_status"]["200"] >= 2
        # everything /v1: nothing deprecated
        assert metrics["requests"]["deprecated"] == 0


class TestLaneMetrics:
    """The /v1/metrics lanes section (QoS lanes live in the scheduler;
    dispatch-priority behaviour itself is pinned in test_scheduler)."""

    @pytest.fixture
    def service(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            VerificationScheduler, "_compute_cell", stub_compute()
        )
        with ThreadedService(tmp_path / "svc.jsonl", max_workers=0) as svc:
            yield svc

    def test_lanes_section_shape_and_counts(self, service):
        client = ServiceClient(service.url)
        snap = client.submit(table1_spec(["Wigner"], ["EC1", "EC6", "EC3"]))
        for _ in client.events(snap["id"]):
            pass
        lanes = client.metrics()["lanes"]
        assert lanes["enabled"] is True
        assert lanes["interactive_max_cells"] == 2
        for lane in ("interactive", "batch"):
            section = lanes[lane]
            assert section["queue_depth"] == 0  # job finished
            wait = section["wait_seconds"]
            assert sum(wait["buckets"].values()) == wait["count"]
            assert wait["count"] == section["dispatched"]
        # a 3-cell table1 job rides the batch lane
        assert lanes["batch"]["dispatched"] == 3
        assert lanes["interactive"]["dispatched"] == 0
        assert lanes["preemptions"] == 0

    def test_interactive_jobs_land_in_interactive_lane(self, service):
        client = ServiceClient(service.url)
        spec = {"kind": "verify", "functional": "Wigner", "condition": "EC1",
                "config": {"per_call_budget": 100, "global_step_budget": 400}}
        snap = client.submit(spec)
        for _ in client.events(snap["id"]):
            pass
        lanes = client.metrics()["lanes"]
        assert lanes["interactive"]["dispatched"] == 1
        assert lanes["interactive"]["wait_seconds"]["count"] == 1
        assert lanes["batch"]["dispatched"] == 0

    def test_lanes_render_with_qos_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            VerificationScheduler, "_compute_cell", stub_compute()
        )
        with ThreadedService(
            tmp_path / "noqos.jsonl", max_workers=0, qos_lanes=False
        ) as svc:
            client = ServiceClient(svc.url)
            spec = {"kind": "verify", "functional": "Wigner",
                    "condition": "EC1",
                    "config": {"per_call_budget": 100,
                               "global_step_budget": 400}}
            snap = client.submit(spec)
            for _ in client.events(snap["id"]):
                pass
            lanes = client.metrics()["lanes"]
        # the section keeps its shape; everything flows through batch
        assert lanes["enabled"] is False
        assert lanes["interactive"]["dispatched"] == 0
        assert lanes["batch"]["dispatched"] == 1
        assert lanes["preemptions"] == 0
