"""Scheduler semantics: classification, single-flight, fairness, drain.

Compute is stubbed (recording dispatch order, writing the store like the
real path does) so these tests pin *scheduling* behaviour deterministically
on one CPU; the real compute paths are pinned by the differential corpus
in ``test_differential.py``.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.service.jobs import JobState
from repro.service.scheduler import SchedulerDraining, VerificationScheduler
from repro.verifier.store import open_store

TINY = {"per_call_budget": 100, "global_step_budget": 400}


def table1_spec(functionals, conditions):
    return {"kind": "table1", "functionals": list(functionals),
            "conditions": list(conditions), "config": dict(TINY)}


def stub_compute(record=None, delay=0.0, fail_addresses=()):
    """A _compute_cell replacement: store-writing, deterministic, fast."""

    def compute(self, cell):
        if record is not None:
            record.append(cell.address)
        if delay:
            time.sleep(delay)
        if cell.address in fail_addresses:
            raise RuntimeError(f"stub failure at {cell.address}")
        payload = {"stub": list(cell.address)}
        if cell.kind == "numerics":
            payload["kind"] = f"numerics/{cell.address[2]}"
        self._store.put_payload(cell.content_key, payload)
        return payload

    return compute


async def wait_done(job, timeout=60.0):
    deadline = time.monotonic() + timeout
    while not job.done:
        remaining = deadline - time.monotonic()
        assert remaining > 0, f"job stuck in {job.state}"
        try:
            await asyncio.wait_for(job.wait_change(job.version), timeout=remaining)
        except asyncio.TimeoutError:
            raise AssertionError(f"job stuck in {job.state}") from None
    return job


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def store(tmp_path):
    store = open_store(tmp_path / "svc.jsonl")
    yield store
    store.close()


class TestClassification:
    def test_computed_then_cached(self, store, monkeypatch):
        monkeypatch.setattr(VerificationScheduler, "_compute_cell", stub_compute())

        async def body():
            sched = VerificationScheduler(store, max_workers=0)
            await sched.start()
            first = await wait_done(await sched.submit(
                table1_spec(["Wigner"], ["EC1", "EC6"])))
            second = await wait_done(await sched.submit(
                table1_spec(["Wigner"], ["EC1", "EC6"])))
            await sched.drain()
            return first, second

        first, second = run(body())
        assert first.state == JobState.DONE
        assert first.source_counts() == {"computed": 2, "cache": 0, "coalesced": 0}
        assert second.source_counts() == {"computed": 0, "cache": 2, "coalesced": 0}
        assert second.payloads == first.payloads

    def test_single_flight_coalescing(self, store, monkeypatch):
        record = []
        monkeypatch.setattr(
            VerificationScheduler, "_compute_cell",
            stub_compute(record=record, delay=0.2),
        )

        async def body():
            sched = VerificationScheduler(store, max_workers=0)
            await sched.start()
            a = await sched.submit(table1_spec(["Wigner"], ["EC1", "EC6"]))
            b = await sched.submit(table1_spec(["Wigner"], ["EC1", "EC6"]))
            await wait_done(a)
            await wait_done(b)
            await sched.drain()
            return a, b

        a, b = run(body())
        # every distinct cell computed exactly once
        assert sorted(record) == sorted(set(record))
        assert len(record) == 2
        assert a.source_counts()["computed"] == 2
        counts = b.source_counts()
        assert counts["computed"] == 0
        assert counts["coalesced"] + counts["cache"] == 2
        assert b.payloads == a.payloads

    def test_numerics_cells_classified_by_kind(self, store, monkeypatch):
        monkeypatch.setattr(VerificationScheduler, "_compute_cell", stub_compute())

        async def body():
            sched = VerificationScheduler(store, max_workers=0)
            await sched.start()
            spec = {"kind": "numerics", "functionals": ["Wigner"],
                    "checks": ["continuity"]}
            first = await wait_done(await sched.submit(spec))
            second = await wait_done(await sched.submit(spec))
            await sched.drain()
            return first, second

        first, second = run(body())
        assert first.source_counts()["computed"] == 1
        assert second.source_counts() == {"computed": 0, "cache": 1, "coalesced": 0}


class TestFairness:
    def test_round_robin_interleaves_jobs(self, store, monkeypatch):
        """A later small job must not wait behind an earlier job's whole
        queue: its first cell dispatches before the first job's last."""
        record = []
        monkeypatch.setattr(
            VerificationScheduler, "_compute_cell",
            stub_compute(record=record, delay=0.05),
        )

        async def body():
            sched = VerificationScheduler(store, max_workers=0, max_inflight=1)
            await sched.start()
            a = await sched.submit(
                table1_spec(["LYP"], ["EC1", "EC2", "EC3", "EC6", "EC7"]))
            b = await sched.submit(table1_spec(["Wigner"], ["EC1"]))
            await wait_done(a)
            await wait_done(b)
            await sched.drain()
            return a, b

        run(body())
        first_b = record.index(("Wigner", "EC1"))
        last_a = max(
            i for i, address in enumerate(record) if address[0] == "LYP"
        )
        assert first_b < last_a, (
            f"job B starved behind job A: dispatch order {record}"
        )


class TestFailure:
    def test_failing_cell_fails_job_keeps_partials(self, store, monkeypatch):
        monkeypatch.setattr(
            VerificationScheduler, "_compute_cell",
            stub_compute(fail_addresses={("Wigner", "EC6")}),
        )

        async def body():
            sched = VerificationScheduler(store, max_workers=0)
            await sched.start()
            job = await wait_done(await sched.submit(
                table1_spec(["Wigner"], ["EC1", "EC6"])))
            await sched.drain()
            return job

        job = run(body())
        assert job.state == JobState.FAILED
        assert ("Wigner", "EC1") in job.payloads
        assert "stub failure" in job.errors[("Wigner", "EC6")]
        result = job.result_payload()
        assert "error" in result["cells"]["Wigner/EC6"]
        json.dumps(result)  # JSON-safe even with failures

    def test_failure_propagates_to_coalesced_jobs(self, store, monkeypatch):
        monkeypatch.setattr(
            VerificationScheduler, "_compute_cell",
            stub_compute(delay=0.2, fail_addresses={("Wigner", "EC1")}),
        )

        async def body():
            sched = VerificationScheduler(store, max_workers=0)
            await sched.start()
            a = await sched.submit(table1_spec(["Wigner"], ["EC1"]))
            b = await sched.submit(table1_spec(["Wigner"], ["EC1"]))
            await wait_done(a)
            await wait_done(b)
            await sched.drain()
            return a, b

        a, b = run(body())
        assert a.state == JobState.FAILED
        assert b.state == JobState.FAILED


class TestDrain:
    def test_drain_cancels_pending_keeps_done(self, store, monkeypatch):
        monkeypatch.setattr(
            VerificationScheduler, "_compute_cell", stub_compute(delay=0.3),
        )

        async def body():
            sched = VerificationScheduler(store, max_workers=0, max_inflight=1)
            await sched.start()
            job = await sched.submit(
                table1_spec(["LYP"], ["EC1", "EC2", "EC3", "EC6", "EC7"]))
            # let exactly the first cell start, then drain
            await asyncio.sleep(0.1)
            await sched.drain()
            await wait_done(job)
            return job

        job = run(body())
        assert job.state == JobState.CANCELLED
        # the in-flight cell finished and is durable; queued ones cancelled
        assert len(job.payloads) >= 1
        assert len(job.cancelled_cells) >= 1
        assert len(job.payloads) + len(job.cancelled_cells) == 5
        for address in job.payloads:
            assert job.sources[address] == "computed"
        # everything completed was committed to the store before the drain
        assert len(store.keys()) == len(job.payloads)

    def test_duplicate_slice_job_terminates(self, store, monkeypatch):
        """End-to-end guard for the dedupe: a duplicate-name slice must
        reach a terminal state (pre-fix it hung at resolved 1/2)."""
        monkeypatch.setattr(VerificationScheduler, "_compute_cell", stub_compute())

        async def body():
            sched = VerificationScheduler(store, max_workers=0)
            await sched.start()
            job = await wait_done(await sched.submit(
                {"kind": "table1", "functionals": ["Wigner", "Wigner"],
                 "conditions": ["EC1"], "config": dict(TINY)}), timeout=20)
            await sched.drain()
            return job

        job = run(body())
        assert job.state == JobState.DONE
        assert len(job.cells) == 1

    def test_finished_jobs_evicted_beyond_bound(self, store, monkeypatch):
        monkeypatch.setattr(VerificationScheduler, "_compute_cell", stub_compute())

        async def body():
            sched = VerificationScheduler(store, max_workers=0,
                                          max_finished_jobs=2)
            await sched.start()
            jobs = []
            for _ in range(4):
                jobs.append(await wait_done(await sched.submit(
                    table1_spec(["Wigner"], ["EC1"]))))
            ids = [job.id for job in sched.jobs()]
            await sched.drain()
            return jobs, ids

        jobs, ids = run(body())
        # the oldest finished jobs were evicted; the newest survive
        assert jobs[-1].id in ids
        assert len(ids) <= 3  # bound + the job submitted after eviction

    def test_submit_after_drain_rejected(self, store, monkeypatch):
        monkeypatch.setattr(VerificationScheduler, "_compute_cell", stub_compute())

        async def body():
            sched = VerificationScheduler(store, max_workers=0)
            await sched.start()
            await sched.drain()
            with pytest.raises(SchedulerDraining):
                await sched.submit(table1_spec(["Wigner"], ["EC1"]))

        run(body())


def verify_spec(functional="LYP", condition="EC1"):
    return {"kind": "verify", "functional": functional, "condition": condition,
            "config": dict(TINY)}


class TestQosLanes:
    """Interactive-over-batch dispatch priority, at cell granularity."""

    def test_lane_classification(self, store, monkeypatch):
        monkeypatch.setattr(VerificationScheduler, "_compute_cell", stub_compute())

        async def body():
            sched = VerificationScheduler(store, max_workers=0)
            await sched.start()
            verify = await sched.submit(verify_spec())
            small = await sched.submit(table1_spec(["Wigner"], ["EC1", "EC6"]))
            sweep = await sched.submit(
                table1_spec(["Wigner"], ["EC1", "EC2", "EC3", "EC6"]))
            for job in (verify, small, sweep):
                await wait_done(job)
            await sched.drain()
            return verify, small, sweep

        verify, small, sweep = run(body())
        assert verify.lane == "interactive"   # single-pair probe, always
        assert small.lane == "interactive"    # <= interactive_max_cells
        assert sweep.lane == "batch"

    def test_interactive_max_cells_zero_keeps_kind_rule(self, store, monkeypatch):
        monkeypatch.setattr(VerificationScheduler, "_compute_cell", stub_compute())

        async def body():
            sched = VerificationScheduler(
                store, max_workers=0, interactive_max_cells=0)
            await sched.start()
            verify = await sched.submit(verify_spec())
            small = await sched.submit(table1_spec(["Wigner"], ["EC1"]))
            for job in (verify, small):
                await wait_done(job)
            await sched.drain()
            return verify, small

        verify, small = run(body())
        assert verify.lane == "interactive"  # kind rule is unconditional
        assert small.lane == "batch"         # size rule is off

    def test_interactive_preempts_queued_batch_cells(self, store, monkeypatch):
        record = []
        monkeypatch.setattr(
            VerificationScheduler, "_compute_cell",
            stub_compute(record=record, delay=0.15),
        )

        async def body():
            # one cell executing at a time: dispatch order IS record order
            sched = VerificationScheduler(store, max_workers=0, max_inflight=1)
            await sched.start()
            sweep = await sched.submit(
                table1_spec(["Wigner"], ["EC1", "EC2", "EC3", "EC6"]))
            await asyncio.sleep(0.05)  # first batch cell is now executing
            probe = await sched.submit(verify_spec())
            await wait_done(probe)
            sweep_done_after_probe = not sweep.done
            await wait_done(sweep)
            await sched.drain()
            return sched, probe, sweep_done_after_probe

        sched, probe, sweep_was_still_running = run(body())
        probe_at = record.index(("LYP", "EC1"))
        # the probe ran after the executing batch cell, before the rest
        assert probe_at <= 2
        assert len(record) == 5
        assert sweep_was_still_running
        assert sched.lane_preemptions >= 1
        assert sched.lane_dispatched == {"interactive": 1, "batch": 4}
        assert sched.lane_wait["interactive"].count == 1
        assert sched.lane_wait["batch"].count == 4

    def test_qos_off_restores_single_ring_fifo(self, store, monkeypatch):
        record = []
        monkeypatch.setattr(
            VerificationScheduler, "_compute_cell",
            stub_compute(record=record, delay=0.1),
        )

        async def body():
            sched = VerificationScheduler(
                store, max_workers=0, max_inflight=1, qos_lanes=False)
            await sched.start()
            sweep = await sched.submit(
                table1_spec(["Wigner"], ["EC1", "EC2", "EC3"]))
            await asyncio.sleep(0.05)
            probe = await sched.submit(verify_spec())
            await wait_done(sweep)
            await wait_done(probe)
            await sched.drain()
            return sched, probe

        sched, probe = run(body())
        assert probe.lane == "batch"
        assert sched.lane_preemptions == 0
        assert sched.lane_dispatched["interactive"] == 0
        # round-robin interleaves the two batch jobs but never jumps the
        # probe ahead of the sweep cell dispatched in the same turn
        assert sched.lane_dispatched["batch"] == 4

    def test_lane_depths_track_pending_cells(self, store, monkeypatch):
        monkeypatch.setattr(
            VerificationScheduler, "_compute_cell",
            stub_compute(delay=0.2),
        )

        async def body():
            sched = VerificationScheduler(store, max_workers=0, max_inflight=1)
            await sched.start()
            await sched.submit(
                table1_spec(["Wigner"], ["EC1", "EC2", "EC3", "EC6"]))
            await sched.submit(verify_spec())
            await asyncio.sleep(0.05)  # one batch cell executing
            depths = sched.lane_depths()
            total = sched.queue_depth()
            # finish everything before drain
            for job in sched.jobs():
                await wait_done(job)
            await sched.drain()
            return depths, total

        depths, total = run(body())
        assert depths["interactive"] == 1
        assert depths["batch"] == 3  # 4 cells minus the one executing
        assert depths["interactive"] + depths["batch"] == total
