"""/v1 versioning, the deprecation shim, the error envelope contract,
and the client's keep-alive + reconnect-on-stale behaviour."""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.service.client import (
    JobNotFound,
    NotReady,
    ServiceClient,
    ServiceError,
)
from repro.service.scheduler import VerificationScheduler
from repro.service.server import ThreadedService

from .test_scheduler import stub_compute, table1_spec


@pytest.fixture
def service(tmp_path, monkeypatch):
    monkeypatch.setattr(VerificationScheduler, "_compute_cell", stub_compute())
    with ThreadedService(tmp_path / "svc.jsonl", max_workers=0) as svc:
        yield svc


def raw_request(url, method, path, payload=None):
    """One plain http.client request; returns (status, headers, body)."""
    host, port = url.split("//")[1].rsplit(":", 1)
    conn = http.client.HTTPConnection(host, int(port), timeout=30)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        data = response.read()
        return response.status, dict(response.getheaders()), data
    finally:
        conn.close()


class TestVersioning:
    @pytest.mark.parametrize("path", ["/healthz", "/jobs", "/metrics"])
    def test_unversioned_paths_work_but_are_deprecated(self, service, path):
        status, headers, _ = raw_request(service.url, "GET", path)
        assert status == 200
        assert headers.get("Deprecation") == "true"

    @pytest.mark.parametrize("path", ["/v1/healthz", "/v1/jobs", "/v1/metrics"])
    def test_v1_paths_carry_no_deprecation_header(self, service, path):
        status, headers, _ = raw_request(service.url, "GET", path)
        assert status == 200
        assert "Deprecation" not in headers

    def test_unversioned_submit_roundtrip(self, service):
        # a pre-/v1 client submits and polls on the bare paths end to end
        status, headers, data = raw_request(
            service.url, "POST", "/jobs", table1_spec(["Wigner"], ["EC1"])
        )
        assert status == 200
        assert headers.get("Deprecation") == "true"
        job_id = json.loads(data)["id"]
        status, headers, data = raw_request(
            service.url, "GET", f"/jobs/{job_id}"
        )
        assert status == 200
        assert headers.get("Deprecation") == "true"
        assert json.loads(data)["id"] == job_id

    def test_deprecated_requests_counted(self, service):
        raw_request(service.url, "GET", "/jobs")
        raw_request(service.url, "GET", "/v1/jobs")
        metrics = ServiceClient(service.url).metrics()
        assert metrics["requests"]["deprecated"] == 1
        # both spellings fold into the same route counter
        assert metrics["requests"]["by_route"]["GET /jobs"] == 2

    def test_deprecated_error_keeps_the_header(self, service):
        status, headers, data = raw_request(service.url, "GET", "/jobs/nope")
        assert status == 404
        assert headers.get("Deprecation") == "true"
        assert json.loads(data)["error"]["code"] == "job_not_found"


class TestErrorEnvelope:
    @pytest.mark.parametrize(
        "method,path,payload,status,code",
        [
            ("POST", "/v1/jobs", {"kind": "nope"}, 400, "bad_request"),
            ("GET", "/v1/jobs/ghost", None, 404, "job_not_found"),
            ("GET", "/v1/nope", None, 404, "not_found"),
            ("DELETE", "/v1/jobs", None, 404, "not_found"),
        ],
    )
    def test_envelope_on_every_non_2xx(
        self, service, method, path, payload, status, code
    ):
        got_status, _, data = raw_request(service.url, method, path, payload)
        body = json.loads(data)
        assert got_status == status
        assert set(body) == {"error"}
        envelope = body["error"]
        assert envelope["code"] == code
        assert isinstance(envelope["message"], str) and envelope["message"]

    def test_malformed_json_body_is_bad_request(self, service):
        host, port = service.url.split("//")[1].rsplit(":", 1)
        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            conn.request("POST", "/v1/jobs", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            body = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert body["error"]["code"] == "bad_request"

    def test_typed_client_exceptions(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(JobNotFound):
            client.job("ghost")
        with pytest.raises(ServiceError) as exc:
            client.submit({"kind": "nope"})
        assert exc.value.status == 400
        assert exc.value.code == "bad_request"

    def test_not_ready_is_409(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            VerificationScheduler, "_compute_cell",
            stub_compute(delay=1.0),
        )
        with ThreadedService(tmp_path / "svc.jsonl", max_workers=0) as svc:
            client = ServiceClient(svc.url)
            snap = client.submit(table1_spec(["Wigner"], ["EC1"]))
            with pytest.raises(NotReady) as exc:
                client.result(snap["id"])
            assert exc.value.status == 409
            assert exc.value.code == "not_ready"


class TestKeepAlive:
    def test_connection_is_reused_across_requests(self, service):
        client = ServiceClient(service.url)
        client.health()
        first = client._conn
        assert first is not None  # pooled after the first request
        client.jobs()
        client.metrics()
        assert client._conn is first  # same socket, no reconnect
        client.close()
        assert client._conn is None

    def test_reconnects_after_idle_timeout(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            VerificationScheduler, "_compute_cell", stub_compute()
        )
        store = tmp_path / "svc.jsonl"
        with ThreadedService(store, max_workers=0) as svc:
            # shrink the server's keep-alive idle window after start
            svc._server_box[0].keepalive_idle = 0.2
            client = ServiceClient(svc.url)
            client.health()
            stale = client._conn
            assert stale is not None
            time.sleep(0.8)  # server reclaims the idle connection
            # the retry path replays the request on a fresh connection
            health = client.health()
            assert health["status"] == "ok"
            assert client._conn is not stale

    def test_fresh_connection_failure_is_not_retried(self, tmp_path):
        client = ServiceClient("http://127.0.0.1:9")  # nothing listens here
        with pytest.raises(ServiceError, match="cannot reach service"):
            client.health()
