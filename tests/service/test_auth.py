"""Bearer-token auth: token loading, constant-time identify, HTTP 401s.

Unit tests cover the parser and :class:`Authenticator` decision table;
the HTTP-level tests pin the middleware edges the ISSUE names: wrong,
missing and empty tokens answer 401 with the uniform error envelope and
are audit-logged, while ``/healthz`` stays open for liveness probes.
"""

from __future__ import annotations

import json

import pytest

from repro.service.audit import read_audit_log
from repro.service.auth import (
    ANONYMOUS,
    AuthenticationError,
    Authenticator,
    load_tokens_env,
    load_tokens_file,
    resolve_tokens,
)
from repro.service.client import AuthError, ServiceClient
from repro.service.scheduler import VerificationScheduler
from repro.service.server import ThreadedService

from .test_scheduler import stub_compute, table1_spec

TOKENS = {"s3cret-alice": "alice", "s3cret-bob": "bob"}


class TestTokenLoading:
    def test_file_parsing(self, tmp_path):
        path = tmp_path / "tokens.txt"
        path.write_text(
            "# service tokens\n"
            "alice: s3cret-alice \n"
            "\n"
            "bob:s3cret-bob\n"
        )
        assert load_tokens_file(path) == TOKENS

    def test_env_parsing(self):
        assert load_tokens_env("alice:s3cret-alice, bob:s3cret-bob") == TOKENS

    @pytest.mark.parametrize("bad", ["alice", "alice:", ":tok", "a:b:c-extra"])
    def test_malformed_entries_rejected(self, bad):
        if bad == "a:b:c-extra":
            # a second colon is part of the token, not malformed
            assert load_tokens_env(bad) == {"b:c-extra": "a"}
            return
        with pytest.raises(ValueError, match="malformed token entry"):
            load_tokens_env(bad)

    def test_duplicate_token_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            load_tokens_env("alice:tok,bob:tok")

    def test_resolve_precedence(self, tmp_path):
        path = tmp_path / "tokens.txt"
        path.write_text("carol:file-token\n")
        env = {"REPRO_SERVICE_TOKENS": "dave:env-token"}
        # explicit file wins over the env var
        assert resolve_tokens(path, environ=env) == {"file-token": "carol"}
        assert resolve_tokens(None, environ=env) == {"env-token": "dave"}
        assert resolve_tokens(None, environ={}) == {}


class TestAuthenticator:
    def test_anonymous_mode_accepts_everything(self):
        auth = Authenticator({})
        assert auth.anonymous
        assert auth.identify(None) == ANONYMOUS
        assert auth.identify("Bearer whatever") == ANONYMOUS

    def test_identifies_client_by_token(self):
        auth = Authenticator(TOKENS)
        assert not auth.anonymous
        assert auth.identify("Bearer s3cret-alice") == "alice"
        assert auth.identify("bearer s3cret-bob") == "bob"  # scheme case

    @pytest.mark.parametrize(
        "header,code",
        [
            (None, "missing_token"),
            ("", "missing_token"),
            ("Bearer ", "invalid_token"),       # empty token
            ("Bearer wrong", "invalid_token"),  # unknown token
            ("Basic s3cret-alice", "invalid_token"),  # wrong scheme
            ("s3cret-alice", "invalid_token"),  # no scheme at all
        ],
    )
    def test_rejections(self, header, code):
        auth = Authenticator(TOKENS)
        with pytest.raises(AuthenticationError) as exc:
            auth.identify(header)
        assert exc.value.code == code


@pytest.fixture
def authed_service(tmp_path, monkeypatch):
    monkeypatch.setattr(VerificationScheduler, "_compute_cell", stub_compute())
    audit_path = tmp_path / "audit.jsonl"
    with ThreadedService(
        tmp_path / "svc.jsonl", max_workers=0,
        tokens=dict(TOKENS), audit_path=audit_path,
    ) as svc:
        yield svc, audit_path


class TestAuthOverHttp:
    def test_valid_token_submits(self, authed_service):
        svc, _ = authed_service
        client = ServiceClient(svc.url, token="s3cret-alice")
        snap = client.submit(table1_spec(["Wigner"], ["EC1"]))
        assert snap["state"] in ("running", "done")

    @pytest.mark.parametrize("token", [None, "", "wrong-token"])
    def test_bad_token_is_401_with_envelope(self, authed_service, token):
        svc, audit_path = authed_service
        client = ServiceClient(svc.url, token=token)
        with pytest.raises(AuthError) as exc:
            client.submit(table1_spec(["Wigner"], ["EC1"]))
        assert exc.value.status == 401
        assert exc.value.code in ("missing_token", "invalid_token")
        # ... and the denial is in the audit log
        entries = read_audit_log(audit_path)
        assert entries, "auth failure was not audit-logged"
        last = entries[-1]
        assert last["event"] == "auth"
        assert last["decision"] == f"rejected:{exc.value.code}"

    def test_envelope_shape_on_401(self, authed_service):
        import http.client

        svc, _ = authed_service
        host, port = svc.url.split("//")[1].rsplit(":", 1)
        conn = http.client.HTTPConnection(host, int(port))
        conn.request("GET", "/v1/jobs")
        response = conn.getresponse()
        body = json.loads(response.read())
        conn.close()
        assert response.status == 401
        assert set(body) == {"error"}
        assert body["error"]["code"] == "missing_token"
        assert isinstance(body["error"]["message"], str)

    def test_healthz_needs_no_token(self, authed_service):
        svc, _ = authed_service
        health = ServiceClient(svc.url).health()  # no token on purpose
        assert health["status"] == "ok"

    def test_metrics_requires_token_and_counts_failures(self, authed_service):
        svc, _ = authed_service
        with pytest.raises(AuthError):
            ServiceClient(svc.url).metrics()
        metrics = ServiceClient(svc.url, token="s3cret-bob").metrics()
        assert metrics["auth"]["mode"] == "token"
        assert metrics["auth"]["failures"] >= 1
