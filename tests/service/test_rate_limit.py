"""Token-bucket refill boundaries and the 503 flip at the high-water mark.

The bucket/controller unit tests inject a fake clock so the refill
boundary is exact (denied at +0.999s, admitted at +1.0s).  The HTTP
tests pin the wire contract: 429/503 with the uniform envelope AND the
``Retry-After`` header, the typed client exceptions, and that
``submit_with_retry`` converges once the pressure lifts.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.client import Overloaded, RateLimited, ServiceClient
from repro.service.rate_limit import AdmissionController, RateLimiter, TokenBucket
from repro.service.scheduler import VerificationScheduler
from repro.service.server import ThreadedService

from .test_scheduler import stub_compute, table1_spec


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_burst_then_refill_boundary(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=2, clock=clock)
        # burst of 2: two immediate admits, the third is denied with the
        # exact time until one token accrues
        assert limiter.admit("alice") == 0.0
        assert limiter.admit("alice") == 0.0
        retry = limiter.admit("alice")
        assert retry == pytest.approx(1.0)
        # 1ms before the refill completes: still denied
        clock.now += 0.999
        assert limiter.admit("alice") == pytest.approx(0.001)
        # exactly at the boundary: admitted
        clock.now += 0.001
        assert limiter.admit("alice") == 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, now=clock.now)
        for _ in range(3):
            assert bucket.acquire(clock.now) == 0.0
        clock.now += 3600.0  # an hour idle refills to burst, not beyond
        for _ in range(3):
            assert bucket.acquire(clock.now) == 0.0
        assert bucket.acquire(clock.now) > 0.0

    def test_clients_have_independent_buckets(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.admit("alice") == 0.0
        assert limiter.admit("alice") > 0.0  # alice is dry
        assert limiter.admit("bob") == 0.0   # bob is not

    def test_disabled_by_default(self):
        limiter = RateLimiter()
        assert not limiter.enabled
        for _ in range(1000):
            assert limiter.admit("anyone") == 0.0

    def test_prune_drops_refilled_buckets(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=100.0, burst=1, clock=clock)
        for index in range(4096):
            limiter.admit(f"client-{index}")
        clock.now += 60.0  # everyone refilled
        limiter.admit("one-more")  # triggers the prune at the cap
        assert len(limiter._buckets) <= 2

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=-1.0)
        with pytest.raises(ValueError):
            RateLimiter(rate=5.0, burst=0)


class TestAdmissionController:
    def test_flips_exactly_at_high_water(self):
        admission = AdmissionController(high_water=4, retry_after=1.0)
        assert admission.admit(0) == 0.0
        assert admission.admit(3) == 0.0   # below the mark: admitted
        assert admission.admit(4) == 1.0   # at the mark: shed
        assert admission.admit(5) == 1.0

    def test_retry_scales_with_overshoot_capped(self):
        admission = AdmissionController(high_water=4, retry_after=1.0)
        assert admission.admit(8) == 2.0    # one full high-water past
        assert admission.admit(400) == 30.0  # deep backlog: capped

    def test_disabled_by_default(self):
        admission = AdmissionController()
        assert not admission.enabled
        assert admission.admit(10**9) == 0.0


class TestRateLimitOverHttp:
    def test_429_envelope_and_retry_after_header(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            VerificationScheduler, "_compute_cell", stub_compute()
        )
        with ThreadedService(
            tmp_path / "svc.jsonl", max_workers=0, rate=0.5, burst=1
        ) as svc:
            client = ServiceClient(svc.url)
            client.submit(table1_spec(["Wigner"], ["EC1"]))  # spends the burst
            with pytest.raises(RateLimited) as exc:
                client.submit(table1_spec(["Wigner"], ["EC6"]))
            assert exc.value.status == 429
            assert exc.value.code == "rate_limited"
            assert exc.value.retry_after is not None
            assert 0 < exc.value.retry_after <= 3.0
            # submit_with_retry rides out the dry bucket and converges
            snap = client.submit_with_retry(
                table1_spec(["Wigner"], ["EC6"]), max_attempts=8
            )
            assert snap["state"] in ("queued", "running", "done")
            metrics = client.metrics()
            assert metrics["rate_limit"]["enabled"] is True
            assert metrics["rate_limit"]["throttled"] >= 1

    def test_503_flips_at_high_water_and_recovers(self, tmp_path, monkeypatch):
        gate = threading.Event()

        def slow_compute(self, cell):
            gate.wait(timeout=30)
            payload = {"stub": list(cell.address)}
            self._store.put_payload(cell.content_key, payload)
            return payload

        monkeypatch.setattr(VerificationScheduler, "_compute_cell", slow_compute)
        with ThreadedService(
            tmp_path / "svc.jsonl", max_workers=0, high_water=2
        ) as svc:
            client = ServiceClient(svc.url)
            # inline mode executes max_inflight=2 cells (both parked at
            # the gate); the rest stack up as queued cells until the
            # admission check sees queue_depth >= high_water
            # EC4/EC5 need exchange, so stick to the correlation-only
            # conditions applicable to both functionals: 8 distinct cells
            specs = [
                table1_spec([functional], [f"EC{index}"])
                for functional in ("Wigner", "LYP")
                for index in (1, 2, 3, 6)
            ]
            accepted = []
            shed = None
            try:
                for spec in specs:
                    try:
                        accepted.append(client.submit(spec))
                    except Overloaded as exc:
                        shed = exc
                        break
                assert shed is not None, "queue never hit the high-water mark"
                assert shed.status == 503
                assert shed.code == "overloaded"
                assert shed.retry_after is not None and shed.retry_after > 0
            finally:
                gate.set()  # drain the queue
            # after the drain the same submission is admitted
            deadline = time.monotonic() + 30
            while True:
                try:
                    snap = client.submit(specs[-1])
                    break
                except Overloaded:
                    assert time.monotonic() < deadline, "503 never recovered"
                    time.sleep(0.1)
            assert snap["state"] in ("queued", "running", "done")
            metrics = client.metrics()
            assert metrics["admission"]["enabled"] is True
            assert metrics["admission"]["shed"] >= 1
            assert metrics["admission"]["high_water"] == 2
