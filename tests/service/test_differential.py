"""THE service acceptance corpus: byte-identity to the direct campaign paths.

Hammers a real server over localhost with duplicate and overlapping jobs
and requires every payload it serves -- under concurrency, coalescing,
warm cache, restarts and store sharing with CLI campaigns -- to be
byte-identical to what :func:`repro.verifier.campaign.run_campaign` /
:func:`repro.numerics.campaign.run_numerics_campaign` produce directly.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.numerics.campaign import NumericsConfig, run_numerics_campaign
from repro.service.client import ServiceClient
from repro.service.server import ThreadedService
from repro.verifier.campaign import run_campaign
from repro.verifier.store import report_to_payload
from repro.verifier.verifier import VerifierConfig

CONFIG = {"per_call_budget": 100, "global_step_budget": 800}
PAIRS = [("LYP", "EC1"), ("LYP", "EC6"), ("Wigner", "EC1"), ("Wigner", "EC6")]
TABLE1_SPEC = {
    "kind": "table1",
    "functionals": ["LYP", "Wigner"],
    "conditions": ["EC1", "EC6"],
    "config": CONFIG,
}

NUM_CONFIG = {"n_base_points": 4, "bisection_steps": 12, "hazard_budget": 400}
NUMERICS_SPEC = {
    "kind": "numerics",
    "functionals": ["Wigner", "PZ81"],
    "checks": ["continuity", "hazards"],
    "config": NUM_CONFIG,
}


def dumps(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def canon(payload: dict) -> str:
    """Canonical bytes of a verify payload, wall-clock excluded.

    ``elapsed_seconds`` and ``compile_seconds`` are the non-deterministic
    timing fields and are deliberately outside bit-exact equality
    everywhere in this repo (:meth:`VerificationReport.identical_to`);
    everything else -- boxes, outcomes, models, child links, step counts
    -- must match exactly.
    """
    return dumps(
        {
            k: v
            for k, v in payload.items()
            if k not in ("elapsed_seconds", "compile_seconds")
        }
    )


@pytest.fixture(scope="module")
def verify_reference():
    """Direct-path payloads, the bytes the service must reproduce."""
    result = run_campaign(PAIRS, VerifierConfig(**CONFIG), max_workers=0)
    return {
        f"{fname}/{cid}": canon(report_to_payload(report))
        for (fname, cid), report in result.items()
    }


@pytest.fixture(scope="module")
def numerics_reference():
    result = run_numerics_campaign(
        ["Wigner", "PZ81"],
        checks=("continuity", "hazards"),
        config=NumericsConfig(**NUM_CONFIG),
        max_workers=0,
    )
    return {"/".join(key): dumps(payload) for key, payload in result.items()}


def payload_bytes(result: dict) -> dict:
    return {
        address: dumps(entry["payload"])
        for address, entry in result["cells"].items()
        if "payload" in entry
    }


class TestVerifyDifferential:
    def test_hammer_with_duplicates_and_overlaps(self, tmp_path, verify_reference):
        """Concurrent duplicate + overlapping jobs; every payload byte-equal
        to the direct path; every distinct cell computed at most once."""
        overlap_spec = {
            "kind": "verify", "functional": "Wigner", "condition": "EC1",
            "config": CONFIG,
        }
        with ThreadedService(tmp_path / "svc.jsonl", max_workers=0) as svc:
            results: dict = {}

            def submit(tag, spec):
                results[tag] = ServiceClient(svc.url, timeout=300).run(spec)

            threads = [
                threading.Thread(target=submit, args=(f"t{i}", TABLE1_SPEC))
                for i in range(3)
            ] + [
                threading.Thread(target=submit, args=(f"v{i}", overlap_spec))
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            assert not any(t.is_alive() for t in threads), "client hung"

        assert len(results) == 5
        computed_total = 0
        for tag, result in results.items():
            assert result["state"] == "done", (tag, result["sources"])
            for address, entry in result["cells"].items():
                assert canon(entry["payload"]) == verify_reference[address], (
                    f"{tag} served a payload differing from the direct "
                    f"campaign path at {address}"
                )
            computed_total += result["sources"]["computed"]
        # single-flight: 4 distinct cells across all five jobs, each
        # computed exactly once, everything else coalesced or cached
        assert computed_total == len(PAIRS)
        # coalesced/cached jobs share the one computation's payload to the
        # byte -- wall-clock included, because it IS the same result
        table1_results = [results[f"t{i}"] for i in range(3)]
        raw = [payload_bytes(result) for result in table1_results]
        assert raw[0] == raw[1] == raw[2]

    def test_warm_cache_across_restart(self, tmp_path, verify_reference):
        store = tmp_path / "svc.jsonl"
        with ThreadedService(store, max_workers=0) as svc:
            first = ServiceClient(svc.url, timeout=300).run(TABLE1_SPEC)
        assert first["sources"]["computed"] == 4
        # a fresh server process state, same store: everything is a hit
        with ThreadedService(store, max_workers=0) as svc:
            second = ServiceClient(svc.url, timeout=300).run(TABLE1_SPEC)
        assert second["sources"] == {"computed": 0, "cache": 4, "coalesced": 0}
        # store hits are the first run's bytes, wall-clock included
        assert payload_bytes(second) == payload_bytes(first)
        for address, entry in second["cells"].items():
            assert canon(entry["payload"]) == verify_reference[address]

    def test_store_shared_with_cli_campaign(self, tmp_path, verify_reference):
        """Cells computed by a --store CLI campaign are service cache hits
        (same content keys), and vice versa."""
        store = tmp_path / "shared.jsonl"
        run_campaign(PAIRS[:2], VerifierConfig(**CONFIG), max_workers=0,
                     store=store)
        with ThreadedService(store, max_workers=0) as svc:
            result = ServiceClient(svc.url, timeout=300).run(TABLE1_SPEC)
        assert result["sources"]["cache"] == 2
        assert result["sources"]["computed"] == 2
        for address, entry in result["cells"].items():
            assert canon(entry["payload"]) == verify_reference[address]
        # and the service-computed cells now resume a direct campaign
        resumed = run_campaign(PAIRS, VerifierConfig(**CONFIG), max_workers=0,
                               store=store, resume=True)
        assert sorted(resumed.store_hits) == sorted(PAIRS)


class TestNumericsDifferential:
    def test_duplicate_numerics_jobs(self, tmp_path, numerics_reference):
        with ThreadedService(tmp_path / "svc.jsonl", max_workers=0) as svc:
            results: dict = {}

            def submit(tag):
                results[tag] = ServiceClient(svc.url, timeout=300).run(
                    NUMERICS_SPEC)

            threads = [
                threading.Thread(target=submit, args=(f"n{i}",))
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            assert not any(t.is_alive() for t in threads), "client hung"

        cells = set(numerics_reference)
        computed_total = 0
        for tag, result in results.items():
            assert result["state"] == "done"
            got = payload_bytes(result)
            assert set(got) == cells
            for address, payload in got.items():
                assert payload == numerics_reference[address], (
                    f"{tag}: {address} differs from run_numerics_campaign"
                )
            computed_total += result["sources"]["computed"]
        assert computed_total == len(cells)

    def test_store_shared_with_numerics_campaign(self, tmp_path,
                                                 numerics_reference):
        store = tmp_path / "shared.jsonl"
        run_numerics_campaign(
            ["Wigner"], checks=("continuity",),
            config=NumericsConfig(**NUM_CONFIG), max_workers=0, store=store,
        )
        with ThreadedService(store, max_workers=0) as svc:
            result = ServiceClient(svc.url, timeout=300).run(NUMERICS_SPEC)
        assert result["sources"]["cache"] == 1  # the Wigner continuity cell
        for address, got in payload_bytes(result).items():
            assert got == numerics_reference[address]
        # service-computed cells serve a later --resume campaign
        resumed = run_numerics_campaign(
            ["Wigner", "PZ81"], checks=("continuity", "hazards"),
            config=NumericsConfig(**NUM_CONFIG), max_workers=0,
            store=store, resume=True,
        )
        assert len(resumed.store_hits) == len(numerics_reference)
        assert not resumed.computed


class TestCliArtifacts:
    def test_submit_table1_json_identical_to_direct(self, tmp_path, capsys):
        """`repro submit table1 --json` == `repro table1 --json`, byte for
        byte -- the CI service-smoke diff, in-process."""
        from repro.cli import main

        direct_json = tmp_path / "direct.json"
        served_json = tmp_path / "served.json"
        slice_args = [
            "--functionals", "LYP,Wigner", "--conditions", "EC1,EC6",
            "--budget", "100", "--global-budget", "800",
        ]
        assert main(["table1", *slice_args, "--json", str(direct_json)]) == 0
        with ThreadedService(tmp_path / "svc.jsonl", max_workers=0) as svc:
            rc = main([
                "submit", "--url", svc.url, "--json", str(served_json),
                "table1", *slice_args,
            ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "Table I" in out
        assert served_json.read_bytes() == direct_json.read_bytes()

    def test_submit_authed_rate_limited_identical_to_direct(
        self, tmp_path, capsys
    ):
        """The hardened /v1 path -- bearer auth plus a deliberately dry
        token bucket forcing a 429-then-retry -- serves byte-identical
        table bytes to the direct CLI."""
        from repro.cli import main

        direct_json = tmp_path / "direct2.json"
        served_json = tmp_path / "served2.json"
        slice_args = [
            "--functionals", "LYP,Wigner", "--conditions", "EC1,EC6",
            "--budget", "100", "--global-budget", "800",
        ]
        assert main(["table1", *slice_args, "--json", str(direct_json)]) == 0
        audit_path = tmp_path / "audit.jsonl"
        with ThreadedService(
            tmp_path / "svc.jsonl", max_workers=0,
            tokens={"s3cret": "alice"}, rate=0.5, burst=1,
            audit_path=audit_path,
        ) as svc:
            # drain alice's bucket so the CLI submission is answered 429
            # and must honour Retry-After to get through
            ServiceClient(svc.url, token="s3cret", timeout=300).submit(
                TABLE1_SPEC
            )
            rc = main([
                "submit", "--url", svc.url, "--token", "s3cret",
                "--json", str(served_json), "table1", *slice_args,
            ])
            metrics = ServiceClient(svc.url, token="s3cret").metrics()
        out = capsys.readouterr().out
        assert rc == 0, out
        assert served_json.read_bytes() == direct_json.read_bytes()
        # the retry path genuinely fired and the decisions were audited
        assert metrics["rate_limit"]["throttled"] >= 1
        from repro.service.audit import read_audit_log

        decisions = [
            entry["decision"] for entry in read_audit_log(audit_path)
        ]
        assert "rejected:rate_limited" in decisions
        assert decisions.count("accepted") == 2

    def test_submit_numerics_json_identical_to_direct(self, tmp_path, capsys):
        from repro.cli import main

        direct_json = tmp_path / "direct3.json"
        served_json = tmp_path / "served3.json"
        slice_args = ["--functionals", "Wigner", "--check", "continuity"]
        assert main([
            "numerics", "--all", *slice_args, "--json", str(direct_json),
        ]) == 0
        with ThreadedService(tmp_path / "svc.jsonl", max_workers=0) as svc:
            rc = main([
                "submit", "--url", svc.url, "--json", str(served_json),
                "numerics", *slice_args,
            ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert served_json.read_bytes() == direct_json.read_bytes()
