"""Audit log durability and the submission/auth decision trail.

The JSONL file follows the store's contract: flushed per write, and a
tail truncated by a kill mid-write is skipped on read and sealed with a
newline on reopen, so one interrupted shutdown never poisons the log.
"""

from __future__ import annotations

import json

import pytest

from repro.service.audit import AuditLog, read_audit_log
from repro.service.client import ServiceClient, ServiceError
from repro.service.scheduler import VerificationScheduler
from repro.service.server import ThreadedService

from .test_scheduler import stub_compute, table1_spec


class TestAuditLogFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = AuditLog(path)
        log.submission(
            "alice", "table1", "accepted",
            job_id="job-1", cells=2,
            content_keys=["a" * 64, "b" * 64],
        )
        log.auth_failure("invalid_token", "/v1/jobs")
        log.close()

        entries = read_audit_log(path)
        assert len(entries) == 2
        accepted, denied = entries
        assert accepted["event"] == "submit"
        assert accepted["client"] == "alice"
        assert accepted["decision"] == "accepted"
        assert accepted["job_id"] == "job-1"
        assert accepted["cells"] == 2
        assert accepted["keys"] == ["a" * 12, "b" * 12]  # truncated digests
        assert denied["event"] == "auth"
        assert denied["decision"] == "rejected:invalid_token"
        assert denied["path"] == "/v1/jobs"

    def test_key_digests_capped(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = AuditLog(path)
        keys = [f"{index:064d}" for index in range(100)]
        log.submission("alice", "numerics", "accepted", content_keys=keys)
        log.close()
        (entry,) = read_audit_log(path)
        assert len(entry["keys"]) == 32
        assert entry["keys_truncated"] == 68

    def test_truncated_tail_skipped_and_sealed(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = AuditLog(path)
        log.submission("alice", "table1", "accepted", job_id="job-1")
        log.close()
        # simulate SIGKILL mid-write: a partial JSON line with no newline
        with open(path, "a") as handle:
            handle.write('{"ts": 123, "event": "sub')

        # the reader tolerates the torn tail
        entries = read_audit_log(path)
        assert len(entries) == 1
        assert entries[0]["job_id"] == "job-1"

        # reopening seals the tail; the next entry parses cleanly
        log = AuditLog(path)
        log.submission("bob", "verify", "accepted", job_id="job-2")
        log.close()
        entries = read_audit_log(path)
        assert [e.get("job_id") for e in entries if e.get("event") == "submit"] \
            == ["job-1", "job-2"]
        # every line after the seal is independently parseable or skipped
        lines = path.read_text().splitlines()
        parseable = 0
        for line in lines:
            try:
                json.loads(line)
                parseable += 1
            except json.JSONDecodeError:
                pass
        assert parseable == 2

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_audit_log(tmp_path / "nope.jsonl") == []


class TestAuditOverHttp:
    @pytest.fixture
    def service(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            VerificationScheduler, "_compute_cell", stub_compute()
        )
        audit_path = tmp_path / "audit.jsonl"
        with ThreadedService(
            tmp_path / "svc.jsonl", max_workers=0,
            tokens={"s3cret": "alice"}, audit_path=audit_path,
        ) as svc:
            yield svc, audit_path

    def test_accepted_submission_logged_with_digests(self, service):
        svc, audit_path = service
        client = ServiceClient(svc.url, token="s3cret")
        snap = client.submit(table1_spec(["Wigner"], ["EC1", "EC6"]))
        for _ in client.events(snap["id"]):
            pass
        svc.stop()  # drain flushes and closes the log

        submits = [
            entry for entry in read_audit_log(audit_path)
            if entry["event"] == "submit"
        ]
        assert len(submits) == 1
        entry = submits[0]
        assert entry["client"] == "alice"
        assert entry["kind"] == "table1"
        assert entry["decision"] == "accepted"
        assert entry["job_id"] == snap["id"]
        assert entry["cells"] == 2
        assert len(entry["keys"]) == 2
        assert all(len(key) == 12 for key in entry["keys"])
        # nothing secret: the bearer token never appears in the log
        assert "s3cret" not in audit_path.read_text()

    def test_rejections_logged(self, service):
        svc, audit_path = service
        # auth failure on any route
        with pytest.raises(ServiceError):
            ServiceClient(svc.url, token="wrong").submit(
                table1_spec(["Wigner"], ["EC1"])
            )
        # bad spec from an authenticated client
        with pytest.raises(ServiceError):
            ServiceClient(svc.url, token="s3cret").submit({"kind": "nope"})
        svc.stop()

        entries = read_audit_log(audit_path)
        decisions = [entry["decision"] for entry in entries]
        assert "rejected:invalid_token" in decisions
        assert "rejected:bad_request" in decisions
        bad = next(e for e in entries if e["decision"] == "rejected:bad_request")
        assert bad["client"] == "alice"
        assert bad["kind"] == "nope"
