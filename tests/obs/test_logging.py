"""Structured diagnostics: run ids, mode selection, record shape."""

from __future__ import annotations

import json

import pytest

from repro.obs import logging as obslog
from repro.obs.logging import configure_logging, json_mode, log_event, run_id


@pytest.fixture(autouse=True)
def reset_mode(monkeypatch):
    monkeypatch.delenv("REPRO_LOG", raising=False)
    monkeypatch.setattr(obslog, "_JSON_MODE", None)


class TestRunId:
    def test_stable_for_the_process_life(self):
        assert run_id() == run_id()

    def test_twelve_hex_chars(self):
        value = run_id()
        assert len(value) == 12
        int(value, 16)


class TestModeSelection:
    def test_default_is_text(self):
        assert json_mode() is False

    def test_env_var_switches_to_json(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "json")
        configure_logging()
        assert json_mode() is True

    def test_explicit_flag_beats_the_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "json")
        configure_logging(json_logs=False)
        assert json_mode() is False
        configure_logging(json_logs=True)
        assert json_mode() is True

    def test_lazy_configuration_on_first_use(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "JSON")  # case-insensitive
        assert json_mode() is True


class TestLogEvent:
    def test_text_mode_prints_the_exact_line(self, capsys):
        configure_logging(json_logs=False)
        log_event("campaign.interrupted", "warning: campaign interrupted",
                  level="warning", computed=3)
        captured = capsys.readouterr()
        assert captured.err == "warning: campaign interrupted\n"
        assert captured.out == ""

    def test_json_mode_emits_one_record_per_line(self, capsys):
        configure_logging(json_logs=True)
        log_event("trace.written", "wrote trace t.jsonl", path="t.jsonl")
        record = json.loads(capsys.readouterr().err)
        assert record["event"] == "trace.written"
        assert record["level"] == "info"
        assert record["text"] == "wrote trace t.jsonl"
        assert record["path"] == "t.jsonl"
        assert record["run_id"] == run_id()
        assert record["ts"] > 0

    def test_json_keys_are_sorted(self, capsys):
        configure_logging(json_logs=True)
        log_event("e", "t", zebra=1, alpha=2)
        line = capsys.readouterr().err.strip()
        keys = list(json.loads(line))
        assert keys == sorted(keys)

    def test_stream_override(self, capsys):
        import sys

        configure_logging(json_logs=False)
        log_event("service.listening", "listening on :8080",
                  stream=sys.stdout)
        captured = capsys.readouterr()
        assert captured.out == "listening on :8080\n"
        assert captured.err == ""
