"""The metrics core: labeled counters/gauges, registries, Prometheus text.

The Histogram itself is exercised by the service metrics tests (it moved
here unchanged); these tests pin what the move *added* -- server-free
counters and the text exposition contract scrapers depend on.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    CONTENT_TYPE_PROMETHEUS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    REGISTRY,
    lint_exposition,
    prometheus_exposition,
)


def metrics_doc(**overrides):
    """A minimal but complete /v1/metrics document."""
    hist = Histogram()
    hist.observe(0.002)
    hist.observe(0.4)
    doc = {
        "server": {"started_at": 1000.0, "uptime_seconds": 12.5},
        "requests": {
            "total": 7,
            "by_status": {"200": 6, "404": 1},
            "by_route": {"/v1/metrics": 2, "/v1/verify": 5},
            "deprecated": 1,
        },
        "auth": {"mode": "anonymous", "failures": 0},
        "rate_limit": {"enabled": False, "rate_per_second": 0.0,
                       "burst": 0.0, "throttled": 0},
        "admission": {"enabled": False, "high_water": 0, "queue_depth": 3,
                      "shed": 1, "draining_rejects": 0},
        "jobs": {"submitted": 5, "by_kind": {"verify": 5}, "tracked": 5,
                 "active": 2},
        "cells": {"computed": 4, "cache": 2, "coalesced": 0,
                  "cache_hit_ratio": 0.333333},
        "pool": {"executing": 2, "max_inflight": 4, "utilisation": 0.5,
                 "workers": 2},
        "lanes": {
            "enabled": False, "interactive_max_cells": 0, "preemptions": 0,
            "batch": {"queue_depth": 3, "dispatched": 4,
                      "wait_seconds": hist.snapshot()},
        },
        "store": {"path": None, "keys": 6},
        "latency": {"submit_seconds": {"verify": hist.snapshot()}},
    }
    doc.update(overrides)
    return doc


class TestCountersAndGauges:
    def test_counter_accumulates_per_label_set(self):
        counter = Counter("repro_cells_total")
        counter.inc(result="computed")
        counter.inc(result="computed")
        counter.inc(result="store_hit")
        assert counter.value(result="computed") == 2
        assert counter.value(result="store_hit") == 1
        assert counter.value(result="missing") == 0

    def test_label_order_does_not_matter(self):
        counter = Counter("c")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1

    def test_gauge_sets_point_in_time(self):
        gauge = Gauge("g")
        gauge.set(3.0, lane="batch")
        gauge.set(1.0, lane="batch")
        assert gauge.value(lane="batch") == 1.0


class TestMetricRegistry:
    def test_creation_is_idempotent(self):
        registry = MetricRegistry()
        first = registry.counter("repro_chunks_total", "chunks dispatched")
        second = registry.counter("repro_chunks_total")
        assert first is second

    def test_kind_conflicts_raise(self):
        registry = MetricRegistry()
        registry.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("m")

    def test_snapshot_is_json_safe_and_sorted(self):
        registry = MetricRegistry()
        counter = registry.counter("b_metric")
        counter.inc(result="x")
        registry.gauge("a_metric").set(2.0)
        snap = registry.snapshot()
        assert list(snap) == ["a_metric", "b_metric"]
        assert snap["b_metric"] == {"result=x": 1.0}
        assert snap["a_metric"] == {"_": 2.0}

    def test_exposition_is_lint_clean(self):
        registry = MetricRegistry()
        registry.counter("repro_things_total", "things").inc(kind="a")
        registry.gauge("repro_depth", "depth").set(4)
        text = registry.exposition()
        assert lint_exposition(text) == []
        assert '# TYPE repro_things_total counter' in text
        assert 'repro_things_total{kind="a"} 1.0' in text

    def test_empty_registry_renders_nothing(self):
        assert MetricRegistry().exposition() == ""

    def test_process_wide_registry_exists(self):
        assert isinstance(REGISTRY, MetricRegistry)


class TestPrometheusExposition:
    def test_full_document_is_lint_clean(self):
        text = prometheus_exposition(metrics_doc(), registry=MetricRegistry())
        assert lint_exposition(text) == []

    def test_stable_family_names(self):
        text = prometheus_exposition(metrics_doc(), registry=MetricRegistry())
        for family in (
            "repro_uptime_seconds", "repro_requests_total",
            "repro_requests_by_status_total", "repro_auth_failures_total",
            "repro_admission_queue_depth", "repro_jobs_active",
            "repro_cells_total", "repro_pool_workers", "repro_store_keys",
            "repro_lane_wait_seconds", "repro_submit_latency_seconds",
        ):
            assert f"# TYPE {family} " in text

    def test_histograms_cumulate_on_the_way_out(self):
        text = prometheus_exposition(metrics_doc(), registry=MetricRegistry())
        lines = [line for line in text.splitlines()
                 if line.startswith("repro_submit_latency_seconds_bucket")]
        counts = [float(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)  # cumulative, monotonically rising
        assert counts[-1] == 2  # +Inf bucket holds every observation
        assert 'le="+Inf"' in lines[-1]

    def test_labels_are_escaped(self):
        doc = metrics_doc()
        doc["requests"]["by_route"] = {'/weird"route\\x': 1}
        text = prometheus_exposition(doc, registry=MetricRegistry())
        assert r'route="/weird\"route\\x"' in text
        assert lint_exposition(text) == []

    def test_registry_counters_fold_into_the_scrape(self):
        registry = MetricRegistry()
        registry.counter("repro_campaign_cells_resolved_total",
                         "cells").inc(result="computed")
        text = prometheus_exposition(metrics_doc(), registry=registry)
        assert 'repro_campaign_cells_resolved_total{result="computed"} 1.0' in text
        assert lint_exposition(text) == []

    def test_content_type_pins_the_exposition_version(self):
        assert "version=0.0.4" in CONTENT_TYPE_PROMETHEUS


class TestLintExposition:
    def test_flags_samples_without_type(self):
        assert lint_exposition("mystery_metric 1\n") != []

    def test_flags_malformed_samples(self):
        text = "# TYPE m counter\nm{unclosed 1\n"
        assert any("malformed sample" in p for p in lint_exposition(text))

    def test_flags_malformed_type_lines(self):
        assert any("malformed TYPE" in p
                   for p in lint_exposition("# TYPE m widget\nm 1\n"))

    def test_accepts_histogram_suffixes(self):
        text = (
            "# TYPE m histogram\n"
            'm_bucket{le="0.1"} 1\n'
            'm_bucket{le="+Inf"} 2\n'
            "m_sum 0.3\n"
            "m_count 2\n"
        )
        assert lint_exposition(text) == []
