"""The tracer core: sinks, spans, ambient activation, worker recorders.

Pins the record layout (the schema readers depend on), the no-op
guarantees of the disabled path, and the cross-process handshake --
a SpanContext pickled into a chunk, a SpanRecorder's dicts returned and
re-emitted by the parent.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.obs.export import load_trace
from repro.obs.jsonl import read_jsonl
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    SpanContext,
    SpanRecorder,
    TraceSink,
    Tracer,
    activate_tracer,
    current_tracer,
)


def make_tracer(tmp_path, name="t.jsonl"):
    sink = TraceSink(tmp_path / name)
    return Tracer(sink), sink


class TestTraceSink:
    def test_header_is_first_line(self, tmp_path):
        _, sink = make_tracer(tmp_path)
        sink.close()
        records = read_jsonl(sink.path)
        assert records[0]["kind"] == "header"
        assert records[0]["v"] == TRACE_SCHEMA_VERSION
        assert records[0]["trace_id"] == sink.trace_id
        assert records[0]["pid"] == os.getpid()
        assert records[0]["wall_start"] > 0
        assert len(records[0]["run_id"]) == 12

    def test_distinct_sinks_get_distinct_trace_ids(self, tmp_path):
        _, a = make_tracer(tmp_path, "a.jsonl")
        _, b = make_tracer(tmp_path, "b.jsonl")
        a.close(), b.close()
        assert a.trace_id != b.trace_id


class TestTracer:
    def test_finished_span_record_shape(self, tmp_path):
        tracer, sink = make_tracer(tmp_path)
        span = tracer.begin("solve:LYP/EC1", "solve", functional="LYP")
        tracer.finish(span, steps=42)
        sink.close()
        _, spans = load_trace(sink.path)
        (rec,) = spans
        assert rec["kind"] == "span"
        assert rec["name"] == "solve:LYP/EC1"
        assert rec["cat"] == "solve"
        assert rec["span"] == span.span_id
        assert rec["parent"] is None
        assert rec["pid"] == os.getpid()
        assert rec["dur"] >= 0
        assert rec["run_id"] == tracer.run_id
        # begin-time and finish-time attrs merge into one dict
        assert rec["attrs"] == {"functional": "LYP", "steps": 42}

    def test_span_ids_are_unique(self, tmp_path):
        tracer, sink = make_tracer(tmp_path)
        ids = {tracer.begin("s", "x").span_id for _ in range(100)}
        sink.close()
        assert len(ids) == 100

    def test_explicit_parent_links(self, tmp_path):
        tracer, sink = make_tracer(tmp_path)
        outer = tracer.begin("outer", "x")
        inner = tracer.begin("inner", "x", parent=outer)
        tracer.finish(inner)
        tracer.finish(outer)
        sink.close()
        _, spans = load_trace(sink.path)
        by_name = {rec["name"]: rec for rec in spans}
        assert by_name["inner"]["parent"] == outer.span_id
        assert by_name["outer"]["parent"] is None

    def test_root_is_the_default_parent(self, tmp_path):
        # the CLI sets tracer.root to its command span so library spans
        # opened deep inside run_campaign still land under the command
        tracer, sink = make_tracer(tmp_path)
        command = tracer.begin("cli:table1", "cli")
        tracer.root = command
        orphan = tracer.begin("campaign", "campaign")
        tracer.finish(orphan)
        tracer.root = None
        tracer.finish(command)
        sink.close()
        _, spans = load_trace(sink.path)
        by_name = {rec["name"]: rec for rec in spans}
        assert by_name["campaign"]["parent"] == command.span_id

    def test_span_context_manager_finishes_on_exception(self, tmp_path):
        tracer, sink = make_tracer(tmp_path)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed", "x"):
                raise RuntimeError("boom")
        sink.close()
        _, spans = load_trace(sink.path)
        assert [rec["name"] for rec in spans] == ["doomed"]

    def test_completion_order_is_file_order(self, tmp_path):
        # children land before parents: readers must rebuild from ids
        tracer, sink = make_tracer(tmp_path)
        with tracer.span("parent", "x") as parent:
            with tracer.span("child", "x", parent=parent):
                pass
        sink.close()
        _, spans = load_trace(sink.path)
        assert [rec["name"] for rec in spans] == ["child", "parent"]


class TestAmbientTracer:
    def test_default_is_the_null_tracer(self):
        assert current_tracer() is NULL_TRACER

    def test_activation_nests_and_restores(self, tmp_path):
        tracer, sink = make_tracer(tmp_path)
        with activate_tracer(tracer):
            assert current_tracer() is tracer
            inner, inner_sink = make_tracer(tmp_path, "inner.jsonl")
            with activate_tracer(inner):
                assert current_tracer() is inner
            inner_sink.close()
            assert current_tracer() is tracer
        sink.close()
        assert current_tracer() is NULL_TRACER


class TestNullTracer:
    def test_disabled_flag_gates_hot_paths(self):
        assert NULL_TRACER.enabled is False

    def test_all_operations_are_noops(self, tmp_path):
        span = NULL_TRACER.begin("s", "x", payload=1)
        NULL_TRACER.finish(span, more=2)
        with NULL_TRACER.span("s", "x") as ctx_span:
            assert ctx_span.span_id is None
        assert NULL_TRACER.context(span) is None
        assert NULL_TRACER.emit_records([{"kind": "span"}]) is None


class TestSpanRecorder:
    def test_context_round_trips_through_pickle(self, tmp_path):
        tracer, sink = make_tracer(tmp_path)
        span = tracer.begin("dispatch", "dispatch")
        ctx = tracer.context(span)
        sink.close()
        thawed = pickle.loads(pickle.dumps(ctx))
        assert thawed == ctx
        assert thawed.span_id == span.span_id

    def test_records_parent_under_the_context(self, tmp_path):
        tracer, sink = make_tracer(tmp_path)
        dispatch = tracer.begin("dispatch", "dispatch")
        ctx = tracer.context(dispatch)

        recorder = SpanRecorder(ctx)  # "worker side" (same process here)
        chunk = recorder.begin("chunk", "chunk")
        with recorder.span("solve:1", "solve", parent=chunk):
            pass
        recorder.finish(chunk)

        tracer.emit_records(recorder.records)
        tracer.finish(dispatch)
        sink.close()
        _, spans = load_trace(sink.path)
        by_name = {rec["name"]: rec for rec in spans}
        assert by_name["chunk"]["parent"] == dispatch.span_id
        assert by_name["solve:1"]["parent"] == chunk.span_id
        assert by_name["chunk"]["run_id"] == ctx.run_id

    def test_records_are_plain_dicts(self, tmp_path):
        tracer, sink = make_tracer(tmp_path)
        ctx = tracer.context(tracer.begin("d", "dispatch"))
        sink.close()
        recorder = SpanRecorder(ctx)
        with recorder.span("chunk", "chunk"):
            pass
        assert all(isinstance(rec, dict) for rec in recorder.records)
        pickle.dumps(recorder.records)  # the return trip must pickle
