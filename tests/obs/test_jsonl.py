"""The shared JSONL durability discipline (obs.jsonl).

The store backend, the audit log and the trace sink all ride on these
helpers, so the crash contract is pinned once, here: readers skip a
truncated tail, reopening seals it, and writes are one flushed line per
record.
"""

from __future__ import annotations

import json

from repro.obs.jsonl import JsonlWriter, iter_jsonl, open_append_sealed, read_jsonl


class TestIterJsonl:
    def test_round_trips_records_in_order(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"i": 1}\n{"i": 2}\n{"i": 3}\n')
        assert [r["i"] for r in iter_jsonl(path)] == [1, 2, 3]

    def test_missing_file_yields_nothing(self, tmp_path):
        assert read_jsonl(tmp_path / "absent.jsonl") == []

    def test_truncated_tail_is_skipped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"i": 1}\n{"i": 2}\n{"i": 3, "x"')  # killed mid-write
        assert [r["i"] for r in read_jsonl(path)] == [1, 2]

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"i": 1}\n\n\n{"i": 2}\n')
        assert [r["i"] for r in read_jsonl(path)] == [1, 2]

    def test_corrupt_interior_line_is_dropped_not_raised(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"i": 1}\nnot json at all\n{"i": 2}\n')
        assert [r["i"] for r in read_jsonl(path)] == [1, 2]


class TestOpenAppendSealed:
    def test_seals_truncated_last_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"i": 1}\n{"i": 2, "x"')
        handle = open_append_sealed(path)
        handle.write('{"i": 3}\n')
        handle.close()
        # the corrupt tail got its newline: record 3 does not merge into it
        assert [r["i"] for r in read_jsonl(path)] == [1, 3]

    def test_clean_file_untouched(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"i": 1}\n')
        open_append_sealed(path).close()
        assert path.read_text() == '{"i": 1}\n'

    def test_fresh_and_empty_files_need_no_seal(self, tmp_path):
        fresh = tmp_path / "fresh.jsonl"
        open_append_sealed(fresh).close()
        assert fresh.read_text() == ""
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        open_append_sealed(empty).close()
        assert empty.read_text() == ""


class TestJsonlWriter:
    def test_writes_sorted_key_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        writer = JsonlWriter(path)
        writer.write({"b": 2, "a": 1})
        writer.close()
        assert path.read_text() == '{"a": 1, "b": 2}\n'

    def test_append_after_kill_mid_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        writer = JsonlWriter(path)
        writer.write({"i": 1})
        writer.close()
        with open(path, "a") as handle:
            handle.write('{"i": 2, "trunc')  # simulated kill mid-write
        survivor = JsonlWriter(path)
        survivor.write({"i": 3})
        survivor.close()
        assert [r["i"] for r in read_jsonl(path)] == [1, 3]

    def test_every_line_parses_standalone(self, tmp_path):
        path = tmp_path / "log.jsonl"
        writer = JsonlWriter(path)
        for i in range(5):
            writer.write({"i": i, "nested": {"k": [i, i + 1]}})
        writer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        for i, line in enumerate(lines):
            assert json.loads(line)["i"] == i

    def test_close_is_idempotent(self, tmp_path):
        writer = JsonlWriter(tmp_path / "log.jsonl")
        writer.close()
        writer.close()
