"""Trace analytics: loading, Chrome export, summaries, lint.

All pure functions over synthetic traces, so every edge (out-of-order
records, truncated tails, structural breakage) is cheap to construct.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    chrome_trace,
    critical_path,
    lint_trace,
    load_trace,
    pair_breakdown,
    span_tree,
    summarize_trace,
    utilization_timeline,
    write_chrome_trace,
)
from repro.obs.trace import TRACE_SCHEMA_VERSION

HEADER = {
    "kind": "header", "v": TRACE_SCHEMA_VERSION, "trace_id": "t1",
    "run_id": "abc123abc123", "wall_start": 1000.0, "mono_start": 100.0,
    "pid": 10,
}


def span(sid, parent, name, cat, ts, dur, pid=10, **attrs):
    rec = {
        "kind": "span", "span": sid, "parent": parent, "name": name,
        "cat": cat, "ts": ts, "dur": dur, "pid": pid,
        "run_id": HEADER["run_id"],
    }
    if attrs:
        rec["attrs"] = attrs
    return rec


def nested_trace():
    """cli -> campaign -> cell -> dispatch -> chunk -> {compile, solve}."""
    return [
        # file order is completion order: leaves first
        span("10.6", "10.5", "compile", "compile", 101.0, 0.5, pid=20,
             functional="LYP", condition="EC1"),
        span("10.7", "10.5", "solve:0", "solve", 101.5, 2.0, pid=20,
             functional="LYP", condition="EC1"),
        span("10.5", "10.4", "chunk", "chunk", 101.0, 2.6, pid=20),
        span("10.4", "10.3", "dispatch:LYP/EC1", "dispatch", 100.9, 2.8),
        span("10.3", "10.2", "cell:LYP/EC1", "cell", 100.8, 3.0,
             functional="LYP", condition="EC1"),
        span("10.2", "10.1", "campaign", "campaign", 100.5, 3.5,
             computed=1, store_hits=0),
        span("10.1", None, "cli:table1", "cli", 100.0, 4.2),
    ]


def write_trace(tmp_path, records, name="trace.jsonl"):
    path = tmp_path / name
    path.write_text("".join(json.dumps(rec) + "\n" for rec in records))
    return path


class TestLoadTrace:
    def test_loads_header_and_spans(self, tmp_path):
        path = write_trace(tmp_path, [HEADER, *nested_trace()])
        header, spans = load_trace(path)
        assert header["trace_id"] == "t1"
        assert len(spans) == 7

    def test_truncated_tail_tolerated(self, tmp_path):
        path = write_trace(tmp_path, [HEADER, *nested_trace()])
        with open(path, "a") as handle:
            handle.write('{"kind": "span", "span": "10.9"')  # SIGINT mid-span
        _, spans = load_trace(path)
        assert len(spans) == 7

    def test_missing_header_raises(self, tmp_path):
        path = write_trace(tmp_path, nested_trace())
        with pytest.raises(ValueError, match="no header"):
            load_trace(path)

    def test_schema_mismatch_raises(self, tmp_path):
        stale = dict(HEADER, v=TRACE_SCHEMA_VERSION + 1)
        path = write_trace(tmp_path, [stale, *nested_trace()])
        with pytest.raises(ValueError, match="schema"):
            load_trace(path)


class TestSpanTree:
    def test_rebuilds_from_ids_regardless_of_file_order(self):
        spans = nested_trace()
        roots, children = span_tree(spans)
        assert [r["name"] for r in roots] == ["cli:table1"]
        assert [c["name"] for c in children["10.1"]] == ["campaign"]
        assert [c["name"] for c in children["10.5"]] == ["compile", "solve:0"]

    def test_children_sorted_by_start_time(self):
        spans = [
            span("1.2", "1.1", "late", "x", 5.0, 1.0),
            span("1.3", "1.1", "early", "x", 1.0, 1.0),
            span("1.1", None, "root", "x", 0.0, 7.0),
        ]
        _, children = span_tree(spans)
        assert [c["name"] for c in children["1.1"]] == ["early", "late"]

    def test_unresolved_parent_becomes_a_root(self):
        orphan = span("1.9", "no.such", "orphan", "x", 0.0, 1.0)
        roots, _ = span_tree([orphan])
        assert roots == [orphan]


class TestChromeTrace:
    def test_events_are_microseconds_from_trace_start(self):
        doc = chrome_trace(HEADER, nested_trace())
        by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        cli = by_name["cli:table1"]
        assert cli["ts"] == pytest.approx(0.0)  # started at mono_start
        assert cli["dur"] == pytest.approx(4.2e6)
        assert by_name["chunk"]["ts"] == pytest.approx(1.0e6)

    def test_processes_get_named_swimlanes(self):
        doc = chrome_trace(HEADER, nested_trace())
        meta = {e["pid"]: e["args"]["name"]
                for e in doc["traceEvents"] if e["ph"] == "M"}
        assert meta == {10: "repro", 20: "pool worker 20"}

    def test_args_carry_span_identity_and_attrs(self):
        doc = chrome_trace(HEADER, nested_trace())
        (solve,) = [e for e in doc["traceEvents"] if e["name"] == "solve:0"]
        assert solve["args"]["span"] == "10.7"
        assert solve["args"]["parent"] == "10.5"
        assert solve["args"]["functional"] == "LYP"

    def test_write_round_trips_as_json(self, tmp_path):
        out = tmp_path / "chrome.json"
        write_chrome_trace(HEADER, nested_trace(), out)
        doc = json.loads(out.read_text())
        assert doc["otherData"]["trace_id"] == "t1"
        assert len(doc["traceEvents"]) == 9  # 7 spans + 2 process names


class TestCriticalPath:
    def test_descends_into_latest_ending_child(self):
        spans = nested_trace()
        path = critical_path(spans)
        assert [s["name"] for s in path] == [
            "cli:table1", "campaign", "cell:LYP/EC1", "dispatch:LYP/EC1",
            "chunk", "solve:0",
        ]

    def test_first_hop_is_the_traced_wall_clock(self):
        path = critical_path(nested_trace())
        assert path[0]["dur"] == pytest.approx(4.2)

    def test_empty_trace_is_empty_path(self):
        assert critical_path([]) == []


class TestUtilizationAndBreakdown:
    def test_concurrent_chunks_counted(self):
        spans = [
            span("1.1", None, "root", "cli", 0.0, 10.0),
            span("1.2", "1.1", "chunk", "chunk", 0.0, 10.0),
            span("1.3", "1.1", "chunk", "chunk", 0.0, 5.0),
        ]
        timeline = utilization_timeline(spans, slots=10)
        assert max(timeline) == 2
        assert timeline[-1] == 1

    def test_no_chunks_is_all_zero(self):
        assert utilization_timeline([span("1.1", None, "r", "cli", 0, 1)],
                                    slots=5) == [0] * 5

    def test_pair_breakdown_sums_compile_and_solve(self):
        breakdown = pair_breakdown(nested_trace())
        assert breakdown[("LYP", "EC1")]["compile"] == pytest.approx(0.5)
        assert breakdown[("LYP", "EC1")]["solve"] == pytest.approx(2.0)


class TestSummary:
    def test_one_screenful_with_every_section(self):
        text = summarize_trace(HEADER, nested_trace())
        assert "7 spans" in text
        assert "critical path" in text
        assert "top" in text and "self-time" in text
        assert "pool utilization" in text
        assert "per-pair compile vs solve" in text
        assert "LYP/EC1" in text

    def test_empty_trace_still_summarizes(self):
        text = summarize_trace(HEADER, [])
        assert "0 spans" in text


class TestLintTrace:
    def test_nested_trace_is_clean(self):
        assert lint_trace(HEADER, nested_trace()) == []

    def test_duplicate_ids_flagged(self):
        spans = [
            span("1.1", None, "a", "cli", 0, 1),
            span("1.1", "1.1", "b", "x", 0, 1),
        ]
        assert any("duplicate" in p for p in lint_trace(HEADER, spans))

    def test_multiple_roots_flagged(self):
        spans = [
            span("1.1", None, "a", "cli", 0, 1),
            span("1.2", None, "b", "cli", 0, 1),
        ]
        assert any("1 root" in p for p in lint_trace(HEADER, spans))

    def test_unresolved_parent_flagged(self):
        spans = [
            span("1.1", None, "a", "cli", 0, 1),
            span("1.2", "gone", "b", "x", 0, 1),
        ]
        assert any("unresolved parent" in p for p in lint_trace(HEADER, spans))

    def test_negative_duration_flagged(self):
        spans = [span("1.1", None, "a", "cli", 0, -0.5)]
        assert any("negative" in p for p in lint_trace(HEADER, spans))

    def test_cell_count_cross_checked_against_campaign(self):
        spans = nested_trace()
        # claim two computed cells while the trace holds one cell span
        spans[5] = span("10.2", "10.1", "campaign", "campaign", 100.5, 3.5,
                        computed=2, store_hits=0)
        problems = lint_trace(HEADER, spans)
        assert any("2 computed cells" in p and "1 cell spans" in p
                   for p in problems)
