"""End-to-end tracing through the campaign engines.

The load-bearing guarantees:

* **reassembly** -- pooled workers complete out of order and steal
  re-enqueues split cells, yet the span records (each naming its own
  parent) rebuild into exactly one tree that lints clean, with one cell
  span per computed cell;
* **non-perturbation** -- tracing must never change results: reports and
  rendered tables are identical with tracing on and off;
* **crash discipline** -- an interrupted campaign leaves a partial trace
  that still parses and seals on reopen.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import run_table_one
from repro.numerics import run_numerics_campaign
from repro.obs.export import lint_trace, load_trace, span_tree
from repro.obs.trace import TraceSink, Tracer, activate_tracer
from repro.verifier.campaign import run_campaign
from repro.verifier.verifier import VerifierConfig

FAST = VerifierConfig(split_threshold=0.7, per_call_budget=250, global_step_budget=8000)
UNLIMITED = VerifierConfig(split_threshold=0.7, per_call_budget=250, global_step_budget=None)
PAIRS = [("LYP", "EC1"), ("VWN RPA", "EC1"), ("Wigner", "EC1")]


def traced_campaign(tmp_path, pairs, config, **kwargs):
    sink = TraceSink(tmp_path / "trace.jsonl")
    tracer = Tracer(sink)
    try:
        result = run_campaign(pairs, config, tracer=tracer, **kwargs)
    finally:
        sink.close()
    return result, load_trace(sink.path)


def spans_by_cat(spans):
    out: dict[str, list] = {}
    for span in spans:
        out.setdefault(span["cat"], []).append(span)
    return out


class TestVerifierCampaignTrace:
    def test_in_process_trace_lints_clean(self, tmp_path):
        result, (header, spans) = traced_campaign(
            tmp_path, PAIRS, FAST, max_workers=1
        )
        assert lint_trace(header, spans) == []
        cats = spans_by_cat(spans)
        assert len(cats["cell"]) == len(result.computed) == 3
        assert len(cats["campaign"]) == 1

    def test_pooled_out_of_order_completion_reassembles(self, tmp_path):
        result, (header, spans) = traced_campaign(
            tmp_path, PAIRS, FAST, max_workers=2
        )
        assert lint_trace(header, spans) == []
        cats = spans_by_cat(spans)
        assert len(cats["cell"]) == 3
        # worker spans carry pool pids, parent spans the driver pid
        assert all(s["pid"] != header["pid"] for s in cats["chunk"])
        assert all(s["pid"] == header["pid"] for s in cats["cell"])
        # every chunk hangs under a dispatch span, every dispatch under a cell
        ids = {s["span"]: s for s in spans}
        for chunk in cats["chunk"]:
            dispatch = ids[chunk["parent"]]
            assert dispatch["cat"] == "dispatch"
            assert ids[dispatch["parent"]]["cat"] == "cell"

    def test_steal_reenqueue_keeps_one_tree(self, tmp_path):
        # steal splits LYP into spilled units: several dispatch/chunk spans
        # under one cell span, all still rooted in the single campaign span
        result, (header, spans) = traced_campaign(
            tmp_path, [("LYP", "EC1")], UNLIMITED, max_workers=2, steal_depth=2
        )
        assert lint_trace(header, spans) == []
        cats = spans_by_cat(spans)
        assert len(cats["cell"]) == 1
        assert len(cats["dispatch"]) > 1  # root unit + spilled re-enqueues
        assert len(cats["chunk"]) == len(cats["dispatch"])
        roots, _ = span_tree(spans)
        assert len(roots) == 1 and roots[0]["cat"] == "campaign"

    def test_solver_spans_carry_compile_and_stats(self, tmp_path):
        from repro.verifier.campaign import _WORKER_CACHE

        _WORKER_CACHE.clear()
        _, (header, spans) = traced_campaign(
            tmp_path, [("LYP", "EC1")], FAST, max_workers=1
        )
        cats = spans_by_cat(spans)
        (compile_span,) = cats["compile"]
        assert compile_span["attrs"]["cache_hit"] is False
        assert compile_span["attrs"]["compile_seconds"] > 0
        (solve,) = cats["solve"]
        assert solve["attrs"]["functional"] == "LYP"
        assert solve["attrs"]["steps"] > 0
        assert solve["attrs"]["boxes_processed"] > 0

    def test_store_hits_open_no_cell_spans(self, tmp_path):
        store = tmp_path / "store.sqlite"
        run_campaign(PAIRS, FAST, max_workers=1, store=store)
        result, (header, spans) = traced_campaign(
            tmp_path, PAIRS, FAST, max_workers=1, store=store
        )
        assert len(result.store_hits) == 3
        assert lint_trace(header, spans) == []
        cats = spans_by_cat(spans)
        assert "cell" not in cats  # nothing computed, nothing traced as such
        assert cats["campaign"][0]["attrs"]["store_hits"] == 3


class TestTracingDoesNotPerturb:
    def test_reports_identical_on_vs_off(self, tmp_path):
        from tests.verifier.test_campaign import assert_reports_identical

        plain = run_campaign(PAIRS, FAST, max_workers=2)
        traced, (header, spans) = traced_campaign(
            tmp_path, PAIRS, FAST, max_workers=2
        )
        assert set(plain.reports) == set(traced.reports)
        for key in plain.reports:
            assert_reports_identical(plain.reports[key], traced.reports[key])

    def test_table_one_bytes_identical_on_vs_off(self, tmp_path):
        from repro.conditions import get_condition
        from repro.functionals import get_functional

        functionals = (get_functional("Wigner"), get_functional("VWN RPA"))
        conditions = (get_condition("EC1"), get_condition("EC2"))
        plain = run_table_one(FAST, functionals, conditions, max_workers=1).render()
        sink = TraceSink(tmp_path / "t.jsonl")
        with activate_tracer(Tracer(sink)):
            traced = run_table_one(
                FAST, functionals, conditions, max_workers=1
            ).render()
        sink.close()
        assert traced == plain
        header, spans = load_trace(sink.path)
        computed = [s for s in spans if s["cat"] == "cell"]
        applicable = [
            (f, c) for f in functionals for c in conditions if c.applies_to(f)
        ]
        assert len(computed) == len(applicable)


class TestNumericsCampaignTrace:
    def test_traced_numerics_lints_clean(self, tmp_path):
        sink = TraceSink(tmp_path / "n.jsonl")
        result = run_numerics_campaign(
            ["Wigner", "PZ81"], checks=("hazards",), tracer=Tracer(sink)
        )
        sink.close()
        header, spans = load_trace(sink.path)
        assert lint_trace(header, spans) == []
        cats = spans_by_cat(spans)
        assert len(cats["cell"]) == len(result.cells) == 4
        assert cats["campaign"][0]["attrs"]["kind"] == "numerics"

    def test_cells_identical_on_vs_off(self, tmp_path):
        import json

        plain = run_numerics_campaign(["Wigner"], checks=("hazards",))
        sink = TraceSink(tmp_path / "n.jsonl")
        traced = run_numerics_campaign(
            ["Wigner"], checks=("hazards",), tracer=Tracer(sink)
        )
        sink.close()
        assert set(plain.cells) == set(traced.cells)
        for key in plain.cells:
            assert json.dumps(plain.cells[key], sort_keys=True) == json.dumps(
                traced.cells[key], sort_keys=True
            )


class TestInterruptedTrace:
    def test_partial_trace_parses_and_seals(self, tmp_path):
        sink = TraceSink(tmp_path / "t.jsonl")
        tracer = Tracer(sink)
        seen = []

        def explode(key, report, from_store):
            seen.append(key)
            if len(seen) == 2:
                raise KeyboardInterrupt

        result = run_campaign(
            PAIRS, FAST, max_workers=1, tracer=tracer, on_cell=explode
        )
        sink.close()
        assert result.interrupted
        header, spans = load_trace(sink.path)  # parses despite the interrupt
        cats = spans_by_cat(spans)
        assert len(cats["cell"]) == 2  # the cells that finished
        campaign = cats["campaign"][0]
        assert campaign["attrs"]["interrupted"] is True
        assert campaign["attrs"]["computed"] == 2
        assert lint_trace(header, spans) == []
        # a second trace appends cleanly even if the tail was cut short
        with open(sink.path, "a") as handle:
            handle.write('{"kind": "span", "cut": ')
        followup = TraceSink(sink.path)
        Tracer(followup).finish(Tracer(followup).begin("resume", "cli"))
        followup.close()
        records = load_trace(sink.path)[1]
        assert any(s["name"] == "resume" for s in records)


class TestDisabledTracingIsInert:
    def test_untraced_campaign_writes_nothing(self, tmp_path):
        result = run_campaign([("Wigner", "EC1")], FAST, max_workers=1)
        assert list(tmp_path.iterdir()) == []
        assert result.computed == [("Wigner", "EC1")]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_worker_return_shape_untraced(self, workers):
        # the 2-tuple/3-tuple protocol: untraced campaigns must keep the
        # legacy shape end to end (a regression here breaks every caller)
        result = run_campaign([("Wigner", "EC1")], FAST, max_workers=workers)
        assert ("Wigner", "EC1") in result.reports
