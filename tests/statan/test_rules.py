"""statan tier 2: the REP1xx lint rules and the allowlist machinery.

Every rule family gets a seeded-violation fixture (written to tmp_path
with the directory layout the path-scoped rules expect) plus a clean
counterpart, so both the detection and the non-detection direction are
pinned.  The allowlist tests cover suppression, malformed entries, and
staleness.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.statan.allowlist import load_allowlist
from repro.statan.astcheck import collect_modules
from repro.statan.report import Finding
from repro.statan.rules import run_rules
from repro.statan.runner import all_rule_ids, run_check


def _write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _run(tmp_path, rule):
    modules = collect_modules([tmp_path])
    return run_rules(modules, {rule})


class TestRep101Rounding:
    def test_bare_endpoint_arithmetic_detected(self, tmp_path):
        _write(tmp_path, "solver/kernels.py", """\
            def bad_add_rows(a_los, a_his, out_los):
                for i in range(len(out_los)):
                    out_los[i] = a_los[i] + a_his[i]
        """)
        findings = _run(tmp_path, "REP101")
        assert [f.rule for f in findings] == ["REP101"]
        assert findings[0].symbol == "bad_add_rows"

    def test_rounded_helper_is_clean(self, tmp_path):
        _write(tmp_path, "solver/kernels.py", """\
            def good_add_rows(a_los, a_his, out_los):
                for i in range(len(out_los)):
                    out_los[i] = _down_arr(a_los[i] + a_his[i])
        """)
        assert _run(tmp_path, "REP101") == []

    def test_only_solver_files_in_scope(self, tmp_path):
        _write(tmp_path, "analysis/render.py", """\
            def fine(lo, hi):
                return lo + hi
        """)
        assert _run(tmp_path, "REP101") == []


class TestRep102ContentKeys:
    def test_time_reachable_from_root_detected(self, tmp_path):
        _write(tmp_path, "verifier/store.py", """\
            import time

            def _salt():
                return time.time()

            def content_hash(state):
                return hash((state, _salt()))
        """)
        findings = _run(tmp_path, "REP102")
        assert [f.rule for f in findings] == ["REP102"]
        assert findings[0].symbol == "_salt"

    def test_unsorted_iteration_in_root_detected(self, tmp_path):
        _write(tmp_path, "verifier/store.py", """\
            def content_hash(mapping):
                return hash(tuple(mapping.items()))
        """)
        findings = _run(tmp_path, "REP102")
        assert [f.rule for f in findings] == ["REP102"]
        assert "sorted" in findings[0].message

    def test_sorted_iteration_is_clean(self, tmp_path):
        _write(tmp_path, "verifier/store.py", """\
            def content_hash(mapping):
                return hash(tuple(sorted(mapping.items())))
        """)
        assert _run(tmp_path, "REP102") == []


class TestRep103AsyncioHygiene:
    def test_blocking_call_in_async_def_detected(self, tmp_path):
        _write(tmp_path, "service/server.py", """\
            import time

            async def handler(request):
                time.sleep(1.0)
                return request
        """)
        findings = _run(tmp_path, "REP103")
        assert [f.rule for f in findings] == ["REP103"]
        assert findings[0].symbol == "handler"

    def test_sync_def_out_of_scope(self, tmp_path):
        _write(tmp_path, "service/server.py", """\
            import time

            def worker_main():
                time.sleep(1.0)
        """)
        assert _run(tmp_path, "REP103") == []


class TestRep104ForkSafety:
    def test_pool_construction_detected(self, tmp_path):
        _write(tmp_path, "verifier/par.py", """\
            from concurrent.futures import ProcessPoolExecutor

            def launch(n):
                return ProcessPoolExecutor(max_workers=n)
        """)
        findings = _run(tmp_path, "REP104")
        assert [f.rule for f in findings] == ["REP104"]
        assert findings[0].symbol == "launch"

    def test_multiprocessing_pool_detected(self, tmp_path):
        _write(tmp_path, "verifier/par.py", """\
            import multiprocessing

            def launch(n):
                return multiprocessing.Pool(n)
        """)
        assert [f.rule for f in _run(tmp_path, "REP104")] == ["REP104"]


class TestRep105LoudValidation:
    def test_config_without_post_init_detected(self, tmp_path):
        _write(tmp_path, "verifier/cfg.py", """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SweepConfig:
                depth: int = 3
        """)
        findings = _run(tmp_path, "REP105")
        assert [f.rule for f in findings] == ["REP105"]
        assert findings[0].symbol == "SweepConfig"

    def test_config_with_post_init_is_clean(self, tmp_path):
        _write(tmp_path, "verifier/cfg.py", """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SweepConfig:
                depth: int = 3

                def __post_init__(self):
                    if self.depth < 1:
                        raise ValueError("depth must be >= 1")
        """)
        assert _run(tmp_path, "REP105") == []

    def test_private_and_non_config_classes_out_of_scope(self, tmp_path):
        _write(tmp_path, "verifier/cfg.py", """\
            from dataclasses import dataclass

            @dataclass
            class _HiddenConfig:
                depth: int = 3

            @dataclass
            class Result:
                value: float = 0.0
        """)
        assert _run(tmp_path, "REP105") == []


class TestRep106ClockDiscipline:
    def test_raw_clock_in_traced_module_detected(self, tmp_path):
        _write(tmp_path, "service/handlers.py", """\
            import time

            def stamp():
                return time.perf_counter()
        """)
        findings = _run(tmp_path, "REP106")
        assert [f.rule for f in findings] == ["REP106"]
        assert findings[0].symbol == "stamp"
        assert "obs.clock" in findings[0].message

    def test_one_finding_per_function(self, tmp_path):
        _write(tmp_path, "solver/icp.py", """\
            import time

            def measure():
                t0 = time.monotonic()
                return time.monotonic() - t0
        """)
        assert len(_run(tmp_path, "REP106")) == 1

    def test_clock_module_is_the_sanctioned_home(self, tmp_path):
        _write(tmp_path, "obs/clock.py", """\
            import time

            def mono_now():
                return time.monotonic()
        """)
        assert _run(tmp_path, "REP106") == []

    def test_untraced_modules_out_of_scope(self, tmp_path):
        _write(tmp_path, "analysis/tables.py", """\
            import time

            def stamp():
                return time.time()
        """)
        assert _run(tmp_path, "REP106") == []

    def test_clock_helpers_are_clean(self, tmp_path):
        _write(tmp_path, "verifier/campaign.py", """\
            from ..obs.clock import perf_now

            def measure():
                t0 = perf_now()
                return perf_now() - t0
        """)
        assert _run(tmp_path, "REP106") == []


class TestAllowlist:
    def test_entry_suppresses_matching_finding(self, tmp_path):
        mod = _write(tmp_path, "verifier/cfg.py", """\
            from dataclasses import dataclass

            @dataclass
            class SweepConfig:
                depth: int = 3
        """)
        allow = _write(tmp_path, "allowlist.txt",
                       "REP105 *verifier/cfg.py SweepConfig -- "
                       "validated by its builder, construction is internal\n")
        report = run_check(
            paths=[mod], rules=["REP105"], allowlist_path=allow
        )
        assert report.clean

    def test_non_matching_entry_does_not_suppress(self, tmp_path):
        mod = _write(tmp_path, "verifier/cfg.py", """\
            from dataclasses import dataclass

            @dataclass
            class SweepConfig:
                depth: int = 3
        """)
        allow = _write(tmp_path, "allowlist.txt",
                       "REP105 *other/cfg.py SweepConfig -- wrong file\n")
        report = run_check(
            paths=[mod], rules=["REP105"], allowlist_path=allow
        )
        assert [f.rule for f in report.findings] == ["REP105"]

    @pytest.mark.parametrize("line,fragment", [
        ("REP105 *cfg.py SweepConfig", "justification"),       # no --
        ("REP105 *cfg.py -- too few fields", "malformed"),
        ("REP999 *cfg.py SweepConfig -- no such rule", "unknown rule"),
    ])
    def test_bad_entries_are_rep100(self, tmp_path, line, fragment):
        allow = _write(tmp_path, "allowlist.txt", line + "\n")
        loaded = load_allowlist(allow, known_rules=all_rule_ids())
        assert [f.rule for f in loaded.findings] == ["REP100"]
        assert fragment in loaded.findings[0].message

    def test_unused_entries_reported_stale(self, tmp_path):
        allow = _write(tmp_path, "allowlist.txt",
                       "REP105 *nowhere.py Nothing -- suppresses nothing\n")
        loaded = load_allowlist(allow, known_rules=all_rule_ids())
        assert loaded.findings == []
        assert len(loaded.unused_entries()) == 1
        loaded.suppresses(
            Finding("REP105", "x/nowhere.py:1", "Nothing", "msg")
        )
        assert loaded.unused_entries() == []


class TestRunner:
    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="REP9"):
            run_check(paths=[], rules=["REP999"])

    def test_shipped_tree_lint_tier_is_clean(self):
        # the repo invariant the CI check job gates on (the tape tier has
        # its own corpus test; slicing to REP rules keeps this fast)
        report = run_check(rules=[r for r in all_rule_ids() if r.startswith("REP")])
        assert report.summary().startswith("repro check: clean")
        assert report.files_checked > 50
