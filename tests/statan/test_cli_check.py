"""CLI wiring for ``repro check``: exit codes, diagnostics, --json.

Exit-code contract (the one CI gates on): 0 clean, 1 findings, 2 for
any usage error -- bad --rule id (argparse), missing path, unknown
corpus slice, negative --deep.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main


def _seed_violation(tmp_path):
    path = tmp_path / "cfg.py"
    path.write_text(textwrap.dedent("""\
        from dataclasses import dataclass

        @dataclass
        class BrokenConfig:
            depth: int = 3
    """))
    return path


class TestExitCodes:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["check", "--rule", "REP105", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "repro check: clean" in out

    def test_findings_exit_one_with_one_line_diagnostics(self, tmp_path, capsys):
        _seed_violation(tmp_path)
        assert main(["check", "--rule", "REP105", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        lines = [ln for ln in out.splitlines() if ln.startswith("REP105")]
        assert len(lines) == 1
        assert "BrokenConfig" in lines[0]
        assert "repro check: 1 finding" in out

    def test_bad_rule_id_exits_two(self):
        with pytest.raises(SystemExit) as exc:
            main(["check", "--rule", "REP999"])
        assert exc.value.code == 2

    def test_missing_path_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.py"
        assert main(["check", "--rule", "REP105", str(missing)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_functional_exits_two(self, capsys):
        rc = main(["check", "--rule", "TAPE101", "--functionals", "NOPE"])
        assert rc == 2
        assert "unknown functional" in capsys.readouterr().err

    def test_negative_deep_exits_two(self, capsys):
        assert main(["check", "--deep", "-1"]) == 2
        assert "--deep" in capsys.readouterr().err

    def test_empty_slice_exits_two(self, capsys):
        rc = main(["check", "--rule", "TAPE101", "--functionals", " , "])
        assert rc == 2


class TestOutput:
    def test_json_report_written(self, tmp_path, capsys):
        _seed_violation(tmp_path)
        out_path = tmp_path / "report.json"
        rc = main([
            "check", "--rule", "REP105", "--json", str(out_path),
            str(tmp_path),
        ])
        assert rc == 1
        payload = json.loads(out_path.read_text())
        assert payload["clean"] is False
        assert payload["rules_run"] == ["REP105"]
        assert [f["rule"] for f in payload["findings"]] == ["REP105"]

    def test_json_dash_prints_to_stdout(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        rc = main(["check", "--rule", "REP105", "--json", "-", str(tmp_path)])
        assert rc == 0
        payload = json.loads(
            capsys.readouterr().out.rsplit("repro check:", 1)[0]
        )
        assert payload["clean"] is True

    def test_tape_slice_runs_corpus(self, capsys):
        rc = main([
            "check", "--rule", "TAPE101", "--rule", "TAPE107",
            "--functionals", "pbe", "--conditions", "EC1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 pairs" in out
