"""statan tier 1: the tape-IR verifier.

Two halves.  The corpus half proves the shipped tree clean: every tape
of every applicable (functional, condition) pair passes every TAPE
check -- the invariant the CI ``check`` job gates on.  The mutation-kill
half corrupts well-formed tapes (swap a slot, drop a literal, mangle an
aux, reorder a definition, poison a built runtime) and asserts the
*named* check reports each corruption, so a regression in any single
check goes red by name rather than hiding behind the others.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.expr import builder as b
from repro.solver.interval import Interval
from repro.solver.tape import (
    FUNC_NAMES,
    MultiTape,
    OP_FUNC,
    OP_ITE,
    OP_POW,
    compile_expr,
)
from repro.statan.report import Report
from repro.statan.tapecheck import (
    check_corpus,
    check_multitape,
    check_state,
    check_tape,
    corpus_pairs,
)
from tests.support import hyp_examples

X = b.var("x", nonneg=True)
Y = b.var("y")


def rich_expr():
    """One expression exercising every opcode the checker special-cases:
    ITE, integer and real POW, FUNC, binary and n-ary ADD/MUL."""
    cond = X.le(Y)
    then = b.add(b.pow_(X, 3), b.mul(b.exp(Y), b.const(2.0)), Y)
    orelse = b.pow_(b.add(X, b.const(1.0)), 0.5)
    return b.ite(cond, then, orelse)


def random_expr(rng: random.Random, depth: int = 3):
    """A random total-function residual over x (nonneg) and y."""
    if depth <= 0 or rng.random() < 0.3:
        return rng.choice([X, Y, b.const(rng.uniform(-2.0, 2.0))])
    kind = rng.random()
    if kind < 0.3:
        n = rng.randint(2, 3)
        return b.add(*[random_expr(rng, depth - 1) for _ in range(n)])
    if kind < 0.55:
        return b.mul(random_expr(rng, depth - 1), random_expr(rng, depth - 1))
    if kind < 0.75:
        return b.pow_(random_expr(rng, depth - 1), rng.choice([-1, 2, 3, 0.5]))
    if kind < 0.92:
        name = rng.choice(("exp", "atan", "tanh", "cos"))
        return getattr(b, name)(random_expr(rng, depth - 1))
    cond = random_expr(rng, depth - 2).le(random_expr(rng, depth - 2))
    return b.ite(cond, random_expr(rng, depth - 1), random_expr(rng, depth - 1))


def rules_of(findings):
    return {f.rule for f in findings}


def _with_operand(instr, new_a):
    op, out, a, bb, aux = instr
    a = (new_a,) + tuple(a[1:]) if isinstance(a, tuple) else new_a
    return (op, out, a, bb, aux)


# ---------------------------------------------------------------------------
# corpus: the merged tree must be clean
# ---------------------------------------------------------------------------


class TestCorpusClean:
    def test_full_registry_corpus_clean(self):
        report = Report()
        findings = check_corpus(report=report)
        assert findings == []
        assert report.pairs_checked == len(corpus_pairs())
        assert report.tapes_checked > report.pairs_checked
        # abstract interpretation actually covered partial-function sites
        assert report.nan_sites_safe > 0

    def test_slice_with_derivatives_clean(self):
        report = Report()
        findings = check_corpus(
            functionals=["pbe"], conditions=["EC1"],
            derivatives=True, report=report,
        )
        assert findings == []
        assert report.pairs_checked == 1


# ---------------------------------------------------------------------------
# mutation-kill: structural checks (TAPE101-106) on the persistent state
# ---------------------------------------------------------------------------


class TestStateMutations:
    def setup_method(self):
        self.tape = compile_expr(rich_expr())
        self.state = self.tape.__getstate__()

    def _mutated(self, *, instrs=None, n_slots=None, root=None,
                 var_slots=None, const_slots=None):
        s = self.state
        return (
            s[0] if instrs is None else tuple(instrs),
            s[1] if n_slots is None else n_slots,
            s[2] if root is None else root,
            s[3] if var_slots is None else tuple(var_slots),
            s[4] if const_slots is None else tuple(const_slots),
        )

    def _instr_index(self, op):
        return next(i for i, ins in enumerate(self.state[0]) if ins[0] == op)

    def test_well_formed_state_clean(self):
        assert check_state(self.state, "rich") == []

    def test_oob_operand_is_tape101(self):
        instrs = list(self.state[0])
        instrs[0] = _with_operand(instrs[0], self.state[1] + 7)
        findings = check_state(self._mutated(instrs=instrs), "oob")
        assert "TAPE101" in rules_of(findings)

    def test_oob_root_is_tape101(self):
        findings = check_state(self._mutated(root=self.state[1]), "root")
        assert "TAPE101" in rules_of(findings)

    def test_duplicate_definition_is_tape102(self):
        instrs = list(self.state[0])
        op, out, a, bb, aux = instrs[-1]
        taken = self.state[3][0][1]  # first variable's slot
        instrs[-1] = (op, taken, a, bb, aux)
        findings = check_state(self._mutated(instrs=instrs), "dup")
        assert "TAPE102" in rules_of(findings)

    def test_dropped_literal_is_tape102(self):
        findings = check_state(
            self._mutated(const_slots=self.state[4][1:]), "dropped"
        )
        assert "TAPE102" in rules_of(findings)

    def test_use_before_definition_is_tape103(self):
        instrs = list(self.state[0])
        op, out, a, bb, aux = instrs[0]
        instrs[0] = _with_operand(instrs[0], out)  # self-reference
        findings = check_state(self._mutated(instrs=instrs), "fwdref")
        assert "TAPE103" in rules_of(findings)

    @pytest.mark.parametrize("bad_aux", [
        None,                    # const exponent must carry an aux
        ("i", 99, 99.0),         # disagrees with the literal pool
        ("x", 3, 3.0),           # unknown kind tag
    ])
    def test_mangled_pow_aux_is_tape104(self, bad_aux):
        i = self._instr_index(OP_POW)
        instrs = list(self.state[0])
        op, out, a, bb, _ = instrs[i]
        instrs[i] = (op, out, a, bb, bad_aux)
        findings = check_state(self._mutated(instrs=instrs), "pow")
        assert "TAPE104" in rules_of(findings)

    @pytest.mark.parametrize("mutate", [
        lambda op, out, a, bb, aux: (op, out, a, 99, aux),  # index oob
        lambda op, out, a, bb, aux: (
            op, out, a, (bb + 1) % len(FUNC_NAMES), aux     # index/name split
        ),
        lambda op, out, a, bb, aux: (op, out, a, bb, "nonsense"),
    ])
    def test_mangled_func_aux_is_tape105(self, mutate):
        i = self._instr_index(OP_FUNC)
        instrs = list(self.state[0])
        instrs[i] = mutate(*instrs[i])
        findings = check_state(self._mutated(instrs=instrs), "func")
        assert "TAPE105" in rules_of(findings)

    @pytest.mark.parametrize("mutate", [
        lambda op, out, a, bb, aux: (op, out, a, 9, aux),      # bad cond code
        lambda op, out, a, bb, aux: (op, out, a[:3], bb, aux),  # bad arity
        lambda op, out, a, bb, aux: (op, out, a, bb, "aux"),    # aux not None
    ])
    def test_mangled_ite_is_tape106(self, mutate):
        i = self._instr_index(OP_ITE)
        instrs = list(self.state[0])
        instrs[i] = mutate(*instrs[i])
        findings = check_state(self._mutated(instrs=instrs), "ite")
        assert "TAPE106" in rules_of(findings)

    @given(seed=st.integers(0, 2**32 - 1), data=st.data())
    @settings(max_examples=hyp_examples(60), deadline=None)
    def test_random_tape_mutations_killed(self, seed, data):
        """Every generic corruption of a random well-formed tape is caught
        by the named structural check."""
        rng = random.Random(seed)
        tape = compile_expr(random_expr(rng))
        instrs, n_slots, root, var_slots, const_slots = tape.__getstate__()
        assert check_state(tape.__getstate__(), "pre") == []
        assume(instrs)
        kind = data.draw(st.sampled_from(
            ["oob", "self_ref", "dup", "bad_root", "drop_const"]
        ))
        i = data.draw(st.integers(0, len(instrs) - 1))
        instrs = list(instrs)
        if kind == "oob":
            instrs[i] = _with_operand(instrs[i], n_slots + 1 + i)
            expected = "TAPE101"
        elif kind == "self_ref":
            instrs[i] = _with_operand(instrs[i], instrs[i][1])
            expected = "TAPE103"
        elif kind == "dup":
            leaves = [s for _, s in var_slots] + [s for s, _ in const_slots]
            op, out, a, bb, aux = instrs[i]
            instrs[i] = (op, leaves[0], a, bb, aux)
            expected = "TAPE102"
        elif kind == "bad_root":
            root = n_slots + 2
            expected = "TAPE101"
        else:  # drop_const
            assume(const_slots)
            const_slots = const_slots[1:]
            expected = "TAPE102"
        state = (tuple(instrs), n_slots, root, var_slots, const_slots)
        assert expected in rules_of(check_state(state, f"mut:{kind}"))


# ---------------------------------------------------------------------------
# runtime checks: TAPE107 (fingerprint/runtime), TAPE108 (NaN reach),
# TAPE109 (fusion equivalence)
# ---------------------------------------------------------------------------


class TestRuntimeChecks:
    def test_clean_tape_has_no_runtime_findings(self):
        tape = compile_expr(rich_expr())
        assert check_tape(tape, "rich") == []

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=hyp_examples(25), deadline=None)
    def test_random_clean_tapes(self, seed):
        tape = compile_expr(random_expr(random.Random(seed)))
        assert check_tape(tape, f"rand:{seed}") == []

    def test_poisoned_batch_seed_is_tape107(self):
        tape = compile_expr(rich_expr())
        slot, lo, hi = tape._batch_seed[0]
        tape._batch_seed[0] = (slot, lo + 0.5, hi + 0.5)
        findings = check_tape(tape, "poisoned", rules={"TAPE107"})
        assert rules_of(findings) == {"TAPE107"}

    def test_lost_seed_row_is_tape109(self):
        tape = compile_expr(rich_expr())
        tape._batch_seed.pop()
        findings = check_tape(tape, "lost", rules={"TAPE109"})
        assert rules_of(findings) == {"TAPE109"}
        assert any("loses slot" in f.message for f in findings)

    def test_fused_value_drift_is_tape109(self):
        # forward_arrays seeds from the init templates; drifting a
        # literal there diverges from a fresh unfused rebuild
        tape = compile_expr(rich_expr())
        slot = tape.const_slots[0][0]
        tape._init_los[slot] -= 1.0
        tape._init_his[slot] += 1.0
        findings = check_tape(tape, "drift", rules={"TAPE109"})
        assert rules_of(findings) == {"TAPE109"}
        assert any("disagree" in f.message for f in findings)

    def test_unguarded_partial_site_is_tape108(self):
        tape = compile_expr(b.log(Y))
        box = {"y": Interval(-1.0, 1.0)}
        findings = check_tape(
            tape, "log", box=box, guards={"log": False}, rules={"TAPE108"}
        )
        assert rules_of(findings) == {"TAPE108"}

    def test_guarded_partial_site_is_counted_not_flagged(self):
        report = Report()
        tape = compile_expr(b.log(Y))
        box = {"y": Interval(-1.0, 1.0)}
        findings = check_tape(
            tape, "log", box=box, rules={"TAPE108"}, report=report
        )
        assert findings == []
        assert report.nan_sites_guarded == 1

    def test_deep_refinement_proves_safety(self):
        # log(y*cos(y) + 0.9): the single-box pass multiplies dependent
        # enclosures ([-1,1] * [cos 1, 1] = [-1,1]) and cannot rule the
        # log input positive; quartering the axis (deep=2) tightens the
        # product enough that every subbox is provably safe
        tape = compile_expr(b.log(b.add(b.mul(Y, b.cos(Y)), b.const(0.9))))
        box = {"y": Interval(-1.0, 1.0)}
        flat = check_tape(
            tape, "lc", box=box, guards={"log": False}, rules={"TAPE108"}
        )
        assert rules_of(flat) == {"TAPE108"}
        report = Report()
        deep = check_tape(
            tape, "lc", box=box, deep=2, guards={"log": False},
            rules={"TAPE108"}, report=report,
        )
        assert deep == []
        assert report.nan_sites_safe == 1


# ---------------------------------------------------------------------------
# TAPE110: MultiTape interning / dead-slot elimination equivalence
# ---------------------------------------------------------------------------


class TestMultiTape:
    def _tapes(self):
        shared = b.mul(X, Y)
        return [
            compile_expr(b.add(shared, b.const(1.0))),
            compile_expr(b.mul(shared, b.const(2.0))),
            compile_expr(b.exp(X)),
        ]

    def test_clean_merge(self):
        assert check_multitape(self._tapes(), "clean") == []

    def test_dropped_root_is_tape110(self):
        tapes = self._tapes()
        mt = MultiTape.from_tapes(tapes)
        mt.roots = mt.roots[:-1]
        findings = check_multitape(tapes, "dropped", mt=mt)
        assert rules_of(findings) == {"TAPE110"}

    def test_swapped_roots_is_tape110(self):
        tapes = self._tapes()
        mt = MultiTape.from_tapes(tapes)
        roots = list(mt.roots)
        roots[0], roots[1] = roots[1], roots[0]
        mt.roots = type(mt.roots)(roots)
        findings = check_multitape(tapes, "swapped", mt=mt)
        assert rules_of(findings) == {"TAPE110"}
        assert any("disagrees" in f.message for f in findings)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=hyp_examples(20), deadline=None)
    def test_random_merges_clean(self, seed):
        rng = random.Random(seed)
        tapes = [
            compile_expr(random_expr(rng)) for _ in range(rng.randint(1, 4))
        ]
        assert check_multitape(tapes, f"rand:{seed}") == []
