"""Planted-defect tests: the numerics detectors against known ground truth.

Property-style validation of the Section VI-C analyses: synthesise model
code with a *planted* defect of known location and magnitude -- a value
jump, a slope kink, a domain hazard -- and assert the detector recovers
it quantitatively.  This is the measurement-calibration counterpart of
the PZ81/SCAN case studies.
"""


import pytest
from hypothesis import given, settings, strategies as st

from repro.expr import builder as b
from repro.expr.nodes import Var
from repro.numerics import check_continuity, check_hazards
from repro.pysym import lift
from repro.pysym.intrinsics import log
from repro.solver.box import Box

from tests.support import hyp_examples

X = Var("x", nonneg=True)
Y = Var("y", nonneg=True)


def _box(**bounds):
    return Box.from_bounds(bounds)


def _jump_model(x, cut, jump):
    if x < cut:
        return x
    return x + jump


def _kink_model(x, cut, kink):
    if x < cut:
        return x
    return (1.0 + kink) * x - kink * cut


def _log_helper(x):
    return log(x - 2.0)  # operand >= 1 on the live branch


def _guarded_model(x):
    if x > 3.0:
        return _log_helper(x)
    return x


class TestPlantedJumps:
    @settings(max_examples=hyp_examples(40), deadline=None)
    @given(
        jump=st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
        cut=st.floats(min_value=0.5, max_value=3.5, allow_nan=False),
    )
    def test_jump_magnitude_recovered(self, jump, cut):
        # model: x            for x < cut
        #        x + jump     otherwise  -> discontinuity of exactly `jump`
        # (planted constants enter as lifted arguments: the symbolic
        # executor resolves globals, not closures)
        expr = lift(_jump_model, X, cut, jump)
        report = check_continuity(expr, _box(x=(0.0, 4.0)), n_base_points=4)
        assert report.findings, (jump, cut)
        assert report.max_value_jump() == pytest.approx(jump, rel=1e-6)
        worst = report.worst()
        assert worst.point["x"] == pytest.approx(cut, abs=1e-7)

    @settings(max_examples=hyp_examples(40), deadline=None)
    @given(
        kink=st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
        cut=st.floats(min_value=0.5, max_value=3.5, allow_nan=False),
    )
    def test_slope_kink_recovered(self, kink, cut):
        # continuous but kinked: slopes 1 vs 1 + kink, glued at the cut
        expr = lift(_kink_model, X, cut, kink)
        report = check_continuity(expr, _box(x=(0.0, 4.0)), n_base_points=4)
        assert report.max_value_jump() == pytest.approx(0.0, abs=1e-9)
        assert report.max_slope_jump() == pytest.approx(kink, rel=1e-6)

    def test_two_planted_boundaries_both_found(self):
        def model(x):
            if x < 1.0:
                return x
            if x < 3.0:
                return x + 0.5
            return x + 0.75

        expr = lift(model, X)
        report = check_continuity(expr, _box(x=(0.0, 4.0)), n_base_points=8)
        assert len(report.boundaries) == 2
        cuts = sorted({round(f.point["x"], 6) for f in report.findings})
        assert cuts == [1.0, 3.0]
        assert report.max_value_jump() == pytest.approx(0.5)

    def test_jump_in_second_variable(self):
        def model(x, y):
            if y < 2.0:
                return x * y
            return x * y + 0.125

        expr = lift(model, X, Y)
        report = check_continuity(
            expr, _box(x=(0.0, 4.0), y=(0.0, 4.0)), n_base_points=8
        )
        assert report.max_value_jump() == pytest.approx(0.125, rel=1e-9)
        assert all(f.bisected_var == "y" for f in report.findings)


class TestPlantedHazards:
    @settings(max_examples=hyp_examples(30), deadline=None)
    @given(edge=st.floats(min_value=0.5, max_value=3.5, allow_nan=False))
    def test_log_edge_witnessed(self, edge):
        # log(x - edge): out of domain for x <= edge, inside the box
        expr = b.log(b.sub(X, edge))
        report = check_hazards(expr, _box(x=(0.0, 4.0)))
        (verdict,) = report.verdicts
        assert verdict.status == "hazard"
        assert verdict.witness["x"] <= edge + 1e-6

    @settings(max_examples=hyp_examples(30), deadline=None)
    @given(margin=st.floats(min_value=0.01, max_value=5.0, allow_nan=False))
    def test_safe_margin_proven(self, margin):
        # log(x + margin) is safe on x >= 0 for any positive margin
        expr = b.log(b.add(X, margin))
        report = check_hazards(expr, _box(x=(0.0, 4.0)))
        assert report.is_total

    def test_hazard_only_in_dead_branch(self):
        # the hazard sits in a branch whose guard excludes it by margin:
        # branch-aware analysis proves safety, IEEE analysis witnesses it
        expr = lift(_guarded_model, X)
        aware = check_hazards(expr, _box(x=(0.0, 4.0)), branch_aware=True)
        log_sites = [v for v in aware.verdicts if v.hazard.kind == "log-domain"]
        assert log_sites[0].status == "safe"
        ieee = check_hazards(expr, _box(x=(0.0, 4.0)), branch_aware=False)
        log_sites = [v for v in ieee.verdicts if v.hazard.kind == "log-domain"]
        assert log_sites[0].status in ("hazard", "benign")
