"""Tests for the condition-number sensitivity analysis."""


import pytest

from repro.expr import builder as b
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Var
from repro.functionals import get_functional
from repro.numerics import condition_number, sensitivity_map

X = Var("x", nonneg=True)


class TestConditionNumber:
    def test_power_law_has_constant_kappa(self):
        # f = x^n  ->  kappa = n everywhere
        for n in (1.0, 2.0, 3.5):
            kappa = condition_number(b.pow_(X, n), X)
            for x in (0.5, 1.0, 4.0):
                assert evaluate(kappa, {"x": x}) == pytest.approx(n)

    def test_exponential_kappa_grows_linearly(self):
        # f = exp(x) -> kappa = x
        kappa = condition_number(b.exp(X), X)
        for x in (0.1, 1.0, 10.0):
            assert evaluate(kappa, {"x": x}) == pytest.approx(x)

    def test_constant_function_insensitive(self):
        kappa = condition_number(b.add(b.as_expr(3.0), b.mul(0.0, X)), X)
        assert evaluate(kappa, {"x": 2.0}) == pytest.approx(0.0)

    def test_kappa_diverges_at_zeros(self):
        # f = x - 1 has a zero at 1: kappa -> infinity nearby
        kappa = condition_number(b.sub(X, 1.0), X)
        assert evaluate(kappa, {"x": 1.0 + 1e-9}) > 1e6

    def test_matches_finite_difference(self):
        # kappa for LYP's F_c against a numeric estimate
        lyp = get_functional("LYP")
        fc = lyp.fc()
        rs_var = next(v for v in fc.free_vars() if v.name == "rs")
        kappa = condition_number(fc, rs_var)
        point = {"rs": 2.0, "s": 0.5}
        h = 1e-6
        up = evaluate(fc, {"rs": 2.0 + h, "s": 0.5})
        dn = evaluate(fc, {"rs": 2.0 - h, "s": 0.5})
        mid = evaluate(fc, point)
        fd = abs(2.0 * (up - dn) / (2.0 * h) / mid)
        assert evaluate(kappa, point) == pytest.approx(fd, rel=1e-5)


class TestSensitivityMap:
    def test_map_shapes(self):
        pbe = get_functional("PBE")
        m = sensitivity_map(pbe, "fc", per_dim=17)
        assert set(m.kappa) == {"rs", "s"}
        assert m.kappa["rs"].shape == (17, 17)
        assert set(m.axes) == {"rs", "s"}

    def test_mgga_has_three_axes(self):
        scan = get_functional("SCAN")
        m = sensitivity_map(scan, "fc", per_dim=9)
        assert set(m.kappa) == {"rs", "s", "alpha"}
        assert m.kappa["alpha"].shape == (9, 9, 9)

    def test_lda_has_one_axis(self):
        vwn = get_functional("VWN RPA")
        m = sensitivity_map(vwn, "fc", per_dim=33)
        assert set(m.kappa) == {"rs"}

    def test_max_and_argmax_consistent(self):
        pbe = get_functional("PBE")
        m = sensitivity_map(pbe, "fc", per_dim=17)
        peak = m.argmax("s")
        assert set(peak) == {"rs", "s"}
        # evaluating kappa at the argmax must reproduce the max
        fc = pbe.fc()
        s_var = next(v for v in fc.free_vars() if v.name == "s")
        kappa = condition_number(fc, s_var)
        assert evaluate(kappa, peak) == pytest.approx(m.max_kappa("s"), rel=1e-9)

    def test_lyp_sign_change_dominates(self):
        # LYP's F_c crosses zero inside the box: kappa blows up near the
        # nodal line, so LYP's max kappa dwarfs PBE's
        lyp_m = sensitivity_map(get_functional("LYP"), "fc", per_dim=33)
        pbe_m = sensitivity_map(get_functional("PBE"), "fc", per_dim=33)
        assert lyp_m.max_kappa("s") > 10.0 * pbe_m.max_kappa("s")

    def test_summary_mentions_each_axis(self):
        pbe = get_functional("PBE")
        text = sensitivity_map(pbe, "fc", per_dim=9).summary()
        assert "kappa_rs" in text and "kappa_s" in text

    def test_quantile_bounds(self):
        pbe = get_functional("PBE")
        m = sensitivity_map(pbe, "fc", per_dim=17)
        assert m.quantile("rs", 0.5) <= m.max_kappa("rs")

    def test_exchange_component(self):
        pbe = get_functional("PBE")
        m = sensitivity_map(pbe, "fx", per_dim=17)
        # F_x(s) is independent of rs: kappa_rs identically ~0
        assert m.max_kappa("rs") == pytest.approx(0.0, abs=1e-12)
        assert m.max_kappa("s") > 0.1
