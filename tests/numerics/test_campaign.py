"""Differential corpus for the Section VI-C numerics campaign.

Pins the tentpole guarantees:

* campaign cells are **bit-identical** to the sequential per-pair path
  (direct ``check_*`` calls through the payload builders), regardless of
  worker count or completion order;
* the content-hash store turns re-runs into hits and never rewrites
  stored cells;
* KeyboardInterrupt yields a partial result whose completed cells are
  already durable;
* verify-cells and analysis-cells coexist in one store.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import table_three_from_cells, table_three_to_json
from repro.functionals import get_functional
from repro.numerics import (
    NumericsConfig,
    check_continuity,
    check_hazards,
    run_numerics_campaign,
    run_numerics_cell,
    sensitivity_map,
)
from repro.numerics.campaign import (
    CHECKS,
    cell_content_key,
    component_applies,
    continuity_payload,
    hazards_payload,
    numerics_cells,
    sensitivity_payload,
)
from repro.solver.icp import Budget

SLICE = ("LYP", "Wigner", "PZ81")


def dumps(payload) -> str:
    return json.dumps(payload, sort_keys=True)


class TestCellEnumeration:
    def test_hazards_expand_to_both_semantics(self):
        cells = numerics_cells([get_functional("Wigner")], checks=("hazards",))
        assert cells == [
            ("Wigner", "fc", "hazards", "branch"),
            ("Wigner", "fc", "hazards", "ieee"),
        ]

    def test_inapplicable_components_skipped(self):
        lyp = get_functional("LYP")  # correlation-only
        assert not component_applies(lyp, "fx")
        cells = numerics_cells([lyp], components=("fc", "fx", "fxc"),
                               checks=("continuity",))
        assert cells == [("LYP", "fc", "continuity", "-")]

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError):
            numerics_cells([get_functional("Wigner")], checks=("nope",))

    def test_canonical_check_order_regardless_of_caller_order(self):
        cells = numerics_cells(
            [get_functional("Wigner")], checks=("sensitivity", "continuity")
        )
        assert [c[2] for c in cells] == ["continuity", "sensitivity"]


class TestFunctionalResolution:
    def test_non_registry_functional_rejected(self):
        """Workers re-resolve by registry name; an unregistered (or
        same-named different) object would crash there or poison the
        store with the registry version's results under its key."""
        from dataclasses import replace as dc_replace

        wigner = get_functional("Wigner")
        impostor = dc_replace(wigner, name="NotRegistered")
        with pytest.raises(ValueError, match="not the registered instance"):
            run_numerics_campaign([impostor], checks=("continuity",))

    def test_registry_objects_and_names_equivalent(self):
        by_name = run_numerics_campaign(["Wigner"], checks=("continuity",))
        by_obj = run_numerics_campaign(
            [get_functional("Wigner")], checks=("continuity",)
        )
        key = ("Wigner", "fc", "continuity", "-")
        assert dumps(by_name[key]) == dumps(by_obj[key])


class TestContentKeys:
    def test_key_stable_across_calls(self):
        f = get_functional("Wigner")
        config = NumericsConfig()
        a = cell_content_key(f, "fc", "hazards", "ieee", config)
        b = cell_content_key(f, "fc", "hazards", "ieee", config)
        assert a == b

    def test_key_scoped_per_check_parameters(self):
        f = get_functional("Wigner")
        base = NumericsConfig()
        reseeded = NumericsConfig(seed=7)
        # continuity cells miss on a seed change...
        assert cell_content_key(f, "fc", "continuity", "-", base) != \
            cell_content_key(f, "fc", "continuity", "-", reseeded)
        # ...hazard cells keep hitting (the seed is not theirs)
        assert cell_content_key(f, "fc", "hazards", "branch", base) == \
            cell_content_key(f, "fc", "hazards", "branch", reseeded)

    def test_perf_knobs_excluded(self):
        f = get_functional("Wigner")
        assert cell_content_key(
            f, "fc", "hazards", "branch", NumericsConfig(solver_backend="walk")
        ) == cell_content_key(
            f, "fc", "hazards", "branch", NumericsConfig(batch_size=7)
        )

    def test_key_differs_per_cell_address(self):
        f = get_functional("PZ81")
        config = NumericsConfig()
        keys = {
            cell_content_key(f, "fc", check, sem, config)
            for _, _, check, sem in numerics_cells([f])
        }
        assert len(keys) == 4  # continuity, hazards x2, sensitivity


class TestDifferentialSequential:
    """Campaign output == the sequential per-pair path, bit for bit."""

    def test_cells_match_direct_check_calls(self):
        config = NumericsConfig()
        result = run_numerics_campaign(SLICE, checks=CHECKS, config=config)
        assert not result.interrupted
        for functional_name in SLICE:
            f = get_functional(functional_name)
            expr = f.fc()
            domain = f.domain()
            expected = {
                "continuity": continuity_payload(
                    check_continuity(
                        expr, domain,
                        n_base_points=config.n_base_points,
                        bisection_steps=config.bisection_steps,
                        seed=config.seed,
                    )
                ),
                ("hazards", "branch"): hazards_payload(
                    check_hazards(
                        expr, domain, branch_aware=True, delta=config.delta,
                        budget=Budget(max_steps=config.hazard_budget),
                        solver=config.make_hazard_solver(),
                    )
                ),
                ("hazards", "ieee"): hazards_payload(
                    check_hazards(
                        expr, domain, branch_aware=False, delta=config.delta,
                        budget=Budget(max_steps=config.hazard_budget),
                        solver=config.make_hazard_solver(),
                    )
                ),
                "sensitivity": sensitivity_payload(
                    sensitivity_map(
                        f, "fc",
                        per_dim=config.per_dim_mgga
                        if f.family == "MGGA" else config.per_dim,
                    )
                ),
            }
            for payload in expected.values():
                payload["functional"] = functional_name
                payload["component"] = "fc"
            expected[("hazards", "branch")]["semantics"] = "branch"
            expected[("hazards", "ieee")]["semantics"] = "ieee"
            expected["continuity"]["semantics"] = "-"
            expected["sensitivity"]["semantics"] = "-"

            key = (functional_name, "fc", "continuity", "-")
            assert dumps(result[key]) == dumps(expected["continuity"])
            key = (functional_name, "fc", "hazards", "branch")
            assert dumps(result[key]) == dumps(expected[("hazards", "branch")])
            key = (functional_name, "fc", "hazards", "ieee")
            assert dumps(result[key]) == dumps(expected[("hazards", "ieee")])
            key = (functional_name, "fc", "sensitivity", "-")
            assert dumps(result[key]) == dumps(expected["sensitivity"])

    def test_worker_pool_bit_identical_to_in_process(self):
        seq = run_numerics_campaign(SLICE, checks=("hazards", "continuity"))
        par = run_numerics_campaign(
            SLICE, checks=("hazards", "continuity"), max_workers=2
        )
        assert set(seq.cells) == set(par.cells)
        for key in seq.cells:
            assert dumps(seq.cells[key]) == dumps(par.cells[key]), key
        # ...and so is the aggregated table, completion order and all
        assert table_three_to_json(table_three_from_cells(seq.cells)) == \
            table_three_to_json(table_three_from_cells(par.cells))

    def test_run_numerics_cell_is_the_worker_path(self):
        f = get_functional("Wigner")
        config = NumericsConfig()
        result = run_numerics_campaign(["Wigner"], checks=("hazards",),
                                       config=config)
        direct = run_numerics_cell(f, "fc", "hazards", "ieee", config)
        assert dumps(result[("Wigner", "fc", "hazards", "ieee")]) == dumps(direct)


class TestSharedPool:
    def test_one_executor_serves_both_campaign_kinds(self):
        """A verification campaign and a numerics campaign share one pool."""
        from concurrent.futures import ProcessPoolExecutor

        from repro.verifier.campaign import run_campaign

        with ProcessPoolExecutor(max_workers=2) as pool:
            verify = run_campaign([("Wigner", "EC1")], executor=pool)
            numerics = run_numerics_campaign(
                ["Wigner"], checks=("hazards",), executor=pool
            )
        assert len(verify.reports) == 1
        assert len(numerics.cells) == 2
        seq = run_numerics_campaign(["Wigner"], checks=("hazards",))
        for key in seq.cells:
            assert dumps(seq.cells[key]) == dumps(numerics.cells[key])


class TestStoreAndResume:
    def test_resume_serves_hits_bit_identically(self, tmp_path):
        store = tmp_path / "numerics.jsonl"
        first = run_numerics_campaign(
            SLICE, checks=("hazards",), store=store, resume=True
        )
        assert len(first.computed) == 6 and not first.store_hits
        before = store.read_bytes()
        second = run_numerics_campaign(
            SLICE, checks=("hazards",), store=store, resume=True
        )
        assert len(second.store_hits) == 6 and not second.computed
        # stored cells are hits, not rewrites: the file did not grow
        assert store.read_bytes() == before
        for key in first.cells:
            assert dumps(first.cells[key]) == dumps(second.cells[key])

    def test_sqlite_backend_round_trips(self, tmp_path):
        store = tmp_path / "numerics.sqlite"
        first = run_numerics_campaign(["Wigner"], checks=("continuity",),
                                      store=store, resume=True)
        second = run_numerics_campaign(["Wigner"], checks=("continuity",),
                                       store=store, resume=True)
        assert second.store_hits and not second.computed
        key = ("Wigner", "fc", "continuity", "-")
        assert dumps(first.cells[key]) == dumps(second.cells[key])

    def test_changed_parameters_miss_cleanly(self, tmp_path):
        store = tmp_path / "numerics.jsonl"
        run_numerics_campaign(["Wigner"], checks=("continuity",), store=store)
        rerun = run_numerics_campaign(
            ["Wigner"], checks=("continuity",), store=store, resume=True,
            config=NumericsConfig(seed=3),
        )
        assert rerun.computed and not rerun.store_hits

    def test_mixed_store_with_verifier_cells(self, tmp_path):
        """Verify-cells and analysis-cells coexist; neither misreads the other."""
        from repro.verifier.campaign import run_campaign
        from repro.verifier.store import iter_reports, open_store

        store_path = tmp_path / "mixed.jsonl"
        verify = run_campaign(
            [("Wigner", "EC1")], store=store_path, resume=True
        )
        numerics = run_numerics_campaign(
            ["Wigner"], checks=("hazards",), store=store_path, resume=True
        )
        assert len(verify.reports) == 1 and len(numerics.cells) == 2
        with open_store(store_path) as store:
            assert len(store.keys()) == 3
            # iter_reports yields only the verification report
            reports = list(iter_reports(store))
            assert len(reports) == 1
            assert reports[0][1].functional_name == "Wigner"
            # the numerics payloads read back through the generic API
            for key in numerics.cell_keys.values():
                payload = store.get_payload(key)
                assert payload["kind"] == "numerics/hazards"
                assert store.get(key) is None  # not misread as a report


class TestInterrupt:
    def test_keyboard_interrupt_yields_durable_partial(self, tmp_path):
        store = tmp_path / "numerics.jsonl"
        seen = []

        def explode(key, payload, from_store):
            seen.append(key)
            if len(seen) == 2:
                raise KeyboardInterrupt

        result = run_numerics_campaign(
            SLICE, checks=("hazards",), store=store, on_cell=explode
        )
        assert result.interrupted
        assert len(result.cells) == 2
        # completed cells were persisted before the interrupt...
        resumed = run_numerics_campaign(
            SLICE, checks=("hazards",), store=store, resume=True
        )
        assert not resumed.interrupted
        assert len(resumed.store_hits) == 2
        assert len(resumed.cells) == 6
        # ...and the resumed total matches an uninterrupted run, bit for bit
        fresh = run_numerics_campaign(SLICE, checks=("hazards",))
        for key in fresh.cells:
            assert dumps(fresh.cells[key]) == dumps(resumed.cells[key])


class TestTableThree:
    def test_render_and_dict_shape(self):
        result = run_numerics_campaign(["PZ81"], checks=CHECKS)
        table = table_three_from_cells(result.cells)
        rows = table.as_dict()
        assert set(rows) == {"PZ81/fc"}
        row = rows["PZ81/fc"]
        assert set(row) == {"hazards", "continuity", "sensitivity"}
        assert row["hazards"]["branch"]["counts"]
        assert row["hazards"]["ieee"]["sites"] == row["hazards"]["branch"]["sites"]
        text = table.render()
        assert "PZ81/fc" in text and "Table III" in text

    def test_json_deterministic_under_cell_order(self):
        result = run_numerics_campaign(["LYP", "Wigner"], checks=("hazards",))
        shuffled = dict(reversed(list(result.cells.items())))
        assert table_three_to_json(table_three_from_cells(result.cells)) == \
            table_three_to_json(table_three_from_cells(shuffled))

    def test_scan_alpha_channel_appears_in_ieee_mode(self):
        """The paper's Section VI-C SCAN case: the alpha = 1 exponential
        tail triggers under kernel (np.where) semantics."""
        result = run_numerics_campaign(["SCAN"], checks=("hazards",))
        ieee = result[("SCAN", "fc", "hazards", "ieee")]
        triggered = [
            v for v in ieee["verdicts"] if v["status"] in ("hazard", "benign")
        ]
        assert triggered, "SCAN's alpha=1 channel should trigger under ieee"
