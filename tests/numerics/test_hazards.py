"""Tests for the domain-safety (hazard) analysis."""


import pytest

from repro.expr import builder as b
from repro.expr.nodes import Var
from repro.functionals import get_functional
from repro.numerics import check_hazards, collect_hazards
from repro.numerics.hazards import Hazard
from repro.pysym import lift
from repro.pysym.intrinsics import log
from repro.solver.box import Box

X = Var("x", nonneg=True)
Y = Var("y", nonneg=True)


def _box(**bounds):
    return Box.from_bounds(bounds)


class TestCollectHazards:
    def test_log_site(self):
        expr = b.log(b.sub(X, 1.0))
        sites = collect_hazards(expr)
        assert [h.kind for h in sites] == ["log-domain"]
        assert sites[0].requirement() == "operand > 0"

    def test_sqrt_site(self):
        # the builder canonicalises sqrt to pow(., 0.5); either kind
        # carries the same operand >= 0 requirement
        expr = b.sqrt(b.sub(X, 2.0))
        kinds = [h.kind for h in collect_hazards(expr)]
        assert kinds in (["sqrt-domain"], ["fractional-pow-domain"])

    def test_division_site(self):
        expr = b.div(1.0, b.sub(X, 1.0))
        kinds = [h.kind for h in collect_hazards(expr)]
        assert "division-by-zero" in kinds

    def test_fractional_pow_site(self):
        expr = b.pow_(b.sub(X, 1.0), 0.5)
        kinds = [h.kind for h in collect_hazards(expr)]
        assert "fractional-pow-domain" in kinds

    def test_negative_fractional_pow_gets_both(self):
        expr = b.pow_(b.sub(X, 1.0), -0.25)
        kinds = sorted(h.kind for h in collect_hazards(expr))
        assert kinds == ["division-by-zero", "fractional-pow-domain"]

    def test_polynomial_has_no_sites(self):
        expr = b.add(b.mul(X, X), b.mul(2.0, X), 1.0)
        assert collect_hazards(expr) == []

    def test_guards_recorded_branch_aware(self):
        def model(x):
            if x < 1.0:
                return log(x)
            return x

        expr = lift(model, X)
        (site,) = collect_hazards(expr, branch_aware=True)
        assert site.kind == "log-domain"
        assert len(site.guards) == 1
        assert site.guards[0].op == "<"

    def test_guards_ignored_in_ieee_mode(self):
        def model(x):
            if x < 1.0:
                return log(x)
            return x

        expr = lift(model, X)
        (site,) = collect_hazards(expr, branch_aware=False)
        assert site.guards == ()

    def test_shared_node_guard_intersection(self):
        # log(x) used in BOTH branches: no guard applies
        def model(x):
            if x < 1.0:
                return log(x) + 1.0
            return log(x) - 1.0

        expr = lift(model, X)
        (site,) = collect_hazards(expr, branch_aware=True)
        assert site.guards == ()


class TestVerdicts:
    def test_safe_log(self):
        expr = b.log(b.add(X, 1.0))  # x + 1 >= 1 on x >= 0
        report = check_hazards(expr, _box(x=(0.0, 5.0)))
        assert report.is_total
        assert report.counts() == {"safe": 1}

    def test_triggered_log(self):
        expr = b.log(b.sub(X, 1.0))  # fails for x <= 1
        report = check_hazards(expr, _box(x=(0.0, 5.0)))
        (verdict,) = report.verdicts
        assert verdict.status == "hazard"
        assert verdict.witness is not None
        assert verdict.witness["x"] <= 1.0 + 1e-6

    def test_triggered_sqrt(self):
        expr = b.sqrt(b.sub(X, 2.0))
        report = check_hazards(expr, _box(x=(0.0, 5.0)))
        (verdict,) = report.verdicts
        assert verdict.status == "hazard"

    def test_division_by_zero_found(self):
        expr = b.div(1.0, b.sub(X, 1.0))
        report = check_hazards(expr, _box(x=(0.0, 2.0)))
        statuses = {v.status for v in report.verdicts}
        # 1/(x-1) -> inf at x = 1: the site triggers (hazard, since the
        # full expression is the division itself and stays non-finite)
        assert statuses & {"hazard", "benign"}

    def test_division_benign_when_absorbed(self):
        expr = b.exp(b.neg(b.div(1.0, b.mul(X, X))))  # exp(-1/x^2) -> 0
        report = check_hazards(expr, _box(x=(0.0, 1.0)))
        division = [
            v for v in report.verdicts if v.hazard.kind == "division-by-zero"
        ]
        assert division and division[0].status == "benign"

    def test_guarded_log_is_safe_branch_aware(self):
        def model(x):
            if x > 1.0:
                return log(x - 1.0)
            return 0.0

        expr = lift(model, X)
        # branch-aware: operand x-1 <= 0 contradicts guard x > 1 only up
        # to delta; the boundary itself is delta-close, so allow either
        # safe or inconclusive -- but under IEEE semantics it must trigger
        ieee = check_hazards(expr, _box(x=(0.0, 5.0)), branch_aware=False)
        (site,) = [v for v in ieee.verdicts if v.hazard.kind == "log-domain"]
        assert site.status in ("hazard", "benign")
        aware = check_hazards(expr, _box(x=(0.0, 5.0)), branch_aware=True)
        (site_aware,) = [
            v for v in aware.verdicts if v.hazard.kind == "log-domain"
        ]
        assert site_aware.status in ("safe", "inconclusive")

    def test_guarded_log_safe_when_margin(self):
        def model(x):
            if x > 2.0:
                return log(x - 1.0)  # operand >= 1 on the branch
            return 0.0

        expr = lift(model, X)
        report = check_hazards(expr, _box(x=(0.0, 5.0)), branch_aware=True)
        log_site = [v for v in report.verdicts if v.hazard.kind == "log-domain"]
        assert log_site[0].status == "safe"

    def test_guards_hold_with_overflowed_operands(self):
        # both guard operands saturate to +inf at the witness: the old
        # gap-based check evaluated lhs - rhs = NaN and rejected the
        # genuinely reachable point; direct comparison (inf <= inf) holds
        big = b.mul(1e200, X)
        bigger = b.mul(2e200, X)
        hazard = Hazard("log-domain", X, guards=(big.le(bigger),))
        assert hazard.guards_hold_at({"x": 1e200})
        # strict ordering of equal infinities does not hold
        strict = Hazard("log-domain", X, guards=(big.lt(bigger),))
        assert not strict.guards_hold_at({"x": 1e200})

    def test_constant_overflow_operand_follows_semantics(self):
        # log(1 + exp(800)): the operand is var-free and overflows the
        # scalar evaluator (NaN -> out-of-domain -> hazard under
        # branch-aware semantics), while the kernel evaluates it to
        # inf > 0 -- in-domain, so the ieee analysis proves it safe
        expr = b.add(b.log(b.add(1.0, b.exp(b.const(800.0)))), X)
        domain = _box(x=(0.0, 1.0))
        ieee = check_hazards(expr, domain, branch_aware=False)
        log_ieee = [v for v in ieee.verdicts if v.hazard.kind == "log-domain"]
        assert [v.status for v in log_ieee] == ["safe"]
        aware = check_hazards(expr, domain, branch_aware=True)
        log_aware = [v for v in aware.verdicts if v.hazard.kind == "log-domain"]
        assert [v.status for v in log_aware] == ["hazard"]

    def test_constant_operand_decided_without_solver(self):
        b.log(b.as_expr(-1.0) + 0.0 * X)  # constant -1 operand folds away
        # builder folds constants; craft explicitly:
        from repro.expr.nodes import Const

        sites = [Hazard("log-domain", Const(-1.0))]
        assert sites[0].violated_exactly_at({}, zero_tol=0.0)

    def test_unbound_variable_raises(self):
        expr = b.log(Y)
        with pytest.raises(ValueError, match="does not bind"):
            check_hazards(expr, _box(x=(0.0, 1.0)))

    def test_report_summary_format(self):
        expr = b.log(b.add(X, 1.0))
        report = check_hazards(expr, _box(x=(0.0, 5.0)))
        assert "1 hazard sites" in report.summary()
        assert "branch-aware" in report.summary()
        ieee = check_hazards(expr, _box(x=(0.0, 5.0)), branch_aware=False)
        assert "np.where" in ieee.summary()


class TestFunctionalHazards:
    """The Section VI-C narrative, on the real DFAs."""

    def test_pbe_is_total(self):
        pbe = get_functional("PBE")
        report = check_hazards(pbe.fc(), pbe.domain())
        assert report.is_total

    def test_lyp_is_total(self):
        lyp = get_functional("LYP")
        report = check_hazards(lyp.fc(), lyp.domain())
        assert report.is_total

    def test_vwn_rpa_is_total(self):
        vwn = get_functional("VWN RPA")
        report = check_hazards(vwn.fc(), vwn.domain())
        assert report.is_total

    def test_scan_alpha_one_channel(self):
        # SCAN's switching tails divide by (alpha - 1); the division is
        # delta-reachable even inside the guards, but IEEE evaluation
        # absorbs it (exp(-1/0+) = 0): 'benign', not 'hazard'
        scan = get_functional("SCAN")
        report = check_hazards(scan.fc(), scan.domain())
        triggered = report.triggered()
        assert triggered, "expected SCAN's alpha=1 division channel"
        assert all(v.status == "benign" for v in triggered)

    def test_rscan_regularisation_removes_channel_branch_aware(self):
        rscan = get_functional("rSCAN")
        report = check_hazards(rscan.fc(), rscan.domain(), branch_aware=True)
        assert report.is_total

    def test_wigner_trivially_total(self):
        wig = get_functional("Wigner")
        report = check_hazards(wig.fc(), wig.domain())
        assert report.is_total
