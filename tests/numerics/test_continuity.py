"""Tests for branch-boundary continuity analysis (Section VI-C)."""

import math

import pytest

from repro.expr import builder as b
from repro.expr.nodes import Var
from repro.functionals import get_functional
from repro.numerics import check_continuity
from repro.numerics.continuity import BranchBoundary, ite_nodes
from repro.pysym import lift
from repro.solver.box import Box

X = Var("x", nonneg=True)


def _box(**bounds):
    return Box.from_bounds(bounds)


class TestIteDiscovery:
    def test_no_ite_in_analytic_expr(self):
        expr = b.add(b.mul(X, X), 1.0)
        assert ite_nodes(expr) == []
        report = check_continuity(expr, _box(x=(0.0, 2.0)))
        assert report.boundaries == []
        assert report.is_continuous()
        assert "single analytic piece" in report.summary()

    def test_finds_lifted_if(self):
        def model(x):
            if x < 1.0:
                return x
            return x * x

        expr = lift(model, X)
        assert len(ite_nodes(expr)) == 1


class TestSyntheticBoundaries:
    def test_continuous_glue_has_zero_jump(self):
        def model(x):
            if x < 1.0:
                return 2.0 * x
            return x * x + 1.0  # equals 2 at x = 1: continuous

        expr = lift(model, X)
        report = check_continuity(expr, _box(x=(0.0, 3.0)), n_base_points=4)
        assert report.findings
        assert report.max_value_jump() == pytest.approx(0.0, abs=1e-12)
        # slopes differ: 2 vs 2x -> 2 vs 2 ... equal! use slope-jump case below
        assert report.is_continuous()

    def test_value_jump_measured(self):
        def model(x):
            if x < 1.0:
                return x
            return x + 0.25  # deliberate 0.25 jump

        expr = lift(model, X)
        report = check_continuity(expr, _box(x=(0.0, 2.0)), n_base_points=4)
        assert report.max_value_jump() == pytest.approx(0.25, rel=1e-9)
        assert not report.is_continuous()
        worst = report.worst()
        assert worst.point["x"] == pytest.approx(1.0, abs=1e-9)
        assert worst.bisected_var == "x"

    def test_slope_jump_measured(self):
        def model(x):
            if x < 1.0:
                return x
            return 2.0 * x - 1.0  # continuous, kinked: slopes 1 vs 2

        expr = lift(model, X)
        report = check_continuity(expr, _box(x=(0.0, 2.0)), n_base_points=4)
        assert report.max_value_jump() == pytest.approx(0.0, abs=1e-12)
        assert report.max_slope_jump() == pytest.approx(1.0, rel=1e-9)

    def test_boundary_outside_box_not_located(self):
        def model(x):
            if x < 10.0:
                return x
            return x + 1.0

        expr = lift(model, X)
        report = check_continuity(expr, _box(x=(0.0, 2.0)), n_base_points=4)
        assert len(report.boundaries) == 1
        assert report.findings == []  # residual has no sign change in box

    def test_deterministic_under_seed(self):
        def model(x):
            if x < 1.0:
                return x
            return x + 0.5

        expr = lift(model, X)
        r1 = check_continuity(expr, _box(x=(0.0, 2.0)), n_base_points=8, seed=7)
        r2 = check_continuity(expr, _box(x=(0.0, 2.0)), n_base_points=8, seed=7)
        assert [f.point for f in r1.findings] == [f.point for f in r2.findings]


class TestBranchBoundary:
    def test_residual_and_description(self):
        def model(x):
            if x < 2.0:
                return x
            return -x

        expr = lift(model, X)
        boundary = BranchBoundary(ite_nodes(expr)[0])
        assert "x" in boundary.describe()
        from repro.expr.evaluator import evaluate

        assert evaluate(boundary.residual(), {"x": 2.0}) == pytest.approx(0.0)


class TestPZ81MatchingPoint:
    """The paper's canonical numerical-issues example."""

    def test_detects_published_discontinuity(self):
        pz = get_functional("PZ81")
        report = check_continuity(pz.fc(), pz.domain(), n_base_points=8)
        assert not report.is_continuous()
        worst = report.worst()
        assert worst.point["rs"] == pytest.approx(1.0, abs=1e-9)
        # jump in F_c = jump in eps_c * rs / CX_RS = 3.2066e-5 / 0.45817
        assert worst.value_jump == pytest.approx(6.999e-5, rel=1e-3)

    def test_eps_c_jump_matches_constants(self):
        pz = get_functional("PZ81")
        report = check_continuity(pz.eps_c(), pz.domain(), n_base_points=8)
        assert report.max_value_jump() == pytest.approx(3.2066e-5, rel=1e-3)

    def test_slope_jump_also_present(self):
        pz = get_functional("PZ81")
        report = check_continuity(pz.eps_c(), pz.domain(), n_base_points=8)
        # PZ81's branches also disagree in d/drs at the matching point
        assert report.max_slope_jump() > 1e-5


class TestSCANFamily:
    def test_scan_boundaries_are_singular(self):
        scan = get_functional("SCAN")
        report = check_continuity(scan.fc(), scan.domain(), n_base_points=4)
        assert len(report.boundaries) == 2  # alpha == 1 and alpha < 1 switches
        assert report.singular_findings()
        assert not report.is_continuous()

    def test_rscan_is_continuous(self):
        rscan = get_functional("rSCAN")
        report = check_continuity(rscan.fc(), rscan.domain(), n_base_points=4)
        assert not report.singular_findings()
        # polynomial/tail crossover agrees to fit accuracy
        assert report.max_value_jump() < 1e-9

    def test_rppscan_is_continuous(self):
        rpp = get_functional("r++SCAN")
        report = check_continuity(rpp.fc(), rpp.domain(), n_base_points=4)
        assert not report.singular_findings()
        assert report.max_value_jump() < 1e-9

    def test_smooth_functionals_have_no_boundaries(self):
        for name in ("PBE", "LYP", "AM05", "VWN RPA", "PW91"):
            f = get_functional(name)
            report = check_continuity(f.fc(), f.domain(), n_base_points=2)
            assert report.boundaries == [], name


class TestSingularClassification:
    def test_pole_at_boundary_flagged_singular(self):
        from repro.pysym.intrinsics import exp

        def model(x):
            if x < 1.0:
                return exp(-1.0 / (1.0 - x))  # essential singularity at 1
            return 0.0

        expr = lift(model, X)
        report = check_continuity(expr, _box(x=(0.0, 2.0)), n_base_points=4)
        assert report.singular_findings()
        finding = report.singular_findings()[0]
        assert finding.is_discontinuous
        assert math.isnan(finding.value_jump)
        assert "SINGULAR" in repr(finding)
