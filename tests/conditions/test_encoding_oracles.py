"""Oracle tests: symbolic condition residuals vs finite differences.

The encoder computes every rs-derivative symbolically (the paper's central
methodological claim against grid differentiation).  These tests check the
*encoded residuals* of the derivative conditions against high-order
central finite differences of the enhancement-factor kernels -- for the
paper's DFAs and for every extension functional, so a wrong derivative
rule or a mis-encoded condition cannot hide behind an OK verdict.
"""


import numpy as np
import pytest

from repro.conditions.catalog import RS_INFINITY, get_condition
from repro.expr.evaluator import evaluate
from repro.functionals import get_functional
from repro.functionals import vars as V


def _fc_at(functional, rs, point):
    env = dict(point)
    env["rs"] = rs
    args = [env[v.name] for v in functional.variables]
    return float(functional.fc_kernel()(*[np.asarray(a, float) for a in args]))


def _dfc_drs_fd(functional, point, h=1e-5):
    """Fourth-order central difference of F_c in rs."""
    rs = point["rs"]
    f = lambda r: _fc_at(functional, r, point)
    return (
        -f(rs + 2 * h) + 8 * f(rs + h) - 8 * f(rs - h) + f(rs - 2 * h)
    ) / (12 * h)


def _d2fc_drs2_fd(functional, point, h=1e-4):
    rs = point["rs"]
    f = lambda r: _fc_at(functional, r, point)
    return (f(rs + h) - 2 * f(rs) + f(rs - h)) / (h * h)


#: interior sample points per family (away from branch switches)
_POINTS = {
    "LDA": [{"rs": 0.5}, {"rs": 2.0}, {"rs": 4.0}],
    "GGA": [
        {"rs": 0.5, "s": 0.5},
        {"rs": 2.0, "s": 1.5},
        {"rs": 4.0, "s": 3.0},
    ],
    "MGGA": [
        {"rs": 1.0, "s": 1.0, "alpha": 0.4},
        {"rs": 2.5, "s": 2.0, "alpha": 2.0},
    ],
}

_FUNCTIONALS = [
    "PBE", "LYP", "AM05", "VWN RPA", "SCAN",
    "BLYP", "PW91", "PBEsol", "revPBE", "PZ81", "VWN5", "Wigner",
    "rSCAN", "r++SCAN",
]


@pytest.mark.parametrize("name", _FUNCTIONALS)
def test_ec2_residual_matches_finite_difference(name):
    """EC2's encoded psi is dF_c/drs >= 0: its gap must be the derivative."""
    functional = get_functional(name)
    psi = get_condition("EC2").local_condition(functional)
    # psi: dfc_drs >= 0, so gap = lhs - rhs = dF_c/drs
    for point in _POINTS[functional.family]:
        symbolic = evaluate(psi.gap(), point)
        numeric = _dfc_drs_fd(functional, point)
        assert symbolic == pytest.approx(numeric, rel=2e-5, abs=1e-8), (
            name, point,
        )


@pytest.mark.parametrize("name", ["PBE", "LYP", "AM05", "VWN RPA", "PW91", "PZ81"])
def test_ec7_residual_matches_finite_difference(name):
    """EC7 encodes rs * dF_c/drs - F_c <= 0."""
    functional = get_functional(name)
    psi = get_condition("EC7").local_condition(functional)
    for point in _POINTS[functional.family]:
        fc = _fc_at(functional, point["rs"], point)
        expected = point["rs"] * _dfc_drs_fd(functional, point) - fc
        assert evaluate(psi.gap(), point) == pytest.approx(
            expected, rel=2e-5, abs=1e-8
        ), (name, point)


@pytest.mark.parametrize("name", ["PBE", "LYP", "AM05", "VWN RPA", "PBEsol"])
def test_ec3_residual_matches_finite_difference(name):
    """EC3 encodes rs * d2F_c/drs2 + 2 dF_c/drs >= 0."""
    functional = get_functional(name)
    psi = get_condition("EC3").local_condition(functional)
    for point in _POINTS[functional.family]:
        expected = point["rs"] * _d2fc_drs2_fd(functional, point) + 2.0 * (
            _dfc_drs_fd(functional, point)
        )
        assert evaluate(psi.gap(), point) == pytest.approx(
            expected, rel=5e-4, abs=5e-7
        ), (name, point)


@pytest.mark.parametrize("name", ["PBE", "AM05", "BLYP", "PW91", "PBEsol", "revPBE"])
def test_ec6_limit_substitution(name):
    """EC6's F_c(inf) term equals F_c evaluated at rs = 100 exactly."""
    functional = get_functional(name)
    psi = get_condition("EC6").local_condition(functional)
    for point in _POINTS[functional.family]:
        inf_point = dict(point)
        inf_point["rs"] = RS_INFINITY
        fc_inf = _fc_at(functional, RS_INFINITY, point)
        fc = _fc_at(functional, point["rs"], point)
        expected = point["rs"] * _dfc_drs_fd(functional, point) + fc - fc_inf
        assert evaluate(psi.gap(), point) == pytest.approx(
            expected, rel=2e-5, abs=1e-8
        ), (name, point)


@pytest.mark.parametrize("name", ["BLYP", "PW91", "PBEsol", "revPBE", "r++SCAN"])
def test_ec5_residual_is_fxc_minus_clo(name):
    functional = get_functional(name)
    psi = get_condition("EC5").local_condition(functional)
    for point in _POINTS[functional.family]:
        args = [np.asarray(point[v.name], float) for v in functional.variables]
        fxc = float(functional.fxc_kernel()(*args))
        assert evaluate(psi.gap(), point) == pytest.approx(
            fxc - V.C_LO, rel=1e-10
        ), (name, point)


def test_pz81_ec2_on_both_branches():
    """The derivative condition is encoded through the Ite: both branch
    regions must match their own finite differences."""
    functional = get_functional("PZ81")
    psi = get_condition("EC2").local_condition(functional)
    for rs in (0.3, 0.9, 1.1, 3.0):  # straddles the rs = 1 matching point
        point = {"rs": rs}
        assert evaluate(psi.gap(), point) == pytest.approx(
            _dfc_drs_fd(functional, point), rel=2e-5
        ), rs
