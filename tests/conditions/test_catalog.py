"""Tests for the exact-condition catalog (Section II of the paper)."""


import pytest

from repro.conditions import (
    CONDITIONS,
    EC1,
    EC2,
    EC3,
    EC4,
    EC5,
    EC6,
    EC7,
    PAPER_CONDITIONS,
    RS_INFINITY,
    applicable_pairs,
    get_condition,
)
from repro.expr.derivative import derivative
from repro.expr.evaluator import evaluate, evaluate_rel
from repro.functionals import get_functional, paper_functionals
from repro.functionals.vars import C_LO, RS


class TestCatalogStructure:
    def test_seven_conditions(self):
        assert len(CONDITIONS) == 7
        assert len(PAPER_CONDITIONS) == 7

    def test_lookup(self):
        assert get_condition("ec1") is EC1
        assert get_condition("EC7") is EC7
        with pytest.raises(KeyError):
            get_condition("EC8")

    def test_paper_row_order(self):
        assert [c.cid for c in PAPER_CONDITIONS] == [
            "EC1", "EC2", "EC3", "EC6", "EC7", "EC4", "EC5",
        ]

    def test_equations_match_paper(self):
        assert EC1.equation == "Eq. 4"
        assert EC5.equation == "Eq. 8"
        assert EC7.equation == "Eq. 10"

    def test_thirty_one_applicable_pairs(self):
        pairs = applicable_pairs()
        assert len(pairs) == 31

    def test_lieb_oxford_applicability(self):
        lyp = get_functional("LYP")
        vwn = get_functional("VWN RPA")
        pbe = get_functional("PBE")
        for cond in (EC4, EC5):
            assert not cond.applies_to(lyp)
            assert not cond.applies_to(vwn)
            assert cond.applies_to(pbe)

    def test_correlation_conditions_apply_widely(self):
        for f in paper_functionals():
            for cond in (EC1, EC2, EC3, EC6, EC7):
                assert cond.applies_to(f)

    def test_local_condition_rejects_inapplicable(self):
        with pytest.raises(ValueError):
            EC4.local_condition(get_functional("LYP"))


class TestConditionSemantics:
    """Check each psi against independent evaluations at sample points."""

    def test_ec1_matches_eps_sign(self):
        f = get_functional("LYP")
        psi = EC1.local_condition(f)
        for rs, s in ((1.0, 0.5), (2.0, 3.0), (4.0, 1.0)):
            eps = evaluate(f.eps_c(), {"rs": rs, "s": s})
            assert evaluate_rel(psi, {"rs": rs, "s": s}) == (eps <= 0.0)

    def test_ec2_matches_derivative_sign(self):
        f = get_functional("LYP")
        psi = EC2.local_condition(f)
        dfc = derivative(f.fc(), RS)
        for rs, s in ((0.5, 2.0), (2.0, 1.0), (4.5, 4.0)):
            expected = evaluate(dfc, {"rs": rs, "s": s}) >= 0.0
            assert evaluate_rel(psi, {"rs": rs, "s": s}) == expected

    def test_ec3_equivalent_to_unmultiplied_form(self):
        """rs*d2 + 2*d1 >= 0  <=>  d2 >= -(2/rs) d1 for rs > 0."""
        f = get_functional("VWN RPA")
        psi = EC3.local_condition(f)
        fc = f.fc()
        d1 = derivative(fc, RS)
        d2 = derivative(fc, RS, 2)
        for rs in (0.3, 1.0, 3.0):
            env = {"rs": rs}
            direct = evaluate(d2, env) >= -(2.0 / rs) * evaluate(d1, env)
            assert evaluate_rel(psi, env) == direct

    def test_ec4_formula(self):
        f = get_functional("PBE")
        psi = EC4.local_condition(f)
        dfc = derivative(f.fc(), RS)
        for rs, s in ((1.0, 1.0), (0.2, 4.0)):
            env = {"rs": rs, "s": s}
            lhs = evaluate(f.fxc(), env) + rs * evaluate(dfc, env)
            assert evaluate_rel(psi, env) == (lhs <= C_LO)

    def test_ec5_formula(self):
        f = get_functional("PBE")
        psi = EC5.local_condition(f)
        for rs, s in ((1.0, 0.0), (3.0, 5.0)):
            env = {"rs": rs, "s": s}
            assert evaluate_rel(psi, env) == (evaluate(f.fxc(), env) <= C_LO)

    def test_ec6_uses_rs_100_limit(self):
        f = get_functional("LYP")
        psi = EC6.local_condition(f)
        fc = f.fc()
        dfc = derivative(fc, RS)
        for rs, s in ((1.0, 1.0), (4.9, 3.0)):
            env = {"rs": rs, "s": s}
            fc_inf = evaluate(fc, {"rs": RS_INFINITY, "s": s})
            direct = evaluate(dfc, env) <= (fc_inf - evaluate(fc, env)) / rs
            assert evaluate_rel(psi, env) == direct

    def test_ec7_formula(self):
        f = get_functional("PBE")
        psi = EC7.local_condition(f)
        fc = f.fc()
        dfc = derivative(fc, RS)
        for rs, s in ((0.5, 3.0), (4.0, 1.0)):
            env = {"rs": rs, "s": s}
            direct = evaluate(dfc, env) <= evaluate(fc, env) / rs
            assert evaluate_rel(psi, env) == direct

    def test_rs_infinity_constant(self):
        assert RS_INFINITY == 100.0


class TestKnownSatisfactionPatterns:
    """Spot-checks of the paper's qualitative findings at sample points."""

    def test_lyp_violates_ec1_at_large_s(self):
        psi = EC1.local_condition(get_functional("LYP"))
        assert not evaluate_rel(psi, {"rs": 2.0, "s": 3.0})
        assert evaluate_rel(psi, {"rs": 2.0, "s": 0.5})

    def test_pbe_satisfies_ec1_everywhere_sampled(self):
        psi = EC1.local_condition(get_functional("PBE"))
        for rs in (0.01, 0.5, 2.0, 5.0):
            for s in (0.0, 1.0, 3.0, 5.0):
                assert evaluate_rel(psi, {"rs": rs, "s": s})

    def test_pbe_violates_ec7_upper_left(self):
        psi = EC7.local_condition(get_functional("PBE"))
        assert not evaluate_rel(psi, {"rs": 0.5, "s": 3.0})
        assert evaluate_rel(psi, {"rs": 4.0, "s": 0.5})

    def test_vwn_rpa_satisfies_all_lda_conditions_sampled(self):
        f = get_functional("VWN RPA")
        for cond in (EC1, EC2, EC3, EC6, EC7):
            psi = cond.local_condition(f)
            for rs in (0.01, 0.1, 1.0, 2.5, 5.0):
                assert evaluate_rel(psi, {"rs": rs}), (cond.cid, rs)

    def test_am05_satisfies_ec1_sampled(self):
        psi = EC1.local_condition(get_functional("AM05"))
        for rs in (0.1, 1.0, 4.0):
            for s in (0.0, 2.0, 5.0):
                assert evaluate_rel(psi, {"rs": rs, "s": s})

    def test_lyp_violates_all_applicable_conditions_somewhere(self):
        f = get_functional("LYP")
        domain_samples = [
            {"rs": rs, "s": s}
            for rs in (0.05, 0.5, 1.0, 2.0, 3.0, 4.9)
            for s in (0.5, 1.5, 2.0, 3.0, 4.5, 5.0)
        ]
        for cond in (EC1, EC2, EC3, EC6, EC7):
            psi = cond.local_condition(f)
            assert any(
                not evaluate_rel(psi, env) for env in domain_samples
            ), f"{cond.cid} not violated at any sample"
