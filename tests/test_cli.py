"""Tests for the command-line interface (python -m repro ...).

All commands are exercised through :func:`repro.cli.main` with stdout
captured by pytest -- no subprocesses, so coverage and failures stay
visible.  Budgets are kept tiny: these tests check wiring and output
format, not verification quality (the benches do that).
"""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args([])
        assert exc.value.code == 2

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_verify_requires_pair(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "-f", "PBE"])


class TestList:
    def test_lists_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("PBE", "LYP", "SCAN", "BLYP", "PZ81", "r++SCAN"):
            assert name in out
        assert "EC1" in out and "EC7" in out

    def test_paper_only(self, capsys):
        assert main(["list", "--paper-only"]) == 0
        out = capsys.readouterr().out
        assert "PBE" in out
        assert "BLYP" not in out


class TestVerify:
    def test_quick_verify(self, capsys):
        rc = main(
            ["verify", "-f", "Wigner", "-c", "EC1", "--global-budget", "500"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Wigner/EC1" in out
        assert "OK" in out  # Wigner's eps_c < 0 everywhere: verified fast

    def test_verify_with_map(self, capsys):
        rc = main(
            [
                "verify", "-f", "LYP", "-c", "EC1",
                "--global-budget", "2000", "--budget", "150", "--map", "16",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "legend" in out

    def test_verify_with_newton(self, capsys):
        rc = main(
            [
                "verify", "-f", "VWN RPA", "-c", "EC1",
                "--global-budget", "500", "--newton",
            ]
        )
        assert rc == 0
        assert "VWN RPA/EC1" in capsys.readouterr().out

    def test_unknown_functional(self, capsys):
        assert main(["verify", "-f", "NOPE", "-c", "EC1"]) == 1
        assert "unknown functional" in capsys.readouterr().err

    def test_unknown_condition(self, capsys):
        assert main(["verify", "-f", "PBE", "-c", "EC9"]) == 1
        assert "unknown condition" in capsys.readouterr().err

    def test_inapplicable_pair(self, capsys):
        # LYP has no exchange: the Lieb-Oxford pair does not apply
        assert main(["verify", "-f", "LYP", "-c", "EC5"]) == 1
        assert "does not apply" in capsys.readouterr().err


class TestPB:
    def test_pb_satisfied(self, capsys):
        rc = main(["pb", "-f", "PBE", "-c", "EC1", "--points", "81"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "satisfied" in out

    def test_pb_violated_with_bounds(self, capsys):
        rc = main(["pb", "-f", "LYP", "-c", "EC1", "--points", "81"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "violated" in out
        assert "violations within" in out

    def test_pb_map(self, capsys):
        rc = main(["pb", "-f", "LYP", "-c", "EC1", "--points", "81", "--map", "16"])
        assert rc == 0
        assert capsys.readouterr().out.count("\n") > 16


class TestCompare:
    def test_consistent_pair(self, capsys):
        rc = main(
            [
                "compare", "-f", "LYP", "-c", "EC1",
                "--points", "81", "--budget", "200", "--global-budget", "8000",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "consistency:" in out


class TestTables:
    def test_table1_quick(self, capsys):
        rc = main(["table1", "--budget", "40", "--global-budget", "200"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "VWN RPA" in out

    def test_table2_quick(self, capsys):
        rc = main(
            [
                "table2", "--budget", "40", "--global-budget", "200",
                "--points", "61",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_table1_slice_filters(self, capsys):
        rc = main(
            [
                "table1", "--functionals", "LYP,VWN RPA", "--conditions", "EC1",
                "--budget", "100", "--global-budget", "1500",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "LYP" in out and "VWN RPA" in out
        assert "campaign: 2 cells computed" in out

    def test_table1_unknown_slice_rejected(self, capsys):
        assert main(["table1", "--functionals", "NOPE"]) == 1
        assert "unknown functional" in capsys.readouterr().err

    def test_table1_store_resume_round_trip(self, capsys, tmp_path):
        store = str(tmp_path / "t1.jsonl")
        args = [
            "table1", "--functionals", "LYP,Wigner", "--conditions", "EC1,EC2",
            "--budget", "100", "--global-budget", "1500", "--store", store,
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "4 cells computed, 0 from store" in first
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "0 cells computed, 4 from store" in second
        # the rendered matrices agree cell for cell
        assert first.split("Table I")[1].split("campaign:")[0] == \
            second.split("Table I")[1].split("campaign:")[0]

    def test_resume_requires_store(self, capsys):
        assert main(["table1", "--resume"]) == 1
        assert "--resume requires --store" in capsys.readouterr().err


class TestCampaignCommand:
    def test_campaign_runs_slice(self, capsys):
        rc = main(
            [
                "campaign", "--functionals", "LYP,VWN RPA", "--conditions", "EC1",
                "--budget", "100", "--global-budget", "1500",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "LYP/EC1" in out and "VWN RPA/EC1" in out
        assert "campaign: 2 cells computed" in out

    def test_campaign_store_resume(self, capsys, tmp_path):
        store = str(tmp_path / "c.sqlite")
        args = [
            "campaign", "--functionals", "Wigner", "--conditions", "EC1,EC2",
            "--budget", "100", "--global-budget", "1000", "--store", store,
        ]
        assert main(args) == 0
        assert "2 cells computed, 0 from store" in capsys.readouterr().out
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 cells computed, 2 from store" in out
        assert "[store]" in out

    def test_campaign_json_export(self, capsys, tmp_path):
        import json

        path = tmp_path / "campaign.json"
        rc = main(
            [
                "campaign", "--functionals", "Wigner", "--conditions", "EC1",
                "--budget", "100", "--global-budget", "500",
                "--json", str(path),
            ]
        )
        assert rc == 0
        doc = json.loads(path.read_text())
        assert "Wigner/EC1" in doc

    def test_campaign_empty_slice_rejected(self, capsys):
        # LYP has no exchange: EC5 applies to no functional in the slice
        assert main(["campaign", "--functionals", "LYP", "--conditions", "EC5"]) == 1
        assert "no applicable" in capsys.readouterr().err

    def test_campaign_steal_depth_and_order(self, capsys):
        rc = main(
            [
                "campaign", "--functionals", "LYP", "--conditions", "EC1",
                "--budget", "100", "--global-budget", "1500",
                "--steal-depth", "1", "--order", "widest",
            ]
        )
        assert rc == 0
        assert "LYP/EC1" in capsys.readouterr().out


class TestNumerics:
    def test_continuity_on_pz81(self, capsys):
        rc = main(["numerics", "-f", "PZ81", "--check", "continuity"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "continuity:" in out
        assert "worst jump" in out  # PZ81's matching point discontinuity

    def test_hazards_on_pbe(self, capsys):
        rc = main(["numerics", "-f", "PBE", "--check", "hazards"])
        assert rc == 0
        assert "hazards:" in capsys.readouterr().out

    def test_ieee_mode(self, capsys):
        rc = main(["numerics", "-f", "rSCAN", "--check", "hazards", "--ieee"])
        assert rc == 0
        assert "np.where" in capsys.readouterr().out

    def test_sensitivity(self, capsys):
        rc = main(
            ["numerics", "-f", "LYP", "--check", "sensitivity", "--component", "fc"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "kappa_rs" in out and "peaks at" in out

    def test_unknown_check_rejected(self, capsys):
        assert main(["numerics", "-f", "PBE", "--check", "vibes"]) == 1
        assert "unknown checks" in capsys.readouterr().err

    def test_unknown_functional(self, capsys):
        assert main(["numerics", "-f", "NOPE"]) == 1


class TestNumericsCampaign:
    SLICE = ["numerics", "--all", "--functionals", "LYP,Wigner"]

    def test_campaign_renders_table_three(self, capsys):
        rc = main(self.SLICE + ["--check", "hazards,continuity"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "LYP/fc" in out and "Wigner/fc" in out
        assert "6 cells computed" in out  # 2 x (continuity + hazards x 2)

    def test_functionals_flag_implies_campaign(self, capsys):
        rc = main(["numerics", "--functionals", "Wigner", "--check", "hazards"])
        assert rc == 0
        assert "Table III" in capsys.readouterr().out

    def test_store_resume_round_trip(self, tmp_path, capsys):
        store = str(tmp_path / "cells.jsonl")
        json_a = str(tmp_path / "a.json")
        json_b = str(tmp_path / "b.json")
        args = self.SLICE + ["--check", "hazards", "--store", store]
        assert main(args + ["--json", json_a]) == 0
        capsys.readouterr()
        assert main(args + ["--resume", "--json", json_b]) == 0
        out = capsys.readouterr().out
        assert "0 cells computed, 4 from store" in out
        with open(json_a) as a, open(json_b) as b:
            assert a.read() == b.read()

    def test_single_pair_and_campaign_flags_conflict(self, capsys):
        assert main(["numerics", "-f", "PBE", "--all"]) == 1
        assert "incompatible" in capsys.readouterr().err

    def test_component_flag_rejected_in_campaign_mode(self, capsys):
        assert main(self.SLICE + ["--component", "fx"]) == 1
        assert "--components" in capsys.readouterr().err

    def test_campaign_flags_rejected_in_single_pair_mode(self, tmp_path, capsys):
        """Silently ignoring --json/--store/--resume/--workers would drop
        the artifacts a scripted caller depends on."""
        for extra in (
            ["--json", str(tmp_path / "t.json")],
            ["--store", str(tmp_path / "s.jsonl")],
            ["--store", str(tmp_path / "s.jsonl"), "--resume"],
            ["--workers", "2"],
            ["--components", "fc,fx"],
        ):
            assert main(["numerics", "-f", "Wigner"] + extra) == 1, extra
            assert "campaign mode" in capsys.readouterr().err

    def test_functional_or_campaign_required(self, capsys):
        assert main(["numerics"]) == 1
        assert "required" in capsys.readouterr().err

    def test_resume_requires_store(self, capsys):
        assert main(self.SLICE + ["--resume"]) == 1
        assert "--resume requires --store" in capsys.readouterr().err

    def test_unknown_component_rejected(self, capsys):
        assert main(self.SLICE + ["--components", "zz"]) == 1
        assert "unknown components" in capsys.readouterr().err


class TestExitCodes:
    """Process-level contract: clean one-line errors, never tracebacks.

    Scripted callers (CI, the service smoke) branch on these exit codes:
    2 = argparse usage error, 1 = runtime usage/connection error,
    0 = success.
    """

    @staticmethod
    def _run_module(args):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = (
            os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        )
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            env=env, capture_output=True, text=True, timeout=120,
        )

    def test_no_subcommand_exits_2_with_usage(self):
        proc = self._run_module([])
        assert proc.returncode == 2
        assert "usage:" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_no_subcommand_in_process(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2
        assert "usage:" in capsys.readouterr().err

    def test_submit_against_dead_server_exits_1(self):
        # grab a port nothing listens on
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        proc = self._run_module([
            "submit", "--url", f"http://127.0.0.1:{port}",
            "verify", "-f", "Wigner", "-c", "EC1",
        ])
        assert proc.returncode == 1
        assert "error: cannot reach service" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_submit_against_dead_server_in_process(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        rc = main([
            "submit", "--url", f"http://127.0.0.1:{port}",
            "table1", "--functionals", "Wigner", "--conditions", "EC1",
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert "cannot reach service" in err

    def test_submit_requires_job_kind(self):
        with pytest.raises(SystemExit) as exc:
            main(["submit"])
        assert exc.value.code == 2

    def test_unknown_store_suffix_is_usage_error(self, tmp_path, capsys):
        for args in (
            ["table1", "--store", str(tmp_path / "s.tmp")],
            ["campaign", "--store", str(tmp_path / "s")],
            ["numerics", "--all", "--store", str(tmp_path / "s.db.tmp")],
        ):
            assert main(args) == 1, args
            err = capsys.readouterr().err
            assert "unknown store suffix" in err
            assert ".jsonl" in err and ".sqlite" in err

    def test_serve_unknown_store_suffix_is_usage_error(self, tmp_path, capsys):
        assert main(["serve", "--store", str(tmp_path / "s.tmp"),
                     "--port", "0"]) == 1
        assert "unknown store suffix" in capsys.readouterr().err

    def test_numerics_ieee_rejected_in_campaign_mode(self, capsys):
        assert main(["numerics", "--all", "--ieee"]) == 1
        assert "single-pair only" in capsys.readouterr().err


class TestStats:
    CAMPAIGN = [
        "campaign", "--functionals", "Wigner", "--conditions", "EC1,EC2",
        "--budget", "100", "--global-budget", "1000",
    ]

    def test_stats_after_campaign(self, capsys, tmp_path):
        store = str(tmp_path / "timed.jsonl")
        assert main(self.CAMPAIGN + ["--store", store]) == 0
        capsys.readouterr()
        assert main(["stats", store]) == 0
        out = capsys.readouterr().out
        assert "functional" in out and "compile%" in out
        assert "Wigner" in out and "EC1" in out and "EC2" in out
        assert "2 pairs, 2 cells" in out

    def test_stats_missing_store(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["stats", missing]) == 1
        err = capsys.readouterr().err
        assert "store not found" in err
        # the query must not have created the file as a side effect
        import os

        assert not os.path.exists(missing)

    def test_stats_empty_store(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["stats", str(empty)]) == 1
        assert "no verify-cell timings" in capsys.readouterr().err

    def test_stats_unknown_suffix(self, capsys, tmp_path):
        bad = tmp_path / "store.xml"
        bad.write_text("")
        assert main(["stats", str(bad)]) == 1
        assert "unknown store suffix" in capsys.readouterr().err


class TestKnobValidation:
    @pytest.mark.parametrize(
        "argv, flag",
        [
            (["campaign", "--functionals", "Wigner", "--conditions", "EC1",
              "--levels", "-1"], "--levels"),
            (["campaign", "--functionals", "Wigner", "--conditions", "EC1",
              "--steal-depth", "-2"], "--steal-depth"),
            (["campaign", "--functionals", "Wigner", "--conditions", "EC1",
              "--workers", "-4"], "--workers"),
            (["verify", "-f", "Wigner", "-c", "EC1", "--batch-size", "-8"],
             "--batch-size"),
            (["numerics", "--functionals", "Wigner", "--check", "hazards",
              "--workers", "-1"], "--workers"),
        ],
    )
    def test_negative_knobs_rejected_loudly(self, capsys, argv, flag):
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert f"{flag} must be >= 0" in err
        assert err.count("\n") == 1  # one-line diagnostic

    def test_zero_values_accepted(self, capsys):
        rc = main(
            ["campaign", "--functionals", "Wigner", "--conditions", "EC1",
             "--budget", "100", "--global-budget", "500",
             "--levels", "0", "--steal-depth", "0", "--workers", "0"]
        )
        assert rc == 0
        assert "1 cells computed" in capsys.readouterr().out


class TestAdaptiveFlag:
    def test_adaptive_campaign_matches_static(self, capsys, tmp_path):
        args = [
            "campaign", "--functionals", "LYP,Wigner", "--conditions", "EC1",
            "--budget", "100", "--global-budget", "1500",
        ]
        assert main(args) == 0
        static_out = capsys.readouterr().out
        store = str(tmp_path / "warm.jsonl")
        assert main(args + ["--store", store]) == 0
        capsys.readouterr()
        # warm store: the model now orders by observed cost
        assert main(args + ["--adaptive"]) == 0
        adaptive_out = capsys.readouterr().out
        assert adaptive_out == static_out

    def test_adaptive_store_resume_bit_identical(self, capsys, tmp_path):
        store = str(tmp_path / "adaptive.jsonl")
        json_a = str(tmp_path / "a.json")
        json_b = str(tmp_path / "b.json")
        args = [
            "campaign", "--functionals", "LYP,Wigner", "--conditions", "EC1",
            "--budget", "100", "--global-budget", "1500",
            "--workers", "2", "--adaptive", "--store", store,
        ]
        assert main(args + ["--json", json_a]) == 0
        capsys.readouterr()
        assert main(args + ["--resume", "--json", json_b]) == 0
        out = capsys.readouterr().out
        assert "0 cells computed, 2 from store" in out
        with open(json_a) as a, open(json_b) as b:
            assert a.read() == b.read()

    def test_adaptive_numerics_campaign(self, capsys):
        rc = main(
            ["numerics", "--functionals", "LYP,Wigner",
             "--check", "continuity", "--adaptive"]
        )
        assert rc == 0
        assert "Table III" in capsys.readouterr().out

    def test_adaptive_rejected_in_single_pair_numerics(self, capsys):
        rc = main(["numerics", "-f", "PBE", "--adaptive"])
        assert rc == 1
        assert "--adaptive" in capsys.readouterr().err


class TestTraceFlag:
    ARGS = [
        "table1", "--functionals", "Wigner,VWN RPA", "--conditions", "EC1",
        "--budget", "100", "--global-budget", "500",
    ]

    def test_trace_flag_records_a_loadable_trace(self, capsys, tmp_path):
        from repro.obs.export import lint_trace, load_trace

        trace = str(tmp_path / "t.jsonl")
        assert main(self.ARGS + ["--trace", trace]) == 0
        captured = capsys.readouterr()
        assert "Table I" in captured.out
        assert f"wrote trace {trace}" in captured.err
        header, spans = load_trace(trace)
        assert lint_trace(header, spans) == []
        # one root: the CLI command span; one cell span per computed cell
        roots = [s for s in spans if s["parent"] is None]
        assert [r["name"] for r in roots] == ["cli:table1"]
        assert len([s for s in spans if s["cat"] == "cell"]) == 2

    def test_repro_trace_env_var(self, capsys, tmp_path, monkeypatch):
        from repro.obs.export import load_trace

        trace = str(tmp_path / "env.jsonl")
        monkeypatch.setenv("REPRO_TRACE", trace)
        assert main(["verify", "-f", "Wigner", "-c", "EC1",
                     "--global-budget", "500"]) == 0
        _, spans = load_trace(trace)
        assert any(s["name"] == "cli:verify" for s in spans)
        assert any(s["cat"] == "solve" for s in spans)

    def test_table_output_identical_with_and_without_trace(self, capsys, tmp_path):
        assert main(self.ARGS) == 0
        plain = capsys.readouterr().out
        assert main(self.ARGS + ["--trace", str(tmp_path / "t.jsonl")]) == 0
        assert capsys.readouterr().out == plain


class TestTraceSubcommand:
    def record(self, capsys, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        assert main(
            ["table1", "--functionals", "Wigner", "--conditions", "EC1",
             "--budget", "100", "--global-budget", "500", "--trace", trace]
        ) == 0
        capsys.readouterr()
        return trace

    def test_summary_prints_the_screenful(self, capsys, tmp_path):
        trace = self.record(capsys, tmp_path)
        assert main(["trace", "summary", trace]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "self-time" in out

    def test_export_chrome_file(self, capsys, tmp_path):
        import json

        trace = self.record(capsys, tmp_path)
        out_path = str(tmp_path / "chrome.json")
        assert main(["trace", "export", trace, "--chrome", out_path]) == 0
        assert "wrote" in capsys.readouterr().out
        with open(out_path) as handle:
            doc = json.load(handle)
        assert doc["traceEvents"]
        assert all("ph" in event for event in doc["traceEvents"])

    def test_export_chrome_stdout(self, capsys, tmp_path):
        import json

        trace = self.record(capsys, tmp_path)
        assert main(["trace", "export", trace, "--chrome", "-"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["otherData"]["trace_id"]

    def test_lint_clean_trace_exits_0(self, capsys, tmp_path):
        trace = self.record(capsys, tmp_path)
        assert main(["trace", "lint", trace]) == 0
        assert "0 problems" in capsys.readouterr().out

    def test_lint_broken_trace_exits_1(self, capsys, tmp_path):
        import json

        trace = tmp_path / "bad.jsonl"
        header = {"kind": "header", "v": 1, "trace_id": "x", "run_id": "r",
                  "wall_start": 0.0, "mono_start": 0.0, "pid": 1}
        orphan = {"kind": "span", "span": "1.1", "parent": "gone",
                  "name": "s", "cat": "x", "ts": 0.0, "dur": 1.0, "pid": 1,
                  "run_id": "r"}
        trace.write_text(json.dumps(header) + "\n" + json.dumps(orphan) + "\n")
        assert main(["trace", "lint", str(trace)]) == 1
        out = capsys.readouterr().out
        assert "trace-lint:" in out

    def test_missing_trace_file_is_usage_error(self, capsys, tmp_path):
        assert main(["trace", "summary", str(tmp_path / "absent.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_non_trace_file_is_usage_error(self, capsys, tmp_path):
        path = tmp_path / "not_a_trace.jsonl"
        path.write_text('{"kind": "other"}\n')
        assert main(["trace", "summary", str(path)]) == 1
        assert "no header" in capsys.readouterr().err


class TestLogJson:
    def test_log_json_emits_structured_stderr(self, capsys, tmp_path):
        import json

        trace = str(tmp_path / "t.jsonl")
        rc = main(
            ["--log-json", "table1", "--functionals", "Wigner",
             "--conditions", "EC1", "--budget", "100",
             "--global-budget", "500", "--trace", trace]
        )
        assert rc == 0
        err_lines = [line for line in capsys.readouterr().err.splitlines() if line]
        records = [json.loads(line) for line in err_lines]
        written = [r for r in records if r["event"] == "trace.written"]
        assert written and written[0]["path"] == trace
        assert all(
            set(("ts", "level", "run_id", "event", "text")) <= set(r)
            for r in records
        )

    def test_log_json_usage_errors_are_records(self, capsys):
        import json

        assert main(["--log-json", "verify", "-f", "NOPE", "-c", "EC1"]) == 1
        record = json.loads(capsys.readouterr().err.splitlines()[0])
        assert record["event"] == "cli.usage-error"
        assert record["level"] == "error"
        assert "unknown functional" in record["text"]

    def test_text_mode_unchanged_by_default(self, capsys):
        assert main(["verify", "-f", "NOPE", "-c", "EC1"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")  # plain prose, not JSON
