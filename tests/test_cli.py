"""Tests for the command-line interface (python -m repro ...).

All commands are exercised through :func:`repro.cli.main` with stdout
captured by pytest -- no subprocesses, so coverage and failures stay
visible.  Budgets are kept tiny: these tests check wiring and output
format, not verification quality (the benches do that).
"""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args([])
        assert exc.value.code == 2

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_verify_requires_pair(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "-f", "PBE"])


class TestList:
    def test_lists_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("PBE", "LYP", "SCAN", "BLYP", "PZ81", "r++SCAN"):
            assert name in out
        assert "EC1" in out and "EC7" in out

    def test_paper_only(self, capsys):
        assert main(["list", "--paper-only"]) == 0
        out = capsys.readouterr().out
        assert "PBE" in out
        assert "BLYP" not in out


class TestVerify:
    def test_quick_verify(self, capsys):
        rc = main(
            ["verify", "-f", "Wigner", "-c", "EC1", "--global-budget", "500"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Wigner/EC1" in out
        assert "OK" in out  # Wigner's eps_c < 0 everywhere: verified fast

    def test_verify_with_map(self, capsys):
        rc = main(
            [
                "verify", "-f", "LYP", "-c", "EC1",
                "--global-budget", "2000", "--budget", "150", "--map", "16",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "legend" in out

    def test_verify_with_newton(self, capsys):
        rc = main(
            [
                "verify", "-f", "VWN RPA", "-c", "EC1",
                "--global-budget", "500", "--newton",
            ]
        )
        assert rc == 0
        assert "VWN RPA/EC1" in capsys.readouterr().out

    def test_unknown_functional(self, capsys):
        assert main(["verify", "-f", "NOPE", "-c", "EC1"]) == 1
        assert "unknown functional" in capsys.readouterr().err

    def test_unknown_condition(self, capsys):
        assert main(["verify", "-f", "PBE", "-c", "EC9"]) == 1
        assert "unknown condition" in capsys.readouterr().err

    def test_inapplicable_pair(self, capsys):
        # LYP has no exchange: the Lieb-Oxford pair does not apply
        assert main(["verify", "-f", "LYP", "-c", "EC5"]) == 1
        assert "does not apply" in capsys.readouterr().err


class TestPB:
    def test_pb_satisfied(self, capsys):
        rc = main(["pb", "-f", "PBE", "-c", "EC1", "--points", "81"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "satisfied" in out

    def test_pb_violated_with_bounds(self, capsys):
        rc = main(["pb", "-f", "LYP", "-c", "EC1", "--points", "81"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "violated" in out
        assert "violations within" in out

    def test_pb_map(self, capsys):
        rc = main(["pb", "-f", "LYP", "-c", "EC1", "--points", "81", "--map", "16"])
        assert rc == 0
        assert capsys.readouterr().out.count("\n") > 16


class TestCompare:
    def test_consistent_pair(self, capsys):
        rc = main(
            [
                "compare", "-f", "LYP", "-c", "EC1",
                "--points", "81", "--budget", "200", "--global-budget", "8000",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "consistency:" in out


class TestTables:
    def test_table1_quick(self, capsys):
        rc = main(["table1", "--budget", "40", "--global-budget", "200"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "VWN RPA" in out

    def test_table2_quick(self, capsys):
        rc = main(
            [
                "table2", "--budget", "40", "--global-budget", "200",
                "--points", "61",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table II" in out


class TestNumerics:
    def test_continuity_on_pz81(self, capsys):
        rc = main(["numerics", "-f", "PZ81", "--check", "continuity"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "continuity:" in out
        assert "worst jump" in out  # PZ81's matching point discontinuity

    def test_hazards_on_pbe(self, capsys):
        rc = main(["numerics", "-f", "PBE", "--check", "hazards"])
        assert rc == 0
        assert "hazards:" in capsys.readouterr().out

    def test_ieee_mode(self, capsys):
        rc = main(["numerics", "-f", "rSCAN", "--check", "hazards", "--ieee"])
        assert rc == 0
        assert "np.where" in capsys.readouterr().out

    def test_sensitivity(self, capsys):
        rc = main(
            ["numerics", "-f", "LYP", "--check", "sensitivity", "--component", "fc"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "kappa_rs" in out and "peaks at" in out

    def test_unknown_check_rejected(self, capsys):
        assert main(["numerics", "-f", "PBE", "--check", "vibes"]) == 1
        assert "unknown checks" in capsys.readouterr().err

    def test_unknown_functional(self, capsys):
        assert main(["numerics", "-f", "NOPE"]) == 1
