"""Tests for the Functional wrapper and the registry."""

import numpy as np
import pytest

from repro.expr.evaluator import evaluate
from repro.functionals import (
    Functional,
    all_functionals,
    get_functional,
    paper_functionals,
    register,
)
from repro.functionals.vars import C_LO, CX_RS


class TestRegistry:
    def test_paper_functionals_order(self):
        names = [f.name for f in paper_functionals()]
        assert names == ["PBE", "LYP", "AM05", "SCAN", "VWN RPA"]

    def test_lookup_case_insensitive(self):
        assert get_functional("pbe").name == "PBE"
        assert get_functional("vwn rpa").name == "VWN RPA"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_functional("B3LYP")

    def test_all_functionals_sorted(self):
        names = [f.name.lower() for f in all_functionals()]
        assert names == sorted(names)

    def test_double_register_rejected(self):
        with pytest.raises(ValueError):
            register(
                Functional(
                    name="PBE", family="GGA", category="non-empirical",
                    correlation_model=get_functional("PBE").correlation_model,
                )
            )


class TestFunctionalMetadata:
    def test_families(self):
        assert get_functional("VWN RPA").family == "LDA"
        assert get_functional("PBE").family == "GGA"
        assert get_functional("SCAN").family == "MGGA"

    def test_categories(self):
        assert get_functional("LYP").category == "empirical"
        assert get_functional("SCAN").category == "non-empirical"

    def test_invalid_family_rejected(self):
        with pytest.raises(ValueError):
            Functional(name="bad", family="GGGA", category="empirical")

    def test_invalid_category_rejected(self):
        with pytest.raises(ValueError):
            Functional(name="bad", family="GGA", category="fitted")

    def test_variables_by_family(self):
        assert [v.name for v in get_functional("VWN RPA").variables] == ["rs"]
        assert [v.name for v in get_functional("PBE").variables] == ["rs", "s"]
        assert [v.name for v in get_functional("SCAN").variables] == [
            "rs", "s", "alpha",
        ]

    def test_domains_match_paper(self):
        d = get_functional("PBE").domain()
        assert d["rs"].lo == pytest.approx(1e-4)
        assert d["rs"].hi == pytest.approx(5.0)
        assert d["s"].lo == 0.0 and d["s"].hi == 5.0
        d3 = get_functional("SCAN").domain()
        assert "alpha" in d3
        assert "alpha" not in get_functional("LYP").domain()

    def test_component_flags(self):
        assert get_functional("LYP").has_correlation
        assert not get_functional("LYP").has_exchange
        assert get_functional("PBE").has_exchange

    def test_missing_component_raises(self):
        with pytest.raises(ValueError):
            get_functional("LYP").eps_x()
        with pytest.raises(ValueError):
            get_functional("LYP").fx()


class TestEnhancementFactors:
    def test_fc_sign_convention(self):
        """F_c >= 0 iff eps_c <= 0 (eps_x^unif < 0)."""
        for name in ("PBE", "LYP", "AM05", "VWN RPA"):
            f = get_functional(name)
            env = {"rs": 2.0, "s": 2.5}
            eps = evaluate(f.eps_c(), env)
            fc = evaluate(f.fc(), env)
            assert (eps <= 0.0) == (fc >= 0.0), name

    def test_fc_equals_minus_rs_eps_over_cx(self):
        f = get_functional("PBE")
        env = {"rs": 1.7, "s": 0.9}
        eps = evaluate(f.eps_c(), env)
        fc = evaluate(f.fc(), env)
        assert fc == pytest.approx(-env["rs"] * eps / CX_RS, rel=1e-12)

    def test_fx_of_pbe_matches_closed_form(self):
        from repro.functionals.pbe import fx_pbe
        f = get_functional("PBE")
        for s in (0.0, 1.0, 3.0):
            assert evaluate(f.fx(), {"rs": 1.0, "s": s}) == pytest.approx(
                fx_pbe(s), rel=1e-12
            )

    def test_fxc_is_sum(self):
        f = get_functional("AM05")
        env = {"rs": 2.0, "s": 1.5}
        assert evaluate(f.fxc(), env) == pytest.approx(
            evaluate(f.fx(), env) + evaluate(f.fc(), env), rel=1e-12
        )

    def test_pbe_fxc_below_lieb_oxford(self):
        f = get_functional("PBE")
        k = f.fxc_kernel()
        rs, s = np.meshgrid(np.linspace(0.01, 5, 40), np.linspace(0, 5, 40), indexing="ij")
        assert np.nanmax(k(rs, s)) < C_LO

    def test_lifting_is_cached(self):
        f = get_functional("PBE")
        assert f.eps_c() is f.eps_c()
        assert f.fc_kernel() is f.fc_kernel()

    def test_complexity_reports_components(self):
        c = get_functional("PBE").complexity()
        assert set(c) == {"exchange", "correlation"}
        assert c["correlation"] > c["exchange"]

    def test_scan_is_most_complex(self):
        sizes = {
            f.name: sum(f.complexity().values()) for f in paper_functionals()
        }
        assert max(sizes, key=sizes.get) == "SCAN"


class TestKernels:
    def test_kernel_vectorisation_matches_scalar(self):
        f = get_functional("LYP")
        k = f.fc_kernel()
        rs = np.array([0.5, 1.0, 2.0])
        s = np.array([0.1, 1.0, 3.0])
        out = k(rs, s)
        for i in range(3):
            assert out[i] == pytest.approx(
                evaluate(f.fc(), {"rs": rs[i], "s": s[i]}), rel=1e-12
            )

    def test_lda_kernel_single_argument(self):
        f = get_functional("VWN RPA")
        k = f.fc_kernel()
        out = k(np.array([1.0, 2.0]))
        assert out.shape == (2,)

    def test_mgga_kernel_three_arguments(self):
        f = get_functional("SCAN")
        k = f.fc_kernel()
        out = k(np.array([1.0]), np.array([1.0]), np.array([2.0]))
        assert np.isfinite(out).all()
