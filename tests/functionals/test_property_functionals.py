"""Property-based tests over the DFA implementations.

Invariants checked on random domain points:

* lifted symbolic form == direct numeric execution of the model code,
* compiled kernels == scalar evaluation,
* interval enclosures contain point evaluations (the solver-facing
  soundness property for the *real* formulas, not just toy expressions).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.expr.evaluator import evaluate
from repro.functionals import get_functional, paper_functionals
from repro.solver.box import Box
from repro.solver.contractor import enclosure

from tests.support import hyp_examples

rs_vals = st.floats(min_value=1e-4, max_value=5.0, allow_nan=False)
s_vals = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
alpha_vals = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)

FUNCTIONALS = [f.name for f in paper_functionals()]


def env_for(functional, rs, s, alpha):
    names = [v.name for v in functional.variables]
    values = {"rs": rs, "s": s, "alpha": alpha}
    return {n: values[n] for n in names}


@given(name=st.sampled_from(FUNCTIONALS), rs=rs_vals, s=s_vals, alpha=alpha_vals)
@settings(max_examples=hyp_examples(120), deadline=None)
def test_lifted_matches_model_code(name, rs, s, alpha):
    f = get_functional(name)
    env = env_for(f, rs, s, alpha)
    args = [env[v.name] for v in f.variables]
    try:
        direct = f.correlation_model(*args)
    except ZeroDivisionError:
        assume(False)
    symbolic = evaluate(f.eps_c(), env)
    if math.isnan(symbolic):
        # scalar DAG evaluation computes both ITE branches; a diverging
        # untaken branch (alpha == 1 exactly) yields NaN -- skip
        assume(False)
    assert symbolic == pytest.approx(direct, rel=1e-9, abs=1e-12)


@given(name=st.sampled_from(FUNCTIONALS), rs=rs_vals, s=s_vals, alpha=alpha_vals)
@settings(max_examples=hyp_examples(120), deadline=None)
def test_kernel_matches_scalar(name, rs, s, alpha):
    f = get_functional(name)
    env = env_for(f, rs, s, alpha)
    scalar = evaluate(f.fc(), env)
    assume(math.isfinite(scalar))
    args = [np.float64(env[v.name]) for v in f.variables]
    vectorised = float(f.fc_kernel()(*args))
    assert vectorised == pytest.approx(scalar, rel=1e-9, abs=1e-12)


@given(
    name=st.sampled_from(["PBE", "LYP", "AM05", "VWN RPA"]),
    rs=st.floats(min_value=0.1, max_value=4.9),
    s=st.floats(min_value=0.1, max_value=4.9),
    w=st.floats(min_value=0.01, max_value=0.5),
)
@settings(max_examples=hyp_examples(80), deadline=None)
def test_enclosure_contains_point_value(name, rs, s, w):
    """Interval soundness on the actual F_c expressions."""
    f = get_functional(name)
    env = env_for(f, rs, s, 0.0)
    value = evaluate(f.fc(), env)
    assume(math.isfinite(value))
    bounds = {
        n: (max(1e-4 if n == "rs" else 0.0, v - w), min(5.0, v + w))
        for n, v in env.items()
    }
    box = Box.from_bounds(bounds)
    enc = enclosure(f.fc(), box)
    assert not enc.is_empty()
    assert enc.lo <= value <= enc.hi


@given(
    rs=st.floats(min_value=0.1, max_value=4.9),
    s=st.floats(min_value=0.1, max_value=4.9),
    alpha=st.floats(min_value=0.1, max_value=4.9),
    w=st.floats(min_value=0.01, max_value=0.3),
)
@settings(max_examples=hyp_examples(40), deadline=None)
def test_scan_enclosure_contains_point_value(rs, s, alpha, w):
    f = get_functional("SCAN")
    env = {"rs": rs, "s": s, "alpha": alpha}
    value = evaluate(f.fc(), env)
    assume(math.isfinite(value))
    bounds = {
        n: (max(1e-4 if n == "rs" else 0.0, v - w), min(5.0, v + w))
        for n, v in env.items()
    }
    enc = enclosure(f.fc(), Box.from_bounds(bounds))
    assert enc.lo <= value <= enc.hi


@given(
    name=st.sampled_from(FUNCTIONALS),
    rs=st.floats(min_value=0.01, max_value=5.0),
    s=st.floats(min_value=0.0, max_value=5.0),
    alpha=alpha_vals,
)
@settings(max_examples=hyp_examples(100), deadline=None)
def test_fc_sign_equivalence(name, rs, s, alpha):
    """EC1's two formulations agree: eps_c <= 0 iff F_c >= 0."""
    f = get_functional(name)
    env = env_for(f, rs, s, alpha)
    eps = evaluate(f.eps_c(), env)
    fc = evaluate(f.fc(), env)
    assume(math.isfinite(eps) and math.isfinite(fc))
    assume(abs(eps) > 1e-14)
    assert (eps < 0.0) == (fc > 0.0)
