"""Tests for the spin-polarised LDA substrate.

Anchors:

* f(0) = 0, f(+-1) = 1, f even in zeta;
* exchange spin scaling: eps_x(rs, 1) = 2^(1/3) eps_x(rs, 0) (exact);
* PW92: the zeta = 0 branch equals the pw92 module; the ferromagnetic
  branch carries less correlation; the spin stiffness alpha_c(rs) < 0;
* Ec non-positivity holds for every zeta -- verified both by sampling and
  by the delta-complete solver over the (rs, zeta) box.
"""


import numpy as np
import pytest

from repro.functionals.lda_x import eps_x_unif
from repro.functionals.pw92 import eps_c_pw92
from repro.functionals.spin import (
    FPP0,
    TWO_13,
    ZETA,
    eps_c_pw92_ferro,
    eps_c_pw92_para,
    eps_c_pw92_spin,
    eps_x_unif_spin,
    exchange_spin_factor,
    f_zeta,
    minus_alpha_c_pw92,
)


class TestSpinInterpolation:
    def test_endpoints(self):
        assert f_zeta(0.0) == pytest.approx(0.0)
        assert f_zeta(1.0) == pytest.approx(1.0)
        assert f_zeta(-1.0) == pytest.approx(1.0)

    def test_even(self):
        for z in (0.2, 0.5, 0.9):
            assert f_zeta(z) == pytest.approx(f_zeta(-z))

    def test_monotone_on_positive_half(self):
        values = [f_zeta(z) for z in np.linspace(0.0, 1.0, 50)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_curvature_matches_fpp0(self):
        h = 1e-5
        fpp = (f_zeta(h) - 2.0 * f_zeta(0.0) + f_zeta(-h)) / (h * h)
        assert fpp == pytest.approx(FPP0, rel=1e-4)


class TestExchangeSpinScaling:
    def test_unpolarised_factor_is_one(self):
        assert exchange_spin_factor(0.0) == pytest.approx(1.0)

    def test_ferromagnetic_enhancement(self):
        assert exchange_spin_factor(1.0) == pytest.approx(TWO_13)
        assert eps_x_unif_spin(2.0, 1.0) == pytest.approx(
            TWO_13 * eps_x_unif(2.0)
        )

    def test_exchange_more_negative_with_polarisation(self):
        for rs in (0.5, 1.0, 4.0):
            for z in (0.3, 0.7, 1.0):
                assert eps_x_unif_spin(rs, z) < eps_x_unif(rs)

    def test_spin_scaling_identity(self):
        # E_x[n_up, n_down] = (E_x[2 n_up] + E_x[2 n_down]) / 2, restated
        # per particle: the factor must equal the two-term average
        for z in (0.0, 0.25, 0.6, 1.0):
            lhs = exchange_spin_factor(z)
            rhs = 0.5 * ((1 + z) ** (4 / 3) + (1 - z) ** (4 / 3))
            assert lhs == pytest.approx(rhs, rel=1e-12)


class TestPW92Spin:
    def test_para_branch_matches_pw92_module(self):
        # PW92's published spin-fit table rounds A to 0.031091 while the
        # zeta = 0 module uses 0.0310907: agreement to ~3e-6 relative
        for rs in (0.1, 1.0, 5.0, 20.0):
            assert eps_c_pw92_para(rs) == pytest.approx(eps_c_pw92(rs), rel=1e-4)
            assert eps_c_pw92_spin(rs, 0.0) == pytest.approx(
                eps_c_pw92(rs), rel=1e-4
            )

    def test_ferro_branch_at_zeta_one(self):
        for rs in (0.5, 2.0, 10.0):
            assert eps_c_pw92_spin(rs, 1.0) == pytest.approx(
                eps_c_pw92_ferro(rs), rel=1e-10
            )

    def test_polarisation_reduces_correlation(self):
        # parallel spins avoid each other already: |eps_c| shrinks with zeta
        for rs in (0.5, 1.0, 5.0):
            assert abs(eps_c_pw92_ferro(rs)) < abs(eps_c_pw92_para(rs))
            assert eps_c_pw92_spin(rs, 1.0) > eps_c_pw92_spin(rs, 0.0)

    def test_spin_stiffness_sign_convention(self):
        # PW92 fit the *negated* stiffness with the (negative-valued) G
        # form: alpha_c = -G > 0, which pushes eps_c toward zero with zeta
        for rs in (0.1, 1.0, 10.0):
            assert minus_alpha_c_pw92(rs) < 0.0
            assert -minus_alpha_c_pw92(rs) > 0.0

    def test_even_in_zeta(self):
        for z in (0.25, 0.5, 0.9):
            assert eps_c_pw92_spin(2.0, z) == pytest.approx(
                eps_c_pw92_spin(2.0, -z), rel=1e-12
            )

    def test_nonpositive_everywhere_sampled(self):
        for rs in np.geomspace(1e-3, 50.0, 20):
            for z in np.linspace(-1.0, 1.0, 21):
                assert eps_c_pw92_spin(float(rs), float(z)) < 0.0

    def test_ferro_literature_value(self):
        # PW92 Table: eps_c(rs=2, zeta=1) ~ -0.0252 Ha? use the fit itself
        # as anchor at rs=1: about -0.0327 Ha (half the A of the para fit
        # dominates the high-density log)
        value = eps_c_pw92_ferro(1.0)
        assert -0.040 < value < -0.025


class TestLiftingAndVerification:
    def test_lifts_with_zeta_variable(self):
        from repro.functionals import vars as V
        from repro.pysym import lift

        expr = lift(eps_c_pw92_spin, V.RS, ZETA)
        names = {v.name for v in expr.free_vars()}
        assert names == {"rs", "zeta"}

    def test_exchange_lifts_and_matches(self):
        from repro.expr.evaluator import evaluate
        from repro.functionals import vars as V
        from repro.pysym import lift

        expr = lift(eps_x_unif_spin, V.RS, ZETA)
        assert evaluate(expr, {"rs": 2.0, "zeta": 0.5}) == pytest.approx(
            eps_x_unif_spin(2.0, 0.5), rel=1e-12
        )

    def test_ec1_verified_over_spin_box_by_icp(self):
        """Ec non-positivity of full PW92 proven over (rs, zeta) with the
        delta-complete solver -- the spin-resolved analogue of EC1."""
        from repro.functionals import vars as V
        from repro.pysym import lift
        from repro.solver import Atom, Box, Budget, Conjunction, ICPSolver

        eps_c = lift(eps_c_pw92_spin, V.RS, ZETA)
        # violation query: eps_c > 0 somewhere?
        formula = Conjunction.of(Atom(eps_c, ">"))
        box = Box.from_bounds({"rs": (1e-4, 5.0), "zeta": (-1.0, 1.0)})
        result = ICPSolver().solve(formula, box, Budget(max_steps=20_000))
        assert result.is_unsat  # verified: no positive correlation energy

    def test_hazards_over_spin_box(self):
        # (1 +- zeta)^(4/3) touches base 0 exactly at the box corners
        # zeta = -+1: delta-decidability cannot separate the boundary, so
        # those sites come back 'inconclusive'; nothing may actually
        # trigger (no 'hazard'/'benign' verdicts)
        from repro.functionals import vars as V
        from repro.numerics import check_hazards
        from repro.pysym import lift
        from repro.solver import Box

        expr = lift(eps_c_pw92_spin, V.RS, ZETA)
        box = Box.from_bounds({"rs": (1e-4, 5.0), "zeta": (-1.0, 1.0)})
        report = check_hazards(expr, box)
        assert not report.triggered()
        assert {v.status for v in report.verdicts} <= {
            "safe", "inconclusive", "timeout"
        }
        # shrinking the box off the corners proves totality outright
        inner = Box.from_bounds({"rs": (1e-4, 5.0), "zeta": (-0.999, 0.999)})
        assert check_hazards(expr, inner).is_total
