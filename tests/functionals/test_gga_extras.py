"""Tests for the extra GGA functionals (B88/BLYP, PW91, PBEsol, revPBE).

Anchors:

* B88: F_x(0) = 1, small-s coefficient 0.2743 (the shared PW91/B88
  gradient coefficient), F_x grows ~ x/asinh(x) at large s;
* PW91: F_x(0) = 1, designed to track PBE closely for s <= 3;
  correlation reduces to PW92 at s = 0 and its H1 term dies off as
  exp(-100 s^2);
* PBEsol: mu = 10/81 < mu_PBE, so weaker enhancement at small s;
  correlation reduces to PW92 at s = 0;
* revPBE: same small-s expansion as PBE (shared mu), larger saturation
  1 + 1.245; correlation is PBE's verbatim.
"""

import numpy as np
import pytest

from repro.functionals.b88 import AX_SPIN, BETA_B88, XS_B88, asinh, fx_b88
from repro.functionals.pbe import KAPPA, MU, eps_c_pbe, fx_pbe
from repro.functionals.pbe_variants import (
    BETA_SOL,
    KAPPA_REV,
    MU_SOL,
    eps_c_pbesol,
    eps_c_revpbe,
    fx_pbesol,
    fx_revpbe,
)
from repro.functionals.pw91 import cc_pw91, CC0, eps_c_pw91, fx_pw91
from repro.functionals.pw92 import eps_c_pw92


class TestB88:
    def test_asinh_helper(self):
        for u in (0.0, 0.5, 1.0, 10.0):
            assert asinh(u) == pytest.approx(np.arcsinh(u), rel=1e-12)

    def test_fx_at_zero(self):
        assert fx_b88(0.0) == pytest.approx(1.0)

    def test_small_s_gradient_coefficient(self):
        # beta/A_x * XS^2 = 0.2743...: the canonical B88 expansion
        coeff = (BETA_B88 / AX_SPIN) * XS_B88 * XS_B88
        assert coeff == pytest.approx(0.2743, abs=2e-4)
        s = 1e-5
        assert fx_b88(s) == pytest.approx(1.0 + coeff * s * s, rel=1e-8)

    def test_monotone_in_s(self):
        values = [fx_b88(s) for s in np.linspace(0.0, 5.0, 200)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_unbounded_unlike_pbe(self):
        # B88 has no kappa saturation; F_x keeps growing past PBE's bound
        assert fx_b88(50.0) > 1.0 + KAPPA

    def test_moderate_s_close_to_pbe(self):
        # B88 and PBE exchange were designed against the same physics and
        # share the small-s coefficient; B88's missing saturation lets the
        # gap open to ~12% by s = 3
        for s in np.linspace(0.0, 1.5, 16):
            assert fx_b88(float(s)) == pytest.approx(fx_pbe(float(s)), rel=0.03)
        for s in np.linspace(1.5, 3.0, 16):
            assert fx_b88(float(s)) == pytest.approx(fx_pbe(float(s)), rel=0.12)


class TestPW91Exchange:
    def test_fx_at_zero(self):
        assert fx_pw91(0.0) == pytest.approx(1.0)

    def test_small_s_expansion(self):
        # numerator expands to 1 + (0.19645*7.7956 + 0.2743 - 0.1508) s^2,
        # denominator to 1 + 0.19645*7.7956 s^2: net coefficient 0.1235
        s = 1e-5
        coeff = 0.2743 - 0.1508
        assert fx_pw91(s) == pytest.approx(1.0 + coeff * s * s, rel=1e-6)

    def test_tracks_pbe_over_physical_range(self):
        for s in np.linspace(0.0, 3.0, 30):
            assert fx_pw91(float(s)) == pytest.approx(fx_pbe(float(s)), abs=0.05)

    def test_turns_over_at_large_s(self):
        # unlike PBE, PW91's F_x eventually decreases (the s^4 denominator)
        assert fx_pw91(20.0) < fx_pw91(10.0)


class TestPW91Correlation:
    def test_cc_at_origin(self):
        assert cc_pw91(0.0) == pytest.approx(CC0, rel=1e-12)

    def test_reduces_to_pw92_at_s0(self):
        for rs in (0.5, 1.0, 3.0):
            assert eps_c_pw91(rs, 0.0) == pytest.approx(eps_c_pw92(rs), rel=1e-12)

    def test_h1_negligible_beyond_s1(self):
        # the H1 term carries exp(-100 s^2): invisible for s >= 1
        for rs in (0.5, 2.0):
            with_h1 = eps_c_pw91(rs, 1.5)
            # recompute via PBE-like H0-only by exploiting the tiny factor:
            assert abs(with_h1 - eps_c_pw91(rs, 1.5000001)) < 1e-6

    def test_close_to_pbe_correlation(self):
        # PBE was constructed to reproduce PW91 correlation closely
        # (the residual ~5e-3 Ha comes from PW91's H1 term)
        for rs in (0.5, 1.0, 2.0, 5.0):
            for s in (0.0, 0.5, 1.0, 2.0):
                assert eps_c_pw91(rs, s) == pytest.approx(
                    eps_c_pbe(rs, s), abs=6e-3
                )

    def test_gradient_correction_positive(self):
        for rs, s in ((0.5, 1.0), (2.0, 2.0), (4.0, 4.0)):
            assert eps_c_pw91(rs, s) > eps_c_pw92(rs)


class TestPBEsol:
    def test_fx_at_zero(self):
        assert fx_pbesol(0.0) == pytest.approx(1.0)

    def test_weaker_enhancement_than_pbe(self):
        assert MU_SOL < MU
        for s in np.linspace(0.1, 5.0, 20):
            assert fx_pbesol(float(s)) < fx_pbe(float(s))

    def test_same_saturation_as_pbe(self):
        assert fx_pbesol(1e6) == pytest.approx(1.0 + KAPPA, rel=1e-9)

    def test_correlation_reduces_to_pw92_at_s0(self):
        for rs in (0.5, 1.0, 3.0):
            assert eps_c_pbesol(rs, 0.0) == pytest.approx(eps_c_pw92(rs), rel=1e-12)

    def test_smaller_gradient_correction_than_pbe(self):
        assert BETA_SOL < 0.06672455060314922
        for rs, s in ((1.0, 1.0), (2.0, 2.0)):
            assert eps_c_pw92(rs) < eps_c_pbesol(rs, s) < eps_c_pbe(rs, s)

    def test_correlation_nonpositive(self):
        for rs in (0.01, 0.1, 1.0, 5.0):
            for s in (0.0, 1.0, 3.0, 5.0):
                assert eps_c_pbesol(rs, s) <= 1e-12


class TestRevPBE:
    def test_fx_at_zero(self):
        assert fx_revpbe(0.0) == pytest.approx(1.0)

    def test_same_small_s_expansion_as_pbe(self):
        s = 1e-5
        assert fx_revpbe(s) == pytest.approx(fx_pbe(s), rel=1e-9)

    def test_higher_saturation(self):
        assert fx_revpbe(1e6) == pytest.approx(1.0 + KAPPA_REV, rel=1e-9)
        assert fx_revpbe(3.0) > fx_pbe(3.0)

    def test_still_under_lieb_oxford_form(self):
        # 1 + 1.245 = 2.245 < 2.27: revPBE skirts the EC5 bound
        assert 1.0 + KAPPA_REV < 2.27

    def test_correlation_is_pbe(self):
        assert eps_c_revpbe is eps_c_pbe


class TestRegisteredGGAExtras:
    @pytest.mark.parametrize("name", ["BLYP", "PW91", "PBEsol", "revPBE"])
    def test_registered_and_lifts(self, name):
        from repro.functionals import get_functional

        f = get_functional(name)
        assert f.family == "GGA"
        counts = f.complexity()
        assert counts["correlation"] > 0

    def test_blyp_components(self):
        from repro.functionals import get_functional

        blyp = get_functional("BLYP")
        lyp = get_functional("LYP")
        rs, s = np.array([2.0]), np.array([1.0])
        assert blyp.eps_c_kernel()(rs, s) == pytest.approx(
            lyp.eps_c_kernel()(rs, s)
        )
        assert blyp.fx_kernel()(rs, s)[0] == pytest.approx(fx_b88(1.0), rel=1e-10)

    def test_blyp_inherits_lyp_ec1_violation_region(self):
        # BLYP's correlation is LYP: positive eps_c at large s
        from repro.functionals import get_functional

        blyp = get_functional("BLYP")
        k = blyp.eps_c_kernel()
        assert k(np.array([2.0]), np.array([3.0]))[0] > 0.0
