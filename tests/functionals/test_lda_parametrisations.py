"""Tests for the extra LDA correlation parametrisations (PZ81, VWN5, Wigner).

Literature anchors:

* PZ81 (zeta = 0): low-density branch at rs = 1 gives
  gamma/(1 + beta1 + beta2) = -0.059632; high-density branch gives
  B + D = -0.0596 -- the branches disagree by ~3.2e-5 Ha, the Section
  VI-C matching-point discontinuity;
* VWN5 fits the same Ceperley-Alder data as PW92, so the two agree to
  ~1e-3 Ha over the physical range;
* Wigner: eps_c(0) = -0.44/7.8, monotone increasing in rs.
"""

import math

import numpy as np
import pytest

from repro.functionals.pw92 import eps_c_pw92
from repro.functionals.pz81 import (
    A_PZ,
    B_PZ,
    D_PZ,
    BETA1_PZ,
    BETA2_PZ,
    GAMMA_PZ,
    RS_MATCH,
    eps_c_pz81,
    eps_c_pz81_high_density,
    eps_c_pz81_low_density,
)
from repro.functionals.vwn5 import eps_c_vwn5
from repro.functionals.vwn_rpa import eps_c_vwn_rpa
from repro.functionals.wigner import A_WIG, B_WIG, eps_c_wigner


class TestPZ81:
    def test_branch_selection(self):
        assert eps_c_pz81(0.5) == pytest.approx(eps_c_pz81_high_density(0.5))
        assert eps_c_pz81(2.0) == pytest.approx(eps_c_pz81_low_density(2.0))

    def test_low_density_value_at_match(self):
        expected = GAMMA_PZ / (1.0 + BETA1_PZ + BETA2_PZ)
        assert eps_c_pz81_low_density(1.0) == pytest.approx(expected, rel=1e-12)
        assert expected == pytest.approx(-0.059632, abs=1e-6)

    def test_high_density_value_at_match(self):
        assert eps_c_pz81_high_density(1.0) == pytest.approx(B_PZ + D_PZ, rel=1e-12)

    def test_matching_point_discontinuity(self):
        # The Section VI-C numerical issue: the published constants leave a
        # ~3.2e-5 Ha jump at rs = 1.
        jump = eps_c_pz81_high_density(RS_MATCH) - eps_c_pz81_low_density(RS_MATCH)
        assert jump == pytest.approx(3.2066e-5, rel=1e-3)
        # ... which IS a discontinuity of the glued model code:
        below = eps_c_pz81(RS_MATCH - 1e-12)
        above = eps_c_pz81(RS_MATCH + 1e-12)
        assert abs(below - above) > 3e-5

    def test_negative_everywhere(self):
        for rs in np.geomspace(1e-4, 100.0, 60):
            assert eps_c_pz81(float(rs)) < 0.0

    def test_monotone_increasing_in_rs_away_from_match(self):
        lo = [eps_c_pz81(float(r)) for r in np.linspace(0.01, 0.99, 50)]
        hi = [eps_c_pz81(float(r)) for r in np.linspace(1.01, 50.0, 50)]
        assert all(b > a for a, b in zip(lo, lo[1:]))
        assert all(b > a for a, b in zip(hi, hi[1:]))

    def test_high_density_log_divergence(self):
        e1 = eps_c_pz81(1e-6)
        e2 = eps_c_pz81(1e-7)
        assert (e2 - e1) == pytest.approx(A_PZ * math.log(0.1), rel=0.05)

    def test_tracks_pw92(self):
        # PZ81 and PW92 parametrise the same QMC data
        for rs in (0.1, 0.5, 2.0, 5.0, 10.0):
            assert eps_c_pz81(rs) == pytest.approx(eps_c_pw92(rs), abs=2e-3)


class TestVWN5:
    def test_value_at_rs1(self):
        # canonical VWN5 zeta=0 value, about -0.0600 Ha
        assert eps_c_vwn5(1.0) == pytest.approx(-0.0600, abs=5e-4)

    def test_tracks_pw92(self):
        for rs in (0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0):
            assert eps_c_vwn5(rs) == pytest.approx(eps_c_pw92(rs), abs=1.5e-3)

    def test_negative_and_monotone(self):
        values = [eps_c_vwn5(float(rs)) for rs in np.linspace(0.01, 50.0, 100)]
        assert all(v < 0 for v in values)
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_less_binding_than_rpa(self):
        # the RPA fit overbinds relative to the QMC fit
        for rs in (0.5, 1.0, 2.0, 5.0):
            assert eps_c_vwn_rpa(rs) < eps_c_vwn5(rs)

    def test_high_density_log_divergence(self):
        e1 = eps_c_vwn5(1e-6)
        e2 = eps_c_vwn5(1e-7)
        assert (e2 - e1) == pytest.approx(0.0310907 * math.log(0.1), rel=0.05)


class TestWigner:
    def test_value_at_origin(self):
        assert eps_c_wigner(0.0) == pytest.approx(-A_WIG / B_WIG)

    def test_negative_and_monotone(self):
        values = [eps_c_wigner(float(rs)) for rs in np.linspace(0.0, 100.0, 100)]
        assert all(v < 0 for v in values)
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_vanishes_at_low_density(self):
        assert eps_c_wigner(1e6) == pytest.approx(0.0, abs=1e-6)

    def test_right_order_of_magnitude(self):
        # Wigner's interpolation is crude but lands in the QMC ballpark
        assert eps_c_wigner(4.0) == pytest.approx(eps_c_pw92(4.0), abs=0.015)
