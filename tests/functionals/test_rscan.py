"""Tests for the regularized SCAN extension (paper Section VI-A outlook)."""

import math

import numpy as np
import pytest

from repro.expr.evaluator import evaluate
from repro.functionals import get_functional
from repro.functionals.rscan import (
    F_ALPHA_POLY,
    alpha_prime,
    eps_c_rscan,
    f_alpha_c_rscan,
    f_alpha_x_rscan,
    fx_rscan,
)
from repro.functionals.scan import eps_c_scan, f_alpha_x, fx_scan


class TestRegularisation:
    def test_alpha_prime_near_identity_away_from_zero(self):
        for a in (0.5, 1.0, 2.0, 5.0):
            assert alpha_prime(a) == pytest.approx(a, rel=5e-3)

    def test_alpha_prime_quenches_small_alpha(self):
        assert alpha_prime(0.0) == 0.0
        assert alpha_prime(1e-3) < 1e-3

    def test_interpolation_endpoints(self):
        # f(0) = 1 and f(1) = 0 exactly by construction of the coefficients
        assert sum(F_ALPHA_POLY) == pytest.approx(0.0, abs=1e-12)
        assert F_ALPHA_POLY[0] == 1.0

    def test_correlation_interpolation_endpoints(self):
        from repro.functionals.rscan import F_ALPHA_POLY_C

        assert sum(F_ALPHA_POLY_C) == pytest.approx(0.0, abs=1e-9)
        assert F_ALPHA_POLY_C[0] == 1.0

    def test_correlation_tail_continuity_at_crossover(self):
        # the correlation polynomial meets its own tail at alpha' = 2.5
        # (needs alpha where alpha' crosses 2.5: alpha' is near-identity)
        lo = f_alpha_c_rscan(2.5004)
        hi = f_alpha_c_rscan(2.5006)
        assert lo == pytest.approx(hi, abs=1e-3)

    def test_switching_function_smooth_at_alpha_one(self):
        # no essential singularity: values and slopes stay O(1) through 1
        h = 1e-6
        slope = (f_alpha_x_rscan(1.0 + h) - f_alpha_x_rscan(1.0 - h)) / (2 * h)
        assert abs(slope) < 10.0
        assert abs(f_alpha_x_rscan(1.0)) < 0.01

    def test_tail_matches_scan_form(self):
        # far above the crossover the tails coincide with SCAN's
        assert f_alpha_x_rscan(4.0) == pytest.approx(f_alpha_x(4.0), rel=5e-3)


class TestCloseToScan:
    @pytest.mark.parametrize("s,alpha", [(0.5, 0.5), (1.0, 1.3), (3.0, 2.0), (2.0, 0.2)])
    def test_exchange_close(self, s, alpha):
        assert fx_rscan(s, alpha) == pytest.approx(fx_scan(s, alpha), abs=0.02)

    @pytest.mark.parametrize("rs,s,alpha", [(0.5, 0.5, 0.5), (2.0, 1.0, 1.5), (4.0, 3.0, 3.0)])
    def test_correlation_close(self, rs, s, alpha):
        assert eps_c_rscan(rs, s, alpha) == pytest.approx(
            eps_c_scan(rs, s, alpha), abs=5e-3
        )

    def test_correlation_nonpositive_on_samples(self):
        for rs in (0.1, 1.0, 4.0):
            for s in (0.1, 1.0, 4.0):
                for alpha in (0.0, 0.5, 1.0, 2.0, 5.0):
                    assert eps_c_rscan(rs, s, alpha) <= 1e-10


class TestRegistryIntegration:
    def test_registered(self):
        f = get_functional("rSCAN")
        assert f.family == "MGGA"
        assert f.has_exchange and f.has_correlation

    def test_not_in_paper_set(self):
        from repro.functionals import paper_functionals
        assert "rSCAN" not in {f.name for f in paper_functionals()}

    def test_lifts_and_evaluates(self):
        f = get_functional("rSCAN")
        env = {"rs": 2.0, "s": 1.0, "alpha": 0.7}
        assert evaluate(f.fc(), env) == pytest.approx(
            -env["rs"] * eps_c_rscan(2.0, 1.0, 0.7) / 0.4581652932831429,
            rel=1e-10,
        )

    def test_kernel_finite_on_grid(self):
        f = get_functional("rSCAN")
        k = f.fc_kernel()
        rs, s, alpha = np.meshgrid(
            np.linspace(0.01, 5, 12),
            np.linspace(0, 5, 12),
            np.linspace(0, 5, 12),
            indexing="ij",
        )
        out = k(rs, s, alpha)
        assert np.isfinite(out).all()

    def test_conditions_apply(self):
        from repro.conditions import EC1, EC5
        f = get_functional("rSCAN")
        assert EC1.applies_to(f)
        assert EC5.applies_to(f)

    def test_scalar_eval_is_total_at_alpha_one(self):
        """Unlike SCAN, rSCAN has no diverging untaken branch at alpha = 1."""
        f = get_functional("rSCAN")
        value = evaluate(f.fc(), {"rs": 2.0, "s": 1.0, "alpha": 1.0})
        assert math.isfinite(value)
