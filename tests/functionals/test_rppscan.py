"""Tests for r++SCAN (regularised-indicator SCAN, Section VI-A progression).

Key properties:

* alpha~ = alpha / (1 + eta (5/3) s^2) -- equal to alpha at s = 0,
  strictly below it for s > 0;
* the switching function is the rSCAN polynomial evaluated at alpha~,
  continuous through alpha~ = 1 (no essential singularity) and matching
  the exponential tail at alpha~ = 2.5;
* r++SCAN tracks rSCAN closely at small s (where alpha' ~ alpha~ ~ alpha)
  and SCAN away from alpha = 1;
* the uniform-gas norm F_x(s=0, alpha=1) = 1 is restored *exactly* at
  s = 0 (rSCAN's alpha' breaks it slightly: alpha'(1) = 1/(1+1e-3)).
"""

import numpy as np
import pytest

from repro.functionals.rppscan import (
    ETA_RPP,
    alpha_tilde,
    eps_c_rppscan,
    f_alpha_c_rpp,
    f_alpha_x_rpp,
    fx_rppscan,
)
from repro.functionals.rscan import _f_poly, fx_rscan
from repro.functionals.scan import fx_scan, eps_c_scan
from repro.functionals.pw92 import eps_c_pw92


class TestAlphaTilde:
    def test_identity_at_s0(self):
        for a in (0.0, 0.5, 1.0, 3.0):
            assert alpha_tilde(0.0, a) == pytest.approx(a)

    def test_damped_for_positive_s(self):
        for a in (0.5, 1.0, 3.0):
            assert alpha_tilde(2.0, a) < a

    def test_damping_magnitude(self):
        # at s = 5: factor 1/(1 + 1e-3 * 5/3 * 25) ~ 0.96
        assert alpha_tilde(5.0, 1.0) == pytest.approx(
            1.0 / (1.0 + ETA_RPP * (5.0 / 3.0) * 25.0)
        )


class TestSwitchingFunction:
    def test_poly_endpoints(self):
        assert _f_poly(0.0) == pytest.approx(1.0)
        assert _f_poly(1.0) == pytest.approx(0.0, abs=5e-9)

    def test_continuity_at_alpha_one(self):
        # no singularity: the polynomial is smooth through alpha~ = 1
        below = f_alpha_x_rpp(0.5, 1.0 - 1e-9)
        above = f_alpha_x_rpp(0.5, 1.0 + 1e-9)
        assert below == pytest.approx(above, abs=1e-8)

    def test_tail_matching_at_switch(self):
        # each polynomial meets its own exponential tail at alpha~ = 2.5
        s = 0.0
        below = f_alpha_x_rpp(s, 2.5 - 1e-9)
        above = f_alpha_x_rpp(s, 2.5 + 1e-9)
        assert below == pytest.approx(above, abs=1e-6)
        c_below = f_alpha_c_rpp(s, 2.5 - 1e-9)
        c_above = f_alpha_c_rpp(s, 2.5 + 1e-9)
        assert c_below == pytest.approx(c_above, abs=1e-6)

    def test_guard_depends_on_s(self):
        # with s large enough, alpha = 2.5 is pulled below the switch so
        # the polynomial branch is taken; the two must still be close
        # (tail matches poly at the switch), but not the identical branch
        a_tilde = alpha_tilde(5.0, 2.51)
        assert a_tilde < 2.5  # polynomial branch
        assert f_alpha_x_rpp(5.0, 2.51) == pytest.approx(_f_poly(a_tilde))


class TestEnhancementFactor:
    def test_uniform_gas_norm_exact(self):
        assert fx_rppscan(1e-14, 1.0) == pytest.approx(1.0, rel=1e-10)

    def test_rscan_norm_error(self):
        # rSCAN's alpha' = 1/(1+1e-3) at alpha = 1 misses the norm slightly;
        # r++SCAN restores it (the design motivation for the change)
        rscan_err = abs(fx_rscan(1e-14, 1.0) - 1.0)
        rpp_err = abs(fx_rppscan(1e-14, 1.0) - 1.0)
        assert rpp_err < rscan_err

    def test_tracks_rscan_at_small_s(self):
        for alpha in (0.0, 0.5, 2.0):
            assert fx_rppscan(0.1, alpha) == pytest.approx(
                fx_rscan(0.1, alpha), abs=5e-3
            )

    def test_tracks_scan_away_from_alpha_one(self):
        for s, alpha in ((0.5, 0.0), (1.0, 3.0), (2.0, 0.2)):
            assert fx_rppscan(s, alpha) == pytest.approx(
                fx_scan(s, alpha), abs=0.02
            )

    def test_bounded_like_scan(self):
        for s in (1e-10, 0.5, 2.0, 5.0):
            for alpha in (0.0, 1.0, 3.0, 5.0):
                assert 0.0 < fx_rppscan(s, alpha) < 1.3


class TestCorrelation:
    def test_reduces_to_pw92_at_s0_alpha1(self):
        assert eps_c_rppscan(2.0, 1e-14, 1.0) == pytest.approx(
            eps_c_pw92(2.0), rel=1e-8
        )

    def test_continuity_at_alpha_one(self):
        below = eps_c_rppscan(2.0, 1.0, 1.0 - 1e-9)
        above = eps_c_rppscan(2.0, 1.0, 1.0 + 1e-9)
        assert below == pytest.approx(above, abs=1e-10)

    def test_nonpositive_on_samples(self):
        for rs in (0.1, 1.0, 4.0):
            for s in (0.1, 1.0, 4.0):
                for alpha in (0.0, 0.5, 1.0, 2.0, 5.0):
                    assert eps_c_rppscan(rs, s, alpha) <= 1e-10

    def test_tracks_scan_correlation(self):
        for rs, s, alpha in ((1.0, 0.5, 0.0), (2.0, 1.0, 2.0), (0.5, 2.0, 0.5)):
            assert eps_c_rppscan(rs, s, alpha) == pytest.approx(
                eps_c_scan(rs, s, alpha), abs=5e-3
            )


class TestLifting:
    def test_registered_and_lifts_with_ite(self):
        from repro.functionals import get_functional

        f = get_functional("r++SCAN")
        assert f.family == "MGGA"
        expr = f.eps_c()
        # the alpha~ < 2.5 guard must survive lifting as an Ite
        from repro.expr.nodes import Ite

        found = [False]

        def walk(e, seen=None):
            if seen is None:
                seen = set()
            if id(e) in seen:
                return
            seen.add(id(e))
            if isinstance(e, Ite):
                found[0] = True
            for child in e.children():
                walk(child, seen)

        walk(expr)
        assert found[0]

    def test_kernel_matches_model_code(self):
        from repro.functionals import get_functional

        f = get_functional("r++SCAN")
        k = f.eps_c_kernel()
        rs, s, alpha = 1.3, 0.7, 2.1
        got = k(np.array([rs]), np.array([s]), np.array([alpha]))[0]
        assert got == pytest.approx(eps_c_rppscan(rs, s, alpha), rel=1e-12)
