"""Reference-value and physics-invariant tests for the DFA substrate.

Literature anchors:

* PW92 (zeta = 0): eps_c(1) = -0.0598, eps_c(2) = -0.0448,
  eps_c(5) = -0.0282, eps_c(10) = -0.0186 Hartree (Perdew & Wang 1992);
* uniform-gas exchange: eps_x = -0.458165.../rs Hartree;
* VWN RPA tracks the RPA correlation energy (about -0.157 Ry at rs = 1);
* PBE: F_x(0) = 1, F_x -> 1 + kappa = 1.804, eps_c(rs, s=0) = PW92;
* SCAN: F_x(0, alpha=0) = h0x = 1.174, F_x(0, alpha=1) = 1 (uniform norm);
* AM05: F_x(0) = 1, eps_c(rs, s=0) = PW92.
"""

import math

import numpy as np
import pytest

from repro.functionals.lda_x import eps_x_unif
from repro.functionals.pw92 import eps_c_pw92
from repro.functionals.vwn_rpa import eps_c_vwn_rpa
from repro.functionals.pbe import KAPPA, MU, eps_c_pbe, fx_pbe
from repro.functionals.lyp import A_LYP, B_LYP, eps_c_lyp
from repro.functionals.am05 import eps_c_am05, fx_am05
from repro.functionals.scan import H0X, eps_c_scan, fx_scan
from repro.functionals.vars import CF_TF, CX_RS


class TestLDAExchange:
    def test_known_constant(self):
        assert CX_RS == pytest.approx(0.4581652932831429, rel=1e-12)

    def test_value_at_rs1(self):
        assert eps_x_unif(1.0) == pytest.approx(-0.458165, rel=1e-5)

    def test_scales_inversely_with_rs(self):
        assert eps_x_unif(2.0) == pytest.approx(eps_x_unif(1.0) / 2.0)

    def test_always_negative(self):
        for rs in (1e-4, 0.1, 1.0, 5.0, 100.0):
            assert eps_x_unif(rs) < 0.0


class TestPW92:
    @pytest.mark.parametrize(
        "rs,expected",
        [(1.0, -0.0598), (2.0, -0.0448), (5.0, -0.0282), (10.0, -0.0186)],
    )
    def test_literature_values(self, rs, expected):
        assert eps_c_pw92(rs) == pytest.approx(expected, abs=2e-4)

    def test_negative_everywhere(self):
        for rs in np.geomspace(1e-4, 1e3, 50):
            assert eps_c_pw92(float(rs)) < 0.0

    def test_monotone_increasing_in_rs(self):
        values = [eps_c_pw92(float(rs)) for rs in np.linspace(0.01, 50.0, 200)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_high_density_log_divergence(self):
        # eps_c ~ A ln(rs) as rs -> 0: ratio of eps at rs and rs/10
        e1 = eps_c_pw92(1e-6)
        e2 = eps_c_pw92(1e-7)
        assert (e2 - e1) == pytest.approx(0.0310907 * math.log(0.1), rel=0.05)


class TestVWNRPA:
    def test_rpa_scale_at_rs1(self):
        # RPA correlation energy at rs=1 is about -0.157 Ry = -0.0785 Ha
        assert eps_c_vwn_rpa(1.0) == pytest.approx(-0.0785, abs=2e-3)

    def test_negative_and_monotone(self):
        values = [eps_c_vwn_rpa(float(rs)) for rs in np.linspace(0.01, 50.0, 100)]
        assert all(v < 0 for v in values)
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_overestimates_true_correlation(self):
        # RPA overbinds: |eps_RPA| > |eps_PW92|
        for rs in (0.5, 1.0, 2.0, 5.0, 10.0):
            assert eps_c_vwn_rpa(rs) < eps_c_pw92(rs)


class TestPBE:
    def test_fx_at_zero(self):
        assert fx_pbe(0.0) == pytest.approx(1.0)

    def test_fx_value_at_one(self):
        assert fx_pbe(1.0) == pytest.approx(1.17243, abs=1e-5)

    def test_fx_small_s_expansion(self):
        s = 1e-4
        assert fx_pbe(s) == pytest.approx(1.0 + MU * s * s, rel=1e-6)

    def test_fx_saturates_below_lieb_oxford_form(self):
        assert fx_pbe(1e6) == pytest.approx(1.0 + KAPPA, rel=1e-9)

    def test_fx_monotone_in_s(self):
        values = [fx_pbe(s) for s in np.linspace(0.0, 5.0, 100)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_correlation_reduces_to_pw92_at_s0(self):
        for rs in (0.5, 1.0, 3.0):
            assert eps_c_pbe(rs, 0.0) == pytest.approx(eps_c_pw92(rs), rel=1e-12)

    def test_gradient_correction_is_positive(self):
        for rs, s in ((0.5, 1.0), (2.0, 2.0), (4.0, 4.0)):
            assert eps_c_pbe(rs, s) > eps_c_pw92(rs)

    def test_correlation_nonpositive(self):
        # the EC1 design property of PBE
        for rs in (0.01, 0.1, 1.0, 5.0):
            for s in (0.0, 1.0, 3.0, 5.0):
                assert eps_c_pbe(rs, s) <= 1e-12


class TestLYP:
    def test_high_density_limit(self):
        expected = -A_LYP * (1.0 + B_LYP * CF_TF)
        assert eps_c_lyp(1e-10, 0.0) == pytest.approx(expected, rel=1e-6)

    def test_negative_at_small_gradient(self):
        for rs in (0.1, 1.0, 5.0):
            assert eps_c_lyp(rs, 0.5) < 0.0

    def test_positive_at_large_gradient(self):
        # the paper's EC1 counterexample region (s > ~1.7)
        for rs in (1.0, 2.0, 3.0):
            assert eps_c_lyp(rs, 3.0) > 0.0

    def test_violation_threshold_location(self):
        # at rs = 2 the sign change happens between s = 1.6 and s = 1.8
        assert eps_c_lyp(2.0, 1.6) < 0.0
        assert eps_c_lyp(2.0, 1.8) > 0.0


class TestAM05:
    def test_fx_at_zero_is_one(self):
        assert fx_am05(0.0) == pytest.approx(1.0, rel=1e-10)

    def test_fx_increasing_then_bounded(self):
        values = [fx_am05(s) for s in np.linspace(0.0, 5.0, 50)]
        assert all(v >= 1.0 - 1e-12 for v in values)
        assert max(values) < 2.27  # stays under the Lieb-Oxford form

    def test_correlation_reduces_to_pw92_at_s0(self):
        for rs in (0.5, 2.0, 4.0):
            assert eps_c_am05(rs, 0.0) == pytest.approx(eps_c_pw92(rs), rel=1e-12)

    def test_correlation_interpolates_to_gamma_fraction(self):
        from repro.functionals.am05 import GAMMA_AM05
        rs = 2.0
        # s -> infinity: eps_c -> gamma * PW92
        assert eps_c_am05(rs, 1e4) == pytest.approx(
            GAMMA_AM05 * eps_c_pw92(rs), rel=1e-4
        )

    def test_correlation_nonpositive(self):
        for rs in (0.01, 1.0, 5.0):
            for s in (0.0, 2.0, 5.0):
                assert eps_c_am05(rs, s) < 0.0


class TestSCAN:
    def test_single_orbital_norm(self):
        assert fx_scan(1e-14, 0.0) == pytest.approx(H0X, rel=1e-10)

    def test_uniform_gas_norm(self):
        assert fx_scan(1e-14, 1.0) == pytest.approx(1.0, rel=1e-10)

    def test_continuity_at_alpha_one(self):
        for s in (0.5, 1.0, 3.0):
            below = fx_scan(s, 1.0 - 1e-9)
            at = fx_scan(s, 1.0)
            above = fx_scan(s, 1.0 + 1e-9)
            assert below == pytest.approx(at, abs=1e-7)
            assert above == pytest.approx(at, abs=1e-7)

    def test_correlation_continuity_at_alpha_one(self):
        below = eps_c_scan(2.0, 1.0, 1.0 - 1e-9)
        above = eps_c_scan(2.0, 1.0, 1.0 + 1e-9)
        assert below == pytest.approx(above, abs=1e-7)

    def test_correlation_nonpositive_on_samples(self):
        # SCAN is built to satisfy EC1
        for rs in (0.1, 1.0, 4.0):
            for s in (0.1, 1.0, 4.0):
                for alpha in (0.0, 0.5, 1.0, 2.0, 5.0):
                    assert eps_c_scan(rs, s, alpha) <= 1e-10

    def test_correlation_reduces_to_pw92_like_at_alpha1_s0(self):
        # at s = 0, alpha = 1: eps_c = eps_c1 = PW92 + H1(t=0) = PW92
        assert eps_c_scan(2.0, 1e-14, 1.0) == pytest.approx(
            eps_c_pw92(2.0), rel=1e-8
        )

    def test_exchange_bounded_by_lieb_oxford(self):
        # SCAN satisfies F_x <= 1.174 * 1.065 < 2.27 by design
        for s in (0.0, 0.5, 2.0, 5.0):
            for alpha in (0.0, 1.0, 3.0):
                assert fx_scan(max(s, 1e-14), alpha) < 1.25
