"""Tests for the SymPy round-trip bridge."""


import pytest
import sympy as sp

from repro.expr import builder as b
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Var
from repro.expr.sympy_bridge import from_sympy, sympy_derivative, to_sympy

X = Var("x")
S = Var("s", nonneg=True)


def roundtrip_value(expr, env):
    back = from_sympy(to_sympy(expr))
    return evaluate(back, env), evaluate(expr, env)


class TestToSympy:
    def test_arithmetic(self):
        e = (X + 1.0) * (X - 2.0)
        sym = to_sympy(e)
        assert float(sym.subs({sp.Symbol("x", real=True): 3.0})) == pytest.approx(4.0)

    def test_functions(self):
        e = b.exp(X) + b.atan(X) + b.tanh(X)
        sym = to_sympy(e)
        val = float(sym.subs({sp.Symbol("x", real=True): 0.5}))
        assert val == pytest.approx(evaluate(e, {"x": 0.5}), rel=1e-12)

    def test_lambertw(self):
        sym = to_sympy(b.lambertw(X))
        assert sym.has(sp.LambertW)

    def test_ite_becomes_piecewise(self):
        e = b.ite(X.lt(0.0), -X, X)
        sym = to_sympy(e)
        assert isinstance(sym, sp.Piecewise)

    def test_nonneg_tag_propagates(self):
        sym = to_sympy(S)
        assert sym.is_nonnegative


class TestRoundTrip:
    @pytest.mark.parametrize(
        "make_expr,env",
        [
            (lambda: b.exp(-(X**2)) * b.log(X + 2.0), {"x": 0.7}),
            (lambda: b.atan(X) / (1.0 + X**2), {"x": 1.4}),
            (lambda: b.pow_(S, 1.5) + b.pow_(S, -0.5), {"s": 2.0}),
            (lambda: b.abs_(X) + b.erf(X), {"x": -0.9}),
            (lambda: b.lambertw(S), {"s": 1.1}),
        ],
    )
    def test_value_preserved(self, make_expr, env):
        e = make_expr()
        back_val, orig_val = roundtrip_value(e, env)
        assert back_val == pytest.approx(orig_val, rel=1e-10)

    def test_piecewise_roundtrip(self):
        e = b.ite(X.le(0.0), b.const(1.0), b.exp(-X))
        back = from_sympy(to_sympy(e))
        for xv in (-1.0, 0.0, 1.0):
            assert evaluate(back, {"x": xv}) == pytest.approx(
                evaluate(e, {"x": xv})
            )


class TestSympyDerivative:
    def test_matches_own_engine(self):
        from repro.expr.derivative import derivative

        e = b.exp(-X) * b.log(1.0 + X**2)
        ours = evaluate(derivative(e, X), {"x": 1.2})
        theirs = evaluate(sympy_derivative(e, X), {"x": 1.2})
        assert ours == pytest.approx(theirs, rel=1e-10)

    def test_functional_cross_check(self):
        """Cross-validate d F_c / d rs for PBE via SymPy (paper's tool)."""
        from repro.expr.derivative import derivative
        from repro.functionals import get_functional
        from repro.functionals.vars import RS

        fc = get_functional("PBE").fc()
        ours = derivative(fc, RS)
        theirs = sympy_derivative(fc, RS)
        for env in ({"rs": 0.5, "s": 1.0}, {"rs": 3.0, "s": 4.0}):
            assert evaluate(ours, env) == pytest.approx(
                evaluate(theirs, env), rel=1e-8
            )
