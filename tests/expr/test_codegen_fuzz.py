"""Randomized differential corpus: ``compile_numpy`` vs ``evaluate``.

Generates expressions including Ite (with guards at overflow scale),
transcendentals, fractional/negative powers and domain-edge inputs, and
pins the compiled NumPy kernel against the scalar evaluator under the
"IEEE-kernel semantics" contract documented in :mod:`repro.expr.codegen`:

* wherever the (partial) scalar evaluator produces a value, the (total)
  kernel must agree;
* Ite branch selection must agree *exactly* -- including when both guard
  operands overflow to the same infinity, the regression this corpus was
  built around;
* where the scalar evaluator refuses (NaN in non-strict mode), the
  kernel is unconstrained -- that divergence is the documented contract,
  not a bug.

Budgets scale through ``tests.support.hyp_examples`` for the nightly 25x
run.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import builder as b
from repro.expr.codegen import compile_numpy
from repro.expr.evaluator import evaluate, evaluate_tree
from repro.expr.nodes import Var
from tests.support import hyp_examples

X = Var("x")
Y = Var("y")

#: constants for guard operands: moderate, overflow-scale and tiny --
#: products of these drive Ite guard operands to the same infinity
GUARD_CONSTS = st.sampled_from(
    [0.0, 1.0, -1.0, 0.5, -3.0, 1e200, -1e200, 1e-300, 2.0, 7.5]
)

#: moderate constants for the smooth-value corpus
SMOOTH_CONSTS = st.sampled_from([0.0, 1.0, -1.0, 0.5, -0.25, 2.0, 3.0, -2.5])

REL_OPS = st.sampled_from(["le", "lt", "ge", "gt"])


def _kernel_value(expr, env):
    kernel = compile_numpy(expr)
    args = [np.asarray(env[name], dtype=float) for name in kernel.__arg_order__]
    return float(kernel(*args))


# ---------------------------------------------------------------------------
# part 1: Ite branch selection, exact (indicator branches)
# ---------------------------------------------------------------------------
#
# Guard operands use only ops whose scalar and kernel lowerings round
# identically (2-ary add, multiplication chains), so whenever the scalar
# evaluator reaches a verdict the kernel must reach the *same branch* --
# bitwise, no tolerance.  Branch bodies are distinct integer constants, so
# a wrong branch is a loud, exact mismatch.

def _contains_pow(expr) -> bool:
    """Whether a Pow node survives anywhere in ``expr``.

    The builder's canonicalising constructors collapse repeated factors
    (``mul(x, mul(x, x))`` -> ``x**3``), so a "multiplication chain"
    corpus silently grows Pow nodes -- whose kernel lowering (mult chain
    / np.power) and scalar lowering (libm pow) legitimately differ by an
    ulp (see "IEEE-kernel semantics" in repro/expr/codegen.py; witness:
    ``ite(x**3*y < x**4, 1, -1)`` at x = y = 0.3 picks different
    branches).  Exact branch-selection equality is only promised for
    add/mul/const/var operands, so Pow-carrying guards are discarded.
    """
    from repro.expr.nodes import Add, Mul, Pow

    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Pow):
            return True
        if isinstance(node, (Add, Mul)):
            stack.extend(node.args)
    return False


def guard_operands(depth: int = 2):
    leaf = st.one_of(GUARD_CONSTS.map(b.const), st.sampled_from([X, Y]))
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda t: b.mul(t[0], t[1])),
            st.tuples(children, children).map(lambda t: b.add(t[0], t[1])),
        ),
        max_leaves=6,
    ).filter(lambda expr: not _contains_pow(expr))


@st.composite
def ite_indicator_exprs(draw):
    lhs = draw(guard_operands())
    rhs = draw(guard_operands())
    op = draw(REL_OPS)
    guard = getattr(lhs, op)(rhs)
    then = b.const(draw(st.sampled_from([1.0, 2.0, 5.0])))
    orelse = b.const(draw(st.sampled_from([-1.0, -2.0, -5.0])))
    if draw(st.booleans()):
        inner_guard = getattr(draw(guard_operands()), draw(REL_OPS))(
            draw(guard_operands())
        )
        orelse = b.ite(inner_guard, b.const(-7.0), b.const(9.0))
    return b.ite(guard, then, orelse)


ENV_VALUES = st.one_of(
    st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
    st.sampled_from([0.0, 1e-300, -1e-300, 1e154, -1e154, 1e308, -1e308]),
)


class TestIteBranchSelection:
    @settings(max_examples=hyp_examples(200),
              deadline=None)
    @given(ite_indicator_exprs(), ENV_VALUES, ENV_VALUES)
    def test_kernel_selects_same_branch_as_scalar(self, expr, x, y):
        env = {"x": x, "y": y}
        scalar = evaluate(expr, env)
        if math.isnan(scalar):
            return  # scalar refused (NaN guard operand): kernel unconstrained
        assert _kernel_value(expr, env) == scalar

    @settings(max_examples=hyp_examples(200),
              deadline=None)
    @given(ite_indicator_exprs(), ENV_VALUES, ENV_VALUES)
    def test_tape_and_tree_evaluators_agree(self, expr, x, y):
        env = {"x": x, "y": y}
        tape = evaluate(expr, env)
        tree = evaluate_tree(expr, env)
        assert (math.isnan(tape) and math.isnan(tree)) or tape == tree


# ---------------------------------------------------------------------------
# part 2: smooth-value agreement (no Ite, moderate magnitudes)
# ---------------------------------------------------------------------------
#
# Full operator mix including partial operations at their domain edges.
# Sums associate differently (math.fsum vs left-to-right), so agreement
# is up to tolerance; NaN from the scalar evaluator again means no claim.

def _build(op, *args):
    """Apply a builder op, degrading to the first argument when the
    builder itself rejects the combination (symbolic division by a
    constant zero, constant folding outside a domain, ...)."""
    try:
        return op(*args)
    except (ZeroDivisionError, ValueError, OverflowError):
        return args[0] if args else b.const(1.0)


def smooth_exprs():
    leaf = st.one_of(SMOOTH_CONSTS.map(b.const), st.sampled_from([X, Y]))
    unary = st.sampled_from(
        [b.exp, b.log, b.sqrt, b.cbrt, b.atan, b.abs_, b.tanh, b.sin, b.cos, b.erf]
    )
    exponent = st.sampled_from([2.0, 3.0, -1.0, 0.5, -0.5, 1.5, -2.0])
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda t: _build(b.add, t[0], t[1])),
            st.tuples(children, children).map(lambda t: _build(b.mul, t[0], t[1])),
            st.tuples(children, children).map(lambda t: _build(b.sub, t[0], t[1])),
            st.tuples(children, children).map(lambda t: _build(b.div, t[0], t[1])),
            st.tuples(unary, children).map(lambda t: _build(t[0], t[1])),
            st.tuples(children, exponent).map(lambda t: _build(b.pow_, t[0], t[1])),
        ),
        max_leaves=8,
    )


SMOOTH_ENV = st.one_of(
    st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
    st.sampled_from([0.0, -1.0, 1e-300, 4.0]),
)


class TestSmoothValueAgreement:
    @settings(max_examples=hyp_examples(300),
              deadline=None)
    @given(smooth_exprs(), SMOOTH_ENV, SMOOTH_ENV)
    def test_kernel_matches_scalar_where_scalar_defined(self, expr, x, y):
        env = {"x": x, "y": y}
        scalar = evaluate(expr, env)
        if math.isnan(scalar) or abs(scalar) > 1e300:
            return  # scalar refused or sits at the overflow boundary
        kernel = _kernel_value(expr, env)
        assert math.isclose(kernel, scalar, rel_tol=1e-9, abs_tol=1e-12), (
            expr, env, kernel, scalar
        )

    @settings(max_examples=hyp_examples(150),
              deadline=None)
    @given(smooth_exprs(), SMOOTH_ENV, SMOOTH_ENV)
    def test_scalar_nan_matches_strictness_contract(self, expr, x, y):
        """Non-strict NaN iff strict raises: the two scalar modes agree."""
        from repro.expr.evaluator import EvalError

        env = {"x": x, "y": y}
        value = evaluate(expr, env)
        if math.isnan(value):
            try:
                strict = evaluate(expr, env, strict=True)
            except (EvalError, OverflowError, ZeroDivisionError):
                return
            assert math.isnan(strict)
        else:
            assert evaluate(expr, env, strict=True) == value
