"""Tests for NumPy kernel compilation."""

import math

import numpy as np
import pytest

from repro.expr import builder as b
from repro.expr.codegen import compile_numpy
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Var

X = Var("x")
Y = Var("y")
S = Var("s", nonneg=True)


class TestCompilation:
    def test_scalar_input(self):
        k = compile_numpy(b.exp(X))
        assert float(k(1.0)) == pytest.approx(math.e)

    def test_array_input(self):
        k = compile_numpy(X**2 + 1.0)
        out = k(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(out, [2.0, 5.0, 10.0])

    def test_argument_order_default_sorted(self):
        k = compile_numpy(X - Y)
        assert k.__arg_order__ == ("x", "y")
        assert float(k(5.0, 3.0)) == pytest.approx(2.0)

    def test_explicit_argument_order(self):
        k = compile_numpy(X - Y, arg_order=(Y, X))
        assert float(k(3.0, 5.0)) == pytest.approx(2.0)

    def test_extra_args_allowed_in_order(self):
        k = compile_numpy(X + 1.0, arg_order=(X, Y))
        out = k(np.array([1.0]), np.array([99.0]))
        np.testing.assert_allclose(out, [2.0])

    def test_missing_variable_rejected(self):
        with pytest.raises(ValueError):
            compile_numpy(X + Y, arg_order=(X,))

    def test_constant_expression_broadcasts(self):
        k = compile_numpy(b.const(7.0), arg_order=(X,))
        out = k(np.zeros(5))
        np.testing.assert_allclose(out, np.full(5, 7.0))

    def test_source_attached(self):
        k = compile_numpy(b.exp(X))
        assert "np.exp" in k.__source__

    def test_broadcasting_2d(self):
        k = compile_numpy(X * Y)
        xs = np.array([[1.0], [2.0]])
        ys = np.array([[3.0, 4.0]])
        np.testing.assert_allclose(k(xs, ys), [[3.0, 4.0], [6.0, 8.0]])


class TestAgreementWithScalarEval:
    @pytest.mark.parametrize(
        "make_expr,env",
        [
            (lambda: b.exp(-X) * (1 + X**2), {"x": 1.7}),
            (lambda: b.log(1 + S**2) / (S + 1.0), {"s": 0.9}),
            (lambda: b.atan(X) + b.tanh(X) - b.sin(X) * b.cos(X), {"x": 0.3}),
            (lambda: b.lambertw(S) + b.cbrt(S), {"s": 2.5}),
            (lambda: b.erf(X) * b.abs_(X), {"x": -1.2}),
            (lambda: b.pow_(S, -1.5) + b.pow_(S, 2.0), {"s": 0.7}),
        ],
    )
    def test_kernel_matches_evaluate(self, make_expr, env):
        e = make_expr()
        k = compile_numpy(e)
        names = k.__arg_order__
        args = [env[n] for n in names]
        assert float(k(*args)) == pytest.approx(evaluate(e, env), rel=1e-12)

    def test_out_of_domain_yields_nonfinite_not_exception(self):
        e = b.log(X)
        k = compile_numpy(e)
        out = k(np.array([-1.0, 0.0, 1.0]))
        assert np.isnan(out[0])
        assert np.isneginf(out[1])
        assert out[2] == pytest.approx(0.0)

    def test_ite_compiles_to_where(self):
        e = b.ite(X.lt(0.0), -X, X)
        k = compile_numpy(e)
        np.testing.assert_allclose(k(np.array([-2.0, 3.0])), [2.0, 3.0])

    def test_integer_power_unrolled(self):
        e = b.pow_(X, 3.0)
        k = compile_numpy(e)
        assert "np.power" not in k.__source__
        np.testing.assert_allclose(k(np.array([2.0])), [8.0])

    def test_functional_kernels_match_scalar(self):
        from repro.functionals import paper_functionals

        envs = [
            {"rs": 0.5, "s": 0.3, "alpha": 0.2},
            {"rs": 2.0, "s": 2.5, "alpha": 1.7},
            {"rs": 4.5, "s": 4.9, "alpha": 4.0},
        ]
        for f in paper_functionals():
            k = f.fc_kernel()
            fc = f.fc()
            for env in envs:
                args = [env[v.name] for v in f.variables]
                assert float(k(*args)) == pytest.approx(
                    evaluate(fc, env), rel=1e-10
                ), f"{f.name} kernel mismatch at {env}"


class TestIteOverflowSemantics:
    """Ite guards compare operands directly, never via ``(lhs - rhs) op 0``.

    Regression for an unsound lowering: when both guard operands overflow
    to the same infinity, ``inf - inf`` is NaN, every comparison against 0
    is False, and the gap encoding silently took the else branch -- while
    the scalar evaluator (which now also compares operands directly) still
    orders the two infinities correctly.
    """

    def _both_inf_expr(self):
        # at x >= 1e109, 1e200*x and 2e200*x both overflow to +inf (plain
        # float multiplication saturates in the scalar evaluator too); the
        # guard 1e200*x <= 2e200*x is true for every positive x
        return b.ite(
            b.mul(1e200, X).le(b.mul(2e200, X)), b.const(1.0), b.const(-1.0)
        )

    def test_overflowed_guard_takes_true_branch(self):
        k = compile_numpy(self._both_inf_expr())
        out = k(np.array([1e200, 1e308, 3.0]))
        np.testing.assert_array_equal(out, [1.0, 1.0, 1.0])

    def test_overflowed_guard_matches_scalar_evaluator(self):
        e = self._both_inf_expr()
        k = compile_numpy(e)
        for x in (1e200, 1e308, 0.5, 3.0):
            assert float(k(x)) == evaluate(e, {"x": x}), x

    def test_scalar_tree_and_tape_agree_on_inf_operands(self):
        from repro.expr.evaluator import evaluate_tree

        e = self._both_inf_expr()
        for x in (1e200, 1e308):
            assert evaluate(e, {"x": x}) == 1.0
            assert evaluate_tree(e, {"x": x}) == 1.0

    def test_strict_inequality_on_equal_infinities(self):
        # inf < inf is False: the else branch, in kernel and scalar alike
        e = b.ite(
            b.mul(1e200, X).lt(b.mul(2e200, X)), b.const(1.0), b.const(-1.0)
        )
        k = compile_numpy(e)
        assert float(k(1e200)) == -1.0
        assert evaluate(e, {"x": 1e200}) == -1.0
        # ...while at finite scale the guard is genuinely strict
        assert float(k(3.0)) == 1.0
        assert evaluate(e, {"x": 3.0}) == 1.0

    def test_nan_guard_operand_is_documented_divergence(self):
        # kernel: NaN comparison is False -> else branch (total semantics);
        # scalar evaluator: EvalError -> NaN (partial semantics)
        e = b.ite(b.log(X).le(b.const(0.0)), b.const(1.0), b.const(-1.0))
        k = compile_numpy(e)
        assert float(k(-1.0)) == -1.0  # log(-1) = NaN -> else branch
        assert math.isnan(evaluate(e, {"x": -1.0}))

    def test_nonfinite_constants_compile(self):
        # constant folding can produce Const(inf); repr(inf) = "inf" is
        # not a defined name inside the kernel (was: NameError)
        e = b.mul(b.const(1e200), b.const(1e200))  # folds to Const(inf)
        k = compile_numpy(e, arg_order=(X,))
        assert float(k(1.0)) == math.inf
        assert evaluate(e, {"x": 1.0}) == math.inf
        # ...and the printer no longer chokes on them (was: OverflowError)
        from repro.expr.nodes import Const

        assert repr(Const(math.inf)) == "inf"
        assert repr(Const(math.nan)) == "nan"

    def test_power_nan_semantics_documented(self):
        # np.power(negative, fractional) is a silent NaN in the kernel;
        # the scalar evaluator raises (NaN in non-strict mode)
        e = b.pow_(X, 0.5)
        k = compile_numpy(e)
        assert math.isnan(float(k(-2.0)))
        assert math.isnan(evaluate(e, {"x": -2.0}))
        with pytest.raises(Exception):
            evaluate(e, {"x": -2.0}, strict=True)
        assert "IEEE-kernel semantics" in __import__("repro.expr.codegen", fromlist=["x"]).__doc__
