"""Tests for the symbolic differentiation engine."""

import math

import pytest

from repro.expr import builder as b
from repro.expr.derivative import derivative, gradient
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Const, Var

X = Var("x")
Y = Var("y")
S = Var("s", nonneg=True)


def dval(expr, wrt, point, order=1):
    return evaluate(derivative(expr, wrt, order), point)


def fd(fn, x0, h=1e-6):
    return (fn(x0 + h) - fn(x0 - h)) / (2.0 * h)


class TestBasicRules:
    def test_constant(self):
        assert derivative(Const(3.0), X) is Const(0.0)

    def test_variable(self):
        assert derivative(X, X) is Const(1.0)
        assert derivative(Y, X) is Const(0.0)

    def test_linearity(self):
        e = b.add(b.mul(3.0, X), b.mul(5.0, Y))
        assert derivative(e, X) is Const(3.0)
        assert derivative(e, Y) is Const(5.0)

    def test_product_rule_binary(self):
        e = b.mul(X, Y)
        assert dval(e, X, {"x": 2.0, "y": 7.0}) == pytest.approx(7.0)

    def test_product_rule_nary(self):
        e = b.mul(X, Y, b.exp(X))
        point = {"x": 0.5, "y": 2.0}
        expected = fd(lambda t: t * 2.0 * math.exp(t), 0.5)
        assert dval(e, X, point) == pytest.approx(expected, rel=1e-8)

    def test_quotient(self):
        e = b.div(X, b.add(X, 1.0))
        expected = fd(lambda t: t / (t + 1.0), 2.0)
        assert dval(e, X, {"x": 2.0}) == pytest.approx(expected, rel=1e-8)

    def test_power_constant_exponent(self):
        e = b.pow_(X, 5.0)
        assert dval(e, X, {"x": 2.0}) == pytest.approx(5 * 2.0**4)

    def test_power_negative_exponent(self):
        e = b.pow_(X, -2.0)
        assert dval(e, X, {"x": 2.0}) == pytest.approx(-2 * 2.0**-3)

    def test_power_fractional_exponent(self):
        e = b.pow_(S, 1.0 / 3.0)
        expected = (1.0 / 3.0) * 8.0 ** (-2.0 / 3.0)
        assert dval(e, S, {"s": 8.0}) == pytest.approx(expected)

    def test_general_power_symbolic_exponent(self):
        e = b.pow_(S, X)  # s**x
        point = {"s": 2.0, "x": 3.0}
        # d/dx s**x = s**x log s
        assert dval(e, X, point) == pytest.approx(8.0 * math.log(2.0))
        # d/ds s**x = x s**(x-1)
        assert dval(e, S, point) == pytest.approx(3.0 * 4.0)

    def test_second_derivative(self):
        e = b.pow_(X, 4.0)
        assert dval(e, X, {"x": 3.0}, order=2) == pytest.approx(12 * 9.0)

    def test_zeroth_derivative_is_identity(self):
        e = b.exp(X)
        assert derivative(e, X, order=0) is e

    def test_negative_order_rejected(self):
        with pytest.raises(ValueError):
            derivative(X, X, order=-1)

    def test_gradient(self):
        e = b.add(b.pow_(X, 2.0), b.mul(3.0, Y))
        gx, gy = gradient(e, (X, Y))
        assert evaluate(gx, {"x": 2.0, "y": 0.0}) == pytest.approx(4.0)
        assert evaluate(gy, {"x": 2.0, "y": 0.0}) == pytest.approx(3.0)


class TestFunctionRules:
    @pytest.mark.parametrize(
        "ctor,fn,x0",
        [
            (b.exp, math.exp, 0.7),
            (b.log, math.log, 2.3),
            (b.atan, math.atan, 0.9),
            (b.sin, math.sin, 1.1),
            (b.cos, math.cos, 1.1),
            (b.tanh, math.tanh, 0.4),
            (b.erf, math.erf, 0.3),
        ],
    )
    def test_unary_chain_rule(self, ctor, fn, x0):
        e = ctor(b.mul(2.0, X))
        expected = fd(lambda t: fn(2.0 * t), x0)
        assert dval(e, X, {"x": x0}) == pytest.approx(expected, rel=1e-7)

    def test_sqrt(self):
        e = b.sqrt(S)
        assert dval(e, S, {"s": 4.0}) == pytest.approx(0.25)

    def test_cbrt(self):
        e = b.cbrt(X)
        expected = fd(lambda t: math.copysign(abs(t) ** (1 / 3), t), 8.0)
        assert dval(e, X, {"x": 8.0}) == pytest.approx(expected, rel=1e-7)

    def test_abs_derivative_is_sign(self):
        e = b.abs_(X)
        assert dval(e, X, {"x": 3.0}) == pytest.approx(1.0)
        assert dval(e, X, {"x": -3.0}) == pytest.approx(-1.0)

    def test_lambertw_derivative(self):
        from scipy.special import lambertw
        e = b.lambertw(X)
        x0 = 1.7
        w = float(lambertw(x0).real)
        expected = w / (x0 * (1.0 + w))
        assert dval(e, X, {"x": x0}) == pytest.approx(expected, rel=1e-10)

    def test_lambertw_derivative_at_zero(self):
        # the exp-form rule is regular at x = 0: W'(0) = 1
        e = b.lambertw(X)
        assert dval(e, X, {"x": 0.0}) == pytest.approx(1.0)

    def test_ite_branchwise(self):
        e = b.ite(X.lt(0.0), b.mul(2.0, X), b.mul(3.0, X))
        assert dval(e, X, {"x": -1.0}) == pytest.approx(2.0)
        assert dval(e, X, {"x": 1.0}) == pytest.approx(3.0)


class TestAgainstSymPy:
    @pytest.mark.parametrize(
        "make_expr,point",
        [
            (lambda: b.exp(b.neg(X)) * (1 + 2 * X**2) / (X + 2.0), {"x": 1.3}),
            (lambda: b.log(1 + X**2) * b.atan(X), {"x": 0.8}),
            (lambda: b.pow_(b.add(1.0, b.pow_(S, 2.0)), -0.25), {"s": 1.9}),
            (lambda: b.tanh(X) + b.erf(X) * b.cos(X), {"x": 0.4}),
        ],
    )
    def test_first_derivative_matches_sympy(self, make_expr, point):
        from repro.expr.sympy_bridge import sympy_derivative

        e = make_expr()
        wrt = next(iter(e.free_vars()))
        ours = evaluate(derivative(e, wrt), point)
        theirs = evaluate(sympy_derivative(e, wrt), point)
        assert ours == pytest.approx(theirs, rel=1e-9)

    def test_second_derivative_matches_sympy(self):
        from repro.expr.sympy_bridge import sympy_derivative

        e = b.exp(b.neg(b.pow_(X, 2.0))) * b.log(b.add(X, 2.0))
        ours = evaluate(derivative(e, X, 2), {"x": 0.6})
        theirs = evaluate(sympy_derivative(e, X, 2), {"x": 0.6})
        assert ours == pytest.approx(theirs, rel=1e-8)


class TestDerivativeOnFunctionals:
    """Derivatives of real DFA enhancement factors vs finite differences."""

    @pytest.mark.parametrize("name", ["PBE", "LYP", "AM05", "VWN RPA"])
    def test_dfc_drs_matches_fd(self, name):
        from repro.functionals import get_functional
        from repro.functionals.vars import RS

        f = get_functional(name)
        fc = f.fc()
        dfc = derivative(fc, RS)
        point = {"rs": 2.1, "s": 1.3}
        h = 1e-6

        def fc_at(rs_value):
            return evaluate(fc, {**point, "rs": rs_value})

        expected = (fc_at(2.1 + h) - fc_at(2.1 - h)) / (2 * h)
        assert evaluate(dfc, point) == pytest.approx(expected, rel=1e-5)

    def test_scan_dfc_drs_matches_fd(self):
        from repro.functionals import get_functional
        from repro.functionals.vars import RS

        f = get_functional("SCAN")
        fc = f.fc()
        dfc = derivative(fc, RS)
        point = {"rs": 1.5, "s": 0.8, "alpha": 0.5}
        h = 1e-6

        def fc_at(rs_value):
            return evaluate(fc, {**point, "rs": rs_value})

        expected = (fc_at(1.5 + h) - fc_at(1.5 - h)) / (2 * h)
        assert evaluate(dfc, point) == pytest.approx(expected, rel=1e-5)
