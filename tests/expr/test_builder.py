"""Tests for the canonicalising expression constructors."""

import math

import pytest

from repro.expr import builder as b
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Add, Const, Func, Ite, Mul, Pow, Var


X = Var("x")
S = Var("s", nonneg=True)


class TestAdd:
    def test_constant_folding(self):
        assert b.add(1.0, 2.0, 3.5) is Const(6.5)

    def test_identity_elimination(self):
        assert b.add(X, 0.0) is X

    def test_flattening(self):
        e = b.add(b.add(X, 1.0), b.add(X, 2.0))
        assert isinstance(e, Add)
        # no nested Add children
        assert not any(isinstance(a, Add) for a in e.args)

    def test_like_term_collection(self):
        e = b.add(b.mul(2.0, X), b.mul(3.0, X))
        assert evaluate(e, {"x": 7.0}) == pytest.approx(35.0)
        assert e is b.mul(5.0, X)

    def test_cancellation_to_zero(self):
        assert b.add(X, b.neg(X)) is Const(0.0)

    def test_empty_like_sum_is_zero(self):
        assert b.add(0.0, 0.0) is Const(0.0)

    def test_single_term_unwrapped(self):
        assert b.add(X) is X

    def test_mixed_numbers_and_exprs(self):
        e = b.add(1, X, 2.5)
        assert evaluate(e, {"x": 1.0}) == pytest.approx(4.5)

    def test_sub(self):
        assert evaluate(b.sub(X, 3.0), {"x": 10.0}) == pytest.approx(7.0)

    def test_neg_constant(self):
        assert b.neg(2.0) is Const(-2.0)

    def test_neg_twice_is_identity(self):
        assert b.neg(b.neg(X)) is X


class TestMul:
    def test_constant_folding(self):
        assert b.mul(2.0, 3.0) is Const(6.0)

    def test_identity(self):
        assert b.mul(X, 1.0) is X

    def test_annihilator(self):
        assert b.mul(X, 0.0) is Const(0.0)

    def test_flattening(self):
        e = b.mul(b.mul(X, 2.0), b.mul(X, 3.0))
        assert evaluate(e, {"x": 2.0}) == pytest.approx(24.0)
        assert isinstance(e, Mul)
        assert not any(isinstance(a, Mul) for a in e.args)

    def test_same_base_merging(self):
        e = b.mul(X, X)
        assert e is b.pow_(X, 2.0)

    def test_pow_base_merging(self):
        e = b.mul(b.pow_(X, 2.0), b.pow_(X, 3.0))
        assert e is b.pow_(X, 5.0)

    def test_base_and_inverse_cancel(self):
        e = b.mul(X, b.pow_(X, -1.0))
        assert e is Const(1.0)

    def test_div_by_constant(self):
        e = b.div(X, 4.0)
        assert evaluate(e, {"x": 2.0}) == pytest.approx(0.5)

    def test_div_by_zero_constant_raises(self):
        with pytest.raises(ZeroDivisionError):
            b.div(X, 0.0)

    def test_div_by_expression(self):
        e = b.div(1.0, b.add(X, 1.0))
        assert evaluate(e, {"x": 1.0}) == pytest.approx(0.5)


class TestPow:
    def test_exponent_zero(self):
        assert b.pow_(X, 0.0) is Const(1.0)

    def test_exponent_one(self):
        assert b.pow_(X, 1.0) is X

    def test_const_folding(self):
        assert b.pow_(2.0, 10.0) is Const(1024.0)

    def test_base_one(self):
        assert b.pow_(1.0, X) is Const(1.0)

    def test_zero_base_positive_exponent(self):
        assert b.pow_(0.0, 2.0) is Const(0.0)

    def test_unsafe_const_fold_left_symbolic(self):
        # (-8)**(1/3) is not foldable through math.pow; keep symbolic
        e = b.pow_(Const(-8.0), Const(1.0 / 3.0))
        assert isinstance(e, Pow)

    def test_pow_of_pow_integer_exponents(self):
        e = b.pow_(b.pow_(X, 2.0), 3.0)
        assert e is b.pow_(X, 6.0)

    def test_pow_of_pow_nonneg_base(self):
        e = b.pow_(b.pow_(S, 0.5), 2.0)
        assert e is S

    def test_pow_of_pow_unsound_case_kept(self):
        # (x**2)**0.5 != x on R; must not collapse for sign-unknown base
        e = b.pow_(b.pow_(X, 2.0), 0.5)
        assert evaluate(e, {"x": -3.0}) == pytest.approx(3.0)

    def test_pow_distributes_over_nonneg_product(self):
        e = b.pow_(b.mul(S, b.exp(X)), 0.5)
        assert evaluate(e, {"s": 4.0, "x": 0.0}) == pytest.approx(2.0)

    def test_exp_power_collapses(self):
        e = b.pow_(b.exp(X), 2.0)
        assert e is b.exp(b.mul(2.0, X))


class TestFunctions:
    def test_constant_folding(self):
        assert b.exp(0.0) is Const(1.0)
        assert b.log(1.0) is Const(0.0)
        assert b.atan(0.0) is Const(0.0)
        assert b.cbrt(27.0) is Const(3.0)
        assert b.cbrt(-27.0) is Const(-3.0)

    def test_exp_log_inverse_pair(self):
        assert b.exp(b.log(X)) is X
        assert b.log(b.exp(X)) is X

    def test_log_of_nonpositive_constant_stays_symbolic(self):
        e = b.log(Const(-1.0))
        assert isinstance(e, Func)

    def test_sqrt_becomes_half_power(self):
        e = b.sqrt(X)
        assert isinstance(e, Pow)
        assert e.exponent is Const(0.5)

    def test_sqrt_constant_folds(self):
        assert b.sqrt(4.0) is Const(2.0)

    def test_abs_of_nonneg_is_identity(self):
        assert b.abs_(S) is S
        assert isinstance(b.abs_(X), Func)

    def test_lambertw_at_zero(self):
        assert b.lambertw(0.0) is Const(0.0)

    def test_lambertw_identity_value(self):
        # W(e) = 1
        val = b.lambertw(math.e)
        assert isinstance(val, Const)
        assert val.value == pytest.approx(1.0, rel=1e-12)

    def test_trig_folding(self):
        assert b.sin(0.0) is Const(0.0)
        assert b.cos(0.0) is Const(1.0)
        assert b.tanh(0.0) is Const(0.0)
        assert b.erf(0.0) is Const(0.0)


class TestIte:
    def test_same_branches_collapse(self):
        e = b.ite(X.le(0.0), S, S)
        assert e is S

    def test_constant_condition_resolved(self):
        e = b.ite(Const(1.0).le(Const(2.0)), X, S)
        assert e is X
        e = b.ite(Const(3.0).le(Const(2.0)), X, S)
        assert e is S

    def test_symbolic_condition_kept(self):
        e = b.ite(X.le(0.0), Const(1.0), Const(2.0))
        assert isinstance(e, Ite)

    def test_infinite_constant_condition_folds_by_direct_comparison(self):
        # both guard operands fold to Const(inf): the old gap-based fold
        # computed inf - inf = NaN and took the else branch; direct
        # comparison (inf <= inf) folds to the then branch, matching every
        # runtime Ite decider
        lhs = b.mul(Const(1e200), Const(1e200))   # folds to Const(inf)
        rhs = b.mul(Const(2e200), Const(1e200))   # folds to Const(inf)
        e = b.ite(lhs.le(rhs), Const(1.0), Const(-1.0))
        assert e is Const(1.0)
        e = b.ite(lhs.lt(rhs), Const(1.0), Const(-1.0))  # inf < inf: else
        assert e is Const(-1.0)

    def test_nan_constant_condition_stays_unfolded(self):
        nan_const = b.mul(b.mul(Const(1e200), Const(1e200)), Const(0.0))
        if isinstance(nan_const, Const):  # inf * 0 folded to Const(nan)
            e = b.ite(nan_const.le(Const(0.0)), Const(1.0), Const(-1.0))
            assert isinstance(e, Ite)

    def test_minimum_maximum(self):
        lo = b.minimum(X, 3.0)
        hi = b.maximum(X, 3.0)
        assert evaluate(lo, {"x": 5.0}) == pytest.approx(3.0)
        assert evaluate(lo, {"x": 1.0}) == pytest.approx(1.0)
        assert evaluate(hi, {"x": 5.0}) == pytest.approx(5.0)
        assert evaluate(hi, {"x": 1.0}) == pytest.approx(3.0)


class TestAsExpr:
    def test_numbers(self):
        assert b.as_expr(2) is Const(2.0)
        assert b.as_expr(2.5) is Const(2.5)

    def test_expr_passthrough(self):
        assert b.as_expr(X) is X

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            b.as_expr("not an expr")
