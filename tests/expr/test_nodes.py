"""Tests for the hash-consed expression node layer."""


import pytest

from repro.expr import builder as b
from repro.expr.nodes import (
    Const,
    Func,
    Ite,
    Pow,
    Rel,
    Var,
    is_const,
    is_nonneg,
    is_positive,
)


class TestInterning:
    def test_consts_are_interned(self):
        assert Const(1.5) is Const(1.5)

    def test_negative_zero_normalised(self):
        assert Const(-0.0) is Const(0.0)
        assert Const(0.0).value == 0.0

    def test_vars_interned_by_name_and_tag(self):
        assert Var("a") is Var("a")
        assert Var("a") is not Var("a", nonneg=True)
        assert Var("a") is not Var("b")

    def test_structural_sharing_of_compound_nodes(self):
        x = Var("x")
        e1 = b.add(x, 1.0)
        e2 = b.add(x, 1.0)
        assert e1 is e2

    def test_same_is_identity(self):
        x = Var("x")
        assert b.exp(x).same(b.exp(x))
        assert not b.exp(x).same(b.log(x))

    def test_func_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            Func("sinh", Var("x"))


class TestStructure:
    def test_children_of_leaves_empty(self):
        assert Const(2.0).children() == ()
        assert Var("v").children() == ()

    def test_children_of_compound(self):
        x, y = Var("x"), Var("y")
        e = b.mul(x, y)
        assert set(e.children()) == {x, y}

    def test_pow_children(self):
        x = Var("x")
        p = Pow(x, Const(3.0))
        assert p.children() == (x, Const(3.0))

    def test_ite_children_include_condition_operands(self):
        x, y = Var("x"), Var("y")
        node = b.ite(x.le(0.0), y, b.neg(y))
        assert isinstance(node, Ite)
        assert x in node.children()

    def test_depth_and_size(self):
        x = Var("x")
        assert x.depth == 1
        assert x.size == 1
        e = b.exp(b.add(x, 1.0))
        assert e.depth == 3
        assert e.size >= 3

    def test_dag_size_counts_unique_nodes(self):
        x = Var("x")
        shared = b.exp(x)
        e = b.add(shared, b.mul(shared, 2.0))
        # tree size counts exp(x) twice; dag size once
        assert e.dag_size() < e.size + 1

    def test_operation_count_excludes_leaves(self):
        x = Var("x")
        e = b.exp(x)  # one operation
        assert e.operation_count() == 1
        assert Var("y").operation_count() == 0

    def test_walk_children_before_parents(self):
        x = Var("x")
        e = b.exp(b.add(x, 1.0))
        order = list(e.walk())
        assert order[-1] is e
        pos = {id(n): i for i, n in enumerate(order)}
        for node in order:
            for child in node.children():
                assert pos[id(child)] < pos[id(node)]

    def test_walk_visits_each_node_once(self):
        x = Var("x")
        shared = b.exp(x)
        e = b.add(shared, b.mul(shared, shared))
        order = list(e.walk())
        assert len(order) == len({id(n) for n in order})

    def test_free_vars(self):
        x, y = Var("x"), Var("y")
        e = b.add(b.exp(x), b.mul(y, 2.0))
        assert {v.name for v in e.free_vars()} == {"x", "y"}

    def test_free_vars_of_constant(self):
        assert b.const(4.0).free_vars() == frozenset()

    def test_contains(self):
        x = Var("x")
        inner = b.exp(x)
        e = b.add(inner, 1.0)
        assert e.contains(inner)
        assert not e.contains(b.log(x))


class TestRel:
    def test_rel_interning(self):
        x = Var("x")
        assert x.le(1.0) is x.le(1.0)
        assert x.le(1.0) is not x.lt(1.0)

    def test_negate_flips_operator(self):
        x = Var("x")
        assert x.le(0.0).negate().op == ">"
        assert x.lt(0.0).negate().op == ">="
        assert x.ge(0.0).negate().op == "<"
        assert x.gt(0.0).negate().op == "<="

    def test_negate_equality_raises(self):
        x = Var("x")
        with pytest.raises(ValueError):
            x.eq(0.0).negate()

    def test_gap_is_difference(self):
        x = Var("x")
        rel = x.le(3.0)
        from repro.expr.evaluator import evaluate
        assert evaluate(rel.gap(), {"x": 5.0}) == pytest.approx(2.0)

    def test_holds_semantics(self):
        x = Var("x")
        assert x.le(0.0).holds(-1.0)
        assert not x.le(0.0).holds(1.0)
        assert x.le(0.0).holds(0.0)
        assert not x.lt(0.0).holds(0.0)
        assert x.ge(0.0).holds(0.0)
        assert not x.gt(0.0).holds(0.0)

    def test_holds_with_delta_weakening(self):
        x = Var("x")
        assert x.le(0.0).holds(0.5, tol=1.0)
        assert x.ge(0.0).holds(-0.5, tol=1.0)
        assert x.eq(0.0).holds(0.5, tol=1.0)
        assert not x.eq(0.0).holds(1.5, tol=1.0)

    def test_make_rejects_bad_operator(self):
        with pytest.raises(ValueError):
            Rel.make(Var("x"), Const(0.0), "!=")


class TestSignPredicates:
    def test_is_const(self):
        assert is_const(Const(2.0))
        assert is_const(Const(2.0), 2.0)
        assert not is_const(Const(2.0), 3.0)
        assert not is_const(Var("x"))

    def test_nonneg_vars_and_consts(self):
        assert is_nonneg(Var("s", nonneg=True))
        assert not is_nonneg(Var("t"))
        assert is_nonneg(Const(0.0))
        assert not is_nonneg(Const(-1.0))

    def test_nonneg_functions(self):
        x = Var("x")
        assert is_nonneg(Func("exp", x))
        assert is_nonneg(Func("abs", x))
        assert not is_nonneg(Func("sin", x))

    def test_nonneg_even_powers(self):
        x = Var("x")
        assert is_nonneg(Pow(x, Const(2.0)))
        assert not is_nonneg(Pow(x, Const(3.0)))

    def test_nonneg_products_and_sums(self):
        s = Var("s", nonneg=True)
        assert is_nonneg(b.mul(s, s, 2.0))
        assert is_nonneg(b.add(s, 1.0))
        assert not is_nonneg(b.add(s, -1.0))

    def test_is_positive(self):
        s = Var("s", nonneg=True)
        assert is_positive(Const(1.0))
        assert not is_positive(Const(0.0))
        assert is_positive(Func("exp", Var("x")))
        assert is_positive(b.add(s, 1.0))
        assert not is_positive(s)
