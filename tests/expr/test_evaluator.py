"""Tests for scalar evaluation (the valid(x) path of Algorithm 1)."""

import math

import pytest

from repro.expr import builder as b
from repro.expr.evaluator import EvalError, evaluate, evaluate_rel
from repro.expr.nodes import Const, Var

X = Var("x")
S = Var("s", nonneg=True)


class TestBasics:
    def test_constant(self):
        assert evaluate(Const(2.5), {}) == 2.5

    def test_variable_by_name_and_var_key(self):
        assert evaluate(X, {"x": 3.0}) == 3.0
        assert evaluate(X, {X: 4.0}) == 4.0

    def test_unbound_variable_nan_by_default(self):
        assert math.isnan(evaluate(X, {}))

    def test_unbound_variable_strict_raises(self):
        with pytest.raises(EvalError):
            evaluate(X, {}, strict=True)

    def test_arithmetic(self):
        e = (X + 2.0) * (X - 1.0) / 3.0
        assert evaluate(e, {"x": 4.0}) == pytest.approx(6.0)

    def test_fsum_accuracy(self):
        # adding many tiny terms to a large one: fsum keeps full precision.
        # Build the Add node directly (the canonicalising constructor would
        # fold the constants left-to-right and lose the tiny terms).
        from repro.expr.nodes import Add, Const
        e = Add((Const(1e16),) + (Const(1.0),) * 64)
        assert evaluate(e, {}) == pytest.approx(1e16 + 64.0, abs=0.5)

    def test_functions(self):
        assert evaluate(b.exp(X), {"x": 1.0}) == pytest.approx(math.e)
        assert evaluate(b.atan(X), {"x": 1.0}) == pytest.approx(math.pi / 4)
        assert evaluate(b.cbrt(X), {"x": -8.0}) == pytest.approx(-2.0)
        assert evaluate(b.abs_(X), {"x": -4.0}) == pytest.approx(4.0)

    def test_lambertw(self):
        assert evaluate(b.lambertw(X), {"x": math.e}) == pytest.approx(1.0)


class TestDomainErrors:
    def test_log_of_negative_is_nan(self):
        assert math.isnan(evaluate(b.log(X), {"x": -1.0}))

    def test_log_of_negative_strict_raises(self):
        with pytest.raises(EvalError):
            evaluate(b.log(X), {"x": -1.0}, strict=True)

    def test_negative_base_fractional_power(self):
        e = b.pow_(X, Const(0.5))
        assert math.isnan(evaluate(e, {"x": -4.0}))

    def test_zero_to_negative_power(self):
        e = b.pow_(X, Const(-1.0))
        assert math.isnan(evaluate(e, {"x": 0.0}))

    def test_exp_overflow_is_nan(self):
        assert math.isnan(evaluate(b.exp(X), {"x": 1e4}))

    def test_lambertw_below_branch_point(self):
        assert math.isnan(evaluate(b.lambertw(X), {"x": -1.0}))

    def test_division_by_zero(self):
        e = b.div(1.0, X)
        assert math.isnan(evaluate(e, {"x": 0.0}))


class TestIte:
    def test_branch_selection(self):
        e = b.ite(X.lt(0.0), Const(-1.0), Const(1.0))
        assert evaluate(e, {"x": -2.0}) == -1.0
        assert evaluate(e, {"x": 2.0}) == 1.0

    def test_boundary_uses_operator(self):
        e = b.ite(X.lt(0.0), Const(-1.0), Const(1.0))
        assert evaluate(e, {"x": 0.0}) == 1.0
        e = b.ite(X.le(0.0), Const(-1.0), Const(1.0))
        assert evaluate(e, {"x": 0.0}) == -1.0

    def test_untaken_branch_may_be_undefined(self):
        # log(x) is undefined at x = -1 but the other branch is taken...
        # note: with DAG evaluation both branches are computed, so an
        # undefined untaken branch propagates NaN -- this mirrors the
        # np.where semantics of the compiled kernels and is documented.
        e = b.ite(X.ge(0.0), X, b.neg(X))
        assert evaluate(e, {"x": 5.0}) == 5.0


class TestEvaluateRel:
    def test_true_false(self):
        rel = X.le(3.0)
        assert evaluate_rel(rel, {"x": 2.0})
        assert not evaluate_rel(rel, {"x": 4.0})

    def test_nan_counts_as_violation(self):
        rel = b.log(X).le(0.0)
        assert not evaluate_rel(rel, {"x": -1.0})

    def test_tolerance(self):
        rel = X.le(0.0)
        assert evaluate_rel(rel, {"x": 0.5}, tol=1.0)
        assert not evaluate_rel(rel, {"x": 1.5}, tol=1.0)
