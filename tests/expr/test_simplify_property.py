"""Property-based tests: simplification preserves semantics.

Random expression trees are generated over positive variables (matching
the DFA input domains) and every simplification pass must agree with the
original expression pointwise wherever both evaluate.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.expr import builder as b
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Expr, Var
from repro.expr.simplify import factor_sums, merge_exponentials, simplify

from tests.support import hyp_examples

X = Var("x", nonneg=True)
Y = Var("y", nonneg=True)

_leaf = st.one_of(
    st.just(X),
    st.just(Y),
    st.floats(min_value=-4.0, max_value=4.0, allow_nan=False).map(b.as_expr),
)


def _combine(children):
    binary = st.tuples(children, children)
    return st.one_of(
        binary.map(lambda ab: b.add(*ab)),
        binary.map(lambda ab: b.mul(*ab)),
        st.tuples(
            children, st.sampled_from([2.0, 3.0, 0.5, -1.0, 1.5])
        ).map(lambda ae: b.pow_(ae[0], ae[1])),
        children.map(lambda a: b.exp(b.minimum(a, b.as_expr(8.0)))),
        children.map(lambda a: b.atan(a)),
        children.map(lambda a: b.tanh(a)),
    )


exprs = st.recursive(_leaf, _combine, max_leaves=12)

env_values = st.fixed_dictionaries(
    {
        "x": st.floats(min_value=0.05, max_value=4.0, allow_nan=False),
        "y": st.floats(min_value=0.05, max_value=4.0, allow_nan=False),
    }
)


def _agree(e1: Expr, e2: Expr, env: dict) -> None:
    v1 = evaluate(e1, env)
    v2 = evaluate(e2, env)
    if math.isnan(v1) or math.isnan(v2):
        # partial operations: both must fail or the defined one is at a
        # removable point; accept NaN pairs only
        assert math.isnan(v1) == math.isnan(v2)
        return
    assert v1 == pytest.approx(v2, rel=1e-8, abs=1e-9)


@settings(max_examples=hyp_examples(120), deadline=None)
@given(expr=exprs, env=env_values)
def test_factor_sums_preserves_value(expr, env):
    _agree(expr, factor_sums(expr), env)


@settings(max_examples=hyp_examples(120), deadline=None)
@given(expr=exprs, env=env_values)
def test_merge_exponentials_preserves_value(expr, env):
    _agree(expr, merge_exponentials(expr), env)


@settings(max_examples=hyp_examples(80), deadline=None)
@given(expr=exprs, env=env_values)
def test_full_simplify_preserves_value(expr, env):
    out, stats = simplify(expr)
    assert stats.ops_after <= stats.ops_before
    _agree(expr, out, env)


@settings(max_examples=hyp_examples(60), deadline=None)
@given(expr=exprs, env=env_values)
def test_simplify_never_grows(expr, env):
    out, stats = simplify(expr)
    assert out.operation_count() <= expr.operation_count()
