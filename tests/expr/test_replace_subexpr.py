"""Tests for subexpression replacement (used by the continuity analysis)."""

import pytest

from repro.expr import builder as b
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Ite, Var
from repro.expr.substitute import replace_subexpr
from repro.pysym import lift

X = Var("x", nonneg=True)
Y = Var("y", nonneg=True)


class TestReplaceSubexpr:
    def test_replace_root(self):
        expr = b.add(X, 1.0)
        out = replace_subexpr(expr, expr, Y)
        assert out is Y

    def test_replace_shared_node(self):
        import math

        shared = b.mul(X, X)
        expr = b.add(shared, b.exp(shared))
        out = replace_subexpr(expr, shared, Y)
        # both occurrences replaced: y + exp(y)
        assert evaluate(out, {"y": 3.0}) == pytest.approx(3.0 + math.exp(3.0))

    def test_replace_with_number(self):
        expr = b.add(b.mul(X, X), X)
        out = replace_subexpr(expr, X, 2.0)
        assert evaluate(out, {}) == pytest.approx(6.0)

    def test_absent_target_is_identity(self):
        expr = b.add(X, 1.0)
        out = replace_subexpr(expr, Y, 5.0)
        assert out is expr

    def test_replace_ite_with_branch(self):
        def model(x):
            if x < 1.0:
                return x
            return x * x

        expr = lift(model, X)
        ite = next(n for n in expr.walk() if isinstance(n, Ite))
        then_only = replace_subexpr(expr, ite, ite.then)
        else_only = replace_subexpr(expr, ite, ite.orelse)
        # the replaced expressions are the branch surfaces everywhere
        assert evaluate(then_only, {"x": 3.0}) == pytest.approx(3.0)
        assert evaluate(else_only, {"x": 0.5}) == pytest.approx(0.25)

    def test_replacement_canonicalises(self):
        # replacing with a constant folds through the builders
        expr = b.mul(b.add(X, 1.0), 2.0)
        out = replace_subexpr(expr, X, 0.0)
        from repro.expr.nodes import Const

        assert isinstance(out, Const)
        assert out.value == 2.0

    def test_nested_ite_only_target_replaced(self):
        def model(x):
            if x < 1.0:
                return 1.0
            if x < 2.0:
                return 2.0
            return 3.0

        expr = lift(model, X)
        ites = [n for n in expr.walk() if isinstance(n, Ite)]
        assert len(ites) == 2
        inner = min(ites, key=lambda n: n.size)
        out = replace_subexpr(expr, inner, 9.0)
        remaining = [n for n in out.walk() if isinstance(n, Ite)]
        assert len(remaining) == 1
