"""Tests for the infix printer."""

from repro.expr import builder as b
from repro.expr.nodes import Const, Var
from repro.expr.printer import to_str

X = Var("x")


class TestPrinter:
    def test_leaves(self):
        assert to_str(X) == "x"
        assert to_str(Const(2.0)) == "2"
        assert to_str(Const(2.5)) == "2.5"
        assert to_str(Const(-3.0)) == "(-3)"

    def test_compound(self):
        out = to_str(b.add(X, 1.0))
        assert "x" in out and "+" in out

    def test_function(self):
        assert to_str(b.exp(X)) == "exp(x)"

    def test_pow(self):
        assert "**" in to_str(b.pow_(X, 3.0))

    def test_ite(self):
        out = to_str(b.ite(X.lt(0.0), Const(1.0), Const(2.0)))
        assert out.startswith("ite(")
        assert "<" in out

    def test_truncation(self):
        e = X
        for _ in range(30):
            e = b.exp(e)
        out = to_str(e, max_len=40)
        assert len(out) == 40
        assert out.endswith("...")

    def test_repr_uses_printer(self):
        assert repr(b.exp(X)) == "exp(x)"
        assert "<=" in repr(X.le(0.0))
