"""Property-based tests for the expression IR (hypothesis).

Core invariants:

* the canonicalising constructors preserve value,
* scalar evaluation and compiled NumPy kernels agree,
* symbolic derivatives agree with central finite differences,
* substitution commutes with evaluation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.expr import builder as b
from repro.expr.codegen import compile_numpy
from repro.expr.derivative import derivative
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Expr, Var

from tests.support import hyp_examples

X = Var("px")
Y = Var("py")

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
small_consts = st.floats(
    min_value=-4.0, max_value=4.0, allow_nan=False, allow_infinity=False
)


@st.composite
def exprs(draw, depth: int = 3) -> Expr:
    """Random expressions over px, py that are total on [-10, 10]^2.

    Partial primitives are composed through totalising wrappers
    (log(1+x^2), sqrt via even powers) so evaluation never leaves the
    domain; this keeps the properties about *values*, not NaN plumbing.
    """
    if depth == 0:
        leaf = draw(st.sampled_from(["x", "y", "const"]))
        if leaf == "x":
            return X
        if leaf == "y":
            return Y
        return b.const(draw(small_consts))
    op = draw(
        st.sampled_from(
            ["add", "mul", "neg", "exp", "log1p_sq", "atan", "sin", "cos",
             "tanh", "poly", "leaf"]
        )
    )
    if op == "leaf":
        return draw(exprs(depth=0))
    if op == "add":
        return b.add(draw(exprs(depth=depth - 1)), draw(exprs(depth=depth - 1)))
    if op == "mul":
        return b.mul(draw(exprs(depth=depth - 1)), draw(exprs(depth=depth - 1)))
    if op == "neg":
        return b.neg(draw(exprs(depth=depth - 1)))
    inner = draw(exprs(depth=depth - 1))
    if op == "exp":
        # bound the argument to avoid overflow: exp(tanh(e))
        return b.exp(b.tanh(inner))
    if op == "log1p_sq":
        return b.log(b.add(1.0, b.pow_(inner, 2.0)))
    if op == "atan":
        return b.atan(inner)
    if op == "sin":
        return b.sin(inner)
    if op == "cos":
        return b.cos(inner)
    if op == "tanh":
        return b.tanh(inner)
    if op == "poly":
        return b.pow_(inner, draw(st.sampled_from([2.0, 3.0])))
    raise AssertionError(op)


@given(e=exprs(), xv=finite_floats, yv=finite_floats)
@settings(max_examples=hyp_examples(150), deadline=None)
def test_scalar_eval_matches_numpy_kernel(e, xv, yv):
    env = {"px": xv, "py": yv}
    scalar = evaluate(e, env)
    assume(math.isfinite(scalar))
    kernel = compile_numpy(e, arg_order=(X, Y))
    vec = float(kernel(np.asarray(xv), np.asarray(yv)))
    assert vec == pytest.approx(scalar, rel=1e-9, abs=1e-9)


@given(e=exprs(), xv=finite_floats, yv=finite_floats)
@settings(max_examples=hyp_examples(100), deadline=None)
def test_derivative_matches_sympy(e, xv, yv):
    """Exact oracle: our derivative engine vs SymPy's, evaluated pointwise.

    (Finite differences are used in the unit tests at benign points; for
    arbitrary random expressions FD truncation error is unbounded, so the
    property uses SymPy as the reference instead.)
    """
    from repro.expr.sympy_bridge import sympy_derivative

    env = {"px": xv, "py": yv}
    analytic = evaluate(derivative(e, X), env)
    assume(math.isfinite(analytic))
    assume(abs(analytic) < 1e12)
    reference = evaluate(sympy_derivative(e, X), env)
    assume(math.isfinite(reference))
    assert analytic == pytest.approx(reference, rel=1e-6, abs=1e-8)


@given(e=exprs(), xv=finite_floats, yv=finite_floats)
@settings(max_examples=hyp_examples(150), deadline=None)
def test_substitution_commutes_with_evaluation(e, xv, yv):
    from repro.expr.substitute import substitute

    env = {"px": xv, "py": yv}
    direct = evaluate(e, env)
    assume(math.isfinite(direct))
    pinned = substitute(e, {X: xv})
    via_subst = evaluate(pinned, {"py": yv})
    assert via_subst == pytest.approx(direct, rel=1e-9, abs=1e-9)


@given(e=exprs())
@settings(max_examples=hyp_examples(100), deadline=None)
def test_interning_gives_structural_equality(e):
    # rebuilding the same structure yields the same object
    from repro.expr.substitute import substitute

    rebuilt = substitute(e, {})
    assert rebuilt is e


@given(e=exprs(), xv=finite_floats, yv=finite_floats)
@settings(max_examples=hyp_examples(100), deadline=None)
def test_sympy_roundtrip_preserves_value(e, xv, yv):
    from repro.expr.sympy_bridge import from_sympy, to_sympy

    env = {"px": xv, "py": yv}
    direct = evaluate(e, env)
    assume(math.isfinite(direct))
    assume(abs(direct) < 1e12)
    back = from_sympy(to_sympy(e))
    assert evaluate(back, env) == pytest.approx(direct, rel=1e-7, abs=1e-7)
