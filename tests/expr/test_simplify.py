"""Tests for the global simplification passes."""

import random

import pytest

from repro.expr import builder as b
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Func, Ite, Mul, Var
from repro.expr.simplify import (
    SimplifyStats,
    factor_sums,
    merge_exponentials,
    simplify,
    specialize,
)
from repro.solver.box import Box

X = Var("x", nonneg=True)
Y = Var("y", nonneg=True)


def _equiv(e1, e2, vars=("x", "y"), lo=0.05, hi=5.0, n=60, seed=0):
    rng = random.Random(seed)
    for _ in range(n):
        env = {v: rng.uniform(lo, hi) for v in vars}
        v1, v2 = evaluate(e1, env), evaluate(e2, env)
        assert v1 == pytest.approx(v2, rel=1e-10, abs=1e-12), env


class TestFactorSums:
    def test_simple_common_factor(self):
        # x*y + x*2 -> x*(y + 2)
        expr = b.add(b.mul(X, Y), b.mul(X, 2.0))
        out = factor_sums(expr)
        assert out.operation_count() < expr.operation_count()
        _equiv(expr, out)

    def test_power_factoring(self):
        # x^3 + x^2 -> x^2 (x + 1)
        expr = b.add(b.pow_(X, 3.0), b.pow_(X, 2.0))
        out = factor_sums(expr)
        _equiv(expr, out)
        assert out.operation_count() <= expr.operation_count()

    def test_fractional_power_factoring(self):
        # x^1.5 + x^0.5 -> x^0.5 (x + 1)
        expr = b.add(b.pow_(X, 1.5), b.pow_(X, 0.5))
        out = factor_sums(expr)
        _equiv(expr, out)

    def test_negative_power_factoring(self):
        # x^-2 + x^-1 -> x^-1 (x^-1 + 1)
        expr = b.add(b.pow_(X, -2.0), b.pow_(X, -1.0))
        out = factor_sums(expr)
        _equiv(expr, out)

    def test_no_common_factor_unchanged(self):
        expr = b.add(b.mul(X, 2.0), b.mul(Y, 3.0))
        assert factor_sums(expr) is expr

    def test_constant_term_blocks_factoring(self):
        expr = b.add(b.mul(X, Y), 1.0)
        assert factor_sums(expr) is expr

    def test_mixed_sign_exponents_not_factored(self):
        # x + x^-1 share base x but opposite-sign exponents: no factoring
        expr = b.add(X, b.pow_(X, -1.0))
        out = factor_sums(expr)
        _equiv(expr, out)

    def test_three_terms(self):
        # x*y + x*y^2 + x^2*y -> x*y*(1 + y + x)
        expr = b.add(
            b.mul(X, Y), b.mul(X, b.pow_(Y, 2.0)), b.mul(b.pow_(X, 2.0), Y)
        )
        out = factor_sums(expr)
        _equiv(expr, out)
        assert isinstance(out, Mul)

    def test_nested_sums_factored_recursively(self):
        inner = b.add(b.mul(X, Y), b.mul(X, 3.0))  # x(y+3)
        expr = b.exp(inner)
        out = factor_sums(expr)
        _equiv(expr, out)


class TestMergeExponentials:
    def test_two_exps(self):
        expr = b.mul(b.exp(X), b.exp(Y))
        out = merge_exponentials(expr)
        _equiv(expr, out)
        # one exp remains
        assert sum(1 for n in out.walk() if isinstance(n, Func) and n.name == "exp") == 1

    def test_exp_with_other_factors(self):
        expr = b.mul(X, b.exp(X), b.exp(b.neg(Y)), 2.0)
        out = merge_exponentials(expr)
        _equiv(expr, out)

    def test_single_exp_unchanged(self):
        expr = b.mul(X, b.exp(Y))
        assert merge_exponentials(expr) is expr

    def test_powered_exp_merged(self):
        # exp(x)^2 * exp(y) -> exp(2x + y)
        expr = b.mul(b.pow_(b.exp(X), 2.0), b.exp(Y))
        out = merge_exponentials(expr)
        _equiv(expr, out, hi=2.0)


class TestSpecialize:
    def _box(self, **bounds):
        return Box.from_bounds(bounds)

    def test_pins_point_variables(self):
        expr = b.add(X, Y)
        out = specialize(expr, self._box(x=(2.0, 2.0), y=(0.0, 5.0)))
        assert {v.name for v in out.free_vars()} == {"y"}
        assert evaluate(out, {"y": 1.0}) == pytest.approx(3.0)

    def test_folds_decided_guard_true(self):
        def model(x):
            if x < 10.0:
                return x
            return x * x

        from repro.pysym import lift

        expr = lift(model, X)
        out = specialize(expr, self._box(x=(0.0, 5.0)))
        assert not any(isinstance(n, Ite) for n in out.walk())
        _equiv(expr, out, vars=("x",))

    def test_folds_decided_guard_false(self):
        def model(x):
            if x < 1.0:
                return x
            return x * x

        from repro.pysym import lift

        expr = lift(model, X)
        out = specialize(expr, self._box(x=(2.0, 5.0)))
        assert not any(isinstance(n, Ite) for n in out.walk())
        assert evaluate(out, {"x": 3.0}) == pytest.approx(9.0)

    def test_undecidable_guard_kept(self):
        def model(x):
            if x < 1.0:
                return x
            return x * x

        from repro.pysym import lift

        expr = lift(model, X)
        out = specialize(expr, self._box(x=(0.0, 5.0)))
        assert any(isinstance(n, Ite) for n in out.walk())

    def test_scan_collapses_away_from_alpha_one(self):
        from repro.functionals import get_functional

        scan = get_functional("SCAN")
        box = self._box(rs=(0.1, 5.0), s=(0.0, 5.0), alpha=(1.5, 5.0))
        out = specialize(scan.fc(), box)
        assert not any(isinstance(n, Ite) for n in out.walk())
        # spot-check equivalence inside the box
        from repro.functionals.scan import eps_c_scan

        env = {"rs": 2.0, "s": 1.0, "alpha": 3.0}
        expected = -env["rs"] * eps_c_scan(2.0, 1.0, 3.0) / 0.4581652932831429
        assert evaluate(out, env) == pytest.approx(expected, rel=1e-10)


class TestSimplifyDriver:
    def test_returns_stats(self):
        expr = b.add(b.mul(X, Y), b.mul(X, 2.0))
        out, stats = simplify(expr)
        assert isinstance(stats, SimplifyStats)
        assert stats.ops_before >= stats.ops_after
        assert 0.0 <= stats.reduction <= 1.0
        _equiv(expr, out)

    def test_fixpoint_reached(self):
        expr = b.add(X, Y)
        out, stats = simplify(expr)
        assert out is expr  # nothing to do
        assert stats.rounds <= 2

    def test_functional_equivalence_on_all_paper_dfas(self):
        from repro.functionals import paper_functionals

        rng = random.Random(42)
        for f in paper_functionals():
            fc = f.fc()
            out, _ = simplify(fc)
            names = sorted(v.name for v in fc.free_vars())
            for _ in range(20):
                env = {n: rng.uniform(0.05, 4.5) for n in names}
                v1, v2 = evaluate(fc, env), evaluate(out, env)
                assert v1 == pytest.approx(v2, rel=1e-9), (f.name, env)

    def test_with_box_specialisation(self):
        from repro.functionals import get_functional

        scan = get_functional("SCAN")
        box = Box.from_bounds({"rs": (0.1, 5.0), "s": (0.0, 5.0), "alpha": (1.5, 5.0)})
        out, stats = simplify(scan.fc(), box=box)
        assert stats.ops_after < stats.ops_before
