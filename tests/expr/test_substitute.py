"""Tests for capture-free substitution."""

import math

import pytest

from repro.expr import builder as b
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Const, Var
from repro.expr.substitute import substitute, substitute_rel

X = Var("x")
Y = Var("y")
S = Var("s", nonneg=True)


class TestSubstitute:
    def test_variable_to_constant_folds(self):
        e = b.exp(X) + X**2
        out = substitute(e, {X: 0.0})
        assert out is Const(1.0)

    def test_variable_to_expression(self):
        e = X**2
        out = substitute(e, {X: b.add(Y, 1.0)})
        assert evaluate(out, {"y": 2.0}) == pytest.approx(9.0)

    def test_untouched_variables_remain(self):
        e = X + Y
        out = substitute(e, {X: 1.0})
        assert {v.name for v in out.free_vars()} == {"y"}

    def test_substitution_is_simultaneous(self):
        # x -> y, y -> x swaps, not chains
        e = X - Y
        out = substitute(e, {X: Y, Y: X})
        assert evaluate(out, {"x": 1.0, "y": 5.0}) == pytest.approx(4.0)

    def test_through_functions_and_powers(self):
        e = b.log(b.pow_(X, 2.0) + 1.0)
        out = substitute(e, {X: 2.0})
        assert isinstance(out, Const)
        assert out.value == pytest.approx(math.log(5.0))

    def test_through_ite(self):
        e = b.ite(X.lt(0.0), Const(-1.0), Const(1.0))
        assert substitute(e, {X: -5.0}) is Const(-1.0)
        assert substitute(e, {X: 5.0}) is Const(1.0)

    def test_ite_with_remaining_symbolic_condition(self):
        e = b.ite(X.lt(Y), X, Y)
        out = substitute(e, {X: 1.0})
        assert evaluate(out, {"y": 5.0}) == pytest.approx(1.0)
        assert evaluate(out, {"y": 0.0}) == pytest.approx(0.0)

    def test_empty_mapping_is_identity(self):
        e = b.exp(X)
        assert substitute(e, {}) is e

    def test_rs_infinity_use_case(self):
        """The EC6 encoder path: pin rs = 100 in F_c."""
        from repro.functionals import get_functional
        from repro.functionals.vars import RS

        fc = get_functional("LYP").fc()
        fc_inf = substitute(fc, {RS: 100.0})
        assert "rs" not in {v.name for v in fc_inf.free_vars()}
        assert evaluate(fc_inf, {"s": 1.0}) == pytest.approx(
            evaluate(fc, {"rs": 100.0, "s": 1.0})
        )


class TestSubstituteRel:
    def test_both_sides_substituted(self):
        rel = (X + Y).le(b.mul(2.0, X))
        out = substitute_rel(rel, {X: 3.0})
        assert evaluate(out.lhs, {"y": 1.0}) == pytest.approx(4.0)
        assert evaluate(out.rhs, {}) == pytest.approx(6.0)
        assert out.op == "<="
