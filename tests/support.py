"""Shared helpers for the test suite (importable, unlike conftest)."""

from __future__ import annotations

import os


def hyp_examples(n: int) -> int:
    """Scale a hypothesis ``max_examples`` budget by ``REPRO_HYPOTHESIS_MULT``.

    Tier-1 runs use the per-test calibrated budgets as-is; the nightly
    workflow raises every budget uniformly (e.g. ``REPRO_HYPOTHESIS_MULT=25``)
    without touching the relative weights of the suites.
    """
    return n * int(os.environ.get("REPRO_HYPOTHESIS_MULT", "1"))
