"""Failure-injection and degenerate-input tests across the stack.

Production users hit the edges first: zero budgets, empty/degenerate
boxes, out-of-domain formulas, unbound variables, absurd configurations.
Every failure must be either a clean Python exception or a sound verdict
-- never a wrong answer.
"""

import math

import pytest

from repro import get_condition, get_functional, verify_pair
from repro.expr import builder as b
from repro.expr.nodes import Var
from repro.pb import GridSpec, PBChecker
from repro.solver import Atom, Box, Budget, Conjunction, ICPSolver
from repro.verifier.regions import Outcome
from repro.verifier.verifier import VerifierConfig
from repro.verifier.encoder import encode

X = Var("x", nonneg=True)


class TestSolverDegenerateInputs:
    def test_zero_step_budget_times_out(self):
        formula = Conjunction.of(Atom(b.sub(X, 1.0), "<="))
        box = Box.from_bounds({"x": (0.0, 4.0)})
        result = ICPSolver().solve(formula, box, Budget(max_steps=0))
        assert result.is_timeout

    def test_point_domain(self):
        formula = Conjunction.of(Atom(b.sub(X, 1.0), "<="))
        box = Box.from_bounds({"x": (0.5, 0.5)})
        result = ICPSolver().solve(formula, box, Budget(max_steps=100))
        assert result.is_sat
        assert result.model["x"] == pytest.approx(0.5)

    def test_point_domain_infeasible(self):
        formula = Conjunction.of(Atom(b.sub(X, 1.0), "<="))
        box = Box.from_bounds({"x": (3.0, 3.0)})
        result = ICPSolver().solve(formula, box, Budget(max_steps=100))
        assert result.is_unsat

    def test_unbound_variable_raises(self):
        y = Var("y", nonneg=True)
        formula = Conjunction.of(Atom(b.sub(y, 1.0), "<="))
        box = Box.from_bounds({"x": (0.0, 1.0)})
        with pytest.raises(ValueError, match="does not bind"):
            ICPSolver().solve(formula, box, Budget(max_steps=10))

    def test_formula_undefined_on_whole_domain(self):
        # log(-1 - x) is nowhere defined on x >= 0: domain clipping makes
        # the root enclosure empty -> UNSAT (no point can satisfy it)
        formula = Conjunction.of(
            Atom(b.log(b.sub(-1.0, X)), "<=")
        )
        box = Box.from_bounds({"x": (0.0, 4.0)})
        result = ICPSolver().solve(formula, box, Budget(max_steps=1000))
        assert result.is_unsat

    def test_wall_clock_budget(self):
        # an effectively-zero wall clock forces a timeout on a hard formula
        problem = encode(get_functional("SCAN"), get_condition("EC3"))
        result = ICPSolver().solve(
            problem.negation, problem.domain,
            Budget(max_steps=10**9, max_seconds=1e-9),
        )
        assert result.is_timeout

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError):
            ICPSolver(precision=0.0)

    def test_invalid_search_rejected(self):
        with pytest.raises(ValueError):
            ICPSolver(search="best-first")


class TestVerifierDegenerateConfigs:
    def test_zero_global_budget_all_timeout(self):
        config = VerifierConfig(
            split_threshold=0.7, per_call_budget=100, global_step_budget=0
        )
        report = verify_pair(get_functional("LYP"), get_condition("EC1"), config)
        fractions = report.area_fractions()
        assert fractions.get(Outcome.TIMEOUT, 0.0) == pytest.approx(1.0)
        assert report.classification() == "?"

    def test_threshold_larger_than_domain(self):
        # the whole domain is below the split threshold: nothing is solved
        config = VerifierConfig(split_threshold=100.0, per_call_budget=100)
        report = verify_pair(get_functional("LYP"), get_condition("EC1"), config)
        assert report.records == []

    def test_budget_exhaustion_flag(self):
        config = VerifierConfig(
            split_threshold=0.3, per_call_budget=200, global_step_budget=400
        )
        report = verify_pair(get_functional("PBE"), get_condition("EC3"), config)
        assert report.budget_exhausted

    def test_single_call_config(self):
        # threshold just under the domain width: exactly one solver call
        config = VerifierConfig(
            split_threshold=4.9, per_call_budget=50, global_step_budget=100,
            split_on_timeout=False,
        )
        report = verify_pair(get_functional("VWN RPA"), get_condition("EC1"), config)
        assert len(report.records) == 1


class TestPBDegenerateGrids:
    def test_tiny_grid_runs(self):
        checker = PBChecker(spec=GridSpec(n_rs=4, n_s=4))
        result = checker.check(get_functional("LYP"), get_condition("EC1"))
        assert result.satisfied.shape == (4, 4)

    def test_boundary_trim_larger_than_grid(self):
        checker = PBChecker(spec=GridSpec(n_rs=4, n_s=4), boundary_trim=2)
        result = checker.check(get_functional("PBE"), get_condition("EC2"))
        # everything trimmed or finite; no crash, verdict on what's left
        assert result.undefined.shape == (4, 4)

    def test_inapplicable_pair_raises(self):
        checker = PBChecker(spec=GridSpec(n_rs=8, n_s=8))
        with pytest.raises(ValueError, match="does not apply"):
            checker.check(get_functional("LYP"), get_condition("EC5"))


class TestEvaluatorEdges:
    def test_nan_on_domain_error_by_default(self):
        from repro.expr.evaluator import evaluate

        assert math.isnan(evaluate(b.log(X), {"x": -1.0}))

    def test_strict_mode_raises(self):
        from repro.expr.evaluator import EvalError, evaluate

        with pytest.raises(EvalError):
            evaluate(b.log(X), {"x": -1.0}, strict=True)

    def test_kernel_ieee_semantics(self):
        import numpy as np

        from repro.expr.codegen import compile_numpy

        kernel = compile_numpy(b.log(X), arg_order=(X,))
        out = kernel(np.array([-1.0, 0.0, 1.0]))
        assert math.isnan(out[0])
        assert out[1] == -math.inf
        assert out[2] == 0.0

    def test_overflowing_exp(self):
        from repro.expr.evaluator import evaluate

        assert math.isnan(evaluate(b.exp(X), {"x": 1e9}))


class TestBoxEdges:
    def test_empty_interval_box(self):
        from repro.solver.interval import EMPTY

        box = Box({"x": EMPTY})
        assert box.is_empty()

    def test_intersect_disjoint_is_empty(self):
        a = Box.from_bounds({"x": (0.0, 1.0)})
        c = Box.from_bounds({"x": (2.0, 3.0)})
        assert a.intersect(c).is_empty()

    def test_intersect_mismatched_names_raises(self):
        a = Box.from_bounds({"x": (0.0, 1.0)})
        c = Box.from_bounds({"y": (0.0, 1.0)})
        with pytest.raises(ValueError):
            a.intersect(c)

    def test_split_point_box(self):
        box = Box.from_bounds({"x": (1.0, 1.0)})
        left, right = box.split("x")
        assert left["x"].lo == left["x"].hi == 1.0
        assert right["x"].lo == right["x"].hi == 1.0
