"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.expr import builder as b
from repro.expr.nodes import Var


@pytest.fixture
def rs() -> Var:
    return b.var("rs", nonneg=True)


@pytest.fixture
def s() -> Var:
    return b.var("s", nonneg=True)


@pytest.fixture
def alpha() -> Var:
    return b.var("alpha", nonneg=True)


@pytest.fixture
def x() -> Var:
    return b.var("x")


@pytest.fixture
def y() -> Var:
    return b.var("y")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20240814)


def central_difference(fn, x0: float, h: float = 1e-6) -> float:
    """Second-order central finite difference of a scalar callable."""
    return (fn(x0 + h) - fn(x0 - h)) / (2.0 * h)


def assert_close(actual: float, expected: float, rtol: float = 1e-9, atol: float = 1e-12):
    assert math.isfinite(actual), f"actual is not finite: {actual}"
    assert actual == pytest.approx(expected, rel=rtol, abs=atol), (
        f"{actual} != {expected}"
    )
