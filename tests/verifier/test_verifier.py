"""Tests for the Algorithm 1 driver."""


from repro.conditions import EC1, EC7
from repro.functionals import get_functional
from repro.solver.box import Box
from repro.verifier.encoder import encode
from repro.verifier.regions import Outcome
from repro.verifier.verifier import Verifier, VerifierConfig, verify_pair

FAST = VerifierConfig(
    split_threshold=0.7, per_call_budget=250, global_step_budget=8000
)


def small_domain(rs=(1.0, 3.0), s=(0.0, 1.0)):
    return Box.from_bounds({"rs": rs, "s": s})


class TestOutcomes:
    def test_verified_region(self):
        # PBE satisfies EC1 comfortably at moderate rs and small s
        problem = encode(get_functional("PBE"), EC1)
        report = Verifier(FAST).verify(problem, domain=small_domain())
        assert report.classification() in ("OK", "OK*")
        assert report.verified_fraction() > 0.0

    def test_counterexample_region(self):
        # LYP violates EC1 for s > ~1.7
        problem = encode(get_functional("LYP"), EC1)
        report = Verifier(FAST).verify(
            problem, domain=small_domain(rs=(1.0, 3.0), s=(2.0, 4.0))
        )
        assert report.classification() == "CEX"
        cex = report.counterexamples()
        assert cex
        # every recorded model must genuinely violate psi
        from repro.expr.evaluator import evaluate_rel
        for record in cex:
            assert record.model is not None
            assert not evaluate_rel(problem.psi, record.model)

    def test_mixed_region_finds_boundary(self):
        problem = encode(get_functional("LYP"), EC1)
        report = Verifier(FAST).verify(
            problem, domain=small_domain(rs=(1.0, 3.0), s=(0.0, 4.0))
        )
        fractions = report.area_fractions()
        assert fractions[Outcome.VERIFIED] > 0.1
        assert fractions[Outcome.COUNTEREXAMPLE] > 0.1

    def test_timeout_with_tiny_budget(self):
        problem = encode(get_functional("PBE"), EC1)
        config = VerifierConfig(
            split_threshold=2.0, per_call_budget=2, global_step_budget=20
        )
        report = Verifier(config).verify(problem)
        assert report.area_fractions()[Outcome.TIMEOUT] > 0.0


class TestAlgorithmStructure:
    def test_threshold_stops_recursion(self):
        problem = encode(get_functional("LYP"), EC1)
        config = VerifierConfig(
            split_threshold=5.0, per_call_budget=100, global_step_budget=1000
        )
        report = Verifier(config).verify(problem)
        # domain is 5 wide: only the root call can happen
        assert len(report.records) == 1

    def test_split_creates_children_links(self):
        problem = encode(get_functional("LYP"), EC1)
        report = Verifier(FAST).verify(
            problem, domain=small_domain(rs=(1.0, 3.0), s=(0.0, 4.0))
        )
        roots = [r for r in report.records if r.depth == 0]
        assert len(roots) == 1
        root = roots[0]
        if root.outcome is not Outcome.VERIFIED:
            assert root.children
            for child_index in root.children:
                child = report.records[child_index]
                assert child.depth == 1

    def test_verified_boxes_are_leaves(self):
        problem = encode(get_functional("PBE"), EC1)
        report = Verifier(FAST).verify(problem, domain=small_domain())
        for record in report.records:
            if record.outcome is Outcome.VERIFIED:
                assert record.children == []

    def test_no_split_on_counterexample_option(self):
        problem = encode(get_functional("LYP"), EC1)
        config = VerifierConfig(
            split_threshold=0.7,
            per_call_budget=250,
            global_step_budget=8000,
            split_on_counterexample=False,
        )
        report = Verifier(config).verify(
            problem, domain=small_domain(rs=(1.0, 3.0), s=(2.0, 4.0))
        )
        for record in report.records:
            if record.outcome is Outcome.COUNTEREXAMPLE:
                assert record.children == []

    def test_global_budget_marks_remaining_timeout(self):
        problem = encode(get_functional("PBE"), EC1)
        config = VerifierConfig(
            split_threshold=0.15, per_call_budget=200, global_step_budget=300
        )
        report = Verifier(config).verify(problem)
        assert report.budget_exhausted
        zero_step_timeouts = [
            r for r in report.records
            if r.outcome is Outcome.TIMEOUT and r.solver_steps == 0
        ]
        assert zero_step_timeouts

    def test_total_steps_accounting(self):
        problem = encode(get_functional("LYP"), EC1)
        report = Verifier(FAST).verify(problem, domain=small_domain())
        assert report.total_solver_steps == sum(
            r.solver_steps for r in report.records
        )


class TestPaperShapes:
    """Coarse-budget versions of the paper's headline per-pair outcomes."""

    def test_vwn_rpa_ec1_fully_verified(self):
        report = verify_pair(get_functional("VWN RPA"), EC1, FAST)
        assert report.classification() == "OK"

    def test_lyp_ec1_counterexample(self):
        report = verify_pair(get_functional("LYP"), EC1, FAST)
        assert report.classification() == "CEX"

    def test_lyp_ec1_counterexamples_at_large_s(self):
        report = verify_pair(get_functional("LYP"), EC1, FAST)
        bbox = report.counterexample_bbox()
        assert bbox is not None
        assert bbox["s"].hi > 3.0  # violations reach large s
        # and no counterexample below s ~ 1 (paper: threshold ~1.66)
        for record in report.counterexamples():
            assert record.box["s"].hi > 1.0

    def test_pbe_ec7_counterexample_upper_left(self):
        report = verify_pair(get_functional("PBE"), EC7, FAST)
        assert report.classification() == "CEX"
        bbox = report.counterexample_bbox()
        # the violating region covers small rs at large s (upper left)
        assert bbox["rs"].lo < 1.0
        assert bbox["s"].hi > 3.0

    def test_pbe_ec5_verified(self):
        from repro.conditions import EC5
        report = verify_pair(get_functional("PBE"), EC5, FAST)
        assert report.classification() == "OK"

    def test_valid_counterexample_check_rejects_nan(self):
        problem = encode(get_functional("PBE"), EC1)
        assert not Verifier._is_valid_counterexample(problem, None)
        assert not Verifier._is_valid_counterexample(
            problem, {"rs": -1.0, "s": -1.0}
        )
