"""Unit tests for the specialize_boxes verifier option (Sec. VI-A knob)."""


from repro import get_condition, get_functional
from repro.verifier.encoder import encode
from repro.verifier.regions import Outcome
from repro.verifier.verifier import Verifier, VerifierConfig

QUICK = dict(split_threshold=1.3, per_call_budget=150, global_step_budget=2500)


class TestSpecializeBoxes:
    def test_default_off(self):
        assert VerifierConfig().specialize_boxes is False

    def test_no_ite_formula_is_untouched(self):
        # PBE has no Ite: specialisation must return the original formula
        # object (so the solver's contractor cache stays warm)
        problem = encode(get_functional("PBE"), get_condition("EC1"))
        verifier = Verifier(VerifierConfig(**QUICK, specialize_boxes=True))
        out = verifier._specialized(problem.negation, problem.domain)
        assert out is problem.negation
        assert verifier._specialized_cache == {}

    def test_scan_subbox_specialises(self):
        from repro.solver.box import Box

        problem = encode(get_functional("SCAN"), get_condition("EC1"))
        verifier = Verifier(VerifierConfig(**QUICK, specialize_boxes=True))
        sub = Box.from_bounds(
            {"rs": (0.1, 5.0), "s": (0.0, 5.0), "alpha": (1.5, 5.0)}
        )
        out = verifier._specialized(problem.negation, sub)
        assert out is not problem.negation
        assert (
            out.max_operation_count()
            < problem.negation.max_operation_count()
        )

    def test_specialised_formula_interned(self):
        from repro.solver.box import Box

        problem = encode(get_functional("SCAN"), get_condition("EC1"))
        verifier = Verifier(VerifierConfig(**QUICK, specialize_boxes=True))
        box_a = Box.from_bounds(
            {"rs": (0.1, 2.0), "s": (0.0, 5.0), "alpha": (1.5, 3.0)}
        )
        box_b = Box.from_bounds(
            {"rs": (2.0, 5.0), "s": (0.0, 5.0), "alpha": (3.0, 5.0)}
        )
        out_a = verifier._specialized(problem.negation, box_a)
        out_b = verifier._specialized(problem.negation, box_b)
        # both boxes sit on the same side of every switch: one object
        assert out_a is out_b
        assert len(verifier._specialized_cache) == 1

    def test_verdicts_match_plain_run(self):
        problem = encode(get_functional("SCAN"), get_condition("EC1"))
        results = {}
        for flag in (False, True):
            config = VerifierConfig(**QUICK, specialize_boxes=flag)
            report = Verifier(config).verify(problem)
            results[flag] = (
                report.classification(),
                report.has_counterexample(),
            )
        assert results[False] == results[True]

    def test_counterexamples_still_validated(self):
        # LYP has no Ite; with the flag on, the CEX machinery is unchanged
        config = VerifierConfig(**QUICK, specialize_boxes=True)
        report = Verifier(config).verify(
            encode(get_functional("LYP"), get_condition("EC1"))
        )
        assert report.has_counterexample()
        for record in report.counterexamples():
            assert record.outcome is Outcome.COUNTEREXAMPLE
            assert record.model is not None
