"""Tests for region-map rasterisation and ASCII rendering."""

import pytest

from repro.solver.box import Box
from repro.verifier.regions import Outcome, RegionRecord, VerificationReport
from repro.verifier.render import (
    OUTCOME_CODES,
    ascii_map,
    export_rows,
    outcome_fractions_from_raster,
    rasterize,
)


def report_2d():
    domain = Box.from_bounds({"rs": (0.0, 4.0), "s": (0.0, 4.0)})
    records = [
        RegionRecord(0, 0, domain, Outcome.TIMEOUT, children=[1, 2]),
        RegionRecord(
            1, 1, Box.from_bounds({"rs": (0.0, 2.0), "s": (0.0, 4.0)}),
            Outcome.VERIFIED,
        ),
        RegionRecord(
            2, 1, Box.from_bounds({"rs": (2.0, 4.0), "s": (2.0, 4.0)}),
            Outcome.COUNTEREXAMPLE, model={"rs": 3.0, "s": 3.0},
        ),
    ]
    return VerificationReport("T", "EC1", domain, records)


class TestRasterize:
    def test_painting_order(self):
        raster = rasterize(report_2d(), resolution=8)
        # left half verified
        assert (raster[:, :4] == OUTCOME_CODES[Outcome.VERIFIED]).all()
        # upper right quadrant counterexample (s is the row axis)
        assert (raster[4:, 4:] == OUTCOME_CODES[Outcome.COUNTEREXAMPLE]).all()
        # lower right quadrant keeps the parent's timeout
        assert (raster[:4, 4:] == OUTCOME_CODES[Outcome.TIMEOUT]).all()

    def test_shape(self):
        raster = rasterize(report_2d(), resolution=16)
        assert raster.shape == (16, 16)

    def test_1d_report(self):
        domain = Box.from_bounds({"rs": (0.0, 4.0)})
        report = VerificationReport(
            "T", "EC1", domain,
            [RegionRecord(0, 0, domain, Outcome.VERIFIED)],
        )
        raster = rasterize(report, resolution=8)
        assert raster.shape == (1, 8)
        assert (raster == OUTCOME_CODES[Outcome.VERIFIED]).all()

    def test_slice_point_filters_records(self):
        domain = Box.from_bounds(
            {"rs": (0.0, 4.0), "s": (0.0, 4.0), "alpha": (0.0, 4.0)}
        )
        low_alpha = RegionRecord(
            0, 0,
            Box.from_bounds({"rs": (0.0, 4.0), "s": (0.0, 4.0), "alpha": (0.0, 1.0)}),
            Outcome.VERIFIED,
        )
        report = VerificationReport("T", "EC1", domain, [low_alpha])
        hit = rasterize(report, resolution=4, slice_point={"alpha": 0.5})
        miss = rasterize(report, resolution=4, slice_point={"alpha": 3.0})
        assert (hit == OUTCOME_CODES[Outcome.VERIFIED]).all()
        assert (miss == 0).all()

    def test_unknown_axis_raises(self):
        with pytest.raises(KeyError):
            rasterize(report_2d(), x_var="nope")


class TestAsciiMap:
    def test_contains_legend_and_chars(self):
        art = ascii_map(report_2d(), resolution=8)
        assert "X" in art and "." in art
        assert "legend" in art
        assert "T / EC1" in art

    def test_no_legend_option(self):
        art = ascii_map(report_2d(), resolution=8, legend=False)
        assert "legend" not in art

    def test_row_count(self):
        art = ascii_map(report_2d(), resolution=8, legend=False)
        lines = art.splitlines()
        assert len(lines) == 9  # header + 8 rows


class TestExports:
    def test_fractions_from_raster(self):
        raster = rasterize(report_2d(), resolution=8)
        fractions = outcome_fractions_from_raster(raster)
        assert fractions[Outcome.VERIFIED] == pytest.approx(0.5)
        assert fractions[Outcome.COUNTEREXAMPLE] == pytest.approx(0.25)

    def test_export_rows(self):
        rows = export_rows(report_2d())
        assert len(rows) == 3
        assert rows[0]["outcome"] == "timeout"
        assert rows[2]["model_rs"] == pytest.approx(3.0)
        assert {"rs_lo", "rs_hi", "s_lo", "s_hi"} <= set(rows[0])
