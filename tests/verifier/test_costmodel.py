"""Cost-model and adaptive-scheduling tests.

Three load-bearing properties:

* **determinism** -- predictions are pure functions of the store bytes
  and the registry: cold priors are clock-free, warmed models are
  byte-stable across processes (pinned with actual subprocesses);
* **bit-identity** -- adaptive *ordering* is a pure permutation of the
  static dispatch order, so every stitched report is identical to the
  static run, in-process and on a pool;
* **loud validation** -- negative tuning knobs raise one-line
  ``ValueError``s in :class:`CampaignConfig` instead of flowing into
  the engine.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.conditions import get_condition
from repro.functionals import get_functional
from repro.verifier.campaign import CampaignConfig, effective_workers, run_campaign
from repro.verifier.costmodel import (
    CostModel,
    PairTiming,
    SchedulingPolicy,
    aggregate_timings,
)
from repro.verifier.store import open_store
from repro.verifier.verifier import VerifierConfig

from .test_campaign import assert_reports_identical

TINY = VerifierConfig(split_threshold=0.7, per_call_budget=100, global_step_budget=600)
PAIRS = [("Wigner", "EC1"), ("VWN RPA", "EC1"), ("LYP", "EC1")]


# ---------------------------------------------------------------------------
# the prior
# ---------------------------------------------------------------------------

class TestPrior:
    def test_deterministic_and_positive(self):
        model = CostModel()
        first = {p: model.predict_pair(*p) for p in PAIRS}
        second = {p: CostModel().predict_pair(*p) for p in PAIRS}
        assert first == second
        assert all(value > 0.0 for value in first.values())

    def test_bigger_functionals_predict_costlier(self):
        model = CostModel()
        # SCAN's lifted expression dwarfs Wigner's -- the prior must
        # reproduce the paper's observed size ordering cold
        assert model.predict_pair("SCAN", "EC1") > model.predict_pair("Wigner", "EC1")
        assert model.predict_pair("LYP", "EC1") > model.predict_pair("Wigner", "EC1")

    def test_exchange_conditions_bump_xc_functionals(self):
        model = CostModel()
        pbe = get_functional("PBE")
        ec1 = get_condition("EC1")   # correlation-only
        ec4 = get_condition("EC4")   # requires exchange
        assert ec4.requires_exchange and not ec1.requires_exchange
        assert model.prior_pair(pbe, ec4) > model.prior_pair(pbe, ec1)

    def test_numerics_cells_scale_by_check_kind(self):
        model = CostModel()
        kinds = {
            check: model.predict_cell("LYP", "fc", check, "-")
            for check in ("continuity", "hazards", "sensitivity")
        }
        assert kinds["sensitivity"] > kinds["hazards"] > kinds["continuity"]

    def test_history_never_leaks_into_unseen_pairs(self):
        timing = PairTiming(
            count=3, total_seconds=9.0, mean_seconds=3.0,
            p99_seconds=4.0, compile_seconds=0.5, total_solver_steps=100,
        )
        model = CostModel({("LYP", "EC1"): timing})
        assert model.predict_pair("LYP", "EC1") == 3.0
        assert model.predict_pair("Wigner", "EC1") == CostModel().predict_pair(
            "Wigner", "EC1"
        )


# ---------------------------------------------------------------------------
# timing aggregation
# ---------------------------------------------------------------------------

class TestAggregateTimings:
    def rows(self):
        return [
            {"functional": "LYP", "condition": "EC1", "elapsed_seconds": e,
             "compile_seconds": 0.1, "total_solver_steps": 10}
            for e in (0.4, 0.2, 0.6)
        ] + [
            {"functional": "Wigner", "condition": "EC1", "elapsed_seconds": 0.01,
             "compile_seconds": 0.0, "total_solver_steps": 2},
        ]

    def test_per_pair_stats(self):
        timings = aggregate_timings(self.rows())
        lyp = timings[("LYP", "EC1")]
        assert lyp.count == 3
        assert lyp.total_seconds == pytest.approx(1.2)
        assert lyp.mean_seconds == pytest.approx(0.4)
        assert lyp.p99_seconds == 0.6  # nearest-rank over [0.2, 0.4, 0.6]
        assert lyp.compile_seconds == pytest.approx(0.3)
        assert lyp.total_solver_steps == 30
        assert lyp.compile_share == pytest.approx(0.3 / 1.2)
        assert timings[("Wigner", "EC1")].count == 1

    def test_compile_share_clamped_and_empty_safe(self):
        zero = PairTiming(
            count=1, total_seconds=0.0, mean_seconds=0.0,
            p99_seconds=0.0, compile_seconds=0.0, total_solver_steps=0,
        )
        assert zero.compile_share == 0.0
        assert aggregate_timings([]) == {}


# ---------------------------------------------------------------------------
# persistence: cold start vs warmed model
# ---------------------------------------------------------------------------

class TestFromStore:
    def test_missing_path_is_cold_and_creates_nothing(self, tmp_path):
        path = tmp_path / "never-written.sqlite"
        model = CostModel.from_store(path)
        assert model.history == {}
        assert not path.exists()
        assert CostModel.from_store(None).history == {}

    def test_warmed_model_prefers_history_over_prior(self, tmp_path):
        path = tmp_path / "warm.jsonl"
        run_campaign(PAIRS, TINY, max_workers=0, store=path)
        model = CostModel.from_store(path)
        assert set(model.history) == set(PAIRS)
        for pair in PAIRS:
            timing = model.stats(*pair)
            assert timing is not None and timing.count == 1
            assert model.predict_pair(*pair) == timing.mean_seconds

    def test_numerics_cells_do_not_enter_the_history(self, tmp_path):
        from repro.numerics.campaign import run_numerics_campaign

        path = tmp_path / "mixed.jsonl"
        run_campaign(PAIRS[:1], TINY, max_workers=0, store=path)
        run_numerics_campaign(
            ["Wigner"], components=("fc",), checks=("continuity",),
            max_workers=0, store=path,
        )
        store = open_store(path)
        try:
            rows = list(store.iter_timings())
        finally:
            store.close()
        assert [(r["functional"], r["condition"]) for r in rows] == [("Wigner", "EC1")]
        assert rows[0]["elapsed_seconds"] >= 0.0
        assert rows[0]["region_count"] >= 1

    def test_predictions_byte_stable_across_processes(self, tmp_path):
        path = tmp_path / "stable.jsonl"
        run_campaign(PAIRS, TINY, max_workers=0, store=path)
        script = (
            "import json, sys\n"
            "from repro.verifier.costmodel import CostModel\n"
            "model = CostModel.from_store(sys.argv[1])\n"
            "pairs = [('Wigner','EC1'), ('VWN RPA','EC1'), ('LYP','EC1'),"
            " ('SCAN','EC1')]\n"  # SCAN: no history -> prior path too
            "out = {f'{f}/{c}': model.predict_pair(f, c).hex()"
            " for f, c in pairs}\n"
            "print(json.dumps(out, sort_keys=True))\n"
        )
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            sys.modules["repro"].__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        outputs = [
            subprocess.run(
                [sys.executable, "-c", script, str(path)],
                env=env, capture_output=True, text=True, check=True,
            ).stdout
            for _ in range(2)
        ]
        # bit-exact float hex, byte-exact JSON, across two fresh processes
        assert outputs[0] == outputs[1]
        assert json.loads(outputs[0])  # and it is real content, not empty


# ---------------------------------------------------------------------------
# the policy
# ---------------------------------------------------------------------------

class TestSchedulingPolicy:
    def warmed(self, cheap=0.01, dear=1.0):
        return CostModel({
            ("Wigner", "EC1"): PairTiming(1, cheap, cheap, cheap, 0.0, 1),
            ("LYP", "EC1"): PairTiming(1, dear, dear, dear, 0.0, 1),
            ("VWN RPA", "EC1"): PairTiming(1, cheap, cheap, cheap, 0.0, 1),
        })

    def entries(self):
        return [
            (key, get_functional(key[0]), get_condition(key[1]))
            for key in PAIRS
        ]

    def test_order_longest_first_stable_ties(self):
        policy = SchedulingPolicy(model=self.warmed())
        predicted = {("a",): 1.0, ("b",): 5.0, ("c",): 1.0}
        assert policy.order([("a",), ("b",), ("c",)], predicted) == [
            ("b",), ("a",), ("c",)  # ties keep submission order
        ]

    def test_order_off_is_identity(self):
        policy = SchedulingPolicy(model=self.warmed(), adaptive_order=False)
        keys = [("a",), ("b",)]
        assert policy.order(keys, {("a",): 1.0, ("b",): 2.0}) == keys

    def test_single_worker_never_splits(self):
        policy = SchedulingPolicy(model=self.warmed())
        plans = policy.plan_pairs(self.entries(), workers=1)
        assert all(
            plan.presplit_levels == 0 and plan.steal_depth == 0
            for plan in plans.values()
        )

    def test_expensive_pair_splits_cheap_stay_whole(self):
        policy = SchedulingPolicy(model=self.warmed())
        plans = policy.plan_pairs(self.entries(), workers=4)
        dear = plans[("LYP", "EC1")]
        assert dear.presplit_levels >= 1 and dear.steal_depth >= 1
        for key in (("Wigner", "EC1"), ("VWN RPA", "EC1")):
            assert plans[key].presplit_levels == 0
            assert plans[key].steal_depth == 0

    def test_base_knobs_are_floors(self):
        policy = SchedulingPolicy(model=self.warmed())
        plans = policy.plan_pairs(
            self.entries(), workers=4, base_presplit=1, base_steal=1
        )
        assert all(
            plan.presplit_levels >= 1 and plan.steal_depth >= 1
            for plan in plans.values()
        )

    def test_split_caps_respected(self):
        policy = SchedulingPolicy(
            model=self.warmed(dear=100.0), max_presplit=1, max_steal_depth=1
        )
        plans = policy.plan_pairs(self.entries(), workers=64)
        dear = plans[("LYP", "EC1")]
        assert dear.presplit_levels == 1 and dear.steal_depth == 1

    def test_plans_are_deterministic(self):
        first = SchedulingPolicy(model=self.warmed()).plan_pairs(
            self.entries(), workers=4
        )
        second = SchedulingPolicy(model=self.warmed()).plan_pairs(
            self.entries(), workers=4
        )
        assert first == second

    def test_effective_workers(self):
        from concurrent.futures import ProcessPoolExecutor

        assert effective_workers(0) == 1
        assert effective_workers(1) == 1
        assert effective_workers(7) == 7
        assert effective_workers(None) == (os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=2) as pool:
            assert effective_workers(None, pool) == 2


# ---------------------------------------------------------------------------
# regression: adaptive ordering never changes any report
# ---------------------------------------------------------------------------

class TestAdaptiveBitIdentity:
    def order_only_policy(self, store_path=None):
        model = CostModel.from_store(store_path) if store_path else CostModel()
        return SchedulingPolicy(model=model, adaptive_split=False)

    def test_in_process_reports_identical(self, tmp_path):
        path = tmp_path / "history.jsonl"
        static = run_campaign(PAIRS, TINY, max_workers=0, store=path)
        adaptive = run_campaign(
            PAIRS, TINY, max_workers=0, policy=self.order_only_policy(path)
        )
        assert set(static.reports) == set(adaptive.reports)
        for key in static.reports:
            assert_reports_identical(static.reports[key], adaptive.reports[key])
            assert adaptive.reports[key].identical_to(static.reports[key])

    def test_pool_reports_identical(self):
        static = run_campaign(PAIRS, TINY, max_workers=0)
        adaptive = run_campaign(
            PAIRS, TINY, max_workers=2, policy=self.order_only_policy()
        )
        for key in static.reports:
            assert_reports_identical(static.reports[key], adaptive.reports[key])

    def test_adaptive_dispatches_longest_predicted_first(self, tmp_path):
        path = tmp_path / "history.jsonl"
        run_campaign(PAIRS, TINY, max_workers=0, store=path)
        order: list = []
        run_campaign(
            PAIRS,
            TINY,
            max_workers=0,
            policy=self.order_only_policy(path),
            on_cell=lambda key, report, hit: order.append(key),
        )
        model = CostModel.from_store(path)
        costs = [model.predict_pair(*key) for key in order]
        assert costs == sorted(costs, reverse=True)
        assert set(order) == set(PAIRS)

    def test_adaptive_split_keys_stay_store_sound(self, tmp_path):
        # per-pair knobs enter the content key: a rerun with the same
        # warmed model (same plans) must serve every cell from the store
        path = tmp_path / "roundtrip.jsonl"
        run_campaign(PAIRS, TINY, max_workers=0, store=path)
        policy = SchedulingPolicy(model=CostModel.from_store(path))
        first = run_campaign(PAIRS, TINY, max_workers=2, policy=policy, store=path)
        second = run_campaign(PAIRS, TINY, max_workers=2, policy=policy, store=path)
        assert sorted(second.store_hits) == sorted(PAIRS)
        assert second.computed == []
        for key in first.reports:
            assert second.reports[key].identical_to(first.reports[key])

    def test_adaptive_resume_replays_pinned_plans(self, tmp_path):
        # the CLI flow: each invocation builds a FRESH policy from the
        # (ever-warmer) store.  plans depend on history, and planned
        # knobs enter the content key -- without the store-pinned plan
        # record, a resumed adaptive run would re-key and recompute
        # cells the previous run already persisted
        path = tmp_path / "pinned.jsonl"
        run_campaign(PAIRS, TINY, max_workers=0, store=path)  # warm history
        first = run_campaign(
            PAIRS, TINY, max_workers=2, store=path, resume=True,
            policy=SchedulingPolicy(model=CostModel.from_store(path)),
        )
        second = run_campaign(
            PAIRS, TINY, max_workers=2, store=path, resume=True,
            policy=SchedulingPolicy(model=CostModel.from_store(path)),
        )
        assert sorted(second.store_hits) == sorted(PAIRS)
        assert second.computed == []
        for key in first.reports:
            assert second.reports[key].identical_to(first.reports[key])

    def test_model_stays_out_of_semantic_keys(self):
        # the model may reorder work, never re-key it: semantic_key is
        # blind to any cost-model state by construction
        assert "costmodel" not in repr(TINY.semantic_key()).lower()
        cold = TINY.semantic_key()
        assert cold == TINY.semantic_key()


# ---------------------------------------------------------------------------
# loud knob validation (engine side; the CLI layer is tested in test_cli)
# ---------------------------------------------------------------------------

class TestCampaignConfigValidation:
    def test_rejects_negative_knobs(self):
        with pytest.raises(ValueError, match="max_workers must be >= 0"):
            CampaignConfig(max_workers=-1)
        with pytest.raises(ValueError, match="presplit_levels must be >= 0"):
            CampaignConfig(presplit_levels=-1)
        with pytest.raises(ValueError, match="steal_depth must be >= 0"):
            CampaignConfig(steal_depth=-3)
        with pytest.raises(ValueError, match="unit_chunk_size must be >= 1"):
            CampaignConfig(unit_chunk_size=0)

    def test_accepts_boundary_values(self):
        CampaignConfig(max_workers=0, presplit_levels=0, steal_depth=0,
                       unit_chunk_size=1)
        CampaignConfig(max_workers=None)

    def test_run_campaign_validates_before_any_work(self):
        with pytest.raises(ValueError, match="steal_depth"):
            run_campaign(PAIRS, TINY, steal_depth=-1)
        with pytest.raises(ValueError, match="max_workers"):
            run_campaign(PAIRS, TINY, max_workers=-2)

    def test_numerics_campaign_validates_too(self):
        from repro.numerics.campaign import run_numerics_campaign

        with pytest.raises(ValueError, match="max_workers"):
            run_numerics_campaign(["Wigner"], max_workers=-1)
        with pytest.raises(ValueError, match="unit_chunk_size"):
            run_numerics_campaign(["Wigner"], unit_chunk_size=0)
