"""Tests for XCEncoder (condition x functional -> solver problem)."""

import pytest

from repro.conditions import EC1, EC4, EC5, EC7
from repro.functionals import get_functional
from repro.solver.box import Box
from repro.verifier.encoder import encode


class TestEncode:
    def test_basic_fields(self):
        problem = encode(get_functional("LYP"), EC1)
        assert problem.label == "LYP / EC1"
        assert problem.psi.op in (">=", "<=")
        assert len(problem.negation) == 1

    def test_domain_defaults_to_functional_domain(self):
        problem = encode(get_functional("SCAN"), EC1)
        assert set(problem.domain.names) == {"rs", "s", "alpha"}

    def test_domain_override(self):
        domain = Box.from_bounds({"rs": (1.0, 2.0), "s": (0.0, 1.0)})
        problem = encode(get_functional("PBE"), EC1, domain=domain)
        assert problem.domain is domain

    def test_negation_flips_semantics(self):
        problem = encode(get_functional("LYP"), EC1)
        # psi holds at small s; the negation must hold where psi fails
        good = {"rs": 2.0, "s": 0.5}
        bad = {"rs": 2.0, "s": 3.0}
        from repro.expr.evaluator import evaluate_rel
        assert evaluate_rel(problem.psi, good)
        assert not evaluate_rel(problem.psi, bad)
        assert problem.negation.holds_at(bad)
        assert not problem.negation.holds_at(good)

    def test_encoding_cached(self):
        p1 = encode(get_functional("PBE"), EC7)
        p2 = encode(get_functional("PBE"), EC7)
        assert p1.psi is p2.psi

    def test_inapplicable_pair_raises(self):
        with pytest.raises(ValueError):
            encode(get_functional("LYP"), EC4)

    def test_complexity_ordering(self):
        """SCAN encodings are the largest, as the paper reports."""
        ec1_sizes = {
            name: encode(get_functional(name), EC1).complexity()
            for name in ("PBE", "LYP", "AM05", "SCAN", "VWN RPA")
        }
        assert max(ec1_sizes, key=ec1_sizes.get) == "SCAN"

    def test_lieb_oxford_requires_exchange_in_formula(self):
        problem = encode(get_functional("PBE"), EC5)
        free = problem.negation.free_var_names()
        assert free == {"rs", "s"}
