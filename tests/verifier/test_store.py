"""Tests for the persistent campaign result store."""

from __future__ import annotations

import json
import math

import pytest

from repro.conditions import EC1
from repro.functionals import get_functional
from repro.solver.box import Box
from repro.verifier.encoder import compile_problem, encode
from repro.verifier.regions import Outcome, RegionRecord, VerificationReport
from repro.verifier.store import (
    JsonlStore,
    SqliteStore,
    iter_reports,
    open_store,
    report_from_payload,
    report_to_payload,
)
from repro.verifier.verifier import Verifier, VerifierConfig

FAST = VerifierConfig(split_threshold=0.7, per_call_budget=250, global_step_budget=8000)


def _sample_report() -> VerificationReport:
    problem = encode(get_functional("LYP"), EC1)
    return Verifier(FAST).verify(
        problem, domain=Box.from_bounds({"rs": (1.0, 3.0), "s": (0.0, 4.0)})
    )


def _tricky_report() -> VerificationReport:
    """Hand-built report exercising awkward floats and empty models."""
    box = Box.from_bounds({"x": (-0.1, 1e-17), "y": (2.0 / 3.0, math.pi)})
    records = [
        RegionRecord(0, 0, box, Outcome.COUNTEREXAMPLE,
                     model={"x": 5e-324, "y": 0.1 + 0.2}, children=[1], solver_steps=7),
        RegionRecord(1, 1, box, Outcome.TIMEOUT, model=None, children=[], solver_steps=0),
        RegionRecord(2, 1, box, Outcome.INCONCLUSIVE,
                     model={"x": -0.0, "y": 1e308}, children=[], solver_steps=3),
    ]
    return VerificationReport(
        functional_name="Toy", condition_id="T1", domain=box, records=records,
        total_solver_steps=10, elapsed_seconds=0.25, budget_exhausted=True,
    )


def assert_roundtrip_exact(report: VerificationReport, restored: VerificationReport):
    assert restored.functional_name == report.functional_name
    assert restored.condition_id == report.condition_id
    assert restored.domain == report.domain
    assert restored.total_solver_steps == report.total_solver_steps
    assert restored.elapsed_seconds == report.elapsed_seconds
    assert restored.budget_exhausted == report.budget_exhausted
    assert len(restored.records) == len(report.records)
    for a, b in zip(report.records, restored.records):
        assert a.index == b.index and a.depth == b.depth
        assert a.box == b.box
        assert a.outcome == b.outcome
        assert a.model == b.model
        assert a.children == b.children
        assert a.solver_steps == b.solver_steps


class TestPayloadRoundTrip:
    def test_real_report_roundtrips_exactly(self):
        report = _sample_report()
        payload = json.loads(json.dumps(report_to_payload(report)))
        assert_roundtrip_exact(report, report_from_payload(payload))

    def test_awkward_floats_roundtrip_exactly(self):
        report = _tricky_report()
        payload = json.loads(json.dumps(report_to_payload(report)))
        restored = report_from_payload(payload)
        assert_roundtrip_exact(report, restored)
        # -0.0 keeps its sign bit through the round trip
        assert math.copysign(1.0, restored.records[2].model["x"]) == -1.0

    def test_schema_version_mismatch_rejected(self):
        payload = report_to_payload(_tricky_report())
        payload["v"] = 999
        with pytest.raises(ValueError, match="schema"):
            report_from_payload(payload)

    def test_classification_survives(self):
        report = _sample_report()
        payload = report_to_payload(report)
        assert report_from_payload(payload).classification() == report.classification()
        assert report_from_payload(payload).area_fractions() == report.area_fractions()


@pytest.mark.parametrize("suffix", [".sqlite", ".jsonl"])
class TestStoreBackends:
    def test_put_get_roundtrip(self, tmp_path, suffix):
        report = _sample_report()
        with open_store(tmp_path / f"store{suffix}") as store:
            assert store.get("k1") is None
            store.put("k1", report)
            assert "k1" in store
            assert_roundtrip_exact(report, store.get("k1"))

    def test_persists_across_reopen(self, tmp_path, suffix):
        path = tmp_path / f"store{suffix}"
        report = _tricky_report()
        with open_store(path) as store:
            store.put("cell", report)
        with open_store(path) as store:
            assert store.keys() == ["cell"]
            assert store.created_at("cell") is not None
            assert_roundtrip_exact(report, store.get("cell"))

    def test_overwrite_latest_wins(self, tmp_path, suffix):
        path = tmp_path / f"store{suffix}"
        first = _tricky_report()
        second = _sample_report()
        with open_store(path) as store:
            store.put("cell", first)
            store.put("cell", second)
        with open_store(path) as store:
            assert len(store) == 1
            assert_roundtrip_exact(second, store.get("cell"))

    def test_backend_selection(self, tmp_path, suffix):
        store = open_store(tmp_path / f"store{suffix}")
        expected = JsonlStore if suffix == ".jsonl" else SqliteStore
        assert isinstance(store, expected)
        store.close()

    def test_iter_reports_walks_everything(self, tmp_path, suffix):
        reports = {"a": _tricky_report(), "b": _sample_report()}
        with open_store(tmp_path / f"store{suffix}") as store:
            for key, report in reports.items():
                store.put(key, report)
            walked = dict(iter_reports(store))
            assert sorted(walked) == ["a", "b"]
            for key, restored in walked.items():
                assert_roundtrip_exact(reports[key], restored)


class TestJsonlCrashRobustness:
    def test_truncated_tail_is_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with open_store(path) as store:
            store.put("a", _tricky_report())
            store.put("b", _sample_report())
        # simulate a kill mid-write: append half a line
        with open(path, "a") as handle:
            handle.write('{"key": "c", "created_at": 1.0, "payl')
        with open_store(path) as store:
            assert sorted(store.keys()) == ["a", "b"]
            assert store.get("c") is None
            # and the store still accepts new cells afterwards
            store.put("c", _tricky_report())
        with open_store(path) as store:
            assert sorted(store.keys()) == ["a", "b", "c"]


class TestContentKeys:
    def test_key_stability_and_sensitivity(self):
        config = VerifierConfig()
        problem = compile_problem(encode(get_functional("PBE"), EC1))
        again = compile_problem(encode(get_functional("PBE"), EC1))
        assert problem.content_hash(extra=config.semantic_key()) == again.content_hash(
            extra=config.semantic_key()
        )
        # outcome-relevant config changes the key ...
        changed = VerifierConfig(global_step_budget=123)
        assert problem.content_hash(extra=changed.semantic_key()) != problem.content_hash(
            extra=config.semantic_key()
        )
        # ... pure performance knobs do not
        perf = VerifierConfig(solver_backend="walk", batch_size=7)
        assert problem.content_hash(extra=perf.semantic_key()) == problem.content_hash(
            extra=config.semantic_key()
        )

    def test_domain_in_key(self):
        config = VerifierConfig()
        problem = compile_problem(encode(get_functional("PBE"), EC1))
        sub = Box.from_bounds({"rs": (1.0, 2.0), "s": (0.0, 1.0)})
        assert problem.content_hash(domain=sub, extra=config.semantic_key()) != \
            problem.content_hash(extra=config.semantic_key())

    def test_different_pairs_different_keys(self):
        config = VerifierConfig()
        keys = {
            name: compile_problem(encode(get_functional(name), EC1)).content_hash(
                extra=config.semantic_key()
            )
            for name in ("PBE", "LYP", "VWN RPA")
        }
        assert len(set(keys.values())) == 3


class TestOpenStoreSuffixes:
    def test_known_suffixes_select_backends(self, tmp_path):
        from repro.verifier.store import STORE_SUFFIXES

        for suffix, backend in STORE_SUFFIXES.items():
            store = open_store(tmp_path / f"s{suffix}")
            assert isinstance(store, backend), suffix
            store.close()

    @pytest.mark.parametrize("name", ["store.db.tmp", "store", "store.json",
                                      "store.sqlite.bak"])
    def test_unknown_suffix_raises_naming_supported(self, tmp_path, name):
        with pytest.raises(ValueError) as exc:
            open_store(tmp_path / name)
        message = str(exc.value)
        assert "unknown store suffix" in message
        for suffix in (".jsonl", ".sqlite", ".sqlite3", ".db"):
            assert suffix in message
        # nothing was created on disk for the rejected path
        assert not (tmp_path / name).exists()


class TestConcurrentAccess:
    """Satellite: WAL + busy timeout keep readers alive during commits.

    Before the hardening a second connection reading while a writer
    committed could fail with "database is locked"; WAL gives readers the
    last committed snapshot and the busy timeout absorbs checkpoints.
    """

    def test_sqlite_reader_during_writer_commits(self, tmp_path):
        import threading

        path = tmp_path / "store.sqlite"
        report = _tricky_report()
        writer = open_store(path)
        writer.put("seed", report)
        reader = open_store(path)  # separate connection, same file

        stop = threading.Event()
        errors: list[BaseException] = []

        def write_loop():
            try:
                for i in range(60):
                    writer.put(f"cell-{i}", report)
            except BaseException as exc:
                errors.append(exc)
            finally:
                stop.set()

        def read_loop():
            try:
                while not stop.is_set():
                    for _key, restored in iter_reports(reader):
                        assert restored.condition_id == report.condition_id
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=write_loop),
                   threading.Thread(target=read_loop)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, f"concurrent access failed: {errors!r}"
        writer.close()
        # after the dust settles the reader sees every committed cell
        assert len(reader.keys()) == 61
        reader.close()

    @pytest.mark.parametrize("suffix", [".sqlite", ".jsonl"])
    def test_one_store_shared_across_threads(self, tmp_path, suffix):
        """The service's job threads all write through one store object."""
        import threading

        report = _tricky_report()
        with open_store(tmp_path / f"store{suffix}") as store:
            errors: list[BaseException] = []

            def hammer(worker: int):
                try:
                    for i in range(20):
                        store.put(f"w{worker}-c{i}", report)
                        assert store.get(f"w{worker}-c{i}") is not None
                except BaseException as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=hammer, args=(w,))
                       for w in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors, f"shared-store access failed: {errors!r}"
            assert len(store.keys()) == 80

    def test_wal_mode_enabled(self, tmp_path):
        store = open_store(tmp_path / "store.sqlite")
        try:
            (mode,) = store._conn.execute("PRAGMA journal_mode").fetchone()
            assert mode.lower() == "wal"
            (busy,) = store._conn.execute("PRAGMA busy_timeout").fetchone()
            assert busy >= 1000
        finally:
            store.close()
