"""Differential tests: the iterative work-queue verifier vs Algorithm 1's
original recursion.

The recursive traversal (kept here as the test oracle) and the work-queue
loop must agree *bit for bit*: same records in the same order, same
boxes, outcomes, models, child links, per-record step counts and global
budget consumption -- including runs whose global budget exhausts
mid-tree.  The queue additionally handles split chains deeper than
Python's recursion limit, which the recursion could not.
"""

from __future__ import annotations

import math
import sys
from types import SimpleNamespace

import pytest

from repro.conditions import EC1
from repro.expr.builder import const, var
from repro.expr.nodes import Rel
from repro.functionals import get_functional
from repro.solver.box import Box
from repro.solver.constraint import Atom, Conjunction
from repro.verifier.encoder import EncodedProblem, encode
from repro.verifier.regions import Outcome, VerificationReport
from repro.verifier.verifier import Verifier, VerifierConfig


def recursive_oracle(config: VerifierConfig, problem, domain=None):
    """Algorithm 1 exactly as the pre-campaign Verifier recursed it."""
    verifier = Verifier(config)
    domain = domain if domain is not None else problem.domain
    report = VerificationReport(
        functional_name=problem.functional.name,
        condition_id=problem.condition.cid,
        domain=domain,
        records=[],
    )
    verifier._steps_left = (
        config.global_step_budget if config.global_step_budget is not None else math.inf
    )

    def visit(box, depth, parent):
        if box.max_width() < config.split_threshold:
            return
        record = verifier._solve_box(problem, box, depth, report)
        if parent is not None:
            parent.children.append(record.index)
        if record.outcome is Outcome.VERIFIED:
            return
        if (
            record.outcome is Outcome.COUNTEREXAMPLE
            and not config.split_on_counterexample
        ):
            return
        if record.outcome is Outcome.TIMEOUT and not config.split_on_timeout:
            return
        for child in box.split_all():
            visit(child, depth + 1, record)

    visit(domain, 0, None)
    report.budget_exhausted = verifier._steps_left <= 0
    return report


def assert_reports_identical(expected, actual):
    assert len(expected.records) == len(actual.records)
    for a, b in zip(expected.records, actual.records):
        assert a.index == b.index
        assert a.depth == b.depth
        assert a.box == b.box  # exact endpoint equality
        assert a.outcome == b.outcome
        assert a.model == b.model
        assert a.children == b.children
        assert a.solver_steps == b.solver_steps
    assert expected.total_solver_steps == actual.total_solver_steps
    assert expected.budget_exhausted == actual.budget_exhausted


#: the differential corpus: (functional, condition, domain, config) spanning
#: verified/counterexample/mixed/timeout shapes and mid-run budget exhaustion
CORPUS = [
    (
        "PBE", EC1, {"rs": (1.0, 3.0), "s": (0.0, 1.0)},
        VerifierConfig(split_threshold=0.7, per_call_budget=250, global_step_budget=8000),
    ),
    (
        "LYP", EC1, {"rs": (1.0, 3.0), "s": (0.0, 4.0)},
        VerifierConfig(split_threshold=0.7, per_call_budget=250, global_step_budget=8000),
    ),
    (
        "VWN RPA", EC1, None,
        VerifierConfig(split_threshold=0.7, per_call_budget=250, global_step_budget=8000),
    ),
    # fine threshold: hundreds of records
    (
        "LYP", EC1, {"rs": (1.0, 3.0), "s": (1.0, 3.0)},
        VerifierConfig(split_threshold=0.3, per_call_budget=150, global_step_budget=20_000),
    ),
    # global budget exhausts mid-tree: the timeout tail must match exactly
    (
        "LYP", EC1, {"rs": (1.0, 3.0), "s": (0.0, 4.0)},
        VerifierConfig(split_threshold=0.5, per_call_budget=200, global_step_budget=700),
    ),
    (
        "PBE", EC1, None,
        VerifierConfig(split_threshold=0.15, per_call_budget=200, global_step_budget=300),
    ),
    # no-split ablations
    (
        "LYP", EC1, {"rs": (1.0, 3.0), "s": (2.0, 4.0)},
        VerifierConfig(
            split_threshold=0.7, per_call_budget=250, global_step_budget=8000,
            split_on_counterexample=False,
        ),
    ),
    (
        "PBE", EC1, None,
        VerifierConfig(
            split_threshold=0.5, per_call_budget=5, global_step_budget=100,
            split_on_timeout=False,
        ),
    ),
]


class TestDifferentialCorpus:
    @pytest.mark.parametrize("case", range(len(CORPUS)))
    def test_workqueue_matches_recursion(self, case):
        name, condition, bounds, config = CORPUS[case]
        problem = encode(get_functional(name), condition)
        domain = Box.from_bounds(bounds) if bounds else None
        oracle = recursive_oracle(config, problem, domain)
        actual = Verifier(config).verify(problem, domain=domain)
        assert_reports_identical(oracle, actual)


def _edge_chain_problem():
    """A 1-D toy problem whose split tree is a deep linear chain.

    psi: x <= 0 on the domain [-1, 0] -- never violated, but the negated
    query ``x > 0`` stays delta-satisfiable (spurious models) on every box
    touching the right edge, so Algorithm 1 keeps splitting the edge box
    while each left sibling is verified UNSAT.  Near 0 the subnormals keep
    halving essentially forever, so a tiny split threshold drives the
    chain far past Python's recursion limit -- breadth stays 2 per level.
    """
    x = var("x")
    psi = Rel(x, const(0.0), "<=")
    negation = Conjunction.of(Atom.from_rel(psi).negate())
    return EncodedProblem(
        functional=SimpleNamespace(name="ToyEdge"),
        condition=SimpleNamespace(cid="TEC"),
        psi=psi,
        negation=negation,
        domain=Box.from_bounds({"x": (-1.0, 0.0)}),
    )


class TestDeepSplitChains:
    CONFIG = VerifierConfig(
        split_threshold=1e-310,  # deep in the subnormals: ~1030 split levels
        per_call_budget=50,
        global_step_budget=None,
        delta=1e-320,
    )

    def test_deep_chain_exceeds_recursion_limit_iteratively(self):
        problem = _edge_chain_problem()
        report = Verifier(self.CONFIG).verify(problem)
        max_depth = max(r.depth for r in report.records)
        assert max_depth > sys.getrecursionlimit()
        assert max_depth > 1000  # ~log2(1 / 1e-310)
        # a *chain*, not a blow-up: at most 2 records per level
        assert len(report.records) <= 2 * (max_depth + 1)
        # structure: everything off the edge is verified, the edge is not
        assert sum(r.outcome is Outcome.VERIFIED for r in report.records) > 800

    def test_recursive_oracle_cannot_run_the_chain(self):
        problem = _edge_chain_problem()
        with pytest.raises(RecursionError):
            recursive_oracle(self.CONFIG, problem)

    def test_shallow_slice_of_chain_matches_oracle(self):
        # the same problem with a coarse threshold stays within the
        # recursion limit, where both drivers must agree bit-for-bit
        config = VerifierConfig(
            split_threshold=2.0 ** -40,
            per_call_budget=50,
            global_step_budget=None,
            delta=1e-300,
        )
        problem = _edge_chain_problem()
        oracle = recursive_oracle(config, problem)
        actual = Verifier(config).verify(problem)
        assert_reports_identical(oracle, actual)


class TestQueueOrders:
    def test_widest_order_same_outcomes_different_schedule(self):
        problem = encode(get_functional("LYP"), EC1)
        domain = Box.from_bounds({"rs": (1.0, 3.0), "s": (0.0, 4.0)})
        base = VerifierConfig(
            split_threshold=0.7, per_call_budget=250, global_step_budget=None
        )
        dfs = Verifier(base).verify(problem, domain=domain)
        widest = Verifier(
            VerifierConfig(
                split_threshold=0.7, per_call_budget=250, global_step_budget=None,
                queue_order="widest",
            )
        ).verify(problem, domain=domain)
        # with an unlimited budget the *set* of solved boxes is identical
        def key(report):
            return sorted(
                ((r.box.names, r.box.intervals, r.outcome.value) for r in report.records),
                key=repr,
            )
        assert key(dfs) == key(widest)
        assert dfs.total_solver_steps == widest.total_solver_steps

    def test_widest_order_prioritises_wide_boxes_under_budget(self):
        problem = encode(get_functional("LYP"), EC1)
        config = VerifierConfig(
            split_threshold=0.2, per_call_budget=100, global_step_budget=2000,
            queue_order="widest",
        )
        report = Verifier(config).verify(problem)
        # the first records solved are the widest (depth-ordered prefix)
        depths = [r.depth for r in report.records if r.solver_steps > 0]
        assert depths == sorted(depths)

    def test_unknown_order_rejected(self):
        # rejected loudly at construction (REP105 / the CampaignConfig
        # pattern), long before any verify() call could misqueue work
        with pytest.raises(ValueError, match="queue_order"):
            VerifierConfig(queue_order="sideways")


class TestRecordStreaming:
    def test_on_record_streams_in_emission_order(self):
        problem = encode(get_functional("LYP"), EC1)
        config = VerifierConfig(
            split_threshold=0.7, per_call_budget=250, global_step_budget=8000
        )
        seen = []
        report = Verifier(config).verify(problem, on_record=seen.append)
        assert seen == report.records

    def test_depth_offset_shifts_all_depths(self):
        problem = encode(get_functional("LYP"), EC1)
        config = VerifierConfig(
            split_threshold=0.7, per_call_budget=250, global_step_budget=4000
        )
        base = Verifier(config).verify(problem)
        shifted = Verifier(config).verify(problem, depth_offset=3)
        assert [r.depth + 3 for r in base.records] == [r.depth for r in shifted.records]
        assert [r.outcome for r in base.records] == [r.outcome for r in shifted.records]


class TestSolveRoot:
    def test_solve_root_matches_first_record(self):
        problem = encode(get_functional("LYP"), EC1)
        config = VerifierConfig(
            split_threshold=0.7, per_call_budget=250, global_step_budget=8000
        )
        full = Verifier(config).verify(problem)
        record, children = Verifier(config).solve_root(problem, problem.domain)
        root = full.records[0]
        assert record.box == root.box
        assert record.outcome == root.outcome
        assert record.model == root.model
        assert record.solver_steps == root.solver_steps
        assert children is not None and len(children) == 4  # 2-D split_all
        assert children == problem.domain.split_all()

    def test_solve_root_below_threshold(self):
        problem = encode(get_functional("LYP"), EC1)
        config = VerifierConfig(split_threshold=100.0)
        record, children = Verifier(config).solve_root(problem, problem.domain)
        assert record is None and children is None

    def test_solve_root_terminal_has_no_children(self):
        problem = encode(get_functional("VWN RPA"), EC1)
        config = VerifierConfig(
            split_threshold=0.7, per_call_budget=250, global_step_budget=8000
        )
        record, children = Verifier(config).solve_root(problem, problem.domain)
        assert record.outcome is Outcome.VERIFIED
        assert children is None


class TestSpecializedCacheBounds:
    QUICK = VerifierConfig(
        split_threshold=1.3, per_call_budget=150, global_step_budget=2500,
        specialize_boxes=True,
    )

    def test_cache_cleared_per_verify(self):
        problem = encode(get_functional("SCAN"), EC1)
        verifier = Verifier(self.QUICK)
        sizes = []
        for _ in range(3):
            verifier.verify(problem)
            sizes.append(len(verifier._specialized_cache))
        # each top-level verify starts from a cleared table: the size is a
        # per-run quantity, not a campaign accumulator
        assert sizes[0] == sizes[1] == sizes[2]

    def test_cache_insertions_respect_the_bound(self):
        from repro.verifier.verifier import _SPECIALIZED_CACHE_MAX

        problem = encode(get_functional("SCAN"), EC1)
        verifier = Verifier(self.QUICK)
        # fill the table as a pathological campaign would, then trigger a
        # genuine insert through _specialized: the oldest entry is evicted
        for i in range(_SPECIALIZED_CACHE_MAX):
            verifier._specialized_cache[("sentinel", i)] = object()
        sub = Box.from_bounds(
            {"rs": (0.1, 5.0), "s": (0.0, 5.0), "alpha": (1.5, 5.0)}
        )
        out = verifier._specialized(problem.negation, sub)
        assert out is not problem.negation  # the guard folded: real insert
        assert len(verifier._specialized_cache) <= _SPECIALIZED_CACHE_MAX
        assert ("sentinel", 0) not in verifier._specialized_cache
