"""Tests for region records and report aggregation."""

import pytest

from repro.solver.box import Box
from repro.verifier.regions import (
    Outcome,
    RegionRecord,
    SYMBOL_COUNTEREXAMPLE,
    SYMBOL_PARTIAL,
    SYMBOL_UNKNOWN,
    SYMBOL_VERIFIED,
    VerificationReport,
)


def make_report(records, domain=None):
    return VerificationReport(
        functional_name="TEST",
        condition_id="EC1",
        domain=domain or Box.from_bounds({"x": (0.0, 4.0)}),
        records=records,
    )


def rec(index, lo, hi, outcome, depth=0, children=None):
    return RegionRecord(
        index=index,
        depth=depth,
        box=Box.from_bounds({"x": (lo, hi)}),
        outcome=outcome,
        children=children or [],
    )


class TestAreaAccounting:
    def test_single_verified_record(self):
        report = make_report([rec(0, 0.0, 4.0, Outcome.VERIFIED)])
        assert report.area_fractions()[Outcome.VERIFIED] == pytest.approx(1.0)
        assert report.classification() == SYMBOL_VERIFIED

    def test_children_paint_over_parent(self):
        parent = rec(0, 0.0, 4.0, Outcome.TIMEOUT, children=[1, 2])
        left = rec(1, 0.0, 2.0, Outcome.VERIFIED, depth=1)
        right = rec(2, 2.0, 4.0, Outcome.COUNTEREXAMPLE, depth=1)
        right.model = {"x": 3.0}
        report = make_report([parent, left, right])
        fractions = report.area_fractions()
        assert fractions[Outcome.VERIFIED] == pytest.approx(0.5)
        assert fractions[Outcome.COUNTEREXAMPLE] == pytest.approx(0.5)
        assert fractions[Outcome.TIMEOUT] == pytest.approx(0.0)

    def test_partial_children_leave_parent_area(self):
        parent = rec(0, 0.0, 4.0, Outcome.TIMEOUT, children=[1])
        left = rec(1, 0.0, 2.0, Outcome.VERIFIED, depth=1)
        report = make_report([parent, left])
        fractions = report.area_fractions()
        assert fractions[Outcome.TIMEOUT] == pytest.approx(0.5)
        assert fractions[Outcome.VERIFIED] == pytest.approx(0.5)

    def test_own_volume_never_negative(self):
        parent = rec(0, 0.0, 1.0, Outcome.TIMEOUT, children=[1, 2])
        # children that (incorrectly) overlap more than the parent volume
        c1 = rec(1, 0.0, 1.0, Outcome.VERIFIED, depth=1)
        c2 = rec(2, 0.0, 1.0, Outcome.VERIFIED, depth=1)
        records = [parent, c1, c2]
        assert parent.own_volume(records) == 0.0


class TestClassification:
    def test_counterexample_takes_precedence(self):
        records = [
            rec(0, 0.0, 4.0, Outcome.TIMEOUT, children=[1, 2]),
            rec(1, 0.0, 2.0, Outcome.VERIFIED, depth=1),
            rec(2, 2.0, 4.0, Outcome.COUNTEREXAMPLE, depth=1),
        ]
        assert make_report(records).classification() == SYMBOL_COUNTEREXAMPLE

    def test_partial_symbol(self):
        records = [
            rec(0, 0.0, 4.0, Outcome.TIMEOUT, children=[1]),
            rec(1, 0.0, 2.0, Outcome.VERIFIED, depth=1),
        ]
        assert make_report(records).classification() == SYMBOL_PARTIAL

    def test_unknown_symbol(self):
        records = [rec(0, 0.0, 4.0, Outcome.TIMEOUT)]
        assert make_report(records).classification() == SYMBOL_UNKNOWN

    def test_inconclusive_only_is_unknown(self):
        records = [rec(0, 0.0, 4.0, Outcome.INCONCLUSIVE)]
        assert make_report(records).classification() == SYMBOL_UNKNOWN


class TestReportHelpers:
    def test_counterexample_bbox(self):
        records = [
            rec(0, 0.0, 4.0, Outcome.TIMEOUT, children=[1, 2]),
            rec(1, 1.0, 2.0, Outcome.COUNTEREXAMPLE, depth=1),
            rec(2, 3.0, 4.0, Outcome.COUNTEREXAMPLE, depth=1),
        ]
        bbox = make_report(records).counterexample_bbox()
        assert bbox["x"].lo == pytest.approx(1.0)
        assert bbox["x"].hi == pytest.approx(4.0)

    def test_counterexample_bbox_none_when_clean(self):
        report = make_report([rec(0, 0.0, 4.0, Outcome.VERIFIED)])
        assert report.counterexample_bbox() is None

    def test_summary_mentions_key_facts(self):
        report = make_report([rec(0, 0.0, 4.0, Outcome.VERIFIED)])
        text = report.summary()
        assert "TEST/EC1" in text
        assert "OK" in text


class TestIdentity:
    def test_identical_to_self_and_copy(self):
        records = [
            rec(0, 0.0, 4.0, Outcome.TIMEOUT, children=[1]),
            rec(1, 0.0, 2.0, Outcome.VERIFIED, depth=1),
        ]
        a = make_report(records)
        b = make_report(list(records))
        assert a.identical_to(a)
        assert a.identical_to(b) and b.identical_to(a)

    def test_identity_is_bit_exact(self):
        base = [rec(0, 0.0, 4.0, Outcome.VERIFIED)]
        a = make_report(base)
        assert not a.identical_to(make_report([rec(0, 0.0, 4.0, Outcome.TIMEOUT)]))
        # one ulp of difference in an endpoint breaks identity
        import math
        shifted = rec(0, 0.0, math.nextafter(4.0, 5.0), Outcome.VERIFIED)
        assert not a.identical_to(make_report([shifted]))
        longer = make_report(base + [rec(1, 0.0, 2.0, Outcome.VERIFIED, depth=1)])
        assert not a.identical_to(longer)

    def test_identity_tracks_totals_not_elapsed(self):
        a = make_report([rec(0, 0.0, 4.0, Outcome.VERIFIED)])
        b = make_report([rec(0, 0.0, 4.0, Outcome.VERIFIED)])
        b.elapsed_seconds = 123.0
        assert a.identical_to(b)  # wall-clock excluded
        b.total_solver_steps = 5
        assert not a.identical_to(b)

    def test_max_depth(self):
        assert make_report([]).max_depth() == -1
        report = make_report(
            [rec(0, 0.0, 4.0, Outcome.TIMEOUT), rec(1, 0.0, 2.0, Outcome.TIMEOUT, depth=3)]
        )
        assert report.max_depth() == 3
