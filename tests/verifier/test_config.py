"""Tests for VerifierConfig semantics and factory helpers."""

import pytest

from repro.solver.icp import ICPSolver
from repro.verifier.verifier import VerifierConfig


class TestConfig:
    def test_defaults_match_paper_threshold(self):
        assert VerifierConfig().split_threshold == 0.05

    def test_make_solver_propagates_delta_precision(self):
        config = VerifierConfig(delta=1e-3, precision=1e-2)
        solver = config.make_solver()
        assert isinstance(solver, ICPSolver)
        assert solver.delta == 1e-3
        assert solver.precision == 1e-2

    def test_make_budget(self):
        config = VerifierConfig(per_call_budget=77, per_call_seconds=1.5)
        budget = config.make_budget()
        assert budget.max_steps == 77
        assert budget.max_seconds == 1.5

    def test_frozen(self):
        config = VerifierConfig()
        with pytest.raises(AttributeError):
            config.split_threshold = 1.0

    def test_unlimited_global_budget(self):
        from repro.conditions import EC1
        from repro.functionals import get_functional
        from repro.verifier import verify_pair

        config = VerifierConfig(
            split_threshold=3.0, per_call_budget=100, global_step_budget=None
        )
        report = verify_pair(get_functional("VWN RPA"), EC1, config)
        assert not report.budget_exhausted
        assert report.classification() == "OK"
