"""Tests for the work-stealing campaign engine.

The load-bearing property is *bit-identity with the sequential verifier*:
however the scheduler cuts a cell into units -- pre-splits, runtime
spills, pools of any width -- the stitched report must carry the same
records, indices, depths, child links, models and step counts the plain
in-process run produces.
"""

from __future__ import annotations

import pytest

from repro.conditions import EC1
from repro.functionals import get_functional
from repro.solver.box import Box
from repro.verifier.campaign import dedupe_pairs, run_campaign
from repro.verifier.encoder import encode
from repro.verifier.verifier import Verifier, VerifierConfig

FAST = VerifierConfig(split_threshold=0.7, per_call_budget=250, global_step_budget=8000)
UNLIMITED = VerifierConfig(split_threshold=0.7, per_call_budget=250, global_step_budget=None)


def assert_reports_identical(expected, actual):
    assert len(expected.records) == len(actual.records)
    for a, b in zip(expected.records, actual.records):
        assert (a.index, a.depth, a.outcome, a.model, a.children, a.solver_steps) == (
            b.index, b.depth, b.outcome, b.model, b.children, b.solver_steps
        )
        assert a.box == b.box
    assert expected.total_solver_steps == actual.total_solver_steps
    assert expected.budget_exhausted == actual.budget_exhausted


def sequential(config, name, condition=EC1):
    return Verifier(config).verify(encode(get_functional(name), condition))


class TestInProcessEquivalence:
    def test_cells_match_sequential_exactly(self):
        result = run_campaign(
            [("LYP", "EC1"), ("VWN RPA", "EC1"), ("PBE", "EC2")], FAST, max_workers=1
        )
        for (fname, cid), report in result.items():
            from repro.conditions import get_condition

            assert_reports_identical(
                sequential(FAST, fname, get_condition(cid)), report
            )
        assert result.computed == [("LYP", "EC1"), ("VWN RPA", "EC1"), ("PBE", "EC2")]
        assert not result.interrupted

    def test_budget_exhaustion_matches_sequential(self):
        tight = VerifierConfig(
            split_threshold=0.15, per_call_budget=200, global_step_budget=300
        )
        result = run_campaign([("PBE", "EC1")], tight, max_workers=1)
        report = result.reports[("PBE", "EC1")]
        assert report.budget_exhausted
        assert_reports_identical(sequential(tight, "PBE"), report)


class TestStealDepth:
    @pytest.mark.parametrize("steal_depth", [1, 2, 3])
    def test_spilled_splits_stitch_back_identically(self, steal_depth):
        oracle = sequential(UNLIMITED, "LYP")
        result = run_campaign(
            [("LYP", "EC1")], UNLIMITED, max_workers=1, steal_depth=steal_depth
        )
        assert_reports_identical(oracle, result.reports[("LYP", "EC1")])

    def test_spill_with_pool_matches_too(self):
        oracle = sequential(UNLIMITED, "LYP")
        result = run_campaign(
            [("LYP", "EC1")], UNLIMITED, max_workers=2, steal_depth=2
        )
        assert_reports_identical(oracle, result.reports[("LYP", "EC1")])

    def test_terminal_root_spills_nothing(self):
        # VWN RPA EC1 verifies at the root: steal_depth must not change that
        oracle = sequential(FAST, "VWN RPA")
        result = run_campaign([("VWN RPA", "EC1")], FAST, max_workers=1, steal_depth=3)
        assert_reports_identical(oracle, result.reports[("VWN RPA", "EC1")])


class TestPooledScheduling:
    def test_pool_results_identical_to_in_process(self):
        pairs = [("LYP", "EC1"), ("VWN RPA", "EC1"), ("Wigner", "EC1")]
        seq = run_campaign(pairs, FAST, max_workers=1)
        par = run_campaign(pairs, FAST, max_workers=2, steal_depth=1)
        assert set(seq.reports) == set(par.reports)
        for key in seq.reports:
            assert_reports_identical(seq.reports[key], par.reports[key])

    def test_shared_executor_is_not_shut_down(self):
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=2) as pool:
            first = run_campaign([("LYP", "EC1")], FAST, executor=pool, steal_depth=1)
            second = run_campaign([("Wigner", "EC1")], FAST, executor=pool)
            # the pool survives both campaigns (owned by the caller)
            assert pool.submit(int, 7).result() == 7
        assert ("LYP", "EC1") in first.reports
        assert ("Wigner", "EC1") in second.reports

    def test_presplit_levels_match_domain_parallel_semantics(self):
        functional, condition = get_functional("LYP"), EC1
        from repro.verifier.parallel import verify_domain_parallel

        merged = verify_domain_parallel(
            functional, condition, FAST, levels=1, max_workers=1
        )
        result = run_campaign(
            [(functional, condition)], FAST, max_workers=1, presplit_levels=1
        )
        assert_reports_identical(merged, result.reports[("LYP", "EC1")])
        top = [r for r in result.reports[("LYP", "EC1")].records if r.depth == 1]
        assert len(top) == 4  # 2-D domain, one forced split level


class TestDedupe:
    def test_identical_duplicates_are_deduped(self):
        lyp = get_functional("LYP")
        pairs = dedupe_pairs([(lyp, EC1), (lyp, EC1), ("LYP", "EC1")])
        assert len(pairs) == 1
        assert pairs[0][0] == ("LYP", "EC1")

    def test_conflicting_duplicates_raise(self):
        lyp = get_functional("LYP")

        class FakeCondition:
            cid = "EC1"

        with pytest.raises(ValueError, match="conflicting duplicate"):
            dedupe_pairs([(lyp, EC1), (lyp, FakeCondition())])

    def test_campaign_runs_duplicate_pair_once(self):
        result = run_campaign([("LYP", "EC1"), ("LYP", "EC1")], FAST, max_workers=1)
        assert result.computed == [("LYP", "EC1")]
        assert_reports_identical(sequential(FAST, "LYP"), result.reports[("LYP", "EC1")])


class TestStoreIntegration:
    def test_resume_serves_stored_cells(self, tmp_path):
        store = tmp_path / "store.sqlite"
        pairs = [("LYP", "EC1"), ("VWN RPA", "EC1")]
        first = run_campaign(pairs, FAST, max_workers=1, store=store)
        assert len(first.computed) == 2 and not first.store_hits
        second = run_campaign(pairs, FAST, max_workers=1, store=store)
        assert len(second.store_hits) == 2 and not second.computed
        for key in first.reports:
            assert_reports_identical(first.reports[key], second.reports[key])

    def test_config_change_misses_cleanly(self, tmp_path):
        store = tmp_path / "store.jsonl"
        run_campaign([("LYP", "EC1")], FAST, max_workers=1, store=store)
        other = VerifierConfig(
            split_threshold=0.7, per_call_budget=99, global_step_budget=8000
        )
        rerun = run_campaign([("LYP", "EC1")], other, max_workers=1, store=store)
        assert rerun.computed == [("LYP", "EC1")]

    def test_performance_knobs_still_hit(self, tmp_path):
        store = tmp_path / "store.sqlite"
        run_campaign([("VWN RPA", "EC1")], FAST, max_workers=1, store=store)
        import dataclasses

        walk = dataclasses.replace(FAST, solver_backend="walk")
        rerun = run_campaign([("VWN RPA", "EC1")], walk, max_workers=1, store=store)
        assert rerun.store_hits == [("VWN RPA", "EC1")]

    def test_resume_false_recomputes_but_stores(self, tmp_path):
        store = tmp_path / "store.sqlite"
        run_campaign([("Wigner", "EC1")], FAST, max_workers=1, store=store)
        rerun = run_campaign(
            [("Wigner", "EC1")], FAST, max_workers=1, store=store, resume=False
        )
        assert rerun.computed == [("Wigner", "EC1")]

    def test_scheduling_policy_is_part_of_the_key(self, tmp_path):
        # presplit/steal change how the global budget is divided across
        # units -- report *contents* differ -- so a store written under one
        # policy must miss under another (regression: the key once covered
        # only the verifier config, serving pre-split reports to plain runs)
        store = tmp_path / "store.sqlite"
        run_campaign([("LYP", "EC1")], FAST, max_workers=1, store=store,
                     presplit_levels=1)
        plain = run_campaign([("LYP", "EC1")], FAST, max_workers=1, store=store)
        assert plain.computed == [("LYP", "EC1")]  # miss, not a stale hit
        assert_reports_identical(sequential(FAST, "LYP"), plain.reports[("LYP", "EC1")])

    def test_subdomain_task_hashes_by_domain(self, tmp_path):
        # same pair, different domain: separate cells in the store by key
        from repro.verifier.encoder import compile_problem

        problem = encode(get_functional("LYP"), EC1)
        compiled = compile_problem(problem)
        full = compiled.content_hash(extra=FAST.semantic_key())
        sub = compiled.content_hash(
            domain=Box.from_bounds({"rs": (1.0, 2.0), "s": (0.0, 1.0)}),
            extra=FAST.semantic_key(),
        )
        assert full != sub


class TestWorkerCompileCache:
    """The persistent per-worker compile cache and its timing telemetry."""

    def test_warm_cache_cells_report_zero_compile_time(self):
        from repro.verifier.campaign import _WORKER_CACHE

        _WORKER_CACHE.clear()
        cold = run_campaign([("LYP", "EC1")], FAST, max_workers=1)
        warm = run_campaign([("LYP", "EC1")], FAST, max_workers=1)
        cold_report = cold.reports[("LYP", "EC1")]
        warm_report = warm.reports[("LYP", "EC1")]
        # cold: the worker paid materialise + solver build; warm: the
        # resident (problem, solver) pair is reused, compile time ~0
        assert cold_report.compile_seconds > 0.0
        assert warm_report.compile_seconds == 0.0
        # the cache is a pure perf layer: reports stay bit-identical
        assert_reports_identical(cold_report, warm_report)
        assert warm_report.identical_to(cold_report)

    def test_cache_is_keyed_on_solver_relevant_config(self):
        import dataclasses

        from repro.verifier.campaign import _WORKER_CACHE

        _WORKER_CACHE.clear()
        run_campaign([("LYP", "EC1")], FAST, max_workers=1)
        other = dataclasses.replace(FAST, delta=2e-5)
        redo = run_campaign([("LYP", "EC1")], other, max_workers=1)
        # a semantically different config must not reuse the resident
        # solver: it recompiles (and reports the time it took)
        assert redo.reports[("LYP", "EC1")].compile_seconds > 0.0

    def test_compile_seconds_round_trips_through_store(self, tmp_path):
        from repro.verifier.campaign import _WORKER_CACHE
        from repro.verifier.store import report_from_payload, report_to_payload

        _WORKER_CACHE.clear()
        result = run_campaign([("Wigner", "EC1")], FAST, max_workers=1)
        report = result.reports[("Wigner", "EC1")]
        assert report.compile_seconds > 0.0
        restored = report_from_payload(report_to_payload(report))
        assert restored.compile_seconds == report.compile_seconds
        # pre-compile-cache payloads (no field) default to 0.0
        payload = report_to_payload(report)
        del payload["compile_seconds"]
        assert report_from_payload(payload).compile_seconds == 0.0

    def test_vector_min_is_excluded_from_semantic_key(self, tmp_path):
        import dataclasses

        store = tmp_path / "store.sqlite"
        run_campaign([("LYP", "EC1")], FAST, max_workers=1, store=store)
        tuned = dataclasses.replace(FAST, vector_min=2)
        rerun = run_campaign([("LYP", "EC1")], tuned, max_workers=1, store=store)
        # vector_min is a bit-identical perf knob like batch_size: stored
        # cells keep hitting
        assert rerun.store_hits == [("LYP", "EC1")]
        assert tuned.semantic_key() == FAST.semantic_key()


class TestSpecializeBoxesPath:
    def test_specialize_boxes_cells_ship_names(self):
        config = VerifierConfig(
            split_threshold=1.3, per_call_budget=150, global_step_budget=2500,
            specialize_boxes=True,
        )
        result = run_campaign([("SCAN", "EC1")], config, max_workers=1)
        report = result.reports[("SCAN", "EC1")]
        oracle = Verifier(config).verify(encode(get_functional("SCAN"), EC1))
        assert_reports_identical(oracle, report)
