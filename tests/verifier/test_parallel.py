"""Tests for the process-parallel verification drivers."""


import pytest

from repro.conditions import EC1
from repro.functionals import get_functional
from repro.verifier.parallel import verify_domain_parallel, verify_pairs_parallel
from repro.verifier.verifier import VerifierConfig

FAST = VerifierConfig(
    split_threshold=1.0, per_call_budget=200, global_step_budget=4000
)


class TestVerifyPairsParallel:
    def test_sequential_fallback(self):
        pairs = [(get_functional("VWN RPA"), EC1), (get_functional("LYP"), EC1)]
        results = verify_pairs_parallel(pairs, FAST, max_workers=1)
        assert results[("VWN RPA", "EC1")].classification() == "OK"
        assert results[("LYP", "EC1")].classification() == "CEX"

    def test_parallel_two_workers(self):
        pairs = [(get_functional("VWN RPA"), EC1), (get_functional("LYP"), EC1)]
        results = verify_pairs_parallel(pairs, FAST, max_workers=2)
        assert len(results) == 2
        assert results[("LYP", "EC1")].has_counterexample()

    def test_parallel_matches_sequential_classification(self):
        pairs = [(get_functional("LYP"), EC1)]
        seq = verify_pairs_parallel(pairs, FAST, max_workers=1)
        par = verify_pairs_parallel(pairs, FAST, max_workers=2)
        key = ("LYP", "EC1")
        assert seq[key].classification() == par[key].classification()

    def test_precompiled_tapes_match_reencoding_workers(self):
        pairs = [(get_functional("VWN RPA"), EC1), (get_functional("LYP"), EC1)]
        reencoded = verify_pairs_parallel(pairs, FAST, max_workers=1)
        precompiled = verify_pairs_parallel(pairs, FAST, max_workers=1, precompile=True)
        for key, seq_report in reencoded.items():
            pre_report = precompiled[key]
            assert len(seq_report.records) == len(pre_report.records)
            for a, b in zip(seq_report.records, pre_report.records):
                assert a.outcome == b.outcome
                assert a.model == b.model
                assert a.box == b.box

    def test_duplicate_pair_deduped_not_overwritten(self):
        # regression: the same pair passed twice used to be solved twice,
        # the second result silently overwriting the first
        lyp = get_functional("LYP")
        results = verify_pairs_parallel([(lyp, EC1), (lyp, EC1)], FAST, max_workers=1)
        assert list(results) == [("LYP", "EC1")]
        assert results[("LYP", "EC1")].classification() == "CEX"

    def test_conflicting_duplicate_pair_raises(self):
        lyp = get_functional("LYP")

        class FakeEC1:
            cid = "EC1"

        with pytest.raises(ValueError, match="conflicting duplicate"):
            verify_pairs_parallel([(lyp, EC1), (lyp, FakeEC1())], FAST, max_workers=1)


class TestVerifyDomainParallel:
    def test_merged_report_covers_domain(self):
        report = verify_domain_parallel(
            get_functional("LYP"), EC1, FAST, levels=1, max_workers=1
        )
        assert report.classification() == "CEX"
        total = sum(
            r.own_volume(report.records) for r in report.records
        )
        # top-level subdomains at depth 1 cover everything their verdicts
        # reach; with a 1.0 threshold every subdomain gets one record
        assert total > 0.0

    def test_levels_produce_subdomain_records(self):
        report = verify_domain_parallel(
            get_functional("LYP"), EC1, FAST, levels=1, max_workers=1
        )
        top = [r for r in report.records if r.depth == 1]
        assert len(top) == 4  # 2D domain, one split level

    def test_parallel_workers_agree_with_sequential(self):
        seq = verify_domain_parallel(
            get_functional("LYP"), EC1, FAST, levels=1, max_workers=1
        )
        par = verify_domain_parallel(
            get_functional("LYP"), EC1, FAST, levels=1, max_workers=2
        )
        assert seq.classification() == par.classification()
        assert len(seq.records) == len(par.records)

    def test_indices_are_consistent(self):
        report = verify_domain_parallel(
            get_functional("LYP"), EC1, FAST, levels=1, max_workers=1
        )
        for i, record in enumerate(report.records):
            assert record.index == i
            for child in record.children:
                assert 0 <= child < len(report.records)
