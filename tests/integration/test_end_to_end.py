"""End-to-end integration tests reproducing the paper's headline shapes.

These use coarse budgets (split threshold 0.7-1.25, small step budgets) so
the whole module stays fast; the benchmarks regenerate the tables at the
full settings.
"""

import numpy as np
import pytest

from repro.analysis.compare import (
    CONSISTENT,
    NOT_INCONSISTENT,
    classify_consistency,
)
from repro.conditions import EC1, EC2, EC5, EC6, EC7, get_condition
from repro.functionals import get_functional
from repro.pb.checker import PBChecker
from repro.pb.grid import GridSpec
from repro.verifier import ascii_map, encode, rasterize, verify_pair
from repro.verifier.regions import Outcome
from repro.verifier.verifier import VerifierConfig

CONFIG = VerifierConfig(
    split_threshold=0.7, per_call_budget=250, global_step_budget=15_000
)
CHECKER = PBChecker(spec=GridSpec(n_rs=121, n_s=121))


@pytest.fixture(scope="module")
def lyp_ec1_report():
    return verify_pair(get_functional("LYP"), EC1, CONFIG)


@pytest.fixture(scope="module")
def pbe_ec7_report():
    return verify_pair(get_functional("PBE"), EC7, CONFIG)


class TestFigure2Shapes:
    """LYP region maps (paper Figure 2)."""

    def test_counterexamples_at_large_s_verified_below(self, lyp_ec1_report):
        raster = rasterize(lyp_ec1_report, resolution=16)
        cex_code = 2
        verified_code = 1
        top_rows = raster[12:, :]
        bottom_rows = raster[:3, :]
        assert (top_rows == cex_code).mean() > 0.8
        assert (bottom_rows == verified_code).mean() > 0.8

    def test_classification_cex(self, lyp_ec1_report):
        assert lyp_ec1_report.classification() == "CEX"

    def test_ascii_map_renders(self, lyp_ec1_report):
        art = ascii_map(lyp_ec1_report, resolution=24)
        assert "X" in art and "." in art

    def test_ec2_counterexamples_at_small_rs(self):
        report = verify_pair(get_functional("LYP"), EC2, CONFIG)
        assert report.classification() == "CEX"
        bbox = report.counterexample_bbox()
        # paper: violations at rs < 2.5, s > 1.48
        assert bbox["rs"].lo < 1.5
        assert bbox["s"].hi > 4.0

    def test_ec6_small_corner_region(self):
        report = verify_pair(get_functional("LYP"), EC6, CONFIG)
        assert report.classification() == "CEX"
        bbox = report.counterexample_bbox()
        # paper: rs > 4.84, s > 2.42 -- bottom-right-ish corner
        assert bbox["rs"].hi > 4.3
        assert bbox["s"].hi > 2.4


class TestFigure1Shapes:
    """PBE region maps (paper Figure 1)."""

    def test_ec7_counterexample_covers_upper_left(self, pbe_ec7_report):
        raster = rasterize(pbe_ec7_report, resolution=16)
        cex_code = 2
        upper_left = raster[12:, :4]
        assert (upper_left == cex_code).mean() > 0.8

    def test_ec7_lower_right_not_counterexample(self, pbe_ec7_report):
        raster = rasterize(pbe_ec7_report, resolution=16)
        lower_right = raster[:4, 12:]
        assert (lower_right == 2).mean() < 0.2

    def test_ec5_verified_everywhere(self):
        report = verify_pair(get_functional("PBE"), EC5, CONFIG)
        assert report.classification() == "OK"

    def test_ec1_no_counterexample(self):
        report = verify_pair(get_functional("PBE"), EC1, CONFIG)
        assert report.classification() in ("OK", "OK*")


class TestTableTwoConsistency:
    """PB and XCVerifier must agree wherever both produce verdicts."""

    @pytest.mark.parametrize("cid", ["EC1", "EC2", "EC7"])
    def test_lyp_consistent(self, cid):
        cond = get_condition(cid)
        pb = CHECKER.check(get_functional("LYP"), cond)
        report = verify_pair(get_functional("LYP"), cond, CONFIG)
        cell = classify_consistency(pb, report, dilation=1.4)
        assert cell == CONSISTENT

    def test_pbe_ec7_consistent(self):
        pb = CHECKER.check(get_functional("PBE"), EC7)
        report = verify_pair(get_functional("PBE"), EC7, CONFIG)
        assert classify_consistency(pb, report, dilation=1.4) == CONSISTENT

    def test_vwn_rpa_not_inconsistent(self):
        pb = CHECKER.check(get_functional("VWN RPA"), EC1)
        report = verify_pair(get_functional("VWN RPA"), EC1, CONFIG)
        assert classify_consistency(pb, report, dilation=1.4) == NOT_INCONSISTENT


class TestScanColumn:
    """SCAN: the hardest functional; most of the domain exhausts budgets."""

    def test_scan_ec3_mostly_timeout(self):
        config = VerifierConfig(
            split_threshold=1.25, per_call_budget=150, global_step_budget=3000
        )
        report = verify_pair(get_functional("SCAN"), get_condition("EC3"), config)
        fractions = report.area_fractions()
        assert fractions[Outcome.TIMEOUT] > 0.5
        assert not report.has_counterexample()

    def test_scan_never_fully_verified(self):
        config = VerifierConfig(
            split_threshold=1.25, per_call_budget=150, global_step_budget=3000
        )
        for cid in ("EC1", "EC7"):
            report = verify_pair(get_functional("SCAN"), get_condition(cid), config)
            assert report.classification() in ("OK*", "?"), cid


class TestVerifierVsDirectSampling:
    """XCVerifier's verified regions must contain no sampled violations."""

    def test_verified_regions_are_clean(self, lyp_ec1_report):
        problem = encode(get_functional("LYP"), EC1)
        from repro.expr.evaluator import evaluate_rel

        rng = np.random.default_rng(7)
        for record in lyp_ec1_report.records:
            if record.outcome is not Outcome.VERIFIED:
                continue
            for _ in range(5):
                pt = {
                    name: float(rng.uniform(iv.lo, iv.hi))
                    for name, iv in record.box.items()
                }
                assert evaluate_rel(problem.psi, pt), (
                    f"sampled violation inside verified region {record.box}: {pt}"
                )
