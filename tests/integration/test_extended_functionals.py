"""End-to-end checks of the extension functionals through the pipeline.

Each new DFA must survive the whole stack: model code -> symbolic lift ->
condition encoding (with symbolic derivatives) -> ICP solving -> region
classification, and the PB grid baseline.  Budgets are kept small: these
are wiring tests with physically-known expected verdicts, not Table I.
"""

import pytest

from repro import get_condition, get_functional, verify_pair
from repro.pb import GridSpec, PBChecker
from repro.verifier.verifier import VerifierConfig

QUICK = VerifierConfig(
    split_threshold=0.7, per_call_budget=250, global_step_budget=6000
)

PB_QUICK = PBChecker(spec=GridSpec(n_rs=121, n_s=121, n_alpha=7))


class TestLDAExtensionsVerify:
    def test_wigner_ec1_verified(self):
        report = verify_pair(get_functional("Wigner"), get_condition("EC1"), QUICK)
        assert report.classification() == "OK"

    def test_wigner_ec2_verified(self):
        # d/drs of -rs/(CX (rs+7.8)) -- Wigner's F_c rises monotonically
        report = verify_pair(get_functional("Wigner"), get_condition("EC2"), QUICK)
        assert report.classification() == "OK"

    def test_vwn5_ec1_verified(self):
        report = verify_pair(get_functional("VWN5"), get_condition("EC1"), QUICK)
        assert report.classification() == "OK"

    def test_pz81_ec1_verified(self):
        # the matching-point jump is tiny and both branches are negative:
        # EC1 still verifies across the discontinuity
        report = verify_pair(get_functional("PZ81"), get_condition("EC1"), QUICK)
        assert report.classification() == "OK"

    def test_pz81_ec7_no_counterexample(self):
        report = verify_pair(get_functional("PZ81"), get_condition("EC7"), QUICK)
        assert not report.has_counterexample()


class TestGGAExtensionsVerify:
    def test_blyp_inherits_lyp_ec1_violation(self):
        blyp = verify_pair(get_functional("BLYP"), get_condition("EC1"), QUICK)
        lyp = verify_pair(get_functional("LYP"), get_condition("EC1"), QUICK)
        assert blyp.has_counterexample()
        assert lyp.has_counterexample()
        # same correlation -> same violating region (bounding boxes agree)
        b1, b2 = blyp.counterexample_bbox(), lyp.counterexample_bbox()
        assert b1 is not None and b2 is not None
        assert b1["s"].lo == pytest.approx(b2["s"].lo, abs=0.7)

    def test_blyp_violates_lieb_oxford_extension(self):
        # unlike LYP alone, BLYP has exchange so EC5 applies -- and B88's
        # unbounded enhancement factor crosses the Lieb-Oxford constant
        # inside the PB box (F_x(5) = 2.299 > 2.27): a genuine EC5
        # counterexample of the empirical exchange, at large s and small
        # rs (where F_c -> 0 cannot compensate)
        ec5 = get_condition("EC5")
        assert ec5.applies_to(get_functional("BLYP"))
        report = verify_pair(get_functional("BLYP"), ec5, QUICK)
        assert report.has_counterexample()
        bbox = report.counterexample_bbox()
        assert bbox["s"].hi == pytest.approx(5.0, abs=0.1)

    def test_pbesol_ec1_no_counterexample(self):
        report = verify_pair(get_functional("PBEsol"), get_condition("EC1"), QUICK)
        assert not report.has_counterexample()

    def test_revpbe_ec7_matches_pbe(self):
        # revPBE shares PBE's correlation: EC7's verdict must match PBE's
        rev = verify_pair(get_functional("revPBE"), get_condition("EC7"), QUICK)
        pbe = verify_pair(get_functional("PBE"), get_condition("EC7"), QUICK)
        assert rev.has_counterexample() == pbe.has_counterexample()

    def test_pw91_ec1_sliver_below_split_threshold(self):
        # PW91's H1 term drives eps_c positive in a sliver at extreme
        # density (rs < ~3e-4, s ~ 0.05..0.15).  The sliver is far
        # narrower than the coarse split threshold, so quick-budget
        # Algorithm 1 does not certify a counterexample region -- while
        # the PB grid, whose first rs row sits exactly at 1e-4, hits it
        # (see TestPBOnExtensions).  This is the complementarity the
        # paper's Section IV-C discusses, on a functional it didn't scan.
        report = verify_pair(get_functional("PW91"), get_condition("EC1"), QUICK)
        assert not report.has_counterexample()
        from repro.functionals.pw91 import eps_c_pw91

        assert eps_c_pw91(1e-4, 0.1) > 0.0  # the violation is real


class TestPBOnExtensions:
    @pytest.mark.parametrize(
        "name,cid,violated",
        [
            ("Wigner", "EC1", False),
            ("VWN5", "EC1", False),
            ("PZ81", "EC1", False),
            ("BLYP", "EC1", True),   # LYP correlation: positive at high s
            ("PBEsol", "EC1", False),
            ("PW91", "EC1", True),   # H1 term: positive eps_c at rs ~ 1e-4
            ("revPBE", "EC7", True),  # PBE correlation violates EC7
        ],
    )
    def test_pb_verdicts(self, name, cid, violated):
        result = PB_QUICK.check(get_functional(name), get_condition(cid))
        assert result.any_violation == violated

    def test_pb_blyp_region_matches_lyp(self):
        blyp = PB_QUICK.check(get_functional("BLYP"), get_condition("EC1"))
        lyp = PB_QUICK.check(get_functional("LYP"), get_condition("EC1"))
        assert blyp.violation_bounds() == lyp.violation_bounds()

    def test_pb_mgga_extensions_run(self):
        for name in ("rSCAN", "r++SCAN"):
            result = PB_QUICK.check(get_functional(name), get_condition("EC1"))
            assert result.undefined.mean() < 0.5  # grid mostly evaluates


class TestConditionApplicability:
    def test_lieb_oxford_only_for_xc_functionals(self):
        ec4 = get_condition("EC4")
        assert not ec4.applies_to(get_functional("PZ81"))
        assert not ec4.applies_to(get_functional("Wigner"))
        assert ec4.applies_to(get_functional("BLYP"))
        assert ec4.applies_to(get_functional("PW91"))
        assert ec4.applies_to(get_functional("r++SCAN"))

    def test_applicable_pairs_unchanged_for_paper_set(self):
        # the registry extensions must not leak into the paper harness
        from repro.conditions.catalog import applicable_pairs

        pairs = applicable_pairs()
        assert len(pairs) == 31
        names = {f.name for f, _ in pairs}
        assert names == {"PBE", "LYP", "AM05", "SCAN", "VWN RPA"}
