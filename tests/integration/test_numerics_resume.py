"""Integration test: an interrupted numerics campaign resumes losslessly.

Acceptance criterion of the Section VI-C sweep: ``repro numerics --all``
interrupted with SIGINT and re-run with ``--resume`` produces a Table III
JSON bit-identical to an uninterrupted run, with the already-stored
analysis cells served from the store instead of recomputed.  Exercised
through real subprocesses and a real signal against the append-only JSONL
store, whose prefix must survive the resume byte-for-byte.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time

SLICE = [
    "numerics",
    "--all",
    "--functionals", "LYP,Wigner,PZ81",
    "--check", "continuity,hazards",
]
N_CELLS = 9  # 3 functionals x (continuity + hazards x 2 semantics)


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run(args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(), capture_output=True, text=True, timeout=timeout,
    )


def _line_count(path) -> int:
    if not os.path.exists(path):
        return 0
    with open(path) as handle:
        return sum(1 for _ in handle)


def test_sigint_then_resume_matches_uninterrupted(tmp_path):
    ref_json = tmp_path / "reference.json"
    resumed_json = tmp_path / "resumed.json"
    store = tmp_path / "store.jsonl"

    # 1. uninterrupted reference run (own store, not reused later)
    ref = _run(SLICE + ["--store", str(tmp_path / "ref.jsonl"), "--json", str(ref_json)])
    assert ref.returncode == 0, ref.stderr

    # 2. start the same campaign, SIGINT it once >= 1 cell is stored
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *SLICE, "--store", str(store)],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.time() + 240
    while time.time() < deadline and _line_count(store) < 1:
        if proc.poll() is not None:
            break
        time.sleep(0.02)
    interrupted_mid_run = proc.poll() is None
    if interrupted_mid_run:
        proc.send_signal(signal.SIGINT)
    out, _ = proc.communicate(timeout=240)
    if interrupted_mid_run:
        # numerics cells are fast, so the signal may land (a) inside the
        # engine -- exit 130 with the "[interrupted]" marker, (b) after the
        # campaign but during rendering -- exit 130, no marker, (c) after a
        # full run won the race -- exit 0, or (d) at interpreter teardown,
        # where the default handler kills the process (-SIGINT).  All four
        # must leave a store the resume path below serves losslessly.
        assert proc.returncode in (0, 130, -signal.SIGINT), out
    stored_before_resume = _line_count(store)
    assert stored_before_resume >= 1
    with open(store) as handle:
        prefix = handle.read()

    # 3. resume: stored cells must be *hits*, not recomputed (one line may
    # be a sealed truncated tail the loader skipped, hence the -1 slack)
    resumed = _run(
        SLICE + ["--store", str(store), "--resume", "--json", str(resumed_json)]
    )
    assert resumed.returncode == 0, resumed.stderr
    match = re.search(r"(\d+) cells computed, (\d+) from store", resumed.stdout)
    assert match, resumed.stdout
    computed, hits = int(match.group(1)), int(match.group(2))
    assert computed + hits == N_CELLS
    assert hits >= max(1, stored_before_resume - 1)

    # stored cells were not rewritten: the jsonl prefix is byte-identical
    with open(store) as handle:
        assert handle.read()[: len(prefix)] == prefix
    # a SIGINT mid-write can leave one sealed truncated line that the
    # loader skips and the resume recomputes, hence the +1 allowance
    assert N_CELLS <= _line_count(store) <= N_CELLS + 1

    # 4. the resumed Table III is identical to the uninterrupted one
    assert json.loads(resumed_json.read_text()) == json.loads(ref_json.read_text())


def test_workers_flag_produces_identical_table(tmp_path):
    """The pool path through the CLI matches in-process, bit for bit."""
    seq_json = tmp_path / "seq.json"
    par_json = tmp_path / "par.json"
    slice_small = [
        "numerics", "--all", "--functionals", "LYP,Wigner",
        "--check", "hazards",
    ]
    seq = _run(slice_small + ["--json", str(seq_json)])
    assert seq.returncode == 0, seq.stderr
    par = _run(slice_small + ["--workers", "2", "--json", str(par_json)])
    assert par.returncode == 0, par.stderr
    assert seq_json.read_text() == par_json.read_text()
