"""Integration: SIGTERM'd service drains gracefully and resumes losslessly.

The service acceptance criterion, end to end with real processes and a
real signal: a server killed mid-job exits cleanly with every completed
cell durable; a restarted server on the same store serves those cells as
cache hits, and the final client-rendered Table I is byte-identical to a
direct (service-free) run.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time

SLICE = [
    "--functionals", "LYP,VWN RPA,Wigner",
    "--conditions", "EC1,EC6",
    "--budget", "100",
    "--global-budget", "2000",
]


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _repro(args, **kwargs):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, **kwargs,
    )


def _start_server(store_path):
    server = _repro(["serve", "--store", str(store_path), "--port", "0",
                     "--workers", "0"])
    line = server.stdout.readline()
    match = re.search(r"listening on (http://[\d.]+:\d+)", line)
    assert match, f"no listening line from the server: {line!r}"
    return server, match.group(1)


def _line_count(path) -> int:
    if not os.path.exists(path):
        return 0
    with open(path) as handle:
        return sum(1 for _ in handle)


def test_sigterm_drain_then_restart_resumes(tmp_path):
    store = tmp_path / "service.jsonl"
    direct_json = tmp_path / "direct.json"
    served_json = tmp_path / "served.json"

    # 0. the reference artifact from the direct, service-free path
    direct = subprocess.run(
        [sys.executable, "-m", "repro", "table1", *SLICE,
         "--json", str(direct_json)],
        env=_env(), capture_output=True, text=True, timeout=600,
    )
    assert direct.returncode == 0, direct.stderr

    # 1. start the server, submit the 6-cell slice, SIGTERM once >= 1
    #    cell is durable
    server, url = _start_server(store)
    try:
        client = _repro(["submit", "--url", url, "table1", *SLICE])
        deadline = time.time() + 300
        while time.time() < deadline and _line_count(store) < 1:
            time.sleep(0.1)
        assert _line_count(store) >= 1, "no cell became durable in time"
        server.send_signal(signal.SIGTERM)
        out, err = server.communicate(timeout=120)
        assert server.returncode == 0, f"drain was not graceful: {err}"
        assert "draining" in err
        client_out, client_err = client.communicate(timeout=120)
    finally:
        for proc in (server, client):
            if proc.poll() is None:
                proc.kill()
    stored_before_restart = _line_count(store)
    assert stored_before_restart >= 1

    # the client either finished before the drain (0) or saw the job
    # cancelled / the connection drop (nonzero) -- never a traceback
    assert "Traceback" not in client_err, client_err

    # 2. restart on the same store; the resubmitted job serves everything
    #    already computed from cache and completes the rest
    server, url = _start_server(store)
    try:
        resub = subprocess.run(
            [sys.executable, "-m", "repro", "submit", "--url", url,
             "--json", str(served_json), "table1", *SLICE],
            env=_env(), capture_output=True, text=True, timeout=600,
        )
        assert resub.returncode == 0, resub.stderr
        match = re.search(r"(\d+) computed, (\d+) from cache", resub.stdout)
        assert match, resub.stdout
        computed, cached = int(match.group(1)), int(match.group(2))
        assert cached >= stored_before_restart
        assert computed + cached == 6
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            server.communicate(timeout=120)
        finally:
            if server.poll() is None:
                server.kill()

    # 3. the service-rendered Table I is byte-identical to the direct run
    with open(direct_json) as a, open(served_json) as b:
        assert json.load(a) == json.load(b)
    assert direct_json.read_bytes() == served_json.read_bytes()
