"""Integration test: an interrupted Table I campaign resumes losslessly.

Acceptance criterion of the campaign engine: ``repro table1`` interrupted
with SIGINT and re-run with ``--resume`` produces the same Table I as an
uninterrupted run, with the already-stored cells served from the store
instead of recomputed.  Exercised through real subprocesses and a real
signal, against the append-only JSONL store (whose line count doubles as
a progress probe and whose prefix must survive the resume byte-for-byte).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

SLICE = [
    "table1",
    "--functionals", "LYP,VWN RPA,Wigner",
    "--conditions", "EC1,EC6",
    "--budget", "100",
    "--global-budget", "2000",
]


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run(args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(), capture_output=True, text=True, timeout=timeout,
    )


def _line_count(path) -> int:
    if not os.path.exists(path):
        return 0
    with open(path) as handle:
        return sum(1 for _ in handle)


def test_sigint_then_resume_matches_uninterrupted(tmp_path):
    ref_json = tmp_path / "reference.json"
    resumed_json = tmp_path / "resumed.json"
    store = tmp_path / "store.jsonl"

    # 1. uninterrupted reference run (own store, not reused later)
    ref = _run(SLICE + ["--store", str(tmp_path / "ref.jsonl"), "--json", str(ref_json)])
    assert ref.returncode == 0, ref.stderr

    # 2. start the same campaign, SIGINT it once >= 1 cell is stored
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *SLICE, "--store", str(store)],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.time() + 240
    while time.time() < deadline and _line_count(store) < 1:
        if proc.poll() is not None:
            break
        time.sleep(0.02)
    interrupted_mid_run = proc.poll() is None
    if interrupted_mid_run:
        proc.send_signal(signal.SIGINT)
    out, _ = proc.communicate(timeout=240)
    # on the expected path the run was cut short and says so
    if interrupted_mid_run:
        assert proc.returncode == 130, out
        assert "[interrupted]" in out
    stored_before_resume = _line_count(store)
    assert stored_before_resume >= 1
    with open(store) as handle:
        prefix = handle.read()

    # 3. resume: stored cells must be *hits*, not recomputed
    resumed = _run(SLICE + ["--store", str(store), "--resume", "--json", str(resumed_json)])
    assert resumed.returncode == 0, resumed.stderr
    assert f"{stored_before_resume} from store" in resumed.stdout

    # stored cells were not rewritten: the jsonl prefix is byte-identical
    with open(store) as handle:
        assert handle.read()[: len(prefix)] == prefix
    assert _line_count(store) == 6  # 3 functionals x 2 conditions, all applicable

    # 4. the resumed table is identical to the uninterrupted one
    assert json.loads(resumed_json.read_text()) == json.loads(ref_json.read_text())


def test_interrupted_store_is_loadable_and_correct(tmp_path):
    """Cells persisted before an interrupt round-trip exactly."""
    from repro.verifier.store import open_store

    store_path = tmp_path / "store.jsonl"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *SLICE, "--store", str(store_path)],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.time() + 240
    while time.time() < deadline and _line_count(store_path) < 2:
        if proc.poll() is not None:
            break
        time.sleep(0.02)
    if proc.poll() is None:
        proc.send_signal(signal.SIGINT)
    proc.communicate(timeout=240)

    with open_store(str(store_path)) as store:
        keys = store.keys()
        assert len(keys) >= 2
        for key in keys:
            report = store.get(key)
            assert report is not None
            assert report.records, key
            assert report.total_solver_steps == sum(
                r.solver_steps for r in report.records
            )
