"""Tests for the Python symbolic execution engine (XCEncoder front end)."""


import pytest

from repro.expr.evaluator import evaluate
from repro.expr.nodes import Const, Ite, Var
from repro.pysym import SymExecError, lift
from repro.pysym.intrinsics import exp, log, sqrt

X = Var("x")
Y = Var("y")

# --- model functions used as lifting targets ---------------------------------

GLOBAL_COEFF = 2.5


def straight_line(a, c):
    t = a * a + 1.0
    u = t / (a + 2.0)
    return u - c


def uses_intrinsics(a):
    return exp(-a) * log(1.0 + a * a) + sqrt(a * a + 1.0)


def uses_global(a):
    return GLOBAL_COEFF * a


def helper(a):
    return a * a + 1.0


def calls_helper(a):
    return helper(a) + helper(2.0 * a)


def with_default(a, scale=3.0):
    return scale * a


def branch_both_return(a):
    if a < 1.0:
        return a * a
    return 2.0 * a - 1.0


def branch_if_else(a):
    if a >= 0.0:
        out = a
    else:
        out = -a
    return out + 1.0


def nested_branches(a, c):
    if a < 0.0:
        if c < 0.0:
            return a * c
        return a - c
    return a + c


def early_return_then_code(a):
    if a < 0.0:
        return 0.0
    t = a * a
    return t + 1.0


def cond_expression(a):
    return (a if a >= 0.0 else -a) + 1.0


def tuple_assign(a):
    p, q = a + 1.0, a - 1.0
    return p * q


def aug_assign(a):
    t = a
    t += 2.0
    t *= 3.0
    return t


def recursive(a):
    return recursive(a) + 1.0


def uses_loop(a):
    total = 0.0
    for _ in range(3):
        total = total + a
    return total


def no_return(a):
    _t = a + 1.0


class TestStraightLine:
    def test_basic_arithmetic(self):
        e = lift(straight_line, X, Y)
        assert evaluate(e, {"x": 2.0, "y": 0.5}) == pytest.approx(
            straight_line(2.0, 0.5)
        )

    def test_numeric_arguments_fold(self):
        e = lift(straight_line, 2.0, 0.5)
        assert isinstance(e, (Const, float)) or not e.free_vars()

    def test_intrinsics(self):
        e = lift(uses_intrinsics, X)
        assert evaluate(e, {"x": 1.3}) == pytest.approx(uses_intrinsics(1.3))

    def test_globals_resolved(self):
        e = lift(uses_global, X)
        assert evaluate(e, {"x": 2.0}) == pytest.approx(5.0)

    def test_helper_inlined(self):
        e = lift(calls_helper, X)
        assert evaluate(e, {"x": 1.5}) == pytest.approx(calls_helper(1.5))

    def test_default_arguments(self):
        e = lift(with_default, X)
        assert evaluate(e, {"x": 2.0}) == pytest.approx(6.0)

    def test_keyword_arguments(self):
        e = lift(with_default, X, scale=10.0)
        assert evaluate(e, {"x": 2.0}) == pytest.approx(20.0)

    def test_unknown_keyword_rejected(self):
        with pytest.raises(SymExecError):
            lift(with_default, X, nope=1.0)

    def test_missing_argument_rejected(self):
        with pytest.raises(SymExecError):
            lift(straight_line, X)

    def test_tuple_assignment(self):
        e = lift(tuple_assign, X)
        assert evaluate(e, {"x": 3.0}) == pytest.approx(8.0)

    def test_augmented_assignment(self):
        e = lift(aug_assign, X)
        assert evaluate(e, {"x": 1.0}) == pytest.approx(9.0)


class TestBranching:
    def test_both_return_creates_ite(self):
        e = lift(branch_both_return, X)
        assert isinstance(e, Ite)
        for xv in (-1.0, 0.5, 1.0, 2.0):
            assert evaluate(e, {"x": xv}) == pytest.approx(branch_both_return(xv))

    def test_if_else_assignment(self):
        e = lift(branch_if_else, X)
        for xv in (-3.0, 0.0, 3.0):
            assert evaluate(e, {"x": xv}) == pytest.approx(branch_if_else(xv))

    def test_nested_branches(self):
        e = lift(nested_branches, X, Y)
        for xv in (-1.0, 1.0):
            for yv in (-2.0, 2.0):
                assert evaluate(e, {"x": xv, "y": yv}) == pytest.approx(
                    nested_branches(xv, yv)
                )

    def test_early_return(self):
        e = lift(early_return_then_code, X)
        assert evaluate(e, {"x": -1.0}) == pytest.approx(0.0)
        assert evaluate(e, {"x": 2.0}) == pytest.approx(5.0)

    def test_conditional_expression(self):
        e = lift(cond_expression, X)
        assert evaluate(e, {"x": -4.0}) == pytest.approx(5.0)
        assert evaluate(e, {"x": 4.0}) == pytest.approx(5.0)

    def test_concrete_condition_is_resolved_statically(self):
        def concrete_branch(a):
            if 1.0 < 2.0:
                return a
            return -a

        e = lift(concrete_branch, X)
        assert e is X


class TestRejections:
    def test_recursion_rejected(self):
        with pytest.raises(SymExecError):
            lift(recursive, X)

    def test_loops_rejected(self):
        with pytest.raises(SymExecError):
            lift(uses_loop, X)

    def test_missing_return_rejected(self):
        with pytest.raises(SymExecError):
            lift(no_return, X)

    def test_unbound_name_rejected(self):
        def bad(a):
            return a + undefined_name  # noqa: F821

        with pytest.raises(SymExecError):
            lift(bad, X)

    def test_unsupported_builtin_rejected(self):
        def bad(a):
            return max(a, 0.0)

        with pytest.raises(SymExecError):
            lift(bad, X)

    def test_builtin_abs_is_mapped(self):
        def uses_abs(a):
            return abs(a) + 1.0

        e = lift(uses_abs, X)
        assert evaluate(e, {"x": -2.0}) == pytest.approx(3.0)

    def test_chained_comparison_rejected(self):
        def bad(a):
            if 0.0 < a < 1.0:
                return a
            return -a

        with pytest.raises(SymExecError):
            lift(bad, X)

    def test_boolean_condition_rejected(self):
        def bad(a):
            if a:
                return a
            return -a

        with pytest.raises(SymExecError):
            lift(bad, X)

    def test_string_constant_rejected(self):
        def bad(a):
            _t = "nope"
            return a

        with pytest.raises(SymExecError):
            lift(bad, X)


class TestFunctionalModelCode:
    """The real model code must lift and agree with direct numeric execution."""

    @pytest.mark.parametrize(
        "point",
        [
            {"rs": 0.3, "s": 0.1, "alpha": 0.0},
            {"rs": 1.0, "s": 1.0, "alpha": 0.9},
            {"rs": 2.7, "s": 3.3, "alpha": 1.1},
            {"rs": 4.9, "s": 4.9, "alpha": 4.9},
        ],
    )
    def test_lift_agrees_with_numeric_execution(self, point):
        from repro.functionals.lyp import eps_c_lyp
        from repro.functionals.pbe import eps_c_pbe, eps_x_pbe
        from repro.functionals.am05 import eps_c_am05, eps_x_am05
        from repro.functionals.scan import eps_c_scan, eps_x_scan
        from repro.functionals.vwn_rpa import eps_c_vwn_rpa

        rs, s, alpha = point["rs"], point["s"], point["alpha"]
        cases = [
            (eps_c_lyp, (rs, s)),
            (eps_c_pbe, (rs, s)),
            (eps_x_pbe, (rs, s)),
            (eps_c_am05, (rs, s)),
            (eps_x_am05, (rs, s)),
            (eps_c_vwn_rpa, (rs,)),
            (eps_c_scan, (rs, s, alpha)),
            (eps_x_scan, (rs, s, alpha)),
        ]
        for model, args in cases:
            direct = model(*args)
            names = ["rs", "s", "alpha"][: len(args)]
            lifted = lift(model, *[Var(n, nonneg=True) for n in names])
            symbolic = evaluate(lifted, dict(zip(names, args)))
            assert symbolic == pytest.approx(direct, rel=1e-12), model.__name__
