"""Tests for polymorphic math intrinsics."""

import math

import pytest

from repro.expr.nodes import Expr, Var
from repro.pysym import intrinsics as I

X = Var("x")


class TestNumericDispatch:
    @pytest.mark.parametrize(
        "fn,ref,arg",
        [
            (I.exp, math.exp, 1.2),
            (I.log, math.log, 2.5),
            (I.sqrt, math.sqrt, 4.0),
            (I.atan, math.atan, 0.7),
            (I.fabs, abs, -3.0),
            (I.sin, math.sin, 0.4),
            (I.cos, math.cos, 0.4),
            (I.tanh, math.tanh, 0.9),
            (I.erf, math.erf, 0.3),
        ],
    )
    def test_matches_math(self, fn, ref, arg):
        assert fn(arg) == pytest.approx(ref(arg))

    def test_cbrt_negative(self):
        assert I.cbrt(-8.0) == pytest.approx(-2.0)

    def test_lambertw_identity(self):
        assert I.lambertw(1.0) * math.exp(I.lambertw(1.0)) == pytest.approx(1.0)

    def test_pi_constant(self):
        assert I.pi == math.pi


class TestSymbolicDispatch:
    def test_returns_expressions(self):
        out = I.exp(X)
        assert isinstance(out, Expr)

    def test_registry_complete(self):
        assert set(I.INTRINSIC_FUNCTIONS) == {
            "exp", "log", "sqrt", "cbrt", "atan", "fabs", "lambertw",
            "sin", "cos", "tanh", "erf",
        }

    def test_intrinsic_tag(self):
        assert I.exp.__intrinsic__ == "exp"

    def test_symbolic_matches_numeric(self):
        from repro.expr.evaluator import evaluate

        for name, fn in I.INTRINSIC_FUNCTIONS.items():
            arg = 0.7
            assert evaluate(fn(X), {"x": arg}) == pytest.approx(
                fn(arg), rel=1e-12
            ), name
