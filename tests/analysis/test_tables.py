"""Tests for the Table I harness."""


from repro.analysis.tables import PAPER_TABLE_ONE, TableOne, run_table_one
from repro.conditions import EC1, PAPER_CONDITIONS
from repro.functionals import get_functional, paper_functionals
from repro.solver.box import Box
from repro.verifier.regions import Outcome, RegionRecord, VerificationReport
from repro.verifier.verifier import VerifierConfig


def fake_report(fname, cid, outcome):
    domain = Box.from_bounds({"rs": (0.0, 1.0)})
    return VerificationReport(
        fname, cid, domain, [RegionRecord(0, 0, domain, outcome)]
    )


class TestTableOneStructure:
    def test_symbols_from_reports(self):
        table = TableOne(
            functionals=(get_functional("PBE"), get_functional("LYP")),
            conditions=(EC1,),
        )
        table.reports[("PBE", "EC1")] = fake_report("PBE", "EC1", Outcome.VERIFIED)
        assert table.symbol(get_functional("PBE"), EC1) == "OK"
        assert table.symbol(get_functional("LYP"), EC1) == "-"

    def test_render_contains_all_cells(self):
        table = TableOne(
            functionals=(get_functional("PBE"),), conditions=(EC1,)
        )
        table.reports[("PBE", "EC1")] = fake_report("PBE", "EC1", Outcome.COUNTEREXAMPLE)
        text = table.render()
        assert "PBE" in text
        assert "CEX" in text
        assert "Ec non-positivity" in text

    def test_as_dict_shape(self):
        table = TableOne(
            functionals=tuple(paper_functionals()), conditions=PAPER_CONDITIONS
        )
        d = table.as_dict()
        assert set(d) == {c.cid for c in PAPER_CONDITIONS}
        assert set(d["EC1"]) == {f.name for f in paper_functionals()}

    def test_paper_reference_has_31_applicable_cells(self):
        applicable = sum(
            1
            for row in PAPER_TABLE_ONE.values()
            for cell in row.values()
            if cell != "-"
        )
        assert applicable == 31


class TestRunTableOneSmall:
    def test_single_pair_run(self):
        config = VerifierConfig(
            split_threshold=1.5, per_call_budget=200, global_step_budget=2000
        )
        table = run_table_one(
            config,
            functionals=(get_functional("VWN RPA"), get_functional("LYP")),
            conditions=(EC1,),
        )
        assert table.symbol(get_functional("VWN RPA"), EC1) == "OK"
        assert table.symbol(get_functional("LYP"), EC1) == "CEX"
