"""Tests for the machine-readable artifact export."""

import csv
import io
import json

import pytest

from repro import get_condition, get_functional, verify_pair
from repro.analysis.export import (
    campaign_to_json,
    report_to_csv,
    report_to_json,
    table_to_json,
    table_to_markdown,
)
from repro.analysis.tables import run_table_one
from repro.verifier.verifier import VerifierConfig

FAST = VerifierConfig(
    split_threshold=1.3, per_call_budget=150, global_step_budget=2000
)


@pytest.fixture(scope="module")
def lyp_report():
    return verify_pair(get_functional("LYP"), get_condition("EC1"), FAST)


@pytest.fixture(scope="module")
def small_table():
    from repro.conditions import EC1, EC7

    return run_table_one(
        FAST,
        functionals=(get_functional("LYP"), get_functional("VWN RPA")),
        conditions=(EC1, EC7),
    )


class TestReportJSON:
    def test_roundtrips_through_json(self, lyp_report):
        payload = json.loads(report_to_json(lyp_report))
        assert payload["functional"] == "LYP"
        assert payload["condition"] == "EC1"
        assert payload["classification"] == lyp_report.classification()
        assert len(payload["regions"]) == len(lyp_report.records)

    def test_domain_serialised(self, lyp_report):
        payload = json.loads(report_to_json(lyp_report))
        assert payload["domain"]["rs"] == [1e-4, 5.0]
        assert payload["domain"]["s"] == [0.0, 5.0]

    def test_bbox_present_for_cex(self, lyp_report):
        payload = json.loads(report_to_json(lyp_report))
        if lyp_report.has_counterexample():
            bbox = payload["counterexample_bbox"]
            assert set(bbox) == {"rs", "s"}
            assert bbox["s"][0] < bbox["s"][1]

    def test_fractions_sum_to_at_most_one(self, lyp_report):
        payload = json.loads(report_to_json(lyp_report))
        assert sum(payload["area_fractions"].values()) <= 1.0 + 1e-9

    def test_compact_mode(self, lyp_report):
        text = report_to_json(lyp_report, indent=None)
        assert "\n" not in text.strip()


class TestReportCSV:
    def test_csv_parses_back(self, lyp_report):
        text = report_to_csv(lyp_report)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(lyp_report.records)
        assert {"index", "depth", "outcome", "solver_steps"} <= set(rows[0])

    def test_outcome_values_legal(self, lyp_report):
        rows = list(csv.DictReader(io.StringIO(report_to_csv(lyp_report))))
        legal = {"verified", "counterexample", "inconclusive", "timeout"}
        assert {row["outcome"] for row in rows} <= legal


class TestTableExport:
    def test_json_matrix(self, small_table):
        payload = json.loads(table_to_json(small_table))
        assert payload["functionals"] == ["LYP", "VWN RPA"]
        assert set(payload["cells"]) == {"EC1", "EC7"}
        assert payload["cells"]["EC1"]["LYP"] in ("CEX", "OK*", "?")

    def test_markdown_matrix(self, small_table):
        text = table_to_markdown(small_table)
        lines = text.splitlines()
        assert lines[0].startswith("| Local condition |")
        assert lines[1].startswith("|---|")
        assert len(lines) == 2 + 2  # header + separator + two conditions
        assert "LYP" in lines[0] and "VWN RPA" in lines[0]

    def test_campaign_export(self, small_table):
        payload = json.loads(campaign_to_json(small_table.reports))
        assert "LYP/EC1" in payload
        assert payload["LYP/EC1"]["functional"] == "LYP"


class TestCLIExportFlags:
    def test_verify_writes_json_and_csv(self, tmp_path, capsys):
        from repro.cli import main

        json_path = tmp_path / "report.json"
        csv_path = tmp_path / "regions.csv"
        rc = main(
            [
                "verify", "-f", "Wigner", "-c", "EC1",
                "--global-budget", "500",
                "--json", str(json_path), "--csv", str(csv_path),
            ]
        )
        assert rc == 0
        payload = json.loads(json_path.read_text())
        assert payload["functional"] == "Wigner"
        assert csv_path.read_text().startswith("index,")

    def test_table1_writes_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        json_path = tmp_path / "table1.json"
        md_path = tmp_path / "table1.md"
        rc = main(
            [
                "table1", "--budget", "40", "--global-budget", "200",
                "--json", str(json_path), "--markdown", str(md_path),
            ]
        )
        assert rc == 0
        payload = json.loads(json_path.read_text())
        assert "EC1" in payload["cells"]
        assert md_path.read_text().startswith("| Local condition |")
