"""Tests for the Table II consistency harness."""


from repro.analysis.compare import (
    CONSISTENT,
    MISMATCH,
    NO_COMPARISON,
    NOT_INCONSISTENT,
    PAPER_TABLE_TWO,
    classify_consistency,
    pb_points_covered_fraction,
    run_table_two,
)
from repro.conditions import EC1
from repro.functionals import get_functional
from repro.pb.checker import PBChecker
from repro.pb.grid import GridSpec
from repro.solver.box import Box
from repro.verifier.regions import Outcome, RegionRecord, VerificationReport
from repro.verifier.verifier import VerifierConfig

SPEC = GridSpec(n_rs=81, n_s=81)
CHECKER = PBChecker(spec=SPEC)
FAST = VerifierConfig(split_threshold=0.7, per_call_budget=250, global_step_budget=8000)


def report_with(outcomes_boxes, domain=None):
    domain = domain or Box.from_bounds({"rs": (1e-4, 5.0), "s": (0.0, 5.0)})
    records = [
        RegionRecord(i, 0, Box.from_bounds(bounds), outcome,
                     model=({"rs": 1.0, "s": 1.0} if outcome is Outcome.COUNTEREXAMPLE else None))
        for i, (bounds, outcome) in enumerate(outcomes_boxes)
    ]
    return VerificationReport("X", "EC1", domain, records)


class TestClassification:
    def test_both_clean_is_not_inconsistent(self):
        pb = CHECKER.check(get_functional("PBE"), EC1)
        report = report_with([({"rs": (1e-4, 5.0), "s": (0.0, 5.0)}, Outcome.VERIFIED)])
        assert classify_consistency(pb, report, dilation=0.1) == NOT_INCONSISTENT

    def test_all_timeout_is_no_comparison(self):
        pb = CHECKER.check(get_functional("PBE"), EC1)
        report = report_with([({"rs": (1e-4, 5.0), "s": (0.0, 5.0)}, Outcome.TIMEOUT)])
        assert classify_consistency(pb, report, dilation=0.1) == NO_COMPARISON

    def test_xcv_only_violation_is_mismatch(self):
        pb = CHECKER.check(get_functional("PBE"), EC1)  # no violations
        report = report_with(
            [({"rs": (1.0, 2.0), "s": (1.0, 2.0)}, Outcome.COUNTEREXAMPLE)]
        )
        assert classify_consistency(pb, report, dilation=0.1) == MISMATCH

    def test_pb_only_violation_is_mismatch(self):
        pb = CHECKER.check(get_functional("LYP"), EC1)  # violations at s > 1.7
        report = report_with([({"rs": (1e-4, 5.0), "s": (0.0, 5.0)}, Outcome.VERIFIED)])
        assert classify_consistency(pb, report, dilation=0.1) == MISMATCH

    def test_matching_violations_consistent(self):
        pb = CHECKER.check(get_functional("LYP"), EC1)
        report = report_with(
            [({"rs": (1e-4, 5.0), "s": (1.2, 5.0)}, Outcome.COUNTEREXAMPLE)]
        )
        assert classify_consistency(pb, report, dilation=0.2) == CONSISTENT

    def test_disjoint_violations_mismatch(self):
        pb = CHECKER.check(get_functional("LYP"), EC1)
        # cex region far from PB's violations
        report = report_with(
            [({"rs": (1e-4, 0.5), "s": (0.0, 0.5)}, Outcome.COUNTEREXAMPLE)]
        )
        assert classify_consistency(pb, report, dilation=0.05) == MISMATCH


class TestCoverage:
    def test_full_coverage_fraction(self):
        pb = CHECKER.check(get_functional("LYP"), EC1)
        report = report_with(
            [({"rs": (1e-4, 5.0), "s": (0.0, 5.0)}, Outcome.COUNTEREXAMPLE)]
        )
        assert pb_points_covered_fraction(pb, report, dilation=0.0) == 1.0

    def test_no_violations_is_vacuous_full(self):
        pb = CHECKER.check(get_functional("PBE"), EC1)
        report = report_with([({"rs": (1e-4, 5.0), "s": (0.0, 5.0)}, Outcome.VERIFIED)])
        assert pb_points_covered_fraction(pb, report, dilation=0.0) == 1.0

    def test_dilation_expands_coverage(self):
        pb = CHECKER.check(get_functional("LYP"), EC1)
        report = report_with(
            [({"rs": (1e-4, 5.0), "s": (2.5, 5.0)}, Outcome.COUNTEREXAMPLE)]
        )
        narrow = pb_points_covered_fraction(pb, report, dilation=0.0)
        wide = pb_points_covered_fraction(pb, report, dilation=1.0)
        assert wide > narrow


class TestRunTableTwoSmall:
    def test_lyp_and_vwn_cells(self):
        table = run_table_two(
            verifier_config=FAST,
            checker=CHECKER,
            functionals=(get_functional("LYP"), get_functional("VWN RPA")),
            conditions=(EC1,),
        )
        assert table.symbol(get_functional("LYP"), EC1) == CONSISTENT
        assert table.symbol(get_functional("VWN RPA"), EC1) == NOT_INCONSISTENT
        text = table.render()
        assert "Table II" in text

    def test_reports_reused_when_supplied(self):
        reports = {
            ("VWN RPA", "EC1"): report_with(
                [({"rs": (1e-4, 5.0)}, Outcome.VERIFIED)],
                domain=Box.from_bounds({"rs": (1e-4, 5.0)}),
            )
        }
        table = run_table_two(
            verifier_config=FAST,
            checker=CHECKER,
            functionals=(get_functional("VWN RPA"),),
            conditions=(EC1,),
            reports=reports,
        )
        assert table.reports[("VWN RPA", "EC1")] is reports[("VWN RPA", "EC1")]

    def test_paper_reference_table_shape(self):
        assert set(PAPER_TABLE_TWO) == {"EC1", "EC2", "EC3", "EC6", "EC7", "EC4", "EC5"}
        assert PAPER_TABLE_TWO["EC7"]["PBE"] == "J"

    def test_store_routes_verification_through_campaign(self, tmp_path):
        # the library-level store/resume branch: the verifier half runs
        # through the campaign engine and persists; a second call with the
        # same store serves the cells as hits and yields the same table
        store = tmp_path / "t2.sqlite"
        functionals = (get_functional("LYP"), get_functional("VWN RPA"))
        first = run_table_two(
            verifier_config=FAST, checker=CHECKER,
            functionals=functionals, conditions=(EC1,),
            store=store, resume=True,
        )
        again = run_table_two(
            verifier_config=FAST, checker=CHECKER,
            functionals=functionals, conditions=(EC1,),
            store=store, resume=True,
        )
        assert first.as_dict() == again.as_dict()
        assert first.symbol(get_functional("LYP"), EC1) == CONSISTENT
        for key, report in first.reports.items():
            assert report.identical_to(again.reports[key]), key

    def test_interrupted_partial_reports_skip_missing_cells(self):
        # interrupted=True marks a partial campaign dict: missing cells are
        # left unscored instead of being recomputed against the interrupt
        reports = {
            ("VWN RPA", "EC1"): report_with(
                [({"rs": (1e-4, 5.0)}, Outcome.VERIFIED)],
                domain=Box.from_bounds({"rs": (1e-4, 5.0)}),
            )
        }
        table = run_table_two(
            verifier_config=FAST, checker=CHECKER,
            functionals=(get_functional("VWN RPA"), get_functional("LYP")),
            conditions=(EC1,),
            reports=reports, interrupted=True,
        )
        assert ("VWN RPA", "EC1") in table.cells
        assert ("LYP", "EC1") not in table.cells
        assert PAPER_TABLE_TWO["EC1"]["SCAN"] == "?"
