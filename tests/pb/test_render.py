"""Tests for the PB ASCII map renderer."""

import numpy as np
import pytest

from repro.conditions import EC1
from repro.functionals import get_functional
from repro.pb import GridSpec, PBChecker, ascii_pb_map, downsample_mask


class TestDownsample:
    def test_any_pooling(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, 0] = True
        out = downsample_mask(mask, (2, 2))
        assert out[0, 0]
        assert not out[1, 1]

    def test_shape(self):
        mask = np.zeros((100, 60), dtype=bool)
        assert downsample_mask(mask, (10, 6)).shape == (10, 6)

    def test_all_true_preserved(self):
        mask = np.ones((9, 9), dtype=bool)
        assert downsample_mask(mask, (3, 3)).all()

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            downsample_mask(np.zeros(5, dtype=bool), (1, 1))


class TestAsciiPBMap:
    @pytest.fixture(scope="class")
    def lyp_result(self):
        return PBChecker(spec=GridSpec(n_rs=61, n_s=61)).check(
            get_functional("LYP"), EC1
        )

    def test_violations_at_top(self, lyp_result):
        art = ascii_pb_map(lyp_result, resolution=12, legend=False)
        rows = art.splitlines()[1:]
        assert set(rows[0]) == {"#"}        # top row (s = 5) all violating
        assert "#" not in rows[-1]          # bottom row (s = 0) clean

    def test_legend(self, lyp_result):
        assert "legend" in ascii_pb_map(lyp_result)
        assert "legend" not in ascii_pb_map(lyp_result, legend=False)

    def test_header_names_pair(self, lyp_result):
        assert "LYP / EC1" in ascii_pb_map(lyp_result)

    def test_lda_renders_single_row(self):
        result = PBChecker(spec=GridSpec(n_rs=61)).check(
            get_functional("VWN RPA"), EC1
        )
        art = ascii_pb_map(result, resolution=12, legend=False)
        rows = art.splitlines()[1:]
        assert len(rows) == 1
        assert set(rows[0]) <= {".", " "}

    def test_mgga_projects_alpha(self):
        result = PBChecker(spec=GridSpec(n_rs=31, n_s=31, n_alpha=5)).check(
            get_functional("SCAN"), EC1
        )
        art = ascii_pb_map(result, resolution=8, legend=False)
        assert len(art.splitlines()) == 9
