"""Tests for PB grid construction."""

import numpy as np
import pytest

from repro.functionals import get_functional
from repro.pb.grid import Grid, GridSpec


class TestGridSpec:
    def test_axes_by_family(self):
        spec = GridSpec(n_rs=11, n_s=7, n_alpha=3)
        assert set(spec.axes("LDA")) == {"rs"}
        assert set(spec.axes("GGA")) == {"rs", "s"}
        assert set(spec.axes("MGGA")) == {"rs", "s", "alpha"}

    def test_bounds(self):
        spec = GridSpec(n_rs=5)
        axes = spec.axes("GGA")
        assert axes["rs"][0] == pytest.approx(1e-4)
        assert axes["rs"][-1] == pytest.approx(5.0)
        assert axes["s"][0] == 0.0 and axes["s"][-1] == 5.0


class TestGrid:
    def test_for_functional(self):
        spec = GridSpec(n_rs=11, n_s=7, n_alpha=3)
        grid = Grid.for_functional(get_functional("SCAN"), spec)
        assert grid.shape == (11, 7, 3)
        assert grid.names == ("rs", "s", "alpha")

    def test_meshes_shapes(self):
        spec = GridSpec(n_rs=11, n_s=7)
        grid = Grid.for_functional(get_functional("PBE"), spec)
        rs, s = grid.meshes()
        assert rs.shape == (11, 7)
        # rs varies along axis 0 only
        assert (np.diff(rs, axis=1) == 0).all()
        assert (np.diff(s, axis=0) == 0).all()

    def test_evaluate_kernel(self):
        spec = GridSpec(n_rs=6, n_s=5)
        f = get_functional("LYP")
        grid = Grid.for_functional(f, spec)
        fc = grid.evaluate(f.fc_kernel())
        assert fc.shape == (6, 5)
        assert np.isfinite(fc).all()

    def test_evaluate_at_rs_pins_axis(self):
        spec = GridSpec(n_rs=6, n_s=5)
        f = get_functional("LYP")
        grid = Grid.for_functional(f, spec)
        pinned = grid.evaluate_at_rs(f.fc_kernel(), 100.0)
        # all rows equal: rs no longer varies
        assert np.allclose(pinned, pinned[0])

    def test_point_lookup(self):
        spec = GridSpec(n_rs=6, n_s=5)
        grid = Grid.for_functional(get_functional("PBE"), spec)
        pt = grid.point((0, 4))
        assert pt["rs"] == pytest.approx(1e-4)
        assert pt["s"] == pytest.approx(5.0)

    def test_rs_spacing(self):
        spec = GridSpec(n_rs=6)
        grid = Grid.for_functional(get_functional("VWN RPA"), spec)
        assert grid.rs_spacing() == pytest.approx((5.0 - 1e-4) / 5)
