"""Tests for numeric gradients against exact derivatives."""

import numpy as np

from repro.expr.derivative import derivative
from repro.functionals import get_functional
from repro.functionals.vars import RS
from repro.pb.gradients import d2_drs2, d_drs, gradient_error_estimate


class TestFiniteDifferences:
    def test_linear_exact(self):
        rs = np.linspace(0.0, 1.0, 11)
        values = 3.0 * rs + 1.0
        np.testing.assert_allclose(d_drs(values, rs), 3.0, atol=1e-12)

    def test_quadratic_interior_exact(self):
        rs = np.linspace(0.0, 1.0, 101)
        values = rs**2
        grad = d_drs(values, rs)
        np.testing.assert_allclose(grad[1:-1], 2.0 * rs[1:-1], atol=1e-10)

    def test_second_derivative_of_cubic(self):
        rs = np.linspace(0.0, 2.0, 401)
        values = rs**3
        d2 = d2_drs2(values, rs)
        np.testing.assert_allclose(d2[3:-3], 6.0 * rs[3:-3], rtol=1e-3, atol=1e-6)

    def test_axis_is_rs_only(self):
        rs = np.linspace(0.0, 1.0, 21)
        s = np.linspace(0.0, 1.0, 7)
        rs_mesh, s_mesh = np.meshgrid(rs, s, indexing="ij")
        values = rs_mesh * 5.0 + s_mesh * 100.0
        grad = d_drs(values, rs)
        np.testing.assert_allclose(grad, 5.0, atol=1e-9)


class TestAgainstSymbolicDerivative:
    def test_pbe_dfc_drs_converges(self):
        """Numeric gradient approaches the symbolic one as the grid refines.

        This is experiment E2's core claim: the PB baseline's derivative is
        an approximation, the verifier's is exact.
        """
        f = get_functional("PBE")
        kernel = f.fc_kernel()
        exact_expr = derivative(f.fc(), RS)
        from repro.expr.codegen import compile_numpy
        exact_kernel = compile_numpy(exact_expr, arg_order=f.variables)

        errors = []
        for n in (51, 201, 801):
            rs = np.linspace(0.5, 5.0, n)
            s = np.full_like(rs, 1.0)
            approx = d_drs(kernel(rs, s), rs)
            exact = exact_kernel(rs, s)
            errors.append(np.abs(approx - exact)[2:-2].max())
        assert errors[1] < errors[0]
        assert errors[2] < errors[1]

    def test_error_estimate_helper(self):
        f = get_functional("LYP")
        kernel = f.fc_kernel()
        exact_expr = derivative(f.fc(), RS)
        from repro.expr.codegen import compile_numpy
        exact_kernel = compile_numpy(exact_expr, arg_order=f.variables)
        rs = np.linspace(0.5, 5.0, 101)
        s = np.full_like(rs, 2.0)
        stats = gradient_error_estimate(kernel(rs, s), rs, exact_kernel(rs, s))
        assert stats["fraction_finite"] == 1.0
        assert stats["max"] < 1e-2
        assert stats["mean"] <= stats["max"]
