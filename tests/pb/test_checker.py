"""Tests for the PB grid-search condition checker."""

import numpy as np
import pytest

from repro.conditions import EC1, EC2, EC4, EC5, EC6, EC7, get_condition
from repro.functionals import get_functional
from repro.pb.checker import PBChecker
from repro.pb.grid import GridSpec

SPEC = GridSpec(n_rs=101, n_s=101, n_alpha=11)
CHECKER = PBChecker(spec=SPEC)


class TestVerdicts:
    def test_lyp_ec1_violated(self):
        res = CHECKER.check(get_functional("LYP"), EC1)
        assert res.any_violation
        bounds = res.violation_bounds()
        # violations only at large s (paper: s > ~1.66)
        assert bounds["s"][0] > 1.3
        assert bounds["s"][1] == pytest.approx(5.0)

    def test_lyp_ec2_violated_at_small_rs(self):
        res = CHECKER.check(get_functional("LYP"), EC2)
        assert res.any_violation
        bounds = res.violation_bounds()
        # paper: rs < 2.5 and s > 1.4844
        assert bounds["rs"][1] < 3.0
        assert bounds["s"][0] > 1.2

    def test_lyp_ec6_violated_bottom_right(self):
        res = CHECKER.check(get_functional("LYP"), EC6)
        assert res.any_violation
        bounds = res.violation_bounds()
        # paper: rs > 4.84, s > 2.42 -- a small corner
        assert bounds["rs"][0] > 4.0
        assert res.violation_fraction < 0.05

    def test_pbe_ec7_violated_upper_left(self):
        res = CHECKER.check(get_functional("PBE"), EC7)
        assert res.any_violation
        bounds = res.violation_bounds()
        assert bounds["rs"][0] < 0.5
        assert bounds["s"][1] == pytest.approx(5.0)

    def test_pbe_ec1_satisfied(self):
        res = CHECKER.check(get_functional("PBE"), EC1)
        assert not res.any_violation

    def test_pbe_lieb_oxford_satisfied(self):
        for cond in (EC4, EC5):
            res = CHECKER.check(get_functional("PBE"), cond)
            assert not res.any_violation, cond.cid

    def test_vwn_rpa_all_satisfied(self):
        f = get_functional("VWN RPA")
        for cid in ("EC1", "EC2", "EC3", "EC6", "EC7"):
            res = CHECKER.check(f, get_condition(cid))
            assert not res.any_violation, cid

    def test_am05_all_satisfied(self):
        f = get_functional("AM05")
        for cid in ("EC1", "EC2", "EC6", "EC7", "EC4", "EC5"):
            res = CHECKER.check(f, get_condition(cid))
            assert not res.any_violation, cid

    def test_inapplicable_pair_rejected(self):
        with pytest.raises(ValueError):
            CHECKER.check(get_functional("LYP"), EC4)


class TestResultShape:
    def test_masks_partition_grid(self):
        res = CHECKER.check(get_functional("LYP"), EC1)
        total = res.satisfied | res.violated | res.undefined
        assert total.all()
        assert not (res.satisfied & res.violated).any()

    def test_violation_points_have_coordinates(self):
        res = CHECKER.check(get_functional("LYP"), EC1)
        points = res.violation_points(limit=5)
        assert len(points) == 5
        for pt in points:
            assert set(pt) == {"rs", "s"}

    def test_summary_text(self):
        res = CHECKER.check(get_functional("LYP"), EC1)
        assert "violated" in res.summary()
        res_ok = CHECKER.check(get_functional("PBE"), EC1)
        assert "satisfied" in res_ok.summary()

    def test_violation_fraction_range(self):
        res = CHECKER.check(get_functional("LYP"), EC1)
        assert 0.0 < res.violation_fraction < 1.0

    def test_boundary_trim_marks_undefined(self):
        res = CHECKER.check(get_functional("PBE"), EC7)
        assert res.undefined[0].all()
        assert res.undefined[-1].all()

    def test_no_trim_configuration(self):
        checker = PBChecker(spec=GridSpec(n_rs=51, n_s=51), boundary_trim=0)
        res = checker.check(get_functional("PBE"), EC7)
        assert not res.undefined[1:-1].all()


class TestGridConvergence:
    def test_verdict_stable_across_resolutions(self):
        """E9: the LYP EC1 verdict must not depend on grid resolution."""
        for n in (41, 81, 161):
            checker = PBChecker(spec=GridSpec(n_rs=n, n_s=n))
            res = checker.check(get_functional("LYP"), EC1)
            assert res.any_violation, f"missed violation at n={n}"

    def test_violation_boundary_converges(self):
        thresholds = []
        for n in (41, 161):
            checker = PBChecker(spec=GridSpec(n_rs=n, n_s=n))
            res = checker.check(get_functional("LYP"), EC1)
            thresholds.append(res.violation_bounds()["s"][0])
        # finer grid localises the boundary at or below the coarse one
        assert abs(thresholds[1] - thresholds[0]) < 0.25


class TestMetaGGA:
    def test_scan_grid_is_3d(self):
        res = CHECKER.check(get_functional("SCAN"), EC1)
        assert res.residual.ndim == 3

    def test_scan_ec1_satisfied(self):
        res = CHECKER.check(get_functional("SCAN"), EC1)
        assert not res.any_violation

    def test_scan_ec5_satisfied(self):
        res = CHECKER.check(get_functional("SCAN"), EC5)
        assert not res.any_violation


class TestSymbolicDerivativeMode:
    """The tape-backed residual path (batched VM, exact derivatives)."""

    SYMBOLIC = PBChecker(spec=GridSpec(n_rs=81, n_s=81, n_alpha=7),
                         derivative_mode="symbolic")
    NUMERIC = PBChecker(spec=GridSpec(n_rs=81, n_s=81, n_alpha=7))

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="derivative_mode"):
            PBChecker(derivative_mode="autodiff")

    def test_verdicts_agree_with_numeric_gradients(self):
        for fname, cid, expect in [
            ("PBE", "EC1", False),
            ("PBE", "EC7", True),
            ("LYP", "EC2", True),
            ("SCAN", "EC2", False),
        ]:
            res = self.SYMBOLIC.check(get_functional(fname), get_condition(cid))
            assert res.any_violation == expect, (fname, cid)

    def test_no_boundary_trim_needed(self):
        # symbolic derivatives have no one-sided stencil rows: the rs
        # boundary rows carry real verdicts instead of "undefined"
        res = self.SYMBOLIC.check(get_functional("PBE"), EC2)
        assert not res.undefined[0].any()
        assert not res.undefined[-1].any()
        trimmed = self.NUMERIC.check(get_functional("PBE"), EC2)
        assert trimmed.undefined[0].all()

    def test_residuals_close_to_numeric_in_the_interior(self):
        num = self.NUMERIC.check(get_functional("PBE"), EC1)
        sym = self.SYMBOLIC.check(get_functional("PBE"), EC1)
        # EC1 has no derivative: both paths evaluate -F_c, one through the
        # compiled NumPy kernel, one through the batched tape VM
        assert np.allclose(num.residual, sym.residual, rtol=1e-8, atol=1e-10)
