"""Tests for outward-rounded interval arithmetic."""

import math
from math import inf

import pytest

from repro.solver.interval import EMPTY, REALS, make, point


class TestConstruction:
    def test_make_normalises_empty(self):
        assert make(2.0, 1.0).is_empty()
        assert make(math.nan, 1.0).is_empty()

    def test_point(self):
        p = point(3.0)
        assert p.lo == p.hi == 3.0
        assert not p.is_empty()

    def test_empty_properties(self):
        assert EMPTY.is_empty()
        assert EMPTY.width() == 0.0
        assert not EMPTY.contains(0.0)

    def test_reals(self):
        assert REALS.contains(1e300)
        assert REALS.contains(-1e300)


class TestQueries:
    def test_width(self):
        assert make(1.0, 3.0).width() == pytest.approx(2.0)

    def test_mid_finite(self):
        assert make(1.0, 3.0).mid() == pytest.approx(2.0)

    def test_mid_half_infinite(self):
        assert make(-inf, 0.0).mid() <= -1.0
        assert make(0.0, inf).mid() >= 1.0
        assert make(-inf, inf).mid() == 0.0

    def test_contains(self):
        iv = make(1.0, 2.0)
        assert iv.contains(1.0) and iv.contains(2.0) and iv.contains(1.5)
        assert not iv.contains(0.999)

    def test_subset(self):
        assert make(1.0, 2.0).is_subset(make(0.0, 3.0))
        assert not make(1.0, 4.0).is_subset(make(0.0, 3.0))
        assert EMPTY.is_subset(make(0.0, 1.0))

    def test_overlaps(self):
        assert make(0.0, 2.0).overlaps(make(1.0, 3.0))
        assert make(0.0, 1.0).overlaps(make(1.0, 2.0))  # touching counts
        assert not make(0.0, 1.0).overlaps(make(2.0, 3.0))
        assert not EMPTY.overlaps(make(0.0, 1.0))


class TestSetOps:
    def test_intersect(self):
        out = make(0.0, 2.0).intersect(make(1.0, 3.0))
        assert out.lo == 1.0 and out.hi == 2.0

    def test_intersect_disjoint_empty(self):
        assert make(0.0, 1.0).intersect(make(2.0, 3.0)).is_empty()

    def test_hull(self):
        out = make(0.0, 1.0).hull(make(3.0, 4.0))
        assert out.lo == 0.0 and out.hi == 4.0

    def test_hull_with_empty(self):
        iv = make(1.0, 2.0)
        assert iv.hull(EMPTY) == iv
        assert EMPTY.hull(iv) == iv

    def test_widened(self):
        out = make(1.0, 2.0).widened(0.5)
        assert out.lo == 0.5 and out.hi == 2.5


class TestArithmetic:
    def test_add_contains_sum(self):
        a, c = make(1.0, 2.0), make(-1.0, 3.0)
        out = a + c
        assert out.contains(1.5 + 2.0)
        assert out.lo <= 0.0 <= out.hi

    def test_sub(self):
        out = make(1.0, 2.0) - make(0.5, 1.5)
        assert out.contains(2.0 - 0.5)
        assert out.contains(1.0 - 1.5)

    def test_neg(self):
        out = -make(1.0, 2.0)
        assert out.lo == -2.0 and out.hi == -1.0

    def test_mul_signs(self):
        assert (make(1, 2) * make(3, 4)).contains(6.0)
        assert (make(-2, -1) * make(3, 4)).contains(-8.0)
        assert (make(-1, 2) * make(-3, 4)).contains(-6.0)
        assert (make(-1, 2) * make(-3, 4)).contains(8.0)

    def test_mul_with_infinity_and_zero(self):
        out = make(0.0, 1.0) * make(0.0, inf)
        assert not out.is_empty()
        assert out.lo <= 0.0

    def test_empty_propagation(self):
        iv = make(1.0, 2.0)
        assert (iv + EMPTY).is_empty()
        assert (iv * EMPTY).is_empty()
        assert (-EMPTY).is_empty()

    def test_inverse_positive(self):
        out = make(2.0, 4.0).inverse()
        assert out.contains(0.25) and out.contains(0.5)
        assert not out.contains(0.6)

    def test_inverse_spanning_zero_is_reals(self):
        assert make(-1.0, 1.0).inverse() == REALS

    def test_inverse_touching_zero(self):
        out = make(0.0, 2.0).inverse()
        assert out.hi == inf
        assert out.lo == pytest.approx(0.5)
        out = make(-2.0, 0.0).inverse()
        assert out.lo == -inf

    def test_inverse_of_zero_point_empty(self):
        assert point(0.0).inverse().is_empty()

    def test_division(self):
        out = make(1.0, 2.0) / make(2.0, 4.0)
        assert out.contains(0.25) and out.contains(1.0)

    def test_abs(self):
        assert make(1.0, 2.0).abs() == make(1.0, 2.0)
        assert make(-2.0, -1.0).abs() == make(1.0, 2.0)
        out = make(-1.0, 2.0).abs()
        assert out.lo == 0.0 and out.hi == 2.0


class TestPowers:
    def test_pow_even_spanning_zero(self):
        out = make(-2.0, 3.0).pow_int(2)
        assert out.lo == 0.0
        assert out.contains(9.0) and out.contains(4.0)

    def test_pow_odd(self):
        out = make(-2.0, 3.0).pow_int(3)
        assert out.contains(-8.0) and out.contains(27.0)

    def test_pow_zero(self):
        assert make(-1.0, 1.0).pow_int(0) == point(1.0)

    def test_pow_negative_int(self):
        out = make(2.0, 4.0).pow_int(-1)
        assert out.contains(0.25) and out.contains(0.5)

    def test_pow_real_positive_exponent(self):
        out = make(4.0, 9.0).pow_real(0.5)
        assert out.contains(2.0) and out.contains(3.0)

    def test_pow_real_clips_negative_base(self):
        out = make(-4.0, 9.0).pow_real(0.5)
        assert out.lo <= 0.0 and out.contains(3.0)

    def test_pow_real_entirely_negative_base_empty(self):
        assert make(-4.0, -1.0).pow_real(0.5).is_empty()

    def test_pow_real_negative_exponent_with_zero(self):
        out = make(0.0, 4.0).pow_real(-0.5)
        assert out.hi == inf
        assert out.contains(0.5)

    def test_pow_dispatch(self):
        assert make(2.0, 3.0).pow(2.0).contains(9.0)
        assert make(4.0, 4.0).pow(0.5).contains(2.0)


class TestTranscendental:
    def test_exp(self):
        out = make(0.0, 1.0).exp()
        assert out.contains(1.0) and out.contains(math.e)

    def test_exp_saturation(self):
        out = make(0.0, 1e9).exp()
        assert out.hi == inf
        out = make(-inf, 0.0).exp()
        assert out.lo == 0.0

    def test_log(self):
        out = make(1.0, math.e).log()
        assert out.contains(0.0) and out.contains(1.0)

    def test_log_clips_domain(self):
        out = make(-1.0, math.e).log()
        assert out.lo == -inf and out.contains(1.0)

    def test_log_of_nonpositive_empty(self):
        assert make(-2.0, -1.0).log().is_empty()
        assert point(0.0).log().is_empty()

    def test_sqrt(self):
        out = make(4.0, 16.0).sqrt()
        assert out.contains(2.0) and out.contains(4.0)

    def test_cbrt_handles_negative(self):
        out = make(-27.0, 8.0).cbrt()
        assert out.contains(-3.0) and out.contains(2.0)

    def test_atan_bounds(self):
        out = REALS.atan()
        assert out.lo == pytest.approx(-math.pi / 2)
        assert out.hi == pytest.approx(math.pi / 2)

    def test_tanh(self):
        out = make(-1.0, 1.0).tanh()
        assert out.contains(math.tanh(0.5))
        assert -1.0 <= out.lo and out.hi <= 1.0

    def test_erf(self):
        out = make(0.0, 1.0).erf()
        assert out.contains(math.erf(0.5))

    def test_lambertw_monotone(self):
        out = make(0.0, math.e).lambertw()
        assert out.contains(0.0) and out.contains(1.0)

    def test_lambertw_clips_branch_point(self):
        out = make(-10.0, 0.0).lambertw()
        assert not out.is_empty()
        assert out.lo <= -1.0 + 1e-6

    def test_lambertw_unbounded(self):
        assert make(0.0, inf).lambertw().hi == inf


class TestTrig:
    def test_sin_narrow(self):
        out = make(0.1, 0.2).sin()
        assert out.contains(math.sin(0.15))
        assert out.width() < 0.2

    def test_sin_contains_max(self):
        out = make(0.0, math.pi).sin()
        assert out.hi >= 1.0 - 1e-12
        assert out.lo <= 1e-12

    def test_sin_wide_is_unit(self):
        out = make(0.0, 10.0).sin()
        assert out.lo == -1.0 and out.hi == 1.0

    def test_cos_contains_min(self):
        out = make(0.0, math.pi).cos()
        assert out.lo <= -1.0 + 1e-12
        assert out.hi >= 1.0 - 1e-12

    def test_cos_narrow(self):
        out = make(1.0, 1.1).cos()
        assert out.contains(math.cos(1.05))


class TestEqualityHash:
    def test_equality(self):
        assert make(1.0, 2.0) == make(1.0, 2.0)
        assert make(1.0, 2.0) != make(1.0, 3.0)
        assert EMPTY == make(5.0, 4.0)

    def test_hash_consistency(self):
        assert hash(make(1.0, 2.0)) == hash(make(1.0, 2.0))
        assert hash(EMPTY) == hash(make(3.0, 2.0))
