"""Differential tests: tape VM vs the tree-walking oracles.

The tape executors are specified to perform the *identical* sequence of
primitive float/interval operations as the tree walks, so every comparison
here is exact (bit for bit), which is stronger than the outward-rounding
slack the solver itself would tolerate.
"""

from __future__ import annotations

import math
import pickle
import random

import pytest

from repro.expr import builder as b
from repro.expr.evaluator import evaluate, evaluate_tree
from repro.expr.nodes import Expr
from repro.solver.box import Box
from repro.solver.constraint import Atom, Conjunction
from repro.solver.contractor import HC4Contractor, interval_eval
from repro.solver.icp import Budget, ICPSolver
from repro.solver.tape import CompiledConjunction, compile_expr, tape_for


# ---------------------------------------------------------------------------
# random residual generator
# ---------------------------------------------------------------------------

X = b.var("x", nonneg=True)
Y = b.var("y")
Z = b.var("z", nonneg=True)

_UNARY = ("exp", "log", "sqrt", "cbrt", "atan", "abs", "sin", "cos", "tanh", "erf")


def random_expr(rng: random.Random, depth: int = 4) -> Expr:
    """A random residual over x (nonneg), y, z (nonneg)."""
    if depth <= 0 or rng.random() < 0.25:
        return rng.choice(
            [X, Y, Z, b.const(rng.uniform(-3.0, 3.0)), b.const(rng.choice([0.5, 1.0, 2.0, 3.0]))]
        )
    kind = rng.random()
    if kind < 0.3:
        n = rng.randint(2, 4)
        return b.add(*[random_expr(rng, depth - 1) for _ in range(n)])
    if kind < 0.55:
        n = rng.randint(2, 3)
        return b.mul(*[random_expr(rng, depth - 1) for _ in range(n)])
    if kind < 0.7:
        expo = rng.choice([-2, -1, 2, 3, 0.5, 1.5, -0.5])
        return b.pow_(random_expr(rng, depth - 1), expo)
    if kind < 0.92:
        name = rng.choice(_UNARY)
        return getattr(b, name if name != "abs" else "abs_")(random_expr(rng, depth - 1))
    cond = random_expr(rng, depth - 2).le(random_expr(rng, depth - 2))
    return b.ite(cond, random_expr(rng, depth - 1), random_expr(rng, depth - 1))


def random_box(rng: random.Random) -> Box:
    def iv(lo_min, lo_max, w_max):
        lo = rng.uniform(lo_min, lo_max)
        return (lo, lo + rng.uniform(0.0, w_max))

    return Box.from_bounds(
        {"x": iv(0.0, 2.0, 2.0), "y": iv(-2.0, 1.0, 3.0), "z": iv(0.0, 1.0, 1.5)}
    )


def assert_boxes_identical(b1: Box, b2: Box) -> None:
    assert b1.names == b2.names
    for name in b1.names:
        i1, i2 = b1[name], b2[name]
        if i1.is_empty() and i2.is_empty():
            continue
        assert i1.lo == i2.lo and i1.hi == i2.hi, (name, i1, i2)


CORPUS_SEEDS = range(40)


# ---------------------------------------------------------------------------
# forward enclosure parity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", CORPUS_SEEDS)
def test_forward_enclosure_matches_tree_walk(seed):
    rng = random.Random(seed)
    expr = random_expr(rng)
    box = random_box(rng)
    walk = interval_eval(expr, box)[id(expr)]
    tape = tape_for(expr).enclosure(box)
    if walk.is_empty():
        assert tape.is_empty()
    else:
        assert (walk.lo, walk.hi) == (tape.lo, tape.hi)


# ---------------------------------------------------------------------------
# HC4 contraction parity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", CORPUS_SEEDS)
def test_contraction_matches_tree_walk(seed):
    rng = random.Random(1000 + seed)
    formula = Conjunction.of(
        *[Atom(random_expr(rng), rng.choice(["<=", "<"])) for _ in range(rng.randint(1, 3))]
    )
    box = random_box(rng)
    tape_c = HC4Contractor(formula, delta=1e-5, backend="tape")
    walk_c = HC4Contractor(formula, delta=1e-5, backend="walk")
    assert_boxes_identical(tape_c.contract(box), walk_c.contract(box))


def test_certainly_sat_agrees_with_walk_revise():
    rng = random.Random(7)
    for _ in range(20):
        expr = random_expr(rng)
        formula = Conjunction.of(Atom(expr, "<="))
        box = random_box(rng)
        contractor = HC4Contractor(formula, delta=1e-5)
        walk = interval_eval(expr, box)[id(expr)]
        expected = (not walk.is_empty()) and walk.hi <= 1e-5
        assert contractor.certainly_sat(box) == expected


# ---------------------------------------------------------------------------
# scalar point-evaluation parity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", CORPUS_SEEDS)
def test_point_eval_matches_tree_walk(seed):
    rng = random.Random(2000 + seed)
    expr = random_expr(rng)
    for _ in range(5):
        env = {
            "x": rng.uniform(0.0, 3.0),
            "y": rng.uniform(-3.0, 3.0),
            "z": rng.uniform(0.0, 2.0),
        }
        v_tape = evaluate(expr, env)
        v_walk = evaluate_tree(expr, env)
        if math.isnan(v_walk):
            assert math.isnan(v_tape)
        else:
            assert v_tape == v_walk


# ---------------------------------------------------------------------------
# solver-status parity (the property the PR must preserve end to end)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(12))
def test_solver_status_and_model_match(seed):
    rng = random.Random(3000 + seed)
    formula = Conjunction.of(Atom(random_expr(rng, depth=3), "<="))
    box = random_box(rng)
    budget = Budget(max_steps=300)
    results = {}
    for backend in ("tape", "walk"):
        solver = ICPSolver(delta=1e-5, precision=1e-2, backend=backend)
        results[backend] = solver.solve(formula, box, budget)
    assert results["tape"].status == results["walk"].status
    assert results["tape"].model == results["walk"].model
    assert (
        results["tape"].stats.boxes_processed == results["walk"].stats.boxes_processed
    )


# ---------------------------------------------------------------------------
# tape structure, cache, and pickling
# ---------------------------------------------------------------------------

def test_tape_is_flat_picklable_data():
    rng = random.Random(42)
    expr = random_expr(rng)
    tape = compile_expr(expr)
    clone = pickle.loads(pickle.dumps(tape))
    assert clone.instrs == tape.instrs
    assert clone.root == tape.root
    box = random_box(rng)
    t1, t2 = tape.enclosure(box), clone.enclosure(box)
    if t1.is_empty():
        assert t2.is_empty()
    else:
        assert (t1.lo, t1.hi) == (t2.lo, t2.hi)


def test_tape_cache_returns_same_tape_for_interned_expr():
    expr = b.exp(X) + Y
    assert tape_for(expr) is tape_for(expr)
    # hash-consing means structural reconstruction hits the same tape
    assert tape_for(b.exp(X) + Y) is tape_for(expr)


def test_constants_folded_into_literal_pool():
    expr = b.const(2.0) * X + b.const(3.5)
    tape = compile_expr(expr)
    values = {v for _, v in tape.const_slots}
    assert {2.0, 3.5} <= values
    # constants generate no instructions: only the mul and the add remain
    assert len(tape.instrs) == 2


def test_compiled_conjunction_roundtrip_through_pickle():
    rng = random.Random(5)
    formula = Conjunction.of(Atom(random_expr(rng), "<="))
    compiled = pickle.loads(pickle.dumps(CompiledConjunction.from_conjunction(formula)))
    box = random_box(rng)
    assert_boxes_identical(
        HC4Contractor(compiled, delta=1e-5).contract(box),
        HC4Contractor(formula, delta=1e-5, backend="walk").contract(box),
    )
    env = {"x": 0.3, "y": -0.7, "z": 0.9}
    assert compiled.holds_at(env) == formula.holds_at(env)
    assert compiled.free_var_names() == formula.free_var_names()


def test_newton_contractor_accepts_compiled_conjunction_with_derivatives():
    from repro.solver.newton import NewtonContractor

    expr = (X - 1.0) * (X - 1.0) + Y * Y
    formula = Conjunction.of(Atom(expr, "<="))
    compiled = CompiledConjunction.from_conjunction(formula, derivatives=True)
    compiled = pickle.loads(pickle.dumps(compiled))
    box = Box.from_bounds({"x": (0.0, 2.0), "y": (-1.0, 1.0)})
    n1 = NewtonContractor(formula, delta=1e-5).contract(box)
    n2 = NewtonContractor(compiled, delta=1e-5).contract(box)
    assert_boxes_identical(n1, n2)


def test_newton_requires_derivative_tapes():
    from repro.solver.newton import NewtonContractor

    formula = Conjunction.of(Atom(X * X, "<="))
    compiled = CompiledConjunction.from_conjunction(formula)
    with pytest.raises(ValueError, match="derivative"):
        NewtonContractor(compiled)


def test_walk_backend_rejects_compiled_conjunction():
    formula = Conjunction.of(Atom(X + Y, "<="))
    compiled = CompiledConjunction.from_conjunction(formula)
    with pytest.raises(ValueError, match="walk"):
        HC4Contractor(compiled, backend="walk")


# ---------------------------------------------------------------------------
# solver cache keying (regression: id() reuse must not alias contractors)
# ---------------------------------------------------------------------------

def test_contractor_cache_is_not_id_keyed():
    solver = ICPSolver()
    box = Box.from_bounds({"x": (0.0, 1.0)})
    import gc

    seen = set()
    for k in range(6):
        formula = Conjunction.of(Atom(X - float(k), "<="))
        solver.solve(formula, box, Budget(max_steps=10))
        contractor = solver._contractors[formula]
        assert contractor.formula is formula
        seen.add(id(formula))
        del formula
        gc.collect()
    # every formula got its own cached contractor, held by strong reference
    assert len(solver._contractors) == 6


def test_paper_functional_contraction_parity():
    """PBE-class residual: the acceptance-criterion formula class."""
    from repro.conditions import EC1
    from repro.functionals import get_functional
    from repro.verifier import encode

    problem = encode(get_functional("PBE"), EC1)
    box = Box.from_bounds({"rs": (1.0, 3.0), "s": (0.0, 2.0)})
    tape_c = HC4Contractor(problem.negation, delta=1e-5, backend="tape")
    walk_c = HC4Contractor(problem.negation, delta=1e-5, backend="walk")
    for sub in box.split_all():
        assert_boxes_identical(tape_c.contract(sub), walk_c.contract(sub))
