"""Tests for the delta-complete branch-and-prune solver."""

import math

import pytest

from repro.expr import builder as b
from repro.expr.nodes import Var
from repro.solver.box import Box
from repro.solver.constraint import Atom, Conjunction
from repro.solver.icp import Budget, ICPSolver, SolverStatus

X = Var("x")
Y = Var("y")


def formula(*rels):
    return Conjunction.of(*[Atom.from_rel(r) for r in rels])


class TestDecisions:
    def test_trivially_sat(self):
        res = ICPSolver().solve(formula(X.le(100.0)), Box.from_bounds({"x": (0, 1)}))
        assert res.status is SolverStatus.DELTA_SAT
        assert 0.0 <= res.model["x"] <= 1.0

    def test_trivially_unsat(self):
        res = ICPSolver().solve(formula(X.ge(100.0)), Box.from_bounds({"x": (0, 1)}))
        assert res.status is SolverStatus.UNSAT
        assert res.model is None

    def test_nonlinear_sat(self):
        f = formula((X**2 + Y**2).le(1.0), (X + Y).ge(1.3))
        res = ICPSolver().solve(f, Box.from_bounds({"x": (-2, 2), "y": (-2, 2)}))
        assert res.status is SolverStatus.DELTA_SAT
        m = res.model
        assert m["x"] ** 2 + m["y"] ** 2 <= 1.0 + 1e-6
        assert m["x"] + m["y"] >= 1.3 - 1e-6

    def test_nonlinear_unsat(self):
        f = formula((X**2 + Y**2).le(1.0), (X + Y).ge(3.0))
        res = ICPSolver().solve(f, Box.from_bounds({"x": (-2, 2), "y": (-2, 2)}))
        assert res.status is SolverStatus.UNSAT

    def test_transcendental_unsat(self):
        f = formula(b.exp(X).le(0.5), X.ge(0.0))
        res = ICPSolver().solve(f, Box.from_bounds({"x": (-5, 5)}))
        assert res.status is SolverStatus.UNSAT

    def test_transcendental_sat_model_valid(self):
        f = formula(b.exp(X).le(0.5))
        res = ICPSolver().solve(f, Box.from_bounds({"x": (-5, 5)}))
        assert res.status is SolverStatus.DELTA_SAT
        assert math.exp(res.model["x"]) <= 0.5 + 1e-6

    def test_thin_feasible_region_found(self):
        # a near-measure-zero band: |x - pi| <= 1e-4
        band = b.abs_(b.sub(X, math.pi)).le(1e-4)
        res = ICPSolver(precision=1e-7).solve(
            formula(band), Box.from_bounds({"x": (0, 10)})
        )
        assert res.status is SolverStatus.DELTA_SAT
        assert res.model["x"] == pytest.approx(math.pi, abs=1e-3)

    def test_unsat_near_boundary_is_delta_sat(self):
        """delta-weakening: a margin thinner than delta yields delta-SAT."""
        solver = ICPSolver(delta=1e-2, precision=1e-6)
        # x >= 1e-3 is unsat on [-1, 0], but within delta of sat
        res = solver.solve(formula(X.ge(1e-3)), Box.from_bounds({"x": (-1.0, 0.0)}))
        assert res.status is SolverStatus.DELTA_SAT
        # the model satisfies the weakened formula, not the original:
        assert res.model["x"] < 1e-3

    def test_unsat_with_wide_margin_regardless_of_delta(self):
        solver = ICPSolver(delta=1e-2)
        res = solver.solve(formula(X.ge(1.0)), Box.from_bounds({"x": (-1.0, 0.0)}))
        assert res.status is SolverStatus.UNSAT

    def test_domain_missing_variable_rejected(self):
        with pytest.raises(ValueError):
            ICPSolver().solve(formula((X + Y).le(0.0)), Box.from_bounds({"x": (0, 1)}))


class TestBudget:
    def test_timeout_reported(self):
        # hard feasibility boundary + tiny budget
        f = formula((b.sin(X) * b.cos(Y)).ge(0.9999999))
        res = ICPSolver(use_probing=False).solve(
            f,
            Box.from_bounds({"x": (0, 10), "y": (0, 10)}),
            Budget(max_steps=3),
        )
        assert res.status is SolverStatus.TIMEOUT

    def test_step_accounting(self):
        f = formula(X.ge(100.0))
        res = ICPSolver().solve(f, Box.from_bounds({"x": (0, 1)}), Budget(max_steps=50))
        assert res.stats.boxes_processed <= 50

    def test_wall_clock_budget(self):
        f = formula((b.sin(b.exp(X)) ).ge(2.0))  # unsat but slow to prove by splitting
        res = ICPSolver(use_contraction=False, use_probing=False).solve(
            f,
            Box.from_bounds({"x": (0.0, 5.0)}),
            Budget(max_steps=10**9, max_seconds=0.05),
        )
        assert res.status in (SolverStatus.TIMEOUT, SolverStatus.UNSAT)

    def test_stats_populated(self):
        f = formula((X**2).le(0.5))
        res = ICPSolver().solve(f, Box.from_bounds({"x": (-1, 1)}))
        assert res.stats.boxes_processed >= 1
        assert res.stats.elapsed_seconds >= 0.0


class TestKnobs:
    def test_probing_short_circuits(self):
        f = formula(X.le(10.0))
        fast = ICPSolver(use_probing=True).solve(f, Box.from_bounds({"x": (0, 1)}))
        assert fast.stats.probe_hits == 1

    def test_no_probing_still_sat(self):
        f = formula(X.le(10.0))
        res = ICPSolver(use_probing=False).solve(f, Box.from_bounds({"x": (0, 1)}))
        assert res.status is SolverStatus.DELTA_SAT

    def test_contraction_ablation_more_steps(self):
        f = formula(b.exp(X).le(1e-6))
        domain = Box.from_bounds({"x": (-30.0, 30.0)})
        with_hc4 = ICPSolver(use_probing=False, use_contraction=True)
        without = ICPSolver(use_probing=False, use_contraction=False)
        r1 = with_hc4.solve(f, domain)
        r2 = without.solve(f, domain, Budget(max_steps=100_000))
        assert r1.status is r2.status is SolverStatus.DELTA_SAT
        assert r1.stats.boxes_processed <= r2.stats.boxes_processed

    def test_dfs_and_bfs_agree_on_status(self):
        f = formula((X**2 + Y**2).le(1.0), (X + Y).ge(3.0))
        domain = Box.from_bounds({"x": (-2, 2), "y": (-2, 2)})
        assert (
            ICPSolver(search="dfs").solve(f, domain).status
            is ICPSolver(search="bfs").solve(f, domain).status
        )

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            ICPSolver(precision=0.0)
        with pytest.raises(ValueError):
            ICPSolver(search="random")

    def test_contractor_cache_reused(self):
        solver = ICPSolver()
        f = formula(X.le(0.5))
        solver.solve(f, Box.from_bounds({"x": (0, 1)}))
        solver.solve(f, Box.from_bounds({"x": (0, 0.25)}))
        assert len(solver._contractors) == 1


class TestResultProperties:
    def test_flags(self):
        sat = ICPSolver().solve(formula(X.le(10.0)), Box.from_bounds({"x": (0, 1)}))
        unsat = ICPSolver().solve(formula(X.ge(10.0)), Box.from_bounds({"x": (0, 1)}))
        assert sat.is_sat and not sat.is_unsat and not sat.is_timeout
        assert unsat.is_unsat and not unsat.is_sat
