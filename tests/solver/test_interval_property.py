"""Property-based soundness tests for interval arithmetic.

The fundamental theorem of interval arithmetic: for every operation op and
every x in X (y in Y), op(x, y) is contained in OP(X, Y).  Violating this
would make the solver's UNSAT answers (and therefore every "verified" cell
of Table I) wrong, so these properties are the most safety-critical in the
suite.
"""

from __future__ import annotations

import math

from hypothesis import assume, given, settings, strategies as st

from repro.solver.interval import make

from tests.support import hyp_examples

bounds = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def interval_and_member(draw):
    a = draw(bounds)
    b = draw(bounds)
    lo, hi = min(a, b), max(a, b)
    t = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    x = lo + t * (hi - lo)
    x = min(max(x, lo), hi)
    return make(lo, hi), x


@given(interval_and_member(), interval_and_member())
@settings(max_examples=hyp_examples(300), deadline=None)
def test_add_sub_mul_containment(pair_a, pair_b):
    (A, a), (B, bb) = pair_a, pair_b
    assert (A + B).contains(a + bb)
    assert (A - B).contains(a - bb)
    assert (A * B).contains(a * bb)


@given(interval_and_member(), interval_and_member())
@settings(max_examples=hyp_examples(200), deadline=None)
def test_division_containment(pair_a, pair_b):
    (A, a), (B, bb) = pair_a, pair_b
    assume(bb != 0.0)
    quotient = a / bb
    assume(math.isfinite(quotient))
    assert (A / B).contains(quotient)


@given(interval_and_member())
@settings(max_examples=hyp_examples(300), deadline=None)
def test_unary_containment(pair):
    A, a = pair
    assert (-A).contains(-a)
    assert A.abs().contains(abs(a))
    assert A.cbrt().contains(math.copysign(abs(a) ** (1 / 3), a))
    assert A.atan().contains(math.atan(a))
    assert A.tanh().contains(math.tanh(a))
    assert A.erf().contains(math.erf(a))
    assert A.sin().contains(math.sin(a))
    assert A.cos().contains(math.cos(a))


@given(interval_and_member())
@settings(max_examples=hyp_examples(300), deadline=None)
def test_exp_log_containment(pair):
    A, a = pair
    if a < 700:
        assert A.exp().contains(math.exp(a))
    if a > 0:
        assert A.log().contains(math.log(a))
        assert A.sqrt().contains(math.sqrt(a))


def _safe_pow(a: float, p: float) -> float | None:
    try:
        value = a**p
    except (OverflowError, ZeroDivisionError):
        return None
    return value if math.isfinite(value) else None


@given(interval_and_member(), st.sampled_from([-3, -2, -1, 2, 3, 4, 5]))
@settings(max_examples=hyp_examples(300), deadline=None)
def test_integer_power_containment(pair, n):
    A, a = pair
    if n < 0:
        assume(a != 0.0)
    value = _safe_pow(a, n)
    assume(value is not None)
    assert A.pow_int(n).contains(value)


@given(interval_and_member(), st.sampled_from([0.5, 1.5, -0.5, 1 / 3, 2.5, -1.5]))
@settings(max_examples=hyp_examples(300), deadline=None)
def test_real_power_containment(pair, p):
    A, a = pair
    assume(a > 0.0)
    value = _safe_pow(a, p)
    assume(value is not None)
    assert A.pow_real(p).contains(value)


@given(interval_and_member())
@settings(max_examples=hyp_examples(200), deadline=None)
def test_lambertw_containment(pair):
    from scipy.special import lambertw

    A, a = pair
    assume(a >= -1.0 / math.e + 1e-9)
    value = float(lambertw(a).real)
    assert A.lambertw().contains(value)


@given(interval_and_member(), interval_and_member())
@settings(max_examples=hyp_examples(200), deadline=None)
def test_intersect_hull_laws(pair_a, pair_b):
    (A, a), (B, _) = pair_a, pair_b
    inter = A.intersect(B)
    hull = A.hull(B)
    assert hull.contains(a)
    if inter.contains(a):
        assert A.contains(a) and B.contains(a)
    if B.contains(a):
        assert inter.contains(a)


@given(interval_and_member())
@settings(max_examples=hyp_examples(200), deadline=None)
def test_mid_is_member(pair):
    A, _ = pair
    assert A.contains(A.mid())
