"""Tests for atoms, conjunctions, and negation."""

import pytest

from repro.expr import builder as b
from repro.expr.nodes import Var
from repro.solver.constraint import Atom, Conjunction, negate_condition

X = Var("x")
Y = Var("y")


class TestAtom:
    def test_from_rel_moves_everything_left(self):
        atom = Atom.from_rel(X.le(3.0))
        assert atom.op == "<="
        assert atom.holds_at({"x": 2.0})
        assert not atom.holds_at({"x": 4.0})

    def test_from_rel_rejects_equality(self):
        with pytest.raises(ValueError):
            Atom.from_rel(X.eq(0.0))

    def test_negate(self):
        atom = Atom.from_rel(X.le(0.0))
        neg = atom.negate()
        assert neg.op == ">"
        assert neg.holds_at({"x": 1.0})
        assert not neg.holds_at({"x": -1.0})

    def test_negate_involution_semantics(self):
        atom = Atom.from_rel(X.ge(0.0))
        again = atom.negate().negate()
        for xv in (-1.0, 0.0, 1.0):
            assert atom.holds_at({"x": xv}) == again.holds_at({"x": xv})

    def test_normalized_converts_ge_to_le(self):
        atom = Atom.from_rel(X.ge(2.0)).normalized()
        assert atom.op in ("<=", "<")
        assert atom.holds_at({"x": 3.0})
        assert not atom.holds_at({"x": 1.0})

    def test_normalized_le_is_identity(self):
        atom = Atom.from_rel(X.le(0.0))
        assert atom.normalized() is atom

    def test_holds_at_nan_is_false(self):
        atom = Atom(residual=b.log(X), op="<=")
        assert not atom.holds_at({"x": -1.0})

    def test_holds_at_with_tolerance(self):
        atom = Atom.from_rel(X.le(0.0))
        assert atom.holds_at({"x": 0.5}, tol=1.0)

    def test_strict_vs_nonstrict_at_boundary(self):
        le = Atom.from_rel(X.le(0.0))
        lt = Atom.from_rel(X.lt(0.0))
        assert le.holds_at({"x": 0.0})
        assert not lt.holds_at({"x": 0.0})


class TestConjunction:
    def test_of_mixed_parts(self):
        f = Conjunction.of(
            X.le(1.0), Atom.from_rel(Y.ge(0.0)), Conjunction.of(X.ge(-1.0))
        )
        assert len(f) == 3

    def test_of_rejects_junk(self):
        with pytest.raises(TypeError):
            Conjunction.of("x <= 0")

    def test_holds_at_all_atoms(self):
        f = Conjunction.of(X.le(1.0), X.ge(-1.0))
        assert f.holds_at({"x": 0.0})
        assert not f.holds_at({"x": 2.0})
        assert not f.holds_at({"x": -2.0})

    def test_free_var_names(self):
        f = Conjunction.of(X.le(Y))
        assert f.free_var_names() == {"x", "y"}

    def test_max_operation_count(self):
        f = Conjunction.of(b.exp(b.exp(X)).le(0.0), X.le(0.0))
        assert f.max_operation_count() >= 2

    def test_iteration(self):
        f = Conjunction.of(X.le(0.0), Y.le(0.0))
        assert all(isinstance(a, Atom) for a in f)


class TestNegateCondition:
    def test_single_atom_condition(self):
        psi = X.ge(0.0)  # condition: x >= 0
        neg = negate_condition(psi)
        assert len(neg) == 1
        assert neg.holds_at({"x": -1.0})   # violation of psi
        assert not neg.holds_at({"x": 1.0})

    def test_rejects_tuples(self):
        with pytest.raises(TypeError):
            negate_condition((X.ge(0.0), X.le(1.0)))
