"""Soundness of the sin/cos interval enclosures, including extreme arguments.

Regression suite for an unsoundness in ``Interval._trig_range``: the
critical points ``pi/2 + k*pi`` were enumerated in floating point, so for
large-magnitude endpoints the enumerated "extrema" drifted by far more
than the outward rounding and the returned enclosure could *exclude* the
true maximum -- an unsound interval, the one thing the solver's numeric
core must never produce.  Large arguments now fall back to the trivially
sound [-1, 1].
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.interval import EMPTY, Interval, make
from tests.support import hyp_examples

#: slack for comparing against libm's sin/cos (<= 1 ulp error) on top of
#: the enclosure's own 1-ulp outward rounding
TOL = 4e-16


class TestLargeArgumentRegression:
    def test_large_magnitude_witness_contained(self):
        # pre-fix: the enumerated "critical point" for this interval was
        # garbage and the enclosure was [-0.73, -0.31], excluding
        # sin(4543939896666394.0) = -0.9679... by 0.23
        iv = make(4543939896666393.0, 4543939896666395.0).sin()
        assert iv.contains(math.sin(4543939896666394.0))

    def test_large_magnitude_falls_back_to_unit(self):
        iv = make(2.0**53, 2.0**53 + 4.0).sin()
        assert (iv.lo, iv.hi) == (-1.0, 1.0)
        iv = make(-(2.0**53) - 4.0, -(2.0**53)).cos()
        assert (iv.lo, iv.hi) == (-1.0, 1.0)

    def test_huge_point_interval_sound(self):
        x = 1e300
        iv = make(x, x).sin()
        assert iv.contains(math.sin(x)) or (iv.lo, iv.hi) == (-1.0, 1.0)

    def test_infinite_endpoints(self):
        assert (make(0.0, math.inf).sin().lo, make(0.0, math.inf).sin().hi) == (-1.0, 1.0)
        assert (make(-math.inf, 0.0).cos().lo, make(-math.inf, 0.0).cos().hi) == (-1.0, 1.0)


class TestSmallArgumentTightness:
    def test_monotone_piece_is_endpoint_tight(self):
        iv = make(0.0, 1.0).sin()
        assert iv.lo <= 0.0 <= iv.hi
        assert abs(iv.hi - math.sin(1.0)) < 1e-15

    def test_interior_maximum_is_exact(self):
        assert make(0.0, 4.0).sin().hi == 1.0
        assert make(-1.0, 1.0).cos().hi == 1.0
        assert make(3.0, 3.5).cos().lo == -1.0

    def test_empty_propagates(self):
        assert EMPTY.sin().is_empty()
        assert EMPTY.cos().is_empty()


@st.composite
def trig_intervals(draw):
    """Intervals across extreme magnitude scales, widths within a period."""
    exponent = draw(st.floats(min_value=-10.0, max_value=200.0))
    sign = draw(st.sampled_from([-1.0, 1.0]))
    base = sign * (2.0**exponent) * (1.0 + draw(st.floats(0.0, 1.0)))
    width = draw(st.floats(min_value=0.0, max_value=7.0))
    lo, hi = (base, base + width) if sign > 0 else (base - width, base)
    offset = draw(st.floats(min_value=0.0, max_value=1.0))
    sample = lo + offset * (hi - lo)
    if not (lo <= sample <= hi):
        sample = lo
    return lo, hi, sample


class TestEnclosureProperty:
    @settings(max_examples=hyp_examples(300), deadline=None)
    @given(trig_intervals())
    def test_sin_enclosure_contains_sampled_points(self, case):
        lo, hi, sample = case
        iv = make(lo, hi).sin()
        value = math.sin(sample)
        assert iv.lo - TOL <= value <= iv.hi + TOL, (lo, hi, sample, value, iv)

    @settings(max_examples=hyp_examples(300), deadline=None)
    @given(trig_intervals())
    def test_cos_enclosure_contains_sampled_points(self, case):
        lo, hi, sample = case
        iv = make(lo, hi).cos()
        value = math.cos(sample)
        assert iv.lo - TOL <= value <= iv.hi + TOL, (lo, hi, sample, value, iv)

    @settings(max_examples=hyp_examples(200), deadline=None)
    @given(trig_intervals())
    def test_enclosure_within_unit_range(self, case):
        lo, hi, _ = case
        for iv in (make(lo, hi).sin(), make(lo, hi).cos()):
            assert isinstance(iv, Interval)
            assert -1.0 <= iv.lo <= iv.hi <= 1.0
