"""Property-based tests for the ICP solver against a brute-force oracle.

For random low-degree polynomial constraints on a small box we can decide
satisfiability by dense sampling plus the solver's own guarantees:

* if the solver says UNSAT, no sampled point may satisfy the formula;
* if the solver says delta-SAT with a model from probing, the model must
  satisfy the formula exactly;
* contraction must never remove sampled solutions.
"""

from __future__ import annotations

import itertools

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.expr import builder as b
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Var
from repro.solver.box import Box
from repro.solver.constraint import Atom, Conjunction
from repro.solver.contractor import HC4Contractor
from repro.solver.icp import Budget, ICPSolver, SolverStatus

from tests.support import hyp_examples

X = Var("hx")
Y = Var("hy")

coef = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False)


@st.composite
def quadratic_atoms(draw):
    """c0 + c1 x + c2 y + c3 x^2 + c4 y^2 + c5 x y <= 0."""
    c = [draw(coef) for _ in range(6)]
    expr = b.add(
        c[0],
        b.mul(c[1], X),
        b.mul(c[2], Y),
        b.mul(c[3], b.pow_(X, 2.0)),
        b.mul(c[4], b.pow_(Y, 2.0)),
        b.mul(c[5], X, Y),
    )
    return Atom.from_rel(expr.le(0.0))


def sample_points(n=21):
    xs = np.linspace(-1.0, 1.0, n)
    return [
        {"hx": float(a), "hy": float(bb)}
        for a, bb in itertools.product(xs, xs)
    ]


DOMAIN = Box.from_bounds({"hx": (-1.0, 1.0), "hy": (-1.0, 1.0)})
POINTS = sample_points()


@given(atom=quadratic_atoms())
@settings(max_examples=hyp_examples(60), deadline=None)
def test_unsat_answers_have_no_sampled_solutions(atom):
    f = Conjunction.of(atom)
    res = ICPSolver(delta=1e-9).solve(f, DOMAIN, Budget(max_steps=4000))
    if res.status is SolverStatus.UNSAT:
        for pt in POINTS:
            assert not f.holds_at(pt), (
                f"solver claimed UNSAT but {pt} satisfies the formula"
            )


@given(atom=quadratic_atoms())
@settings(max_examples=hyp_examples(60), deadline=None)
def test_sampled_solution_implies_sat(atom):
    f = Conjunction.of(atom)
    # if a sampled point clearly satisfies the formula (with margin), the
    # solver must not answer UNSAT
    margin_points = [
        pt for pt in POINTS if evaluate(atom.residual, pt) <= -1e-3
    ]
    assume(margin_points)
    res = ICPSolver().solve(f, DOMAIN, Budget(max_steps=4000))
    assert res.status is SolverStatus.DELTA_SAT


@given(atom=quadratic_atoms())
@settings(max_examples=hyp_examples(60), deadline=None)
def test_probed_models_are_exact(atom):
    f = Conjunction.of(atom)
    res = ICPSolver().solve(f, DOMAIN, Budget(max_steps=2000))
    if res.status is SolverStatus.DELTA_SAT and res.stats.probe_hits:
        assert f.holds_at(res.model)


@given(atom=quadratic_atoms())
@settings(max_examples=hyp_examples(60), deadline=None)
def test_contraction_preserves_sampled_solutions(atom):
    f = Conjunction.of(atom)
    contractor = HC4Contractor(f, delta=0.0)
    contracted = contractor.contract(DOMAIN, rounds=3)
    for pt in POINTS:
        if f.holds_at(pt):
            assert contracted.contains_point(pt), f"contraction lost {pt}"


@given(atom=quadratic_atoms(), data=st.data())
@settings(max_examples=hyp_examples(40), deadline=None)
def test_search_order_does_not_change_verdict(atom, data):
    f = Conjunction.of(atom)
    r_bfs = ICPSolver(search="bfs").solve(f, DOMAIN, Budget(max_steps=4000))
    r_dfs = ICPSolver(search="dfs").solve(f, DOMAIN, Budget(max_steps=4000))
    decided = {SolverStatus.UNSAT, SolverStatus.DELTA_SAT}
    if r_bfs.status in decided and r_dfs.status in decided:
        assert r_bfs.status is r_dfs.status
