"""Property-based soundness tests for the Newton (mean-value) contractor.

The safety property: contraction may shrink a box but must NEVER drop a
point that satisfies the (delta-weakened) constraint.  Exercised over
random cubics and exp-quadratics whose true solution sets are easy to
sample.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.expr import builder as b
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Var
from repro.solver import Atom, Box, Conjunction
from repro.solver.newton import NewtonContractor

from tests.support import hyp_examples

X = Var("x", nonneg=True)

coeff = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)


def _cubic(c3, c2, c1, c0):
    return b.add(
        b.mul(c3, b.pow_(X, 3.0)),
        b.mul(c2, b.pow_(X, 2.0)),
        b.mul(c1, X),
        b.as_expr(c0),
    )


@settings(max_examples=hyp_examples(150), deadline=None)
@given(c3=coeff, c2=coeff, c1=coeff, c0=coeff, data=st.data())
def test_cubic_contraction_keeps_solutions(c3, c2, c1, c0, data):
    g = _cubic(c3, c2, c1, c0)
    formula = Conjunction.of(Atom(g, "<="))
    box = Box.from_bounds({"x": (0.0, 4.0)})
    nc = NewtonContractor(formula, delta=1e-9)
    out = nc.contract(box, rounds=4)

    # sample candidate points; all true solutions must survive
    xs = data.draw(
        st.lists(
            st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
            min_size=5,
            max_size=12,
        )
    )
    for x in xs:
        value = evaluate(g, {"x": x})
        if value <= 0.0:
            assert not out.is_empty(), (c3, c2, c1, c0, x)
            assert out["x"].lo <= x <= out["x"].hi or math.isclose(
                out["x"].lo, x, abs_tol=1e-9
            ) or math.isclose(out["x"].hi, x, abs_tol=1e-9), (
                c3, c2, c1, c0, x, out["x"],
            )


@settings(max_examples=hyp_examples(80), deadline=None)
@given(a=coeff, c=coeff, data=st.data())
def test_exp_constraint_contraction_sound(a, c, data):
    # g = exp(a*x) + c <= 0
    g = b.add(b.exp(b.mul(a, X)), b.as_expr(c))
    formula = Conjunction.of(Atom(g, "<="))
    box = Box.from_bounds({"x": (0.0, 3.0)})
    nc = NewtonContractor(formula, delta=1e-9)
    out = nc.contract(box, rounds=4)

    xs = data.draw(
        st.lists(
            st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
            min_size=4,
            max_size=10,
        )
    )
    for x in xs:
        value = evaluate(g, {"x": x})
        if not math.isnan(value) and value <= 0.0:
            assert not out.is_empty()
            assert out["x"].lo - 1e-9 <= x <= out["x"].hi + 1e-9


@settings(max_examples=hyp_examples(60), deadline=None)
@given(c2=coeff, c1=coeff, c0=coeff)
def test_empty_result_implies_truly_infeasible(c2, c1, c0):
    # if the contractor empties the box, a fine scan must find no solution
    g = _cubic(0.0, c2, c1, c0)
    formula = Conjunction.of(Atom(g, "<="))
    box = Box.from_bounds({"x": (0.0, 4.0)})
    nc = NewtonContractor(formula, delta=1e-9)
    out = nc.contract(box, rounds=6)
    if out.is_empty():
        for i in range(401):
            x = 4.0 * i / 400
            assert evaluate(g, {"x": x}) > 0.0, (c2, c1, c0, x)
