"""Solver behaviour on piecewise (ITE) constraints.

SCAN-style functionals put if-then-else terms inside solver formulas; the
contractor must stay *sound* across undecided conditions (hull semantics)
and *exact* once a box decides the branch.
"""


import pytest

from repro.expr import builder as b
from repro.expr.nodes import Var
from repro.solver.box import Box
from repro.solver.constraint import Atom, Conjunction
from repro.solver.contractor import enclosure
from repro.solver.icp import Budget, ICPSolver, SolverStatus

X = Var("x")

# f(x) = x^2 for x < 1 else 2x - 1  (continuous at the switch, like SCAN's f)
PIECEWISE = b.ite(X.lt(1.0), b.pow_(X, 2.0), b.sub(b.mul(2.0, X), 1.0))


class TestEnclosures:
    def test_decided_below(self):
        enc = enclosure(PIECEWISE, Box.from_bounds({"x": (-0.5, 0.5)}))
        assert enc.lo >= -1e-12 and enc.hi <= 0.25 + 1e-9

    def test_decided_above(self):
        enc = enclosure(PIECEWISE, Box.from_bounds({"x": (2.0, 3.0)}))
        assert enc.lo == pytest.approx(3.0, abs=1e-9)
        assert enc.hi == pytest.approx(5.0, abs=1e-9)

    def test_undecided_takes_hull(self):
        enc = enclosure(PIECEWISE, Box.from_bounds({"x": (0.5, 2.0)}))
        # hull of [0.25, 4] (quadratic part) and [0, 3] (linear part)
        assert enc.contains(0.25) and enc.contains(3.0)

    def test_point_containment_across_switch(self):
        from repro.expr.evaluator import evaluate
        box = Box.from_bounds({"x": (0.0, 2.0)})
        enc = enclosure(PIECEWISE, box)
        for xv in (0.0, 0.5, 0.999, 1.0, 1.5, 2.0):
            assert enc.contains(evaluate(PIECEWISE, {"x": xv}))


class TestSolving:
    def test_unsat_on_decided_region(self):
        # on x in [2, 3], f = 2x-1 in [3, 5]: f <= 2 is unsat
        f = Conjunction.of(Atom.from_rel(PIECEWISE.le(2.0)))
        res = ICPSolver().solve(f, Box.from_bounds({"x": (2.0, 3.0)}))
        assert res.status is SolverStatus.UNSAT

    def test_sat_across_switch(self):
        # f <= 0.1 holds near x ~ 0
        f = Conjunction.of(Atom.from_rel(PIECEWISE.le(0.1)))
        res = ICPSolver().solve(f, Box.from_bounds({"x": (-1.0, 3.0)}))
        assert res.status is SolverStatus.DELTA_SAT
        assert res.model["x"] < 1.0

    def test_unsat_straddling_switch(self):
        # min over [0.5, 3] is 0.25 at x=0.5: f <= 0.2 unsat
        f = Conjunction.of(Atom.from_rel(PIECEWISE.le(0.2)))
        res = ICPSolver().solve(
            f, Box.from_bounds({"x": (0.5, 3.0)}), Budget(max_steps=20_000)
        )
        assert res.status is SolverStatus.UNSAT

    def test_scan_switch_formula_solves(self):
        """The real SCAN switching function as a solver constraint."""
        from repro.functionals.scan import f_alpha_c
        from repro.pysym import lift

        alpha = Var("alpha", nonneg=True)
        f_expr = lift(f_alpha_c, alpha)
        # f_c(alpha) >= 0.5 only for alpha well below 1
        formula = Conjunction.of(Atom.from_rel(f_expr.ge(0.5)))
        res = ICPSolver().solve(
            formula, Box.from_bounds({"alpha": (0.0, 5.0)}), Budget(max_steps=5000)
        )
        assert res.status is SolverStatus.DELTA_SAT
        assert res.model["alpha"] < 1.0

        # f_c(alpha) >= 1.5 never happens (f <= 1): provably UNSAT on any
        # branch-decided region
        formula2 = Conjunction.of(Atom.from_rel(f_expr.ge(1.5)))
        res2 = ICPSolver().solve(
            formula2, Box.from_bounds({"alpha": (0.0, 0.9)}), Budget(max_steps=20_000)
        )
        assert res2.status is SolverStatus.UNSAT

    def test_switch_point_yields_spurious_delta_sat(self):
        """Across the singular switch the hull enclosure blows up, so the
        solver can only answer delta-SAT with a spurious model -- the
        mechanism behind the paper's 'inconclusive' results near piecewise
        boundaries (and SCAN's difficulty in general)."""
        from repro.functionals.scan import f_alpha_c
        from repro.pysym import lift

        alpha = Var("alpha", nonneg=True)
        f_expr = lift(f_alpha_c, alpha)
        formula = Conjunction.of(Atom.from_rel(f_expr.ge(1.5)))
        res = ICPSolver().solve(
            formula, Box.from_bounds({"alpha": (0.9, 1.1)}), Budget(max_steps=20_000)
        )
        assert res.status is SolverStatus.DELTA_SAT
        # ... and the model does not actually satisfy the formula
        assert not formula.holds_at(res.model)
