"""Tests for the HC4 forward/backward contractor."""

import math

import pytest

from repro.expr import builder as b
from repro.expr.nodes import Var
from repro.solver.box import Box
from repro.solver.constraint import Atom, Conjunction
from repro.solver.contractor import HC4Contractor, enclosure, interval_eval

X = Var("x")
Y = Var("y")
S = Var("s", nonneg=True)


def contract(expr_rel, bounds, delta=0.0, rounds=3):
    formula = Conjunction.of(Atom.from_rel(expr_rel))
    contractor = HC4Contractor(formula, delta=delta)
    return contractor.contract(Box.from_bounds(bounds), rounds=rounds)


class TestForwardEnclosure:
    def test_linear(self):
        box = Box.from_bounds({"x": (0.0, 1.0)})
        out = enclosure(b.add(b.mul(2.0, X), 1.0), box)
        assert out.lo == pytest.approx(1.0, abs=1e-12)
        assert out.hi == pytest.approx(3.0, abs=1e-12)

    def test_nonlinear(self):
        box = Box.from_bounds({"x": (-1.0, 2.0)})
        out = enclosure(b.pow_(X, 2.0), box)
        assert out.lo == 0.0
        assert out.hi >= 4.0

    def test_transcendental(self):
        box = Box.from_bounds({"x": (0.0, 1.0)})
        out = enclosure(b.exp(X), box)
        assert out.contains(1.0) and out.contains(math.e)

    def test_containment_on_samples(self):
        expr = b.exp(-X) * b.log(1.0 + Y**2) + b.atan(X * Y)
        box = Box.from_bounds({"x": (-1.0, 1.0), "y": (0.5, 2.0)})
        out = enclosure(expr, box)
        from repro.expr.evaluator import evaluate
        for pt in box.sample_grid(5):
            assert out.contains(evaluate(expr, pt))

    def test_ite_decided_condition(self):
        e = b.ite(X.ge(0.0), b.const(1.0), b.const(-1.0))
        assert enclosure(e, Box.from_bounds({"x": (1.0, 2.0)})).contains(1.0)
        assert enclosure(e, Box.from_bounds({"x": (-2.0, -1.0)})).contains(-1.0)

    def test_ite_undecided_hull(self):
        e = b.ite(X.ge(0.0), b.const(1.0), b.const(-1.0))
        out = enclosure(e, Box.from_bounds({"x": (-1.0, 1.0)}))
        assert out.contains(1.0) and out.contains(-1.0)

    def test_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            enclosure(X + Y, Box.from_bounds({"x": (0.0, 1.0)}))

    def test_interval_eval_returns_all_nodes(self):
        e = b.exp(X) + 1.0
        box = Box.from_bounds({"x": (0.0, 1.0)})
        ivals = interval_eval(e, box)
        assert len(ivals) == e.dag_size()


class TestBackwardContraction:
    def test_linear_contraction(self):
        # x + 2 <= 0  =>  x <= -2
        out = contract(b.add(X, 2.0).le(0.0), {"x": (-10.0, 10.0)})
        assert out["x"].hi == pytest.approx(-2.0, abs=1e-6)
        assert out["x"].lo == -10.0

    def test_two_sided_via_two_atoms(self):
        formula = Conjunction.of(
            Atom.from_rel(X.ge(1.0)), Atom.from_rel(X.le(3.0))
        )
        contractor = HC4Contractor(formula, delta=0.0)
        out = contractor.contract(Box.from_bounds({"x": (-10.0, 10.0)}))
        assert out["x"].lo == pytest.approx(1.0, abs=1e-9)
        assert out["x"].hi == pytest.approx(3.0, abs=1e-9)

    def test_empty_when_infeasible(self):
        out = contract(X.ge(20.0), {"x": (-10.0, 10.0)})
        assert out.is_empty()

    def test_exp_inversion(self):
        # exp(x) <= 1  =>  x <= 0
        out = contract(b.exp(X).le(1.0), {"x": (-5.0, 5.0)})
        assert out["x"].hi == pytest.approx(0.0, abs=1e-9)

    def test_log_inversion(self):
        # log(x) >= 0  =>  x >= 1
        out = contract(b.log(X).ge(0.0), {"x": (0.1, 10.0)})
        assert out["x"].lo == pytest.approx(1.0, rel=1e-9)

    def test_square_inversion_keeps_both_signs(self):
        # x^2 <= 4  =>  x in [-2, 2]
        out = contract(b.pow_(X, 2.0).le(4.0), {"x": (-10.0, 10.0)})
        assert out["x"].lo == pytest.approx(-2.0, abs=1e-6)
        assert out["x"].hi == pytest.approx(2.0, abs=1e-6)

    def test_square_inversion_with_sign_info(self):
        out = contract(b.pow_(X, 2.0).le(4.0), {"x": (0.0, 10.0)})
        assert out["x"].lo == 0.0
        assert out["x"].hi == pytest.approx(2.0, abs=1e-6)

    def test_odd_power_inversion(self):
        # x^3 >= 8  =>  x >= 2
        out = contract(b.pow_(X, 3.0).ge(8.0), {"x": (-10.0, 10.0)})
        assert out["x"].lo == pytest.approx(2.0, rel=1e-6)

    def test_fractional_power_inversion(self):
        # s^0.5 <= 2  =>  s <= 4
        out = contract(b.pow_(S, 0.5).le(2.0), {"s": (0.0, 100.0)})
        assert out["s"].hi == pytest.approx(4.0, rel=1e-6)

    def test_reciprocal_inversion(self):
        # 1/x <= 0.5 with x > 0  =>  x >= 2
        out = contract(b.pow_(X, -1.0).le(0.5), {"x": (0.1, 100.0)})
        assert out["x"].lo == pytest.approx(2.0, rel=1e-6)

    def test_abs_inversion(self):
        out = contract(b.abs_(X).le(3.0), {"x": (-10.0, 10.0)})
        assert out["x"].lo == pytest.approx(-3.0, abs=1e-6)
        assert out["x"].hi == pytest.approx(3.0, abs=1e-6)

    def test_atan_inversion(self):
        out = contract(b.atan(X).le(0.0), {"x": (-10.0, 10.0)})
        assert out["x"].hi == pytest.approx(0.0, abs=1e-9)

    def test_tanh_inversion(self):
        out = contract(b.tanh(X).ge(0.5), {"x": (-5.0, 5.0)})
        assert out["x"].lo == pytest.approx(math.atanh(0.5), rel=1e-6)

    def test_lambertw_inversion(self):
        # W(x) >= 1  =>  x >= e
        out = contract(b.lambertw(X).ge(1.0), {"x": (0.0, 100.0)})
        assert out["x"].lo == pytest.approx(math.e, rel=1e-6)

    def test_multivariate(self):
        # x + y <= 0 with y >= 5  =>  x <= -5
        formula = Conjunction.of(
            Atom.from_rel(b.add(X, Y).le(0.0)), Atom.from_rel(Y.ge(5.0))
        )
        contractor = HC4Contractor(formula, delta=0.0)
        out = contractor.contract(Box.from_bounds({"x": (-10.0, 10.0), "y": (-10.0, 10.0)}))
        assert out["x"].hi == pytest.approx(-5.0, abs=1e-6)

    def test_soundness_no_solution_lost(self):
        """Points satisfying the formula must survive contraction."""
        expr = b.exp(-X) * (1.0 + Y**2) - 2.0
        formula = Conjunction.of(Atom.from_rel(expr.le(0.0)))
        contractor = HC4Contractor(formula, delta=0.0)
        box = Box.from_bounds({"x": (-2.0, 2.0), "y": (-2.0, 2.0)})
        out = contractor.contract(box)
        from repro.expr.evaluator import evaluate
        for pt in box.sample_grid(9):
            if evaluate(expr, pt) <= 0.0:
                assert out.contains_point(pt), f"lost solution {pt}"

    def test_delta_weakening_keeps_near_solutions(self):
        # with delta = 1, x <= -2 relaxes to x <= -1
        formula = Conjunction.of(Atom.from_rel(b.add(X, 2.0).le(0.0)))
        contractor = HC4Contractor(formula, delta=1.0)
        out = contractor.contract(Box.from_bounds({"x": (-10.0, 10.0)}))
        assert out["x"].hi >= -1.0 - 1e-9

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            HC4Contractor(Conjunction.of(Atom.from_rel(X.le(0.0))), delta=-1.0)


class TestCertainlySat:
    def test_whole_box_satisfies(self):
        formula = Conjunction.of(Atom.from_rel(X.le(100.0)))
        contractor = HC4Contractor(formula, delta=0.0)
        assert contractor.certainly_sat(Box.from_bounds({"x": (0.0, 1.0)}))

    def test_partial_box_not_certain(self):
        formula = Conjunction.of(Atom.from_rel(X.le(0.5)))
        contractor = HC4Contractor(formula, delta=0.0)
        assert not contractor.certainly_sat(Box.from_bounds({"x": (0.0, 1.0)}))

    def test_stats_counters_move(self):
        formula = Conjunction.of(Atom.from_rel(b.exp(X).le(1.0)))
        contractor = HC4Contractor(formula, delta=1e-9)
        contractor.contract(Box.from_bounds({"x": (-1.0, 1.0)}))
        assert contractor.stats.forward_passes >= 1
