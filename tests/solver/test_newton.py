"""Tests for the first-order mean-value (interval Newton) contractor."""

import pytest

from repro.expr import builder as b
from repro.expr.nodes import Var
from repro.solver import Atom, Box, Budget, Conjunction, ICPSolver
from repro.solver.newton import NewtonContractor, _halfline, _interval_minus
from repro.solver.interval import EMPTY, make

X = Var("x", nonneg=True)
Y = Var("y", nonneg=True)


def _formula(residual, op="<="):
    return Conjunction.of(Atom(residual, op))


def _box(**bounds):
    return Box.from_bounds(bounds)


class TestHalfline:
    def test_positive_slope(self):
        hl = _halfline(2.0, 4.0)  # 2d > 4 -> d > 2
        assert hl.lo == pytest.approx(2.0)
        assert hl.hi == float("inf")

    def test_negative_slope(self):
        hl = _halfline(-2.0, 4.0)  # -2d > 4 -> d < -2
        assert hl.hi == pytest.approx(-2.0)
        assert hl.lo == float("-inf")

    def test_zero_slope_never(self):
        assert _halfline(0.0, 4.0).is_empty()  # 0 > 4 never

    def test_zero_slope_always(self):
        hl = _halfline(0.0, -1.0)  # 0 > -1 always
        assert hl.lo == float("-inf") and hl.hi == float("inf")


class TestIntervalMinus:
    def test_no_removal(self):
        assert _interval_minus(make(0, 1), EMPTY) == make(0, 1)

    def test_full_removal(self):
        assert _interval_minus(make(0, 1), make(-1, 2)).is_empty()

    def test_cut_left(self):
        out = _interval_minus(make(0, 4), make(-1, 2))
        assert (out.lo, out.hi) == (2, 4)

    def test_cut_right(self):
        out = _interval_minus(make(0, 4), make(3, 9))
        assert (out.lo, out.hi) == (0, 3)

    def test_interior_removal_keeps_hull(self):
        # sound but lossless subtraction is impossible in one interval
        out = _interval_minus(make(0, 4), make(1, 2))
        assert (out.lo, out.hi) == (0, 4)


class TestContractorOnPolynomials:
    def test_proves_positive_quadratic_unsat(self):
        # x^2 - 2x + 1.5 has minimum 0.5 > 0: 'residual <= 0' is infeasible
        g = b.add(b.mul(X, X), b.mul(-2.0, X), 1.5)
        nc = NewtonContractor(_formula(g))
        out = nc.contract(_box(x=(0.0, 4.0)), rounds=8)
        assert out.is_empty()

    def test_narrows_linear_constraint(self):
        # x - 2 <= 0 on [0, 4]: Newton should cut (2, 4] away
        g = b.sub(X, 2.0)
        nc = NewtonContractor(_formula(g))
        out = nc.contract(_box(x=(0.0, 4.0)), rounds=4)
        # the cut lands at 2 + delta (the solver's delta-weakening)
        assert out["x"].hi == pytest.approx(2.0, abs=1e-4)
        assert out["x"].lo == pytest.approx(0.0)

    def test_keeps_feasible_region(self):
        # x^2 - 1 <= 0: feasible exactly on [0, 1] (x nonneg box)
        g = b.sub(b.mul(X, X), 1.0)
        nc = NewtonContractor(_formula(g))
        out = nc.contract(_box(x=(0.0, 4.0)), rounds=8)
        assert not out.is_empty()
        assert out["x"].lo == pytest.approx(0.0)
        assert out["x"].hi == pytest.approx(1.0, abs=1e-2)

    def test_soundness_never_drops_solutions(self):
        # all true solutions of x^2 <= 2 must survive contraction
        g = b.sub(b.mul(X, X), 2.0)
        nc = NewtonContractor(_formula(g))
        out = nc.contract(_box(x=(0.0, 4.0)), rounds=8)
        for x in (0.0, 0.5, 1.0, 1.4142):
            assert out["x"].contains(x), x

    def test_two_variables(self):
        # x + y - 1 <= 0 on [0,4]^2: each axis narrows to [0, 1]
        g = b.add(X, Y, -1.0)
        nc = NewtonContractor(_formula(g))
        out = nc.contract(_box(x=(0.0, 4.0), y=(0.0, 4.0)), rounds=4)
        assert out["x"].hi == pytest.approx(1.0, abs=1e-4)
        assert out["y"].hi == pytest.approx(1.0, abs=1e-4)

    def test_point_interval_untouched(self):
        g = b.sub(X, 2.0)
        nc = NewtonContractor(_formula(g))
        box = _box(x=(3.0, 3.0))
        # x = 3 violates, but a point interval is left for the prune step
        assert nc.contract(box) == box

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            NewtonContractor(_formula(b.sub(X, 1.0)), delta=-1.0)

    def test_stats_accumulate(self):
        g = b.sub(X, 2.0)
        nc = NewtonContractor(_formula(g))
        nc.contract(_box(x=(0.0, 4.0)))
        assert nc.stats.projections >= 1
        assert nc.stats.narrowed >= 1


class TestContractorWithTranscendentals:
    def test_exp_constraint(self):
        # exp(x) - 2 <= 0: feasible for x <= ln 2
        g = b.sub(b.exp(X), 2.0)
        nc = NewtonContractor(_formula(g))
        out = nc.contract(_box(x=(0.0, 4.0)), rounds=8)
        import math

        assert out["x"].hi == pytest.approx(math.log(2.0), abs=1e-2)

    def test_log_partiality_is_handled(self):
        # log(x - 1) <= 0 with box straddling the domain edge: the slice at
        # x = lo leaves log's domain; contractor must skip, not crash
        g = b.log(b.sub(X, 1.0))
        nc = NewtonContractor(_formula(g))
        out = nc.contract(_box(x=(0.0, 4.0)))
        assert not out.is_empty()
        assert out["x"].contains(1.5)  # log(0.5) < 0: a true solution


class TestSolverIntegration:
    def test_use_newton_flag(self):
        solver = ICPSolver(use_newton=True)
        g = b.add(b.mul(X, X), b.mul(-2.0, X), 1.5)
        result = solver.solve(_formula(g), _box(x=(0.0, 4.0)), Budget(max_steps=100))
        assert result.is_unsat

    def test_same_verdicts_with_and_without(self):
        # Newton is an accelerator, not a semantics change
        cases = [
            (b.add(b.mul(X, X), b.mul(-2.0, X), 1.5), "unsat"),
            (b.add(b.mul(X, X), b.mul(-2.0, X), 0.5), "delta-sat"),
            (b.sub(b.exp(X), 0.5), "unsat"),  # exp(x) >= 1 > 0.5 on x >= 0
        ]
        for residual, expected in cases:
            for newton in (False, True):
                solver = ICPSolver(use_newton=newton)
                result = solver.solve(
                    _formula(residual), _box(x=(0.0, 4.0)), Budget(max_steps=5000)
                )
                assert result.status.value == expected, (residual, newton)

    def test_newton_reduces_boxes_on_dependency_heavy_residual(self):
        # the dependency problem: t*(1-t) with t = x repeated; HC4 alone
        # needs bisection, Newton sees the derivative
        from repro import get_condition, get_functional
        from repro.verifier.encoder import encode

        prob = encode(get_functional("PBE"), get_condition("EC2"))
        sub = _box(rs=(1.25, 2.5), s=(0.0, 1.25))
        boxes = {}
        for newton in (False, True):
            solver = ICPSolver(use_newton=newton)
            result = solver.solve(prob.negation, sub, Budget(max_steps=40_000))
            assert result.is_unsat
            boxes[newton] = result.stats.boxes_processed
        assert boxes[True] < boxes[False]
