"""Fuzz corpus: whole-batch Pow/Func kernels vs the scalar tape executors.

The vectorised Pow/Func kernels (``repro.solver.kernels``), the tape-level
constant-folding fusion pass and the fused :class:`MultiTape` all promise
the same contract as the rest of the batch VM: **bit-identical per column**
to the per-box scalar executors, including inf/NaN endpoints, empty
intervals and the Pow rounding-strategy boundaries (mult-chain exponents
``|n| <= _POW_CHAIN_MAX`` vs the log-form fallback beyond, real exponents,
variable exponents).  This corpus drives hypothesis-generated expressions
and endpoint grids through every path pair and asserts exact endpoint
equality; budgets scale through ``tests.support.hyp_examples`` for the
nightly 25x sweep.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import builder as b
from repro.solver.box import Box
from repro.solver.interval import _POW_CHAIN_MAX, Interval
from repro.solver.tape import (
    MultiTape,
    set_batch_kernel_mode,
    set_tape_fusion,
    tape_for,
)
from tests.support import hyp_examples

#: every Func the tape VM dispatches, including the scipy-backed ones
FUNCS = ("exp", "log", "sqrt", "cbrt", "atan", "abs_", "lambertw",
         "sin", "cos", "tanh", "erf")

#: Pow exponents straddling every rounding-strategy boundary: n = 0/1
#: degenerate cases, small chains, the |n| = _POW_CHAIN_MAX chain edge and
#: the first log-form exponent past it, negative (inverse-composed)
#: twins, and real exponents on both sides of zero
POW_EXPONENTS = (0, 1, 2, 3, 5, _POW_CHAIN_MAX - 1, _POW_CHAIN_MAX,
                 _POW_CHAIN_MAX + 1, -1, -2, -3, -_POW_CHAIN_MAX,
                 -(_POW_CHAIN_MAX + 1), 0.5, 1.5, -0.5, 2.5, -1.5)

#: endpoint pool biased to kernel edge cases: signed zeros, subnormals,
#: trig enumeration thresholds (2^20 / 2^21), exp overflow edges, the
#: Lambert branch point, infinities and NaN
SPECIAL = (0.0, -0.0, 5e-324, -5e-324, 1.0, -1.0, 0.5, -0.5, math.pi,
           -math.pi, 2.0**20, 2.0**20 + 0.5, 2.0**21, -(2.0**20), 709.0,
           710.0, -745.0, -1.0 / math.e, 1e154, -1e154, 1e308, -1e308,
           math.inf, -math.inf, math.nan)


def pow_func_expr(rng: random.Random, depth: int = 3):
    """A Pow/Func-heavy residual over x (nonneg), y, z (nonneg)."""
    if depth <= 0 or rng.random() < 0.2:
        return rng.choice([
            b.var("x", nonneg=True), b.var("y"), b.var("z", nonneg=True),
            b.const(rng.uniform(-3.0, 3.0)),
        ])
    kind = rng.random()
    if kind < 0.35:
        expo = rng.choice(POW_EXPONENTS)
        return b.pow_(pow_func_expr(rng, depth - 1), expo)
    if kind < 0.42:
        # variable exponent: OP_POW with aux None (log-form legacy path)
        return b.pow_(pow_func_expr(rng, depth - 1), b.var("z", nonneg=True))
    if kind < 0.82:
        name = rng.choice(FUNCS)
        return getattr(b, name)(pow_func_expr(rng, depth - 1))
    if kind < 0.92:
        return b.add(pow_func_expr(rng, depth - 1), pow_func_expr(rng, depth - 1))
    return b.mul(pow_func_expr(rng, depth - 1), pow_func_expr(rng, depth - 1))


def endpoint(rng: random.Random) -> float:
    r = rng.random()
    if r < 0.4:
        return rng.choice(SPECIAL)
    if r < 0.8:
        return rng.uniform(-8.0, 8.0)
    return rng.uniform(-1e6, 1e6)


def fuzz_boxes(rng: random.Random, width: int) -> list[Box]:
    boxes = []
    for _ in range(width):
        bounds = {}
        for name in ("x", "y", "z"):
            a, c = endpoint(rng), endpoint(rng)
            if rng.random() < 0.15:
                lo, hi = c, a  # possibly inverted -> empty interval
            elif math.isnan(a) or math.isnan(c):
                lo, hi = a, c
            else:
                lo, hi = min(a, c), max(a, c)
            bounds[name] = Interval(lo, hi)
        boxes.append(Box(bounds))
    return boxes


def same_endpoint(a: float, c: float) -> bool:
    return a == c or (math.isnan(a) and math.isnan(c))


def assert_columns_match(tape, boxes, lo_mat, hi_mat, context: str) -> None:
    los = [0.0] * tape.n_slots
    his = [0.0] * tape.n_slots
    for j, box in enumerate(boxes):
        tape.forward_arrays(box, los, his)
        for slot in range(tape.n_slots):
            assert same_endpoint(los[slot], lo_mat[slot, j]), (context, j, slot)
            assert same_endpoint(his[slot], hi_mat[slot, j]), (context, j, slot)


# ---------------------------------------------------------------------------
# forward kernels
# ---------------------------------------------------------------------------

@settings(max_examples=hyp_examples(60), deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_fuzz_forward_batch_vector_kernels_bit_identical(seed):
    rng = random.Random(seed)
    tape = tape_for(pow_func_expr(rng))
    boxes = fuzz_boxes(rng, rng.randint(1, 24))
    lo_mat, hi_mat = tape.load_batch(boxes)
    tape.forward_batch(lo_mat, hi_mat, vector_min=0)  # force the kernels
    assert_columns_match(tape, boxes, lo_mat, hi_mat, "forward")


@settings(max_examples=hyp_examples(30), deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_fuzz_forward_scalar_fallback_bit_identical(seed):
    """The narrow-batch fallback must agree with the kernels exactly."""
    rng = random.Random(seed)
    tape = tape_for(pow_func_expr(rng))
    boxes = fuzz_boxes(rng, rng.randint(1, 8))
    vec_lo, vec_hi = tape.load_batch(boxes)
    tape.forward_batch(vec_lo, vec_hi, vector_min=0)
    fb_lo, fb_hi = tape.load_batch(boxes)
    tape.forward_batch(fb_lo, fb_hi, vector_min=10**9)  # force the fallback
    for slot in range(tape.n_slots):
        for j in range(len(boxes)):
            assert same_endpoint(vec_lo[slot, j], fb_lo[slot, j]), (slot, j)
            assert same_endpoint(vec_hi[slot, j], fb_hi[slot, j]), (slot, j)


@settings(max_examples=hyp_examples(40), deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    expo=st.sampled_from(POW_EXPONENTS),
)
def test_fuzz_pow_boundary_exponents(seed, expo):
    """Each rounding-strategy regime of Pow, pinned per column."""
    rng = random.Random(seed)
    tape = tape_for(b.pow_(b.var("y") + b.const(rng.uniform(-1.0, 1.0)), expo))
    boxes = fuzz_boxes(rng, 16)
    lo_mat, hi_mat = tape.load_batch(boxes)
    tape.forward_batch(lo_mat, hi_mat, vector_min=0)
    assert_columns_match(tape, boxes, lo_mat, hi_mat, f"pow {expo}")


# ---------------------------------------------------------------------------
# backward kernels
# ---------------------------------------------------------------------------

@settings(max_examples=hyp_examples(60), deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_fuzz_backward_batch_vector_kernels_bit_identical(seed):
    rng = random.Random(seed)
    tape = tape_for(pow_func_expr(rng))
    boxes = fuzz_boxes(rng, rng.randint(1, 24))
    lo_mat, hi_mat = tape.load_batch(boxes)
    tape.forward_batch(lo_mat, hi_mat, vector_min=0)
    delta = 1e-5
    root = tape.root
    np.copyto(hi_mat[root], delta, where=hi_mat[root] > delta)

    ref_alive, ref_cols = [], []
    los = [0.0] * tape.n_slots
    his = [0.0] * tape.n_slots
    for box in boxes:
        tape.forward_arrays(box, los, his)
        if his[root] > delta:
            his[root] = delta
        ref_alive.append(tape.backward_arrays(los, his))
        ref_cols.append((list(los), list(his)))

    alive = tape.backward_batch(lo_mat, hi_mat, vector_min=0)
    for j in range(len(boxes)):
        assert bool(alive[j]) == ref_alive[j], j
        if not ref_alive[j]:
            continue  # per-box pass stops early; dead columns hold garbage
        ref_los, ref_his = ref_cols[j]
        for slot in range(tape.n_slots):
            assert same_endpoint(ref_los[slot], lo_mat[slot, j]), (j, slot)
            assert same_endpoint(ref_his[slot], hi_mat[slot, j]), (j, slot)


# ---------------------------------------------------------------------------
# kernel-mode switch, fusion pass, MultiTape
# ---------------------------------------------------------------------------

@settings(max_examples=hyp_examples(30), deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_fuzz_legacy_mode_matches_vector_mode(seed):
    rng = random.Random(seed)
    expr = pow_func_expr(rng)
    tape = tape_for(expr)
    boxes = fuzz_boxes(rng, 12)
    vec_lo, vec_hi = tape.load_batch(boxes)
    tape.forward_batch(vec_lo, vec_hi, vector_min=0)
    set_batch_kernel_mode("legacy")
    try:
        leg_lo, leg_hi = tape.load_batch(boxes)
        tape.forward_batch(leg_lo, leg_hi, vector_min=0)
        delta = 1e-5
        root = tape.root
        v2_lo, v2_hi = vec_lo.copy(), vec_hi.copy()
        l2_lo, l2_hi = leg_lo.copy(), leg_hi.copy()
        np.copyto(v2_hi[root], delta, where=v2_hi[root] > delta)
        np.copyto(l2_hi[root], delta, where=l2_hi[root] > delta)
        set_batch_kernel_mode("vector")
        vec_alive = tape.backward_batch(v2_lo, v2_hi, vector_min=0)
        set_batch_kernel_mode("legacy")
        leg_alive = tape.backward_batch(l2_lo, l2_hi, vector_min=0)
    finally:
        set_batch_kernel_mode("vector")
    for slot in range(tape.n_slots):
        for j in range(len(boxes)):
            assert same_endpoint(vec_lo[slot, j], leg_lo[slot, j]), (slot, j)
            assert same_endpoint(vec_hi[slot, j], leg_hi[slot, j]), (slot, j)
    for j in range(len(boxes)):
        assert bool(vec_alive[j]) == bool(leg_alive[j]), j
        if vec_alive[j]:
            for slot in range(tape.n_slots):
                assert same_endpoint(v2_lo[slot, j], l2_lo[slot, j]), (slot, j)
                assert same_endpoint(v2_hi[slot, j], l2_hi[slot, j]), (slot, j)


@settings(max_examples=hyp_examples(30), deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_fuzz_fusion_pass_is_bit_identical(seed):
    """Tapes compiled with fusion off and on agree slot-for-slot."""
    rng = random.Random(seed)
    expr = b.add(
        pow_func_expr(rng, depth=2),
        b.mul(b.const(rng.uniform(0.5, 2.0)), b.const(rng.uniform(-2.0, 2.0))),
        b.exp(b.const(rng.uniform(-1.0, 1.0))),
    )
    set_tape_fusion(False)
    try:
        plain = tape_for(expr)
    finally:
        set_tape_fusion(True)
    fused = tape_for(expr)
    boxes = fuzz_boxes(rng, 12)
    for tape in (plain, fused):
        lo_mat, hi_mat = tape.load_batch(boxes)
        tape.forward_batch(lo_mat, hi_mat, vector_min=0)
        assert_columns_match(plain, boxes, lo_mat, hi_mat, "fusion-batch")
        # scalar executors too: fusion bakes folded slots into the seeds
        los = [0.0] * tape.n_slots
        his = [0.0] * tape.n_slots
        ref_lo = [0.0] * plain.n_slots
        ref_hi = [0.0] * plain.n_slots
        for box in boxes:
            tape.forward_arrays(box, los, his)
            plain.forward_arrays(box, ref_lo, ref_hi)
            assert same_endpoint(los[tape.root], ref_lo[plain.root])
            assert same_endpoint(his[tape.root], ref_hi[plain.root])


@settings(max_examples=hyp_examples(30), deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_fuzz_multitape_roots_match_per_tape(seed):
    rng = random.Random(seed)
    shared = pow_func_expr(rng, depth=2)
    tapes = [
        tape_for(b.add(shared, pow_func_expr(rng, depth=2)))
        for _ in range(rng.randint(2, 4))
    ]
    multi = MultiTape.from_tapes(tapes)
    boxes = fuzz_boxes(rng, rng.randint(1, 20))
    m_lo, m_hi = multi.load_batch(boxes)
    multi.forward_batch(m_lo, m_hi, vector_min=0)
    for tape, root in zip(tapes, multi.roots):
        lo_mat, hi_mat = tape.load_batch(boxes)
        tape.forward_batch(lo_mat, hi_mat, vector_min=0)
        for j in range(len(boxes)):
            assert same_endpoint(lo_mat[tape.root, j], m_lo[root, j]), j
            assert same_endpoint(hi_mat[tape.root, j], m_hi[root, j]), j


def test_multitape_shares_common_subtapes():
    x = b.var("x", nonneg=True)
    y = b.var("y")
    shared = b.exp(x) * y
    t1 = tape_for(shared + b.sin(y))
    t2 = tape_for(shared * b.const(2.0))
    multi = MultiTape.from_tapes([t1, t2])
    # the shared exp(x)*y subtape must be interned once
    assert len(multi._fwd) < len(t1.instrs) + len(t2.instrs)


@pytest.mark.parametrize("func", FUNCS)
def test_func_kernels_on_special_endpoint_grid(func):
    """Exhaustive special-value grid per Func, not just random draws."""
    x = b.var("y")
    tape = tape_for(getattr(b, func)(x))
    vals = [v for v in SPECIAL]
    boxes = []
    for lo in vals:
        for hi in vals:
            boxes.append(Box({"y": Interval(lo, hi)}))
    lo_mat, hi_mat = tape.load_batch(boxes)
    tape.forward_batch(lo_mat, hi_mat, vector_min=0)
    assert_columns_match(tape, boxes, lo_mat, hi_mat, func)
