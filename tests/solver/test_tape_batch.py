"""Differential tests: batched tape executors vs the per-box tape VM.

The batched forward/backward passes are specified to produce, column for
column, bit-for-bit the endpoints the per-box executors produce box for
box -- including NaN/infinite endpoints, empty intervals (``lo > hi``),
and zero-width batches.  Both the vectorised kernels and the narrow-batch
scalar fallback (below ``repro.solver.tape._VECTOR_MIN`` columns) are
exercised by running every corpus case at widths on both sides of the
threshold.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.expr import builder as b
from repro.solver.box import Box
from repro.solver.constraint import Atom, Conjunction
from repro.solver.contractor import (
    BATCH_REFUTED,
    BATCH_SAT,
    BATCH_UNKNOWN,
    HC4Contractor,
)
from repro.solver.icp import Budget, ICPSolver
from repro.solver.interval import Interval
from repro.solver.tape import _VECTOR_MIN, tape_for

from .test_tape import assert_boxes_identical, random_box, random_expr

#: one width per side of the vectorisation threshold, so every case runs
#: through both the scalar fallback and the NumPy kernels
WIDTHS = (3, _VECTOR_MIN + 5)


def same_endpoint(a: float, b: float) -> bool:
    return a == b or (math.isnan(a) and math.isnan(b))


def columns_match(tape, boxes, lo_mat, hi_mat) -> None:
    """Every column must equal a per-box forward_arrays run."""
    los = [0.0] * tape.n_slots
    his = [0.0] * tape.n_slots
    for j, box in enumerate(boxes):
        tape.forward_arrays(box, los, his)
        for slot in range(tape.n_slots):
            assert same_endpoint(los[slot], lo_mat[slot, j]), (j, slot)
            assert same_endpoint(his[slot], hi_mat[slot, j]), (j, slot)


# ---------------------------------------------------------------------------
# forward batch parity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(20))
@pytest.mark.parametrize("width", WIDTHS)
def test_forward_batch_matches_forward_arrays(seed, width):
    rng = random.Random(seed)
    expr = random_expr(rng)
    tape = tape_for(expr)
    boxes = [random_box(rng) for _ in range(width)]
    lo_mat, hi_mat = tape.load_batch(boxes)
    tape.forward_batch(lo_mat, hi_mat)
    columns_match(tape, boxes, lo_mat, hi_mat)


@pytest.mark.parametrize("width", WIDTHS)
def test_forward_batch_with_nan_and_inf_endpoints(width):
    rng = random.Random(99)
    expr = random_expr(rng)
    tape = tape_for(expr)
    weird = [
        Box({"x": Interval(0.0, math.inf), "y": Interval(-math.inf, math.inf),
             "z": Interval(math.nan, math.nan)}),
        Box({"x": Interval(math.inf, -math.inf), "y": Interval(-1.0, 1.0),
             "z": Interval(0.0, 0.0)}),
        Box({"x": Interval(1.0, math.nan), "y": Interval(math.inf, math.inf),
             "z": Interval(-0.0, 0.0)}),
    ]
    boxes = (weird * -(-width // len(weird)))[:width]
    lo_mat, hi_mat = tape.load_batch(boxes)
    tape.forward_batch(lo_mat, hi_mat)
    columns_match(tape, boxes, lo_mat, hi_mat)


def test_forward_batch_empty_batch():
    tape = tape_for(b.exp(b.var("x", nonneg=True)) + b.var("y"))
    lo_mat, hi_mat = tape.load_batch([])
    assert lo_mat.shape == (tape.n_slots, 0)
    tape.forward_batch(lo_mat, hi_mat)  # must not raise
    root_lo, root_hi = tape.enclosure_batch([])
    assert root_lo.shape == (0,)
    assert root_hi.shape == (0,)


@pytest.mark.parametrize("seed", range(10))
def test_enclosure_batch_matches_enclosure(seed):
    rng = random.Random(500 + seed)
    expr = random_expr(rng)
    tape = tape_for(expr)
    boxes = [random_box(rng) for _ in range(11)]
    root_lo, root_hi = tape.enclosure_batch(boxes)
    for j, box in enumerate(boxes):
        want = tape.enclosure(box)
        if want.is_empty():
            assert not root_lo[j] <= root_hi[j]
        else:
            assert (want.lo, want.hi) == (root_lo[j], root_hi[j])


def test_load_batch_reports_unbound_variable():
    tape = tape_for(b.var("x", nonneg=True) + b.var("y"))
    with pytest.raises(KeyError, match="does not bind"):
        tape.load_batch([Box({"x": (0.0, 1.0)})])


# ---------------------------------------------------------------------------
# backward batch parity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(20))
@pytest.mark.parametrize("width", WIDTHS)
def test_backward_batch_matches_backward_arrays(seed, width):
    rng = random.Random(7000 + seed)
    expr = random_expr(rng)
    tape = tape_for(expr)
    boxes = [random_box(rng) for _ in range(width)]
    lo_mat, hi_mat = tape.load_batch(boxes)
    tape.forward_batch(lo_mat, hi_mat)
    # intersect the root with (-inf, delta] like a revise step would
    delta = 1e-5
    root = tape.root
    np.copyto(hi_mat[root], delta, where=hi_mat[root] > delta)

    ref_alive = []
    ref_cols = []
    los = [0.0] * tape.n_slots
    his = [0.0] * tape.n_slots
    for j, box in enumerate(boxes):
        tape.forward_arrays(box, los, his)
        if his[root] > delta:
            his[root] = delta
        ref_alive.append(tape.backward_arrays(los, his))
        ref_cols.append((list(los), list(his)))

    alive = tape.backward_batch(lo_mat, hi_mat)
    for j in range(width):
        assert bool(alive[j]) == ref_alive[j], j
        if not ref_alive[j]:
            continue  # per-box pass stops early; dead columns hold garbage
        ref_los, ref_his = ref_cols[j]
        for slot in range(tape.n_slots):
            assert same_endpoint(ref_los[slot], lo_mat[slot, j]), (j, slot)
            assert same_endpoint(ref_his[slot], hi_mat[slot, j]), (j, slot)


# ---------------------------------------------------------------------------
# batched contraction and classification parity
# ---------------------------------------------------------------------------

def random_formula(rng: random.Random) -> Conjunction:
    return Conjunction.of(
        *[Atom(random_expr(rng), rng.choice(["<=", "<"]))
          for _ in range(rng.randint(1, 3))]
    )


@pytest.mark.parametrize("seed", range(25))
@pytest.mark.parametrize("width", WIDTHS)
def test_contract_batch_matches_contract(seed, width):
    rng = random.Random(1000 + seed)
    formula = random_formula(rng)
    boxes = [random_box(rng) for _ in range(width)]
    contractor = HC4Contractor(formula, delta=1e-5, backend="tape")
    rounds = rng.choice([1, 2, 3])
    got, allsat = contractor.contract_batch(boxes, rounds=rounds)
    for j, box in enumerate(boxes):
        want = contractor.contract(box, rounds=rounds)
        assert_boxes_identical(got[j], want)
        want_sat = (not want.is_empty()) and contractor.certainly_sat(want)
        assert bool(allsat[j]) == want_sat, j


def test_contract_batch_returns_original_object_when_unchanged():
    x = b.var("x", nonneg=True)
    formula = Conjunction.of(Atom(x + (-100.0), "<="))  # never prunes on [0, 1]
    contractor = HC4Contractor(formula, delta=1e-5, backend="tape")
    boxes = [Box({"x": (0.0, 1.0)}) for _ in range(3)]
    got, allsat = contractor.contract_batch(boxes)
    for j, box in enumerate(boxes):
        assert got[j] is box
        assert bool(allsat[j])


def test_contract_batch_empty_input():
    formula = Conjunction.of(Atom(b.var("x", nonneg=True), "<="))
    contractor = HC4Contractor(formula, delta=1e-5, backend="tape")
    got, allsat = contractor.contract_batch([])
    assert got == []
    assert allsat.shape == (0,)


def test_contract_batch_passes_through_already_empty_boxes():
    formula = Conjunction.of(Atom(b.var("x", nonneg=True), "<="))
    contractor = HC4Contractor(formula, delta=1e-5, backend="tape")
    empty = Box({"x": Interval(math.inf, -math.inf)})
    full = Box({"x": (0.5, 1.0)})
    before = contractor.stats.prunes_to_empty
    got, allsat = contractor.contract_batch([empty, full])
    # already-empty input: returned untouched (the solver prunes it
    # upstream), not counted as a contraction prune
    assert got[0] is empty
    assert not allsat[0]
    assert got[1].is_empty()  # x in [0.5, 1] refutes x <= delta
    assert contractor.stats.prunes_to_empty == before + 1


def test_contract_batch_requires_tape_backend():
    formula = Conjunction.of(Atom(b.var("x", nonneg=True), "<="))
    walk = HC4Contractor(formula, delta=1e-5, backend="walk")
    with pytest.raises(ValueError, match="tape"):
        walk.contract_batch([Box({"x": (0.0, 1.0)})])
    with pytest.raises(ValueError, match="tape"):
        walk.classify_batch([Box({"x": (0.0, 1.0)})])


@pytest.mark.parametrize("seed", range(15))
def test_classify_batch_matches_per_box_decisions(seed):
    rng = random.Random(4000 + seed)
    formula = random_formula(rng)
    boxes = [random_box(rng) for _ in range(13)]
    contractor = HC4Contractor(formula, delta=1e-5, backend="tape")
    codes = contractor.classify_batch(boxes)
    for j, box in enumerate(boxes):
        code = int(codes[j])
        contracted = contractor.contract(box, rounds=1)
        if code == BATCH_SAT:
            assert contracted is box
            assert contractor.certainly_sat(box)
        elif code == BATCH_REFUTED:
            assert contracted.is_empty()
        else:
            assert code == BATCH_UNKNOWN


# ---------------------------------------------------------------------------
# frontier solver parity (the property the PR must preserve end to end)
# ---------------------------------------------------------------------------

def assert_results_identical(r1, r2) -> None:
    assert r1.status == r2.status
    assert r1.model == r2.model
    assert r1.stats.boxes_processed == r2.stats.boxes_processed
    assert r1.stats.boxes_pruned == r2.stats.boxes_pruned
    assert r1.stats.boxes_split == r2.stats.boxes_split
    assert r1.stats.probe_hits == r2.stats.probe_hits


@pytest.mark.parametrize("seed", range(15))
def test_frontier_solver_matches_tape_and_walk(seed):
    rng = random.Random(3000 + seed)
    formula = Conjunction.of(
        *[Atom(random_expr(rng, depth=3), "<=") for _ in range(rng.randint(1, 2))]
    )
    box = random_box(rng)
    budget = Budget(max_steps=250)
    batch_size = rng.choice([1, 3, 64])
    results = {}
    for backend in ("batch", "tape", "walk"):
        solver = ICPSolver(
            delta=1e-5, precision=1e-2, backend=backend, batch_size=batch_size
        )
        results[backend] = solver.solve(formula, box, budget)
    assert_results_identical(results["batch"], results["tape"])
    assert_results_identical(results["batch"], results["walk"])
    assert results["batch"].stats.batches > 0
    assert results["tape"].stats.batches == 0


@pytest.mark.parametrize("knob", ["dfs", "no-contraction", "newton"])
def test_frontier_solver_knob_fallbacks_stay_identical(knob):
    rng = random.Random(42)
    formula = Conjunction.of(Atom(random_expr(rng, depth=3), "<="))
    box = random_box(rng)
    budget = Budget(max_steps=120)
    kwargs = {}
    if knob == "dfs":
        kwargs["search"] = "dfs"
    elif knob == "no-contraction":
        kwargs["use_contraction"] = False
    else:
        kwargs["use_newton"] = True
    results = {
        backend: ICPSolver(
            delta=1e-5, precision=1e-2, backend=backend, **kwargs
        ).solve(formula, box, budget)
        for backend in ("batch", "tape")
    }
    assert_results_identical(results["batch"], results["tape"])


def test_frontier_timeout_mid_batch_matches_per_box():
    rng = random.Random(11)
    formula = Conjunction.of(Atom(random_expr(rng, depth=3), "<="))
    box = random_box(rng)
    for steps in (1, 2, 3, 7, 19):
        budget = Budget(max_steps=steps)
        r_batch = ICPSolver(precision=1e-3, backend="batch", batch_size=4).solve(
            formula, box, budget
        )
        r_tape = ICPSolver(precision=1e-3, backend="tape").solve(formula, box, budget)
        assert_results_identical(r_batch, r_tape)


def test_frontier_solver_vector_min_override_identical():
    """vector_min only moves the kernel/scalar crossover, never results."""
    rng = random.Random(77)
    formula = Conjunction.of(Atom(random_expr(rng, depth=3), "<="))
    box = random_box(rng)
    budget = Budget(max_steps=200)
    results = [
        ICPSolver(
            precision=1e-3, backend="batch", batch_size=8, vector_min=vm
        ).solve(formula, box, budget)
        for vm in (0, 4, 10**9, None)
    ]
    for other in results[1:]:
        assert_results_identical(results[0], other)


def test_solver_rejects_bad_batch_options():
    with pytest.raises(ValueError, match="batch_size"):
        ICPSolver(batch_size=0)
    with pytest.raises(ValueError, match="backend"):
        ICPSolver(backend="vectorized")


def test_paper_functional_frontier_parity():
    """PBE-class residual: the acceptance-criterion formula class."""
    from repro.conditions import EC1
    from repro.functionals import get_functional
    from repro.verifier import encode

    problem = encode(get_functional("PBE"), EC1)
    box = Box.from_bounds({"rs": (1.0, 3.0), "s": (0.0, 2.0)})
    budget = Budget(max_steps=300)
    r_batch = ICPSolver(precision=1e-3, backend="batch").solve(
        problem.negation, box, budget
    )
    r_tape = ICPSolver(precision=1e-3, backend="tape").solve(
        problem.negation, box, budget
    )
    assert_results_identical(r_batch, r_tape)


# ---------------------------------------------------------------------------
# vectorised scalar grids (eval_point_batch)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(15))
def test_eval_point_batch_tracks_eval_scalar(seed):
    """Vectorised point semantics: NaN where the scalar path yields NaN
    (up to overflow saturation), values equal up to libm/summation ulps."""
    rng = random.Random(6000 + seed)
    expr = random_expr(rng, depth=3)
    tape = tape_for(expr)
    pts = {
        "x": np.array([rng.uniform(0.0, 3.0) for _ in range(40)]),
        "y": np.array([rng.uniform(-3.0, 3.0) for _ in range(40)]),
        "z": np.array([rng.uniform(0.0, 2.0) for _ in range(40)]),
    }
    got = tape.eval_point_batch(pts)
    assert got.shape == (40,)
    for j in range(40):
        env = {name: float(arr[j]) for name, arr in pts.items()}
        want = tape.eval_scalar(env)
        if math.isfinite(want) and math.isfinite(got[j]):
            assert got[j] == pytest.approx(want, rel=1e-9, abs=1e-12), j
        else:
            # scalar fsum raises (-> NaN) where the vector path saturates
            # to inf and vice versa; both must at least agree on finiteness
            assert not (math.isfinite(want) or math.isfinite(got[j])), j


def test_eval_point_batch_poisons_domain_errors_in_untaken_branches():
    """The scalar executor is eager: a domain error raises even when it
    feeds an untaken ite branch.  The batch pass must match."""
    x = b.var("x")
    expr = b.ite(b.const(1.0).le(x), b.log(x + (-2.0)), x)
    tape = tape_for(expr)
    xs = np.array([0.5, 3.0])
    got = tape.eval_point_batch({"x": xs})
    for j, xv in enumerate(xs):
        want = tape.eval_scalar({"x": float(xv)})
        if math.isnan(want):
            assert math.isnan(got[j]), (j, got[j])
        else:
            assert got[j] == pytest.approx(want, rel=1e-12)
    # x=0.5 takes the orelse branch, but log(0.5 - 2) poisons the point
    assert math.isnan(got[0])
    assert math.isnan(tape.eval_scalar({"x": 0.5}))


def test_eval_point_batch_preserves_mesh_shape():
    x = b.var("x", nonneg=True)
    tape = tape_for(b.log(x))
    xs = np.linspace(-1.0, 4.0, 12).reshape(3, 4)
    out = tape.eval_point_batch({"x": xs})
    assert out.shape == (3, 4)
    assert np.isnan(out[xs <= 0.0]).all()
    ref = np.log(xs[xs > 0.0])
    assert np.allclose(out[xs > 0.0], ref, rtol=1e-12)


def test_eval_point_batch_constant_expression_broadcasts():
    tape = tape_for(b.const(2.0) * b.const(3.0))
    out = tape.eval_point_batch({})
    assert float(out) == 6.0
