"""Tests for variable boxes."""

import pytest

from repro.solver.box import Box
from repro.solver.interval import EMPTY, make


def box2(rs=(0.0, 5.0), s=(0.0, 5.0)) -> Box:
    return Box.from_bounds({"rs": rs, "s": s})


class TestConstruction:
    def test_from_bounds(self):
        b = box2()
        assert b["rs"].lo == 0.0 and b["rs"].hi == 5.0

    def test_kwargs_with_tuples(self):
        b = Box(x=(1.0, 2.0))
        assert b["x"] == make(1.0, 2.0)

    def test_var_keys_accepted(self):
        from repro.expr.nodes import Var
        b = Box({Var("q"): make(0.0, 1.0)})
        assert "q" in b

    def test_names_sorted(self):
        b = Box.from_bounds({"z": (0, 1), "a": (0, 1)})
        assert b.names == ("a", "z")

    def test_getitem_unknown_raises(self):
        with pytest.raises(KeyError):
            box2()["nope"]

    def test_len_iter_items(self):
        b = box2()
        assert len(b) == 2
        assert set(b) == {"rs", "s"}
        assert dict(b.items())["s"].hi == 5.0


class TestGeometry:
    def test_empty_detection(self):
        b = Box(x=make(1.0, 2.0), y=EMPTY)
        assert b.is_empty()
        assert not box2().is_empty()

    def test_max_width_and_widest(self):
        b = Box.from_bounds({"a": (0, 1), "b": (0, 10)})
        assert b.max_width() == pytest.approx(10.0)
        assert b.widest_dim() == "b"

    def test_midpoint(self):
        mid = box2().midpoint()
        assert mid == {"rs": 2.5, "s": 2.5}

    def test_volume(self):
        assert box2().volume() == pytest.approx(25.0)

    def test_contains_point(self):
        b = box2()
        assert b.contains_point({"rs": 1.0, "s": 4.9})
        assert not b.contains_point({"rs": 6.0, "s": 1.0})

    def test_intersect(self):
        a = box2(rs=(0, 3), s=(0, 3))
        c = box2(rs=(2, 5), s=(1, 2))
        out = a.intersect(c)
        assert out["rs"] == make(2.0, 3.0)
        assert out["s"] == make(1.0, 2.0)

    def test_intersect_mismatched_vars_raises(self):
        with pytest.raises(ValueError):
            box2().intersect(Box(x=(0.0, 1.0)))

    def test_replace(self):
        b = box2().replace("rs", make(1.0, 2.0))
        assert b["rs"] == make(1.0, 2.0)
        assert b["s"].hi == 5.0


class TestSplitting:
    def test_split_halves_widest_by_default(self):
        b = Box.from_bounds({"a": (0, 1), "b": (0, 10)})
        left, right = b.split()
        assert left["b"].hi == pytest.approx(5.0)
        assert right["b"].lo == pytest.approx(5.0)
        assert left["a"] == b["a"]

    def test_split_named_dimension(self):
        left, right = box2().split("rs")
        assert left["rs"].hi == pytest.approx(2.5)
        assert right["rs"].lo == pytest.approx(2.5)

    def test_split_covers_parent(self):
        b = box2()
        left, right = b.split()
        assert left.volume() + right.volume() == pytest.approx(b.volume())

    def test_split_all_2d_gives_four(self):
        children = box2().split_all()
        assert len(children) == 4
        assert sum(c.volume() for c in children) == pytest.approx(25.0)

    def test_split_all_3d_gives_eight(self):
        b = Box.from_bounds({"a": (0, 1), "b": (0, 1), "c": (0, 1)})
        assert len(b.split_all()) == 8

    def test_sample_grid(self):
        pts = box2().sample_grid(3)
        assert len(pts) == 9
        assert {"rs", "s"} == set(pts[0])
        rs_values = sorted({p["rs"] for p in pts})
        assert rs_values == pytest.approx([0.0, 2.5, 5.0])

    def test_sample_grid_single_point(self):
        pts = box2().sample_grid(1)
        assert pts == [{"rs": 2.5, "s": 2.5}]


class TestEquality:
    def test_eq_and_hash(self):
        assert box2() == box2()
        assert hash(box2()) == hash(box2())
        assert box2() != box2(rs=(0, 4))
