"""Repo-level collection rules.

The slow ablation benchmark files are excluded from the tier-1 run
(`python -m pytest -x -q`); the scheduled nightly workflow opts back in by
setting ``REPRO_RUN_ABLATIONS``.
"""

import os

collect_ignore_glob = []
if not os.environ.get("REPRO_RUN_ABLATIONS"):
    collect_ignore_glob.append("benchmarks/test_ablation_*.py")
