"""ASCII rendering of PB grid verdicts (the top rows of Figures 1 and 2).

The paper's figures show, for the PB approach, hatched counterexample
regions over a satisfied background.  We downsample the boolean masks onto
a character raster: a cell is marked violated if *any* grid point inside
it violates (matching how a hatched region reads).
"""

from __future__ import annotations

import numpy as np

from .checker import PBResult

CHAR_SATISFIED = "."
CHAR_VIOLATED = "#"
CHAR_UNDEFINED = " "


def downsample_mask(mask: np.ndarray, out_shape: tuple[int, int]) -> np.ndarray:
    """Max-pool a boolean mask (2D) onto ``out_shape``."""
    if mask.ndim != 2:
        raise ValueError("downsample_mask expects a 2D mask")
    ny, nx = out_shape
    rows = np.array_split(np.arange(mask.shape[0]), ny)
    cols = np.array_split(np.arange(mask.shape[1]), nx)
    out = np.zeros((ny, nx), dtype=bool)
    for i, r in enumerate(rows):
        band = mask[r[0]: r[-1] + 1]
        for j, c in enumerate(cols):
            out[i, j] = bool(band[:, c[0]: c[-1] + 1].any())
    return out


def _project_2d(result: PBResult, attr: str) -> np.ndarray:
    """Project a mask to (rs, s); reduce extra axes (alpha) by any()."""
    mask = getattr(result, attr)
    if mask.ndim == 1:
        return mask[:, None]
    while mask.ndim > 2:
        mask = mask.any(axis=-1)
    return mask


def ascii_pb_map(result: PBResult, resolution: int = 48, legend: bool = True) -> str:
    """Render a PB verdict as ASCII with rs rightward and s upward."""
    violated = downsample_mask(
        _project_2d(result, "violated"), (resolution, min(resolution, _project_2d(result, "violated").shape[1]))
    )
    undefined = downsample_mask(
        _project_2d(result, "undefined"),
        violated.shape,
    )
    # masks are indexed [rs, s]; the plot wants s as rows (upward), rs as cols
    violated = violated.T[::-1]
    undefined = undefined.T[::-1]

    lines = [f"{result.functional_name} / {result.condition_id}  [PB grid; rs ->, s ^]"]
    for vrow, urow in zip(violated, undefined):
        line = []
        for v, u in zip(vrow, urow):
            if v:
                line.append(CHAR_VIOLATED)
            elif u:
                line.append(CHAR_UNDEFINED)
            else:
                line.append(CHAR_SATISFIED)
        lines.append("".join(line))
    if legend:
        lines.append("legend: '#'=violating point(s)  '.'=satisfied  ' '=undefined")
    return "\n".join(lines)
