"""Pederson-Burke grid-search baseline (the paper's comparison approach)."""

from .grid import Grid, GridSpec
from .gradients import d2_drs2, d_drs, gradient_error_estimate
from .checker import PBChecker, PBResult
from .render import ascii_pb_map, downsample_mask

__all__ = [
    "Grid", "GridSpec", "d2_drs2", "d_drs", "gradient_error_estimate",
    "PBChecker", "PBResult", "ascii_pb_map", "downsample_mask",
]
