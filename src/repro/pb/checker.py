"""The Pederson-Burke grid-search condition checker (the paper's baseline).

For a DFA-condition pair, evaluate the functional's enhancement factors on
a mesh, approximate the rs-derivatives numerically, and check the local
condition at every mesh point.  "The condition is assumed to be satisfied
for the DFA if all the points in the grid pass the condition"
(Section IV-A).

Everything is vectorised: one compiled-kernel evaluation per component and
pure ndarray arithmetic for the conditions, so a 401 x 401 scan of a GGA
takes milliseconds.

Handling of numerics (documented deviations):

* points where the functional evaluates to NaN/inf, and a configurable
  number of rs-boundary rows (where ``np.gradient`` falls back to
  first-order one-sided stencils), are recorded as *undefined* and
  excluded from the verdict;
* a small tolerance absorbs derivative-approximation noise -- the exact
  weakness of grid checking that motivates the paper's symbolic approach.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..conditions.base import Condition
from ..conditions.catalog import RS_INFINITY
from ..functionals import vars as V
from ..functionals.base import Functional
from .grid import Grid, GridSpec
from .gradients import d2_drs2, d_drs


@dataclass
class PBResult:
    """Outcome of one PB grid check."""

    functional_name: str
    condition_id: str
    grid: Grid
    satisfied: np.ndarray   # bool, True where the condition holds
    violated: np.ndarray    # bool, True where it definitely fails
    undefined: np.ndarray   # bool, NaN / trimmed boundary points
    residual: np.ndarray    # signed residual, <= 0 where satisfied

    @property
    def any_violation(self) -> bool:
        return bool(self.violated.any())

    @property
    def violation_fraction(self) -> float:
        checked = self.satisfied.sum() + self.violated.sum()
        if checked == 0:
            return 0.0
        return float(self.violated.sum() / checked)

    def violation_points(self, limit: int | None = None) -> list[dict[str, float]]:
        """Coordinates of violating mesh points (at most ``limit``)."""
        idx = np.argwhere(self.violated)
        if limit is not None:
            idx = idx[:limit]
        return [self.grid.point(tuple(i)) for i in idx]

    def violation_bounds(self) -> dict[str, tuple[float, float]] | None:
        """Axis-aligned bounding box of the violating points."""
        if not self.any_violation:
            return None
        idx = np.argwhere(self.violated)
        out: dict[str, tuple[float, float]] = {}
        for axis_pos, (name, axis) in enumerate(self.grid.axes.items()):
            values = axis[idx[:, axis_pos]]
            out[name] = (float(values.min()), float(values.max()))
        return out

    def summary(self) -> str:
        verdict = "violated" if self.any_violation else "satisfied"
        return (
            f"{self.functional_name}/{self.condition_id} [PB]: {verdict} "
            f"({self.violated.sum()} of {self.violated.size} points violate, "
            f"{self.undefined.sum()} undefined)"
        )


@dataclass(frozen=True)
class PBChecker:
    """Grid-search checker with PB's methodology.

    ``derivative_mode`` selects how condition residuals are produced:

    * ``"numeric"`` (PB's method, the default): compiled NumPy kernels for
      the enhancement factors plus ``np.gradient`` stencils for the
      rs-derivatives -- fast, but stencil noise near the boundary rows
      must be trimmed and absorbed by the tolerance;
    * ``"symbolic"``: the encoder's local condition psi -- with *symbolic*
      rs-derivatives -- is compiled to a solver tape and evaluated on the
      mesh in one batched sweep (:meth:`Grid.evaluate_tape`).  No stencil
      approximation, hence no boundary trim; this is the grid-checking
      analogue of the verifier's exact-condition pipeline and serves as a
      cross-check of the numeric gradients.

      Note the residual is in the *encoder's* normal form: conditions
      whose textbook statement divides by rs are encoded multiplied
      through by rs (EC3/EC6/EC7, see :mod:`repro.conditions.catalog`),
      so for those the symbolic residual is the numeric one scaled by rs
      and ``tolerance`` acts on the verifier's residual scale -- marginal
      verdicts within ~``tolerance`` of zero can differ between the two
      modes (on top of the stencil-vs-exact derivative difference, which
      is usually the larger effect).
    """

    spec: GridSpec = field(default_factory=GridSpec)
    tolerance: float = 1e-8
    boundary_trim: int = 1
    derivative_mode: str = "numeric"

    def __post_init__(self):
        if self.derivative_mode not in ("numeric", "symbolic"):
            raise ValueError("derivative_mode must be 'numeric' or 'symbolic'")

    def check(self, functional: Functional, condition: Condition) -> PBResult:
        """Run the PB check for one DFA-condition pair."""
        if not condition.applies_to(functional):
            raise ValueError(
                f"{condition.cid} does not apply to {functional.name}"
            )
        grid = Grid.for_functional(functional, self.spec)
        if self.derivative_mode == "symbolic":
            residual = self._residual_symbolic(functional, condition, grid)
        else:
            residual = self._residual(functional, condition, grid)

        undefined = ~np.isfinite(residual)
        trim = self.boundary_trim
        if (
            trim > 0
            and self.derivative_mode == "numeric"
            and condition.cid in ("EC2", "EC3", "EC4", "EC6", "EC7")
        ):
            # derivative conditions: one-sided stencils at the rs edges
            undefined[:trim] = True
            undefined[-trim:] = True

        satisfied = np.where(undefined, False, residual <= self.tolerance)
        violated = np.where(undefined, False, residual > self.tolerance)
        return PBResult(
            functional_name=functional.name,
            condition_id=condition.cid,
            grid=grid,
            satisfied=satisfied,
            violated=violated,
            undefined=undefined,
            residual=residual,
        )

    # -- residuals: <= 0 where the local condition holds --------------------------
    def _residual(
        self, functional: Functional, condition: Condition, grid: Grid
    ) -> np.ndarray:
        rs_axis = grid.rs_axis()
        meshes = grid.meshes()
        rs_mesh = meshes[0]
        fc = grid.evaluate(functional.fc_kernel())
        cid = condition.cid

        if cid == "EC1":
            return -fc
        if cid == "EC2":
            return -d_drs(fc, rs_axis)
        if cid == "EC3":
            dfc = d_drs(fc, rs_axis)
            d2fc = d2_drs2(fc, rs_axis)
            return -(d2fc + (2.0 / rs_mesh) * dfc)
        if cid == "EC4":
            fxc = grid.evaluate(functional.fxc_kernel())
            dfc = d_drs(fc, rs_axis)
            return fxc + rs_mesh * dfc - V.C_LO
        if cid == "EC5":
            fxc = grid.evaluate(functional.fxc_kernel())
            return fxc - V.C_LO
        if cid == "EC6":
            dfc = d_drs(fc, rs_axis)
            fc_inf = grid.evaluate_at_rs(functional.fc_kernel(), RS_INFINITY)
            return dfc - (fc_inf - fc) / rs_mesh
        if cid == "EC7":
            dfc = d_drs(fc, rs_axis)
            return dfc - fc / rs_mesh
        raise KeyError(f"unknown condition {cid}")

    def _residual_symbolic(
        self, functional: Functional, condition: Condition, grid: Grid
    ) -> np.ndarray:
        """Exact-condition residual on the mesh via the batched tape VM.

        Normalises the local condition psi to ``residual <= 0`` (the PB
        sign convention) and evaluates the compiled residual tape over the
        whole grid in one :meth:`Grid.evaluate_tape` sweep.
        """
        from ..solver.constraint import Atom
        from ..solver.tape import tape_for

        psi = condition.local_condition(functional)
        atom = Atom.from_rel(psi).normalized()
        return grid.evaluate_tape(tape_for(atom.residual))
