"""Input grids for the Pederson-Burke baseline.

PB draw uniform samples along each input axis and mesh them.  The grids
are plain NumPy meshes; everything downstream is fully vectorised (one
kernel call per functional component per grid), following the HPC
guidance: no Python-level loops over grid points anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..functionals import vars as V
from ..functionals.base import Functional


@dataclass(frozen=True)
class GridSpec:
    """Resolution and bounds of a PB scan.

    The paper quotes 10^5 samples per axis; that is far beyond what the
    numeric gradients need to converge (and 10^10 mesh points would not
    fit in memory), so the default reproduces the same checks at 401
    points per axis and the resolution is a parameter (ablation E9 sweeps
    it).  ``rs_lo`` avoids rs = 0, where eps_x^unif diverges; ``s_lo``
    avoids s = 0 only for numerically singular-at-zero model code (SCAN's
    exp(-a1/sqrt(s)) evaluates fine in IEEE arithmetic, so 0 is kept).
    """

    n_rs: int = 401
    n_s: int = 401
    n_alpha: int = 21
    rs_lo: float = V.RS_LO
    rs_hi: float = V.RS_HI
    s_lo: float = V.S_LO
    s_hi: float = V.S_HI
    alpha_lo: float = V.ALPHA_LO
    alpha_hi: float = V.ALPHA_HI

    def axes(self, family: str) -> dict[str, np.ndarray]:
        axes = {"rs": np.linspace(self.rs_lo, self.rs_hi, self.n_rs)}
        if family in ("GGA", "MGGA"):
            axes["s"] = np.linspace(self.s_lo, self.s_hi, self.n_s)
        if family == "MGGA":
            axes["alpha"] = np.linspace(self.alpha_lo, self.alpha_hi, self.n_alpha)
        return axes


@dataclass
class Grid:
    """A meshed scan domain: rs varies along axis 0, s along 1, alpha 2."""

    axes: dict[str, np.ndarray]

    @classmethod
    def for_functional(cls, functional: Functional, spec: GridSpec | None = None) -> "Grid":
        spec = spec or GridSpec()
        return cls(axes=spec.axes(functional.family))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self.axes)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(len(a) for a in self.axes.values())

    def meshes(self) -> tuple[np.ndarray, ...]:
        """Broadcast meshes in variable order (rs, s[, alpha])."""
        return tuple(np.meshgrid(*self.axes.values(), indexing="ij"))

    def rs_axis(self) -> np.ndarray:
        return self.axes["rs"]

    def rs_spacing(self) -> float:
        rs = self.axes["rs"]
        return float(rs[1] - rs[0])

    def evaluate(self, kernel) -> np.ndarray:
        """Evaluate a compiled kernel on the full mesh (vectorised)."""
        return np.asarray(kernel(*self.meshes()), dtype=float)

    def evaluate_tape(self, tape) -> np.ndarray:
        """Evaluate a compiled solver tape on the full mesh (batched VM).

        Runs :meth:`repro.solver.tape.Tape.eval_point_batch` with the mesh
        arrays bound to the tape's variables: one vectorised sweep over
        every grid point, with NaN at points outside a primitive's domain.
        """
        env = dict(zip(self.names, self.meshes()))
        return np.asarray(tape.eval_point_batch(env), dtype=float)

    def evaluate_at_rs(self, kernel, rs_value: float) -> np.ndarray:
        """Evaluate a kernel with rs pinned (used for the EC6 limit)."""
        meshes = self.meshes()
        pinned = (np.full_like(meshes[0], rs_value),) + meshes[1:]
        return np.asarray(kernel(*pinned), dtype=float)

    def point(self, index: tuple[int, ...]) -> dict[str, float]:
        """The input coordinates of a mesh index."""
        return {
            name: float(axis[i])
            for (name, axis), i in zip(self.axes.items(), index)
        }
