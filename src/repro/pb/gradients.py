"""Numeric rs-derivatives on PB grids.

PB "numerically approximate" the gradients the local conditions need using
NumPy; this module is that piece.  The derivative axis is always rs
(axis 0 of our meshes); second derivatives are one more application.
``np.gradient`` uses second-order central differences in the interior and
first-order one-sided stencils at the boundary -- exactly the kind of
approximation error the paper argues symbolic derivatives avoid, and the
E2/E9 experiments quantify.
"""

from __future__ import annotations

import numpy as np


def d_drs(values: np.ndarray, rs_axis: np.ndarray) -> np.ndarray:
    """First numeric derivative along the rs axis (axis 0)."""
    return np.gradient(values, rs_axis, axis=0, edge_order=2)


def d2_drs2(values: np.ndarray, rs_axis: np.ndarray) -> np.ndarray:
    """Second numeric derivative along the rs axis (axis 0)."""
    return d_drs(d_drs(values, rs_axis), rs_axis)


def gradient_error_estimate(
    values: np.ndarray, rs_axis: np.ndarray, exact: np.ndarray
) -> dict[str, float]:
    """Error statistics of the numeric derivative against an exact one."""
    approx = d_drs(values, rs_axis)
    err = np.abs(approx - exact)
    finite = np.isfinite(err)
    if not finite.any():
        return {"max": float("nan"), "mean": float("nan"), "fraction_finite": 0.0}
    return {
        "max": float(err[finite].max()),
        "mean": float(err[finite].mean()),
        "fraction_finite": float(finite.mean()),
    }
