"""Condition objects: DFT exact conditions in their local form.

Each :class:`Condition` knows (i) which functionals it applies to and
(ii) how to build the local-condition predicate psi for a functional, as a
single relational atom over the functional's reduced inputs.  Derivatives
with respect to rs are computed symbolically (as XCEncoder does with
SymPy); the EC6 limit ``F_c(rs -> infinity)`` is approximated by
substituting rs = 100, following the paper and PB.

Conditions whose textbook form divides by rs are encoded multiplied
through by rs (sound since rs > 0 on the domain, and easier on interval
arithmetic); this is noted per condition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..expr.nodes import Rel
from ..functionals.base import Functional


@dataclass(frozen=True)
class Condition:
    """A DFT exact condition with its local-condition builder.

    Attributes
    ----------
    cid:
        Short identifier, ``EC1`` ... ``EC7`` (ordering of Section II).
    name:
        Human-readable name as in Table I.
    equation:
        The paper's equation number for the local condition.
    requires_exchange:
        True for the Lieb-Oxford pair, which needs F_xc = F_x + F_c and
        therefore only applies to functionals with both components
        (PBE, AM05, SCAN) -- the ``-`` entries of Table I.
    builder:
        ``builder(functional) -> Rel`` producing the local condition psi.
    """

    cid: str
    name: str
    equation: str
    requires_exchange: bool
    builder: Callable[[Functional], Rel]

    def applies_to(self, functional: Functional) -> bool:
        if not functional.has_correlation:
            return False
        if self.requires_exchange and not functional.has_exchange:
            return False
        return True

    def local_condition(self, functional: Functional) -> Rel:
        """The predicate psi that must hold on the whole input domain."""
        if not self.applies_to(functional):
            raise ValueError(f"{self.cid} does not apply to {functional.name}")
        return self.builder(functional)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Condition({self.cid}: {self.name})"
