"""DFT exact conditions (Section II of the paper) in local form."""

from .base import Condition
from .catalog import (
    CONDITIONS,
    EC1,
    EC2,
    EC3,
    EC4,
    EC5,
    EC6,
    EC7,
    PAPER_CONDITIONS,
    RS_INFINITY,
    applicable_pairs,
    get_condition,
)

__all__ = [
    "Condition", "CONDITIONS", "EC1", "EC2", "EC3", "EC4", "EC5", "EC6",
    "EC7", "PAPER_CONDITIONS", "RS_INFINITY", "applicable_pairs",
    "get_condition",
]
