"""The seven exact conditions of Pederson & Burke, in local form.

Section II of the paper; equation numbers refer to the paper's local
conditions.  All are expressed through the correlation enhancement factor
F_c(rs, s[, alpha]) and, for the Lieb-Oxford pair, F_xc = F_x + F_c.

==========  ===============================  ============================
condition   global statement                  local condition (psi)
==========  ===============================  ============================
EC1 (Eq 4)  Ec[n] <= 0                        F_c >= 0
EC2 (Eq 5)  (g-1)Ec[n_g] >= g(g-1)Ec[n]       dF_c/drs >= 0
EC3 (Eq 6)  dUc(lambda)/dlambda <= 0          d2F_c/drs2 >= -(2/rs) dF_c/drs
EC4 (Eq 7)  Uxc >= C_LO * integral            F_xc + rs dF_c/drs <= C_LO
EC5 (Eq 8)  Exc >= C_LO * integral            F_xc <= C_LO
EC6 (Eq 9)  Tc[n_g] upper bound               dF_c/drs <= (F_c(inf)-F_c)/rs
EC7 (Eq10)  Tc[n] <= -Ec[n] (conjectured)     dF_c/drs <= F_c/rs
==========  ===============================  ============================

EC3, EC6 and EC7 are encoded multiplied through by rs (> 0 on the domain).
EC6's limit F_c(infinity) is approximated as F_c|_{rs=100} (paper, Sec III-A).
"""

from __future__ import annotations

from ..expr import builder as b
from ..expr.derivative import derivative
from ..expr.nodes import Expr, Rel
from ..expr.substitute import substitute
from ..functionals import vars as V
from ..functionals.base import Functional
from .base import Condition

#: rs value substituted for the rs -> infinity limit in EC6 (follows PB)
RS_INFINITY = 100.0


def _fc(functional: Functional) -> Expr:
    return functional.fc()


def _dfc_drs(functional: Functional) -> Expr:
    return derivative(_fc(functional), V.RS)


def ec1_non_positivity(functional: Functional) -> Rel:
    """EC1: correlation energy non-positivity, F_c >= 0 (Equation 4)."""
    return _fc(functional).ge(0.0)


def ec2_scaling_inequality(functional: Functional) -> Rel:
    """EC2: Ec scaling inequality, dF_c/drs >= 0 (Equation 5)."""
    return _dfc_drs(functional).ge(0.0)


def ec3_uc_monotonicity(functional: Functional) -> Rel:
    """EC3: Uc(lambda) monotonicity (Equation 6).

    d2F_c/drs2 >= -(2/rs) dF_c/drs, encoded as
    rs * d2F_c/drs2 + 2 dF_c/drs >= 0.
    """
    dfc = _dfc_drs(functional)
    d2fc = derivative(dfc, V.RS)
    return b.add(b.mul(V.RS, d2fc), b.mul(2.0, dfc)).ge(0.0)


def ec4_lieb_oxford_uxc(functional: Functional) -> Rel:
    """EC4: Lieb-Oxford bound on Uxc (Equation 7).

    F_xc + rs dF_c/drs <= C_LO.
    """
    return b.add(functional.fxc(), b.mul(V.RS, _dfc_drs(functional))).le(V.C_LO)


def ec5_lieb_oxford_exc(functional: Functional) -> Rel:
    """EC5: Lieb-Oxford extension to Exc (Equation 8), F_xc <= C_LO."""
    return functional.fxc().le(V.C_LO)


def ec6_tc_upper_bound(functional: Functional) -> Rel:
    """EC6: Tc upper bound (Equation 9).

    dF_c/drs <= (F_c(inf) - F_c)/rs, encoded as
    rs * dF_c/drs + F_c - F_c|_{rs=RS_INFINITY} <= 0.
    """
    fc = _fc(functional)
    fc_inf = substitute(fc, {V.RS: RS_INFINITY})
    lhs = b.add(b.mul(V.RS, _dfc_drs(functional)), fc, b.neg(fc_inf))
    return lhs.le(0.0)


def ec7_conjectured_tc_bound(functional: Functional) -> Rel:
    """EC7: conjectured Tc upper bound (Equation 10).

    dF_c/drs <= F_c/rs, encoded as rs * dF_c/drs - F_c <= 0.
    """
    lhs = b.sub(b.mul(V.RS, _dfc_drs(functional)), _fc(functional))
    return lhs.le(0.0)


EC1 = Condition("EC1", "Ec non-positivity", "Eq. 4", False, ec1_non_positivity)
EC2 = Condition("EC2", "Ec scaling inequality", "Eq. 5", False, ec2_scaling_inequality)
EC3 = Condition("EC3", "Uc monotonicity", "Eq. 6", False, ec3_uc_monotonicity)
EC4 = Condition("EC4", "LO bound", "Eq. 7", True, ec4_lieb_oxford_uxc)
EC5 = Condition("EC5", "LO extension to Exc", "Eq. 8", True, ec5_lieb_oxford_exc)
EC6 = Condition("EC6", "Tc upper bound", "Eq. 9", False, ec6_tc_upper_bound)
EC7 = Condition("EC7", "Conjectured Tc upper bound", "Eq. 10", False, ec7_conjectured_tc_bound)

#: Table I row order
PAPER_CONDITIONS: tuple[Condition, ...] = (EC1, EC2, EC3, EC6, EC7, EC4, EC5)

#: lookup by id
CONDITIONS: dict[str, Condition] = {c.cid: c for c in (EC1, EC2, EC3, EC4, EC5, EC6, EC7)}


def get_condition(cid: str) -> Condition:
    try:
        return CONDITIONS[cid.upper()]
    except KeyError:
        raise KeyError(f"unknown condition {cid!r} (known: {sorted(CONDITIONS)})") from None


def applicable_pairs(functionals=None, conditions=None):
    """All (functional, condition) pairs evaluated in the paper: 31 of 35."""
    from ..functionals.registry import paper_functionals
    functionals = functionals or paper_functionals()
    conditions = conditions or PAPER_CONDITIONS
    return [
        (f, c) for f in functionals for c in conditions if c.applies_to(f)
    ]
