"""The append-only JSONL durability discipline, in one place.

Three subsystems persist line-oriented JSON with the same crash
contract -- the campaign store's JSONL backend, the service audit log
and the trace sink: one JSON object per line, flushed per write, and a
line cut short by SIGTERM/kill mid-write is tolerated.  Tolerated means
two things:

* **readers skip the truncated tail** -- a line that fails to parse is
  dropped, never propagated as corruption;
* **reopening seals it** -- before appending, a file whose last byte is
  not a newline gets one, so the next record starts clean instead of
  merging into the corrupt tail.

This module is the single implementation both halves share; the store,
the audit log and the trace sink are thin layers over it.
"""

from __future__ import annotations

import json
import os
import threading
from typing import IO, Iterator

__all__ = ["JsonlWriter", "iter_jsonl", "open_append_sealed", "read_jsonl"]


def iter_jsonl(path) -> Iterator[dict]:
    """Yield each parsed JSON line of ``path``, skipping a truncated tail.

    Blank lines (including the seal newline a reopen writes) are skipped;
    a line that fails to parse -- the classic kill-mid-write artifact --
    is skipped rather than raised, so an interrupted run's file is always
    loadable.  A missing file yields nothing.
    """
    if not os.path.exists(path):
        return
    with open(path) as handle:
        for line in handle.read().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue  # truncated tail from an interrupted write


def read_jsonl(path) -> list[dict]:
    """:func:`iter_jsonl`, materialised."""
    return list(iter_jsonl(path))


def open_append_sealed(path) -> IO[str]:
    """Open ``path`` for appending, sealing a truncated last line first.

    If the file exists and its final byte is not a newline (a previous
    writer was killed mid-line), a single ``"\\n"`` is written before the
    handle is returned, so the caller's first record cannot merge into
    the corrupt tail.
    """
    needs_newline = False
    if os.path.exists(path):
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                needs_newline = handle.read(1) != b"\n"
    handle = open(path, "a")
    if needs_newline:
        handle.write("\n")
        handle.flush()
    return handle


class JsonlWriter:
    """Locked, flushed-per-line JSONL appender.

    ``fsync=True`` additionally syncs every line to disk -- the campaign
    store's durability level (a completed cell must survive power loss);
    the audit log and trace sink settle for flush (survive the *process*
    dying, which is the failure mode their tests exercise).
    """

    def __init__(self, path, *, fsync: bool = False):
        self.path = str(path)
        self._fsync = fsync
        self._lock = threading.Lock()
        self._handle = open_append_sealed(self.path)

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()
