"""Span-based structured tracing across CLI, campaign, workers, solver.

One *trace* is one JSONL file: a header line followed by span records,
appended through :class:`~repro.obs.jsonl.JsonlWriter` (flushed per
span, truncated tail skipped on read) -- a SIGINT'd campaign leaves a
partial trace that still parses and reopens clean.

The design splits along the process boundary the campaign engine
already has:

* the **parent** holds the :class:`Tracer`: it mints span ids, stamps
  monotonic timestamps and writes finished spans to the sink.  A
  tracer is installed for a region of code with :func:`activate_tracer`
  and read with :func:`current_tracer`; the default is
  :data:`NULL_TRACER`, whose ``enabled`` flag lets hot paths skip all
  tracing work with one attribute check -- tracing off costs a branch;
* **workers** cannot reach the sink (they live in other processes), so
  a chunk's dispatch args carry a pickled :class:`SpanContext` and the
  worker records its spans into a :class:`SpanRecorder` -- plain dicts
  stamped with the worker pid, returned alongside the chunk result and
  re-emitted into the sink by the parent's absorb.  Because every
  record names its own parent span, reassembly is insensitive to
  completion order: out-of-order chunk results and work-stealing
  re-enqueues interleave records in the file, and the tree is rebuilt
  from the ids (:func:`repro.obs.export.span_tree`).

``CLOCK_MONOTONIC`` is shared across processes on Linux, so parent and
worker timestamps land on one timeline without offset negotiation (see
:mod:`.clock`).
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from dataclasses import dataclass

from .clock import mono_now, wall_now
from .jsonl import JsonlWriter
from .logging import run_id as _process_run_id

__all__ = [
    "NULL_TRACER",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "TRACE_SCHEMA_VERSION",
    "TraceSink",
    "Tracer",
    "activate_tracer",
    "current_tracer",
]

#: bump when the record layout changes; readers refuse mismatched traces
TRACE_SCHEMA_VERSION = 1

_ids = itertools.count(1)


def _new_id() -> str:
    """Span ids unique across the pool: worker pid + process-local counter."""
    return f"{os.getpid():x}.{next(_ids):x}"


@dataclass(frozen=True)
class SpanContext:
    """The picklable handle a chunk carries into a worker process."""

    trace_id: str
    span_id: str
    run_id: str


class Span:
    """One timed operation; finished spans become one JSONL record."""

    __slots__ = ("span_id", "parent_id", "name", "cat", "start", "attrs")

    def __init__(self, name, cat, parent_id, attrs):
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.start = mono_now()
        self.attrs = attrs

    def record(self, run_id: str, *, end: float | None = None) -> dict:
        rec = {
            "kind": "span",
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.cat,
            "ts": self.start,
            "dur": (end if end is not None else mono_now()) - self.start,
            "pid": os.getpid(),
            "run_id": run_id,
        }
        if self.attrs:
            rec["attrs"] = self.attrs
        return rec


class TraceSink:
    """Append-only JSONL span file; writes the header line on open."""

    def __init__(self, path):
        self.path = str(path)
        self.trace_id = _new_id()
        self._writer = JsonlWriter(self.path)
        self._writer.write(
            {
                "kind": "header",
                "v": TRACE_SCHEMA_VERSION,
                "trace_id": self.trace_id,
                "run_id": _process_run_id(),
                "wall_start": wall_now(),
                "mono_start": mono_now(),
                "pid": os.getpid(),
            }
        )

    def emit(self, record: dict) -> None:
        self._writer.write(record)

    def close(self) -> None:
        self._writer.close()


class Tracer:
    """Parent-side tracer writing finished spans to a :class:`TraceSink`."""

    enabled = True

    def __init__(self, sink: TraceSink):
        self.sink = sink
        self.run_id = _process_run_id()
        #: the default parent for spans begun without one -- the CLI sets
        #: this to its command span, so campaign spans opened deep inside
        #: library code still land under the command that ran them
        self.root: Span | None = None

    # -- span lifecycle ----------------------------------------------------
    def begin(self, name: str, cat: str, parent: "Span | SpanContext | None" = None,
              **attrs) -> Span:
        if parent is None:
            parent = self.root
        parent_id = None
        if parent is not None:
            parent_id = parent.span_id
        return Span(name, cat, parent_id, attrs)

    def finish(self, span: Span, **attrs) -> None:
        if attrs:
            span.attrs.update(attrs)
        self.sink.emit(span.record(self.run_id))

    @contextmanager
    def span(self, name: str, cat: str, parent=None, **attrs):
        span = self.begin(name, cat, parent, **attrs)
        try:
            yield span
        finally:
            self.finish(span)

    # -- worker plumbing ---------------------------------------------------
    def context(self, span: Span) -> SpanContext:
        """The pickled handle that makes ``span`` a cross-process parent."""
        return SpanContext(self.sink.trace_id, span.span_id, self.run_id)

    def emit_records(self, records) -> None:
        """Reattach a worker's recorded spans to this trace (absorb side)."""
        for record in records:
            self.sink.emit(record)


class _NullSpan:
    __slots__ = ()
    span_id = None
    attrs: dict = {}


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: every operation is a no-op.

    ``enabled`` is False so hot paths can skip span construction with a
    single attribute check -- the only cost tracing-off leaves behind.
    """

    enabled = False
    run_id = ""

    def begin(self, name, cat, parent=None, **attrs):
        return _NULL_SPAN

    def finish(self, span, **attrs):
        return None

    @contextmanager
    def span(self, name, cat, parent=None, **attrs):
        yield _NULL_SPAN

    def context(self, span):
        return None

    def emit_records(self, records):
        return None


NULL_TRACER = NullTracer()

_active: list = []


def current_tracer():
    """The innermost active tracer, or :data:`NULL_TRACER`."""
    return _active[-1] if _active else NULL_TRACER


@contextmanager
def activate_tracer(tracer):
    """Install ``tracer`` as the ambient tracer for the enclosed region."""
    _active.append(tracer)
    try:
        yield tracer
    finally:
        _active.pop()


class SpanRecorder:
    """Worker-side tracer: buffers span records for the return trip.

    Built from the :class:`SpanContext` that rode in with the chunk;
    every span recorded here is stamped with this worker's pid and
    parented (directly or transitively) under the context's span, so the
    parent's absorb can drop the records straight into the sink.
    """

    enabled = True

    def __init__(self, ctx: SpanContext):
        self.ctx = ctx
        self.records: list[dict] = []

    def begin(self, name: str, cat: str, parent=None, **attrs) -> Span:
        parent_id = self.ctx.span_id if parent is None else parent.span_id
        return Span(name, cat, parent_id, attrs)

    def finish(self, span: Span, **attrs) -> None:
        if attrs:
            span.attrs.update(attrs)
        self.records.append(span.record(self.ctx.run_id))

    @contextmanager
    def span(self, name: str, cat: str, parent=None, **attrs):
        span = self.begin(name, cat, parent, **attrs)
        try:
            yield span
        finally:
            self.finish(span)
