"""The metrics core: histograms, labeled counters/gauges, Prometheus text.

This module is the single home of the measurement machinery (the
service's ``/v1/metrics`` assembler re-exports from here, API
unchanged):

* :class:`Histogram` -- the fixed log-spaced latency histogram
  (half-decade buckets, 100 us to ~316 s).  Bucket counts are
  *per-bucket*, not cumulative, so they always sum to the observation
  count; the Prometheus renderer cumulates on the way out;
* :class:`Counter` / :class:`Gauge` / :class:`MetricRegistry` --
  labeled metrics usable from the campaign engine with no server
  attached (plain dict mutation, no locks: the campaign drive loop is
  single-threaded, and the service mutates only on its event loop);
* :func:`prometheus_exposition` -- renders the ``/v1/metrics`` JSON
  document as Prometheus text exposition format (version 0.0.4), so
  standard scrapers work against ``/v1/metrics?format=prometheus``.
"""

from __future__ import annotations

import math
import re

__all__ = [
    "BUCKET_EDGES",
    "CONTENT_TYPE_PROMETHEUS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "REGISTRY",
    "lint_exposition",
    "prometheus_exposition",
]

#: the content type Prometheus scrapers expect for text exposition
CONTENT_TYPE_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

# half-decade log spacing: 1e-4, 3.16e-4, 1e-3, ... 1e2, 3.16e2 seconds
BUCKET_EDGES: tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 2.0), 10) for exponent in range(-8, 6)
)


class Histogram:
    """Fixed-bucket latency histogram (seconds)."""

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self):
        self.counts = [0] * (len(BUCKET_EDGES) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        index = 0
        for edge in BUCKET_EDGES:
            if seconds <= edge:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.sum += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper edge of the bucket
        holding the q-th observation); exact enough to gate tail latency
        at half-decade resolution, and cheap enough to compute per scrape.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(BUCKET_EDGES):
                    return BUCKET_EDGES[index]
                return self.max
        return self.max

    def snapshot(self) -> dict:
        buckets = {}
        for index, edge in enumerate(BUCKET_EDGES):
            if self.counts[index]:
                buckets[f"le_{edge:g}"] = self.counts[index]
        if self.counts[-1]:
            buckets["inf"] = self.counts[-1]
        return {
            "buckets": buckets,
            "bucket_edges": [f"{edge:g}" for edge in BUCKET_EDGES],
            "count": self.count,
            "sum": round(self.sum, 9),
            "min": round(self.min, 9) if self.count else None,
            "max": round(self.max, 9) if self.count else None,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }


# ---------------------------------------------------------------------------
# labeled counters / gauges (no server required)
# ---------------------------------------------------------------------------

def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing labeled counter."""

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help = help_text
        self.values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        self.values[key] = self.values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self.values.get(_label_key(labels), 0.0)


class Gauge:
    """Labeled point-in-time value."""

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help = help_text
        self.values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        self.values[_label_key(labels)] = value

    def value(self, **labels) -> float:
        return self.values.get(_label_key(labels), 0.0)


class MetricRegistry:
    """A named family of counters and gauges; creation is idempotent.

    The campaign engine records into the process-wide :data:`REGISTRY`
    without caring whether anything ever scrapes it; the service folds
    the same registry into its exposition.
    """

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge] = {}

    def counter(self, name: str, help_text: str = "") -> Counter:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Counter(name, help_text)
        elif not isinstance(metric, Counter):
            raise ValueError(f"metric {name!r} already registered as a gauge")
        return metric

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Gauge(name, help_text)
        elif not isinstance(metric, Gauge):
            raise ValueError(f"metric {name!r} already registered as a counter")
        return metric

    def snapshot(self) -> dict:
        """JSON-safe dump: name -> {labels-repr: value}."""
        out: dict[str, dict] = {}
        for name, metric in sorted(self._metrics.items()):
            out[name] = {
                ",".join(f"{k}={v}" for k, v in key) or "_": value
                for key, value in sorted(metric.values.items())
            }
        return out

    def exposition(self) -> str:
        lines: list[str] = []
        for name, metric in sorted(self._metrics.items()):
            kind = "counter" if isinstance(metric, Counter) else "gauge"
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {kind}")
            for key, value in sorted(metric.values.items()):
                lines.append(_sample(name, dict(key), value))
        return "\n".join(lines) + "\n" if lines else ""


#: process-wide default registry (campaign engine counters land here)
REGISTRY = MetricRegistry()


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _escape_label(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt_value(value) -> str:
    if value is None:
        return "NaN"
    if value is True or value is False:
        return "1" if value else "0"
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def _sample(name: str, labels: dict | None, value) -> str:
    if labels:
        body = ",".join(
            f'{key}="{_escape_label(val)}"' for key, val in sorted(labels.items())
        )
        return f"{name}{{{body}}} {_fmt_value(value)}"
    return f"{name} {_fmt_value(value)}"


def _histogram_block(name: str, labels: dict, snapshot: dict) -> list[str]:
    """Cumulate a :meth:`Histogram.snapshot` into Prometheus buckets."""
    lines = []
    cumulative = 0
    for edge in snapshot.get("bucket_edges", []):
        cumulative += snapshot["buckets"].get(f"le_{edge}", 0)
        lines.append(_sample(f"{name}_bucket", {**labels, "le": edge}, cumulative))
    lines.append(
        _sample(f"{name}_bucket", {**labels, "le": "+Inf"}, snapshot["count"])
    )
    lines.append(_sample(f"{name}_sum", labels, snapshot["sum"]))
    lines.append(_sample(f"{name}_count", labels, snapshot["count"]))
    return lines


def prometheus_exposition(doc: dict, registry: MetricRegistry | None = None) -> str:
    """Render the ``/v1/metrics`` JSON document as text exposition.

    The mapping is explicit rather than a generic dict flattener: every
    exported family keeps a stable name and type, which is the contract
    scrape configs depend on.  ``registry`` (default: the process-wide
    :data:`REGISTRY`) is appended so campaign-engine counters surface
    through the same scrape.
    """
    lines: list[str] = []

    def family(name: str, kind: str, help_text: str, samples: list[str]) -> None:
        if not samples:
            return
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    family(
        "repro_uptime_seconds", "gauge", "Seconds since the service started.",
        [_sample("repro_uptime_seconds", None, doc["server"]["uptime_seconds"])],
    )
    requests = doc["requests"]
    family(
        "repro_requests_total", "counter", "HTTP requests handled.",
        [_sample("repro_requests_total", None, requests["total"])],
    )
    family(
        "repro_requests_by_status_total", "counter", "HTTP requests by status.",
        [
            _sample("repro_requests_by_status_total", {"status": status}, count)
            for status, count in requests["by_status"].items()
        ],
    )
    family(
        "repro_requests_by_route_total", "counter", "HTTP requests by route.",
        [
            _sample("repro_requests_by_route_total", {"route": route}, count)
            for route, count in requests["by_route"].items()
        ],
    )
    family(
        "repro_requests_deprecated_total", "counter",
        "Requests served on deprecated unversioned routes.",
        [_sample("repro_requests_deprecated_total", None, requests["deprecated"])],
    )
    family(
        "repro_auth_failures_total", "counter", "Rejected authentications.",
        [_sample("repro_auth_failures_total", None, doc["auth"]["failures"])],
    )
    family(
        "repro_rate_limited_total", "counter", "Requests throttled (429).",
        [_sample("repro_rate_limited_total", None, doc["rate_limit"]["throttled"])],
    )
    admission = doc["admission"]
    family(
        "repro_admission_queue_depth", "gauge", "Cells queued behind admission.",
        [_sample("repro_admission_queue_depth", None, admission["queue_depth"])],
    )
    family(
        "repro_admission_shed_total", "counter", "Jobs shed at admission (503).",
        [_sample("repro_admission_shed_total", None, admission["shed"])],
    )
    family(
        "repro_admission_draining_rejects_total", "counter",
        "Jobs rejected while draining.",
        [
            _sample(
                "repro_admission_draining_rejects_total", None,
                admission["draining_rejects"],
            )
        ],
    )
    jobs = doc["jobs"]
    family(
        "repro_jobs_submitted_total", "counter", "Jobs accepted.",
        [_sample("repro_jobs_submitted_total", None, jobs["submitted"])],
    )
    family(
        "repro_jobs_by_kind_total", "counter", "Jobs accepted by kind.",
        [
            _sample("repro_jobs_by_kind_total", {"kind": kind}, count)
            for kind, count in jobs["by_kind"].items()
        ],
    )
    family(
        "repro_jobs_active", "gauge", "Jobs not yet complete.",
        [_sample("repro_jobs_active", None, jobs["active"])],
    )
    cells = doc["cells"]
    family(
        "repro_cells_total", "counter", "Cells classified, by how they resolved.",
        [
            _sample("repro_cells_total", {"result": result}, cells[result])
            for result in ("computed", "cache", "coalesced")
        ],
    )
    pool = doc["pool"]
    family(
        "repro_pool_executing", "gauge", "Cells executing on the pool.",
        [_sample("repro_pool_executing", None, pool["executing"])],
    )
    family(
        "repro_pool_workers", "gauge", "Pool worker processes.",
        [_sample("repro_pool_workers", None, pool["workers"])],
    )
    family(
        "repro_pool_utilisation", "gauge", "Executing / max in-flight.",
        [_sample("repro_pool_utilisation", None, pool["utilisation"])],
    )
    family(
        "repro_store_keys", "gauge", "Keys in the campaign store.",
        [_sample("repro_store_keys", None, doc["store"]["keys"])],
    )
    lanes = doc["lanes"]
    lane_names = [name for name in lanes if isinstance(lanes[name], dict)]
    family(
        "repro_lane_queue_depth", "gauge", "Queued cells per QoS lane.",
        [
            _sample(
                "repro_lane_queue_depth", {"lane": lane},
                lanes[lane]["queue_depth"],
            )
            for lane in lane_names
        ],
    )
    family(
        "repro_lane_dispatched_total", "counter", "Cells dispatched per QoS lane.",
        [
            _sample(
                "repro_lane_dispatched_total", {"lane": lane},
                lanes[lane]["dispatched"],
            )
            for lane in lane_names
        ],
    )
    family(
        "repro_lane_preemptions_total", "counter",
        "Batch cells preempted by the interactive lane.",
        [_sample("repro_lane_preemptions_total", None, lanes["preemptions"])],
    )
    lane_wait = []
    for lane in lane_names:
        lane_wait.extend(
            _histogram_block(
                "repro_lane_wait_seconds", {"lane": lane},
                lanes[lane]["wait_seconds"],
            )
        )
    family(
        "repro_lane_wait_seconds", "histogram",
        "Submit-to-dispatch wait per QoS lane.", lane_wait,
    )
    submit = []
    for kind, snapshot in doc["latency"]["submit_seconds"].items():
        submit.extend(
            _histogram_block("repro_submit_latency_seconds", {"kind": kind}, snapshot)
        )
    family(
        "repro_submit_latency_seconds", "histogram",
        "Submit request latency by job kind.", submit,
    )

    text = "\n".join(lines) + "\n" if lines else ""
    registry = REGISTRY if registry is None else registry
    return text + registry.exposition()


#: one exposition line: metric name, optional {labels}, a value, an
#: optional timestamp -- the shape :func:`lint_exposition` enforces
_LABEL_VALUE = r"\"(?:[^\"\\]|\\.)*\""  # quoted, with \" \\ \n escapes
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=" + _LABEL_VALUE +
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=" + _LABEL_VALUE + r")*\})?"
    r" [^ ]+( [0-9]+)?$"
)


def lint_exposition(text: str) -> list[str]:
    """Problems in a text exposition; empty list means valid.

    A deliberately strict structural check (used by tests and the CI
    service-smoke job): every line is a comment (``# HELP`` / ``# TYPE``
    with a known type) or a well-formed sample, and every sample's
    metric name was introduced by a ``# TYPE`` line.
    """
    problems: list[str] = []
    typed: set[str] = set()
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            problems.append(f"line {number}: blank line inside exposition")
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {number}: malformed comment {line!r}")
            elif parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    problems.append(f"line {number}: malformed TYPE {line!r}")
                else:
                    typed.add(parts[2])
            continue
        if not _SAMPLE_RE.match(line):
            problems.append(f"line {number}: malformed sample {line!r}")
            continue
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            problems.append(f"line {number}: sample {name!r} has no # TYPE")
    return problems
