"""Structured diagnostics: one line per event, text or JSON.

Every diagnostic the CLI and the service used to ``print`` to stderr
goes through :func:`log_event` instead.  The default ``text`` mode
preserves the exact human-facing lines (CLI tests and operators grep
them); ``repro --log-json`` or ``REPRO_LOG=json`` switches every record
to a single JSON object per line::

    {"ts": 1754500000.123, "level": "warning", "run_id": "a1b2c3d4e5f6",
     "event": "campaign-interrupted", "text": "warning: ..."}

The ``run_id`` is minted once per process and is the join key across
the three observability streams: it is stamped into every log record,
every trace span (:mod:`.trace`) and every audit entry
(:mod:`repro.service.audit`), so "what did run X do" is one grep.
"""

from __future__ import annotations

import json
import os
import sys

from .clock import wall_now

__all__ = ["configure_logging", "json_mode", "log_event", "run_id"]

#: minted lazily so fork-pool workers inherit the parent's id
_RUN_ID: str | None = None
_JSON_MODE: bool | None = None


def run_id() -> str:
    """This process's run id: 12 hex chars, stable for the process life."""
    global _RUN_ID
    if _RUN_ID is None:
        _RUN_ID = os.urandom(6).hex()
    return _RUN_ID


def configure_logging(*, json_logs: bool | None = None) -> None:
    """Pick the output mode: explicit flag > ``REPRO_LOG=json`` > text."""
    global _JSON_MODE
    if json_logs is not None:
        _JSON_MODE = bool(json_logs)
    else:
        _JSON_MODE = os.environ.get("REPRO_LOG", "").lower() == "json"


def json_mode() -> bool:
    if _JSON_MODE is None:
        configure_logging()
    return bool(_JSON_MODE)


def log_event(
    event: str,
    text: str,
    *,
    level: str = "info",
    stream=None,
    **fields,
) -> None:
    """Emit one diagnostic record to stderr (or ``stream``).

    ``text`` is the exact line text mode prints -- callers keep their
    historical wording so operators' greps and the CLI tests stay
    stable.  JSON mode drops the prose in favour of the machine fields:
    ``ts``/``level``/``run_id``/``event`` plus whatever ``fields`` the
    call site attaches, with ``text`` preserved as one more field.
    """
    out = stream if stream is not None else sys.stderr
    if json_mode():
        record = {
            "ts": wall_now(),
            "level": level,
            "run_id": run_id(),
            "event": event,
            "text": text,
        }
        record.update(fields)
        print(json.dumps(record, sort_keys=True), file=out, flush=True)
    else:
        print(text, file=out, flush=True)
