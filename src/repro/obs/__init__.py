"""Observability core shared by the CLI, campaign engine and service.

This package is the single home for the cross-cutting telemetry
machinery (PR 10):

* :mod:`.clock` -- the sanctioned time sources.  Traced modules read
  wall/monotonic time through these helpers so span timestamps stay
  mutually consistent (``repro check`` rule REP106 polices direct
  ``time.*`` calls outside this module);
* :mod:`.jsonl` -- the append-only JSONL durability discipline (skip a
  truncated tail on read, seal it on reopen) extracted from the
  campaign store and the audit log, now also backing the trace sink;
* :mod:`.trace` -- span-based structured tracing: a no-op
  :class:`~repro.obs.trace.Tracer` by default, JSONL span sink, pickled
  span contexts that ride chunk dispatch into pool workers and come
  back with the results;
* :mod:`.export` -- Chrome trace-event export (Perfetto-loadable) and
  the ``repro trace summary`` analytics (critical path, self-time,
  pool-utilization timeline);
* :mod:`.metrics` -- the log-spaced histogram plus labeled
  counters/gauges, usable without a server, and the Prometheus text
  exposition for ``/v1/metrics``;
* :mod:`.logging` -- structured one-line JSON diagnostics
  (``repro --log-json`` / ``REPRO_LOG=json``) with a per-process
  ``run_id`` that joins the log, trace and audit streams.
"""

from .trace import (
    NULL_TRACER,
    SpanContext,
    Tracer,
    TraceSink,
    activate_tracer,
    current_tracer,
)

__all__ = [
    "NULL_TRACER",
    "SpanContext",
    "TraceSink",
    "Tracer",
    "activate_tracer",
    "current_tracer",
]
