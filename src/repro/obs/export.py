"""Trace-file analytics: Chrome export, summaries, lint.

Everything here is a pure function over a loaded trace -- the
``repro trace`` CLI subcommands are thin wrappers.  A trace file is the
JSONL stream :class:`~repro.obs.trace.TraceSink` writes: one header
line, then span records in *completion* order (a child span finishes --
and lands in the file -- before its parent, and pool workers interleave
arbitrarily), so every consumer below rebuilds structure from the span
ids rather than file order.
"""

from __future__ import annotations

import json

from .jsonl import read_jsonl
from .trace import TRACE_SCHEMA_VERSION

__all__ = [
    "chrome_trace",
    "lint_trace",
    "load_trace",
    "span_tree",
    "summarize_trace",
]


def load_trace(path) -> tuple[dict, list[dict]]:
    """Read a trace file into ``(header, spans)``.

    Tolerates a truncated tail (SIGINT mid-span) like every JSONL reader
    in this codebase; raises :class:`ValueError` on a missing/foreign
    header or a schema-version mismatch.
    """
    header: dict | None = None
    spans: list[dict] = []
    for record in read_jsonl(path):
        kind = record.get("kind")
        if kind == "header":
            if header is None:
                header = record
        elif kind == "span":
            spans.append(record)
    if header is None:
        raise ValueError(f"{path}: not a repro trace (no header record)")
    if header.get("v") != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: trace schema v{header.get('v')} does not match "
            f"v{TRACE_SCHEMA_VERSION}"
        )
    return header, spans


def span_tree(spans) -> tuple[list[dict], dict[str, list[dict]]]:
    """``(roots, children-by-parent-id)``, rebuilt from span ids.

    Children lists are sorted by start time, so traversals are
    deterministic regardless of the completion order the file recorded.
    """
    children: dict[str, list[dict]] = {}
    ids = {span["span"] for span in spans}
    roots = []
    for span in spans:
        parent = span.get("parent")
        if parent is None or parent not in ids:
            roots.append(span)
        else:
            children.setdefault(parent, []).append(span)
    for sibling in children.values():
        sibling.sort(key=lambda span: span["ts"])
    roots.sort(key=lambda span: span["ts"])
    return roots, children


# ---------------------------------------------------------------------------
# Chrome trace-event export (Perfetto / chrome://tracing)
# ---------------------------------------------------------------------------

def chrome_trace(header: dict, spans: list[dict]) -> dict:
    """Convert to the Chrome trace-event JSON object format.

    Spans become complete (``"ph": "X"``) events on a microsecond
    timeline starting at the trace header; each OS process becomes one
    Chrome "process" row named via metadata events, so Perfetto shows
    the parent drive loop above one swimlane per pool worker.
    """
    t0 = header["mono_start"]
    parent_pid = header.get("pid")
    events: list[dict] = []
    for pid in sorted({span["pid"] for span in spans}):
        name = "repro" if pid == parent_pid else f"pool worker {pid}"
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": pid,
                "args": {"name": name},
            }
        )
    for span in spans:
        args = {"span": span["span"], "run_id": span.get("run_id", "")}
        if span.get("parent"):
            args["parent"] = span["parent"]
        args.update(span.get("attrs", ()))
        events.append(
            {
                "name": span["name"],
                "cat": span["cat"],
                "ph": "X",
                "ts": (span["ts"] - t0) * 1e6,
                "dur": span["dur"] * 1e6,
                "pid": span["pid"],
                "tid": span["pid"],
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": header.get("trace_id", ""),
            "run_id": header.get("run_id", ""),
        },
    }


# ---------------------------------------------------------------------------
# summary analytics
# ---------------------------------------------------------------------------

def _self_seconds(span, children) -> float:
    child_total = sum(c["dur"] for c in children.get(span["span"], ()))
    return max(0.0, span["dur"] - child_total)


def critical_path(spans) -> list[dict]:
    """The chain of spans that determined the trace's end time.

    From the earliest root, repeatedly descend into the child whose end
    time is latest -- under nesting, that child is what kept its parent
    (and transitively the whole run) alive.  The first hop's duration is
    therefore the traced wall-clock, and the chain names where it went.
    """
    roots, children = span_tree(spans)
    if not roots:
        return []
    path = [roots[0]]
    while True:
        kids = children.get(path[-1]["span"])
        if not kids:
            return path
        path.append(max(kids, key=lambda span: span["ts"] + span["dur"]))


def utilization_timeline(spans, *, slots: int = 60, cat: str = "chunk") -> list[int]:
    """Concurrent ``cat``-span count sampled at ``slots`` points."""
    work = [span for span in spans if span["cat"] == cat]
    if not work:
        return [0] * slots
    t_min = min(span["ts"] for span in work)
    t_max = max(span["ts"] + span["dur"] for span in work)
    width = max(t_max - t_min, 1e-9)
    counts = []
    for i in range(slots):
        t = t_min + (i + 0.5) * width / slots
        counts.append(
            sum(1 for span in work if span["ts"] <= t <= span["ts"] + span["dur"])
        )
    return counts


def _pair_of(span) -> tuple[str, str] | None:
    attrs = span.get("attrs", {})
    if "functional" in attrs and "condition" in attrs:
        return str(attrs["functional"]), str(attrs["condition"])
    return None


def pair_breakdown(spans) -> dict[tuple[str, str], dict[str, float]]:
    """Per-(functional, condition) compile vs solve seconds, worker-side."""
    breakdown: dict[tuple[str, str], dict[str, float]] = {}
    for span in spans:
        pair = _pair_of(span)
        if pair is None or span["cat"] not in ("compile", "solve"):
            continue
        row = breakdown.setdefault(pair, {"compile": 0.0, "solve": 0.0})
        row[span["cat"]] += span["dur"]
    return breakdown


def summarize_trace(header: dict, spans: list[dict], *, top: int = 10) -> str:
    """The ``repro trace summary`` text: one screenful of where time went."""
    lines: list[str] = []
    roots, children = span_tree(spans)
    t_min = min((span["ts"] for span in spans), default=header["mono_start"])
    t_max = max((span["ts"] + span["dur"] for span in spans), default=t_min)
    lines.append(
        f"trace {header.get('trace_id', '?')}  run {header.get('run_id', '?')}  "
        f"{len(spans)} spans  {t_max - t_min:.3f}s wall"
    )

    path = critical_path(spans)
    if path:
        lines.append("")
        lines.append(f"critical path ({path[0]['dur']:.3f}s):")
        for depth, span in enumerate(path):
            pid = f" [pid {span['pid']}]" if span["pid"] != header.get("pid") else ""
            lines.append(
                f"  {'  ' * depth}{span['name']}  {span['dur']:.3f}s{pid}"
            )

    ranked = sorted(
        spans, key=lambda span: _self_seconds(span, children), reverse=True
    )[:top]
    if ranked:
        lines.append("")
        lines.append(f"top {len(ranked)} spans by self-time:")
        for span in ranked:
            lines.append(
                f"  {_self_seconds(span, children):9.3f}s  {span['cat']:<9} "
                f"{span['name']}"
            )

    timeline = utilization_timeline(spans)
    peak = max(timeline)
    if peak > 0:
        glyphs = " .:-=+*#%@"
        lines.append("")
        lines.append(f"pool utilization (peak {peak} in-flight chunks):")
        bar = "".join(
            glyphs[min(len(glyphs) - 1, (level * (len(glyphs) - 1) + peak - 1) // peak)]
            for level in timeline
        )
        lines.append(f"  |{bar}|")

    breakdown = pair_breakdown(spans)
    if breakdown:
        lines.append("")
        lines.append("per-pair compile vs solve:")
        lines.append(f"  {'pair':<24} {'compile':>10} {'solve':>10}")
        for pair in sorted(breakdown, key=lambda p: -sum(breakdown[p].values())):
            row = breakdown[pair]
            lines.append(
                f"  {'/'.join(pair):<24} {row['compile']:>9.3f}s {row['solve']:>9.3f}s"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# lint: structural invariants CI gates on
# ---------------------------------------------------------------------------

def lint_trace(header: dict, spans: list[dict]) -> list[str]:
    """Structural problems in a trace; an empty list means clean.

    Checks the invariants the tracing layer promises: every span's
    parent id resolves (modulo the single root), timestamps are sane,
    and the per-cell span count matches the computed-cell count the
    campaign span recorded -- the cross-check CI's campaign-smoke job
    gates on.
    """
    problems: list[str] = []
    ids = {span["span"] for span in spans}
    if len(ids) != len(spans):
        problems.append("duplicate span ids")
    roots = [span for span in spans if span.get("parent") is None]
    if spans and len(roots) != 1:
        problems.append(f"expected exactly 1 root span, found {len(roots)}")
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent not in ids:
            problems.append(f"span {span['span']} has unresolved parent {parent}")
        if span["dur"] < 0:
            problems.append(f"span {span['span']} has negative duration")
    cells = sum(1 for span in spans if span["cat"] == "cell")
    declared = [
        span["attrs"]["computed"]
        for span in spans
        if span["cat"] == "campaign" and "computed" in span.get("attrs", {})
    ]
    if declared and sum(declared) != cells:
        problems.append(
            f"campaign spans report {sum(declared)} computed cells but the "
            f"trace holds {cells} cell spans"
        )
    return problems


def write_chrome_trace(header: dict, spans: list[dict], out_path) -> None:
    with open(out_path, "w") as handle:
        json.dump(chrome_trace(header, spans), handle)
        handle.write("\n")
