"""The sanctioned time sources for traced modules.

Span timestamps must be mutually comparable: parent-side dispatch spans
and worker-side solve spans are stitched into one timeline, so every
traced module reads time through these three helpers instead of calling
``time.*`` directly.  ``repro check`` rule REP106 enforces this --
direct ``time.time()`` / ``time.monotonic()`` / ``time.perf_counter()``
calls in traced modules are findings unless allowlisted as sanctioned
measurement sites that predate the obs layer.

On Linux ``time.monotonic`` is ``CLOCK_MONOTONIC``, which is shared by
every process since boot -- fork-pool workers and the parent therefore
read the *same* monotonic timeline, which is what makes cross-process
span stitching work without offset negotiation.  ``wall_now`` exists for
human-facing anchors only (log records, the trace header); it never
orders spans.
"""

from __future__ import annotations

import time

__all__ = ["mono_now", "perf_now", "wall_now"]


def wall_now() -> float:
    """Epoch seconds -- human-facing anchors (log ``ts``, trace header)."""
    return time.time()


def mono_now() -> float:
    """Monotonic seconds -- span start/end stamps, cross-process safe."""
    return time.monotonic()


def perf_now() -> float:
    """Highest-resolution monotonic counter -- short interval measurement."""
    return time.perf_counter()
