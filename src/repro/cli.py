"""Command-line interface: ``python -m repro <subcommand>``.

The CLI covers the library's main entry points so every experiment of the
paper -- and the numerical-issues extensions -- can be driven without
writing Python:

======================  =====================================================
``list``                registered functionals and exact conditions
``verify``              Algorithm 1 on one DFA-condition pair (+ region map)
``pb``                  the Pederson-Burke grid check on one pair
``compare``             PB vs XCVerifier consistency for one pair (Table II cell)
``table1`` / ``table2`` the paper's full tables (quick budgets by default)
``campaign``            arbitrary pair sets on the work-stealing scheduler
``numerics``            Section VI-C analyses: continuity, hazards, sensitivity
``serve``               the resident verification service (HTTP job server)
``submit``              submit a job to a running service and await it
``stats``               per-(functional, condition) timing summary of a store
``check``               static analysis: tape-IR verifier + REP lint rules
``trace``               inspect a recorded trace: summary, lint, Chrome export
======================  =====================================================

Observability: campaign commands accept ``--trace PATH`` (or the
``REPRO_TRACE`` env var) to record a span trace of the whole run --
CLI command, campaign drive loop, per-chunk dispatch, worker-side
compile/solve -- as append-only JSONL, safe to interrupt.  ``repro
trace summary|lint|export --chrome`` consume it.  ``repro --log-json``
(or ``REPRO_LOG=json``) switches every stderr diagnostic to one JSON
record per line; the process ``run_id`` joins log records, trace spans
and service audit entries.  All of it is purely observational: tables,
reports and store contents are byte-identical with tracing on or off.

Campaign commands accept ``--adaptive``: scheduling decisions (dispatch
order, per-pair split depth) are then driven by a cost model learned
from the ``--store`` timing history (cold-start structural prior
without one) -- a pure perf knob, results stay bit-identical.
``repro stats STORE`` prints the same timing aggregates the model
learns from.

``table1``, ``table2`` and ``campaign`` accept ``--store PATH`` (persist
every completed cell immediately; ``.jsonl`` selects the append-only
checkpoint format, ``.sqlite``/``.sqlite3``/``.db`` SQLite; other
suffixes are rejected) and ``--resume`` (serve
unchanged cells from the store).  An interrupt (SIGINT / Ctrl-C) exits
with status 130 after printing the partial table; everything completed
is already in the store, so re-running with ``--resume`` continues where
the interrupted run stopped.

Exit status: 0 on success, 1 for usage errors (unknown functional or
condition, inapplicable pair), 2 for argparse-level errors, 130 when
interrupted.  ``check`` is the exception: it exits 1 when findings
exist (each printed as a one-line diagnostic) and 2 for *any* usage
error -- a bad ``--rule`` id, a missing path, an unknown corpus slice.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager as _contextmanager
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XCVerifier reproduction: verify DFT exact conditions "
        "for density functional approximations.",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit stderr diagnostics as one JSON record per line "
        "(ts/level/run_id/event; same as REPRO_LOG=json)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list functionals and conditions")
    p_list.add_argument(
        "--paper-only",
        action="store_true",
        help="restrict to the five DFAs of the paper's evaluation",
    )

    p_verify = sub.add_parser("verify", help="run Algorithm 1 on one pair")
    _add_pair_args(p_verify)
    p_verify.add_argument("--budget", type=int, default=400, help="ICP steps per solver call")
    p_verify.add_argument(
        "--global-budget", type=int, default=50_000, help="total ICP steps for the run"
    )
    p_verify.add_argument(
        "--threshold", type=float, default=0.05, help="split threshold t of Algorithm 1"
    )
    p_verify.add_argument("--delta", type=float, default=1e-5, help="solver delta-weakening")
    p_verify.add_argument(
        "--newton", action="store_true", help="enable the interval-Newton contractor"
    )
    p_verify.add_argument(
        "--backend", choices=("batch", "tape", "walk"), default="batch",
        help="solver execution strategy (bit-identical; perf knob)",
    )
    p_verify.add_argument(
        "--batch-size", type=int, default=256,
        help="boxes per frontier batch (backend=batch)",
    )
    p_verify.add_argument(
        "--map", dest="map_resolution", type=int, default=0,
        help="print an ASCII region map at the given resolution",
    )
    p_verify.add_argument(
        "--json", dest="json_path", default=None,
        help="write the full report (regions included) as JSON",
    )
    p_verify.add_argument(
        "--csv", dest="csv_path", default=None,
        help="write the region list as CSV",
    )
    _add_trace_arg(p_verify)

    p_pb = sub.add_parser("pb", help="run the Pederson-Burke grid check on one pair")
    _add_pair_args(p_pb)
    p_pb.add_argument("--points", type=int, default=201, help="grid points per axis")
    p_pb.add_argument(
        "--map", dest="map_resolution", type=int, default=0,
        help="print an ASCII violation map at the given resolution",
    )

    p_cmp = sub.add_parser("compare", help="PB vs XCVerifier consistency (one Table II cell)")
    _add_pair_args(p_cmp)
    p_cmp.add_argument("--budget", type=int, default=400)
    p_cmp.add_argument("--global-budget", type=int, default=50_000)
    p_cmp.add_argument("--points", type=int, default=201)

    p_t1 = sub.add_parser("table1", help="reproduce Table I (all pairs)")
    p_t1.add_argument("--budget", type=int, default=250, help="ICP steps per solver call")
    p_t1.add_argument(
        "--global-budget", type=int, default=10_000,
        help="total ICP steps per pair (quick default; the bench uses more)",
    )
    p_t1.add_argument(
        "--json", dest="json_path", default=None,
        help="write the matrix as JSON (CI-diffable)",
    )
    p_t1.add_argument(
        "--markdown", dest="markdown_path", default=None,
        help="write the matrix as GitHub Markdown",
    )
    _add_campaign_args(p_t1)

    p_t2 = sub.add_parser("table2", help="reproduce Table II (PB consistency)")
    p_t2.add_argument("--budget", type=int, default=250)
    p_t2.add_argument("--global-budget", type=int, default=10_000)
    p_t2.add_argument("--points", type=int, default=201)
    _add_campaign_args(p_t2)

    p_camp = sub.add_parser(
        "campaign",
        help="run an arbitrary pair set on the work-stealing campaign engine",
    )
    p_camp.add_argument("--budget", type=int, default=250, help="ICP steps per solver call")
    p_camp.add_argument(
        "--global-budget", type=int, default=10_000, help="total ICP steps per pair"
    )
    p_camp.add_argument(
        "--threshold", type=float, default=0.05, help="split threshold t of Algorithm 1"
    )
    p_camp.add_argument(
        "--levels", type=int, default=0,
        help="pre-split every pair's domain this many levels for fan-out",
    )
    p_camp.add_argument(
        "--steal-depth", type=int, default=0,
        help="spill splits above this depth back to the shared queue",
    )
    p_camp.add_argument(
        "--order", choices=("dfs", "widest"), default="dfs",
        help="work-queue discipline inside each unit",
    )
    p_camp.add_argument(
        "--json", dest="json_path", default=None,
        help="write all reports as one campaign JSON document",
    )
    _add_campaign_args(p_camp)

    p_num = sub.add_parser(
        "numerics", help="Section VI-C numerical-issues analyses"
    )
    p_num.add_argument(
        "-f", "--functional", default=None,
        help="single-pair mode: analyse one DFA (incompatible with --all)",
    )
    p_num.add_argument(
        "--check",
        default=None,
        help="comma-separated subset of {continuity, hazards, sensitivity} "
        "(default: continuity,hazards for one pair; all three for a campaign)",
    )
    p_num.add_argument(
        "--component", default=None, choices=("fc", "fx", "fxc"),
        help="which enhancement factor to analyse (single-pair mode, "
        "default fc; campaigns take --components)",
    )
    p_num.add_argument(
        "--ieee", action="store_true",
        help="hazard reachability under np.where (both-branch) semantics "
        "(single-pair mode; campaigns always run both semantics)",
    )
    # campaign mode: sweep whole functional families on the shared
    # work-stealing pool, persisting cells to the content-hash store
    p_num.add_argument(
        "--all", action="store_true",
        help="campaign mode: sweep every registered functional "
        "(narrow with --functionals)",
    )
    p_num.add_argument(
        "--components", default=None,
        help='comma-separated components for campaign mode, e.g. "fc,fx" '
        "(default fc)",
    )
    p_num.add_argument(
        "--json", dest="json_path", default=None,
        help="write the Table III aggregation as JSON (campaign mode)",
    )
    p_num.add_argument(
        "--functionals", default=None,
        help='comma-separated DFA subset for campaign mode, e.g. "SCAN,rSCAN" '
        "(implies campaign mode; default with --all: every registered DFA)",
    )
    p_num.add_argument(
        "--workers", type=int, default=0,
        help="process-pool width (0 = in-process sequential)",
    )
    p_num.add_argument(
        "--store", dest="store_path", default=None,
        help="persist completed analysis cells here (*.jsonl = append-only "
        "checkpoints, *.sqlite/*.db = SQLite); written incrementally, "
        "safe to interrupt",
    )
    p_num.add_argument(
        "--resume", action="store_true",
        help="serve cells already in --store (matched by content hash) "
        "instead of recomputing them",
    )
    p_num.add_argument(
        "--adaptive", action=argparse.BooleanOptionalAction, default=None,
        help="cost-model-driven dispatch order (campaign mode; "
        "bit-identical perf knob)",
    )
    _add_trace_arg(p_num)

    p_serve = sub.add_parser(
        "serve",
        help="run the resident verification service (HTTP job server)",
    )
    p_serve.add_argument(
        "--store", dest="store_path", required=True,
        help="the service's result store (*.jsonl / *.sqlite); every "
        "completed cell persists here and is served as a cache hit "
        "forever after -- across restarts and by --resume CLI campaigns",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8642,
        help="TCP port (0 = ephemeral; the bound port is printed on startup)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="shared process-pool width for cell solves "
        "(0 = compute inline in the server process)",
    )
    p_serve.add_argument(
        "--tokens-file", dest="tokens_file", default=None,
        help="bearer-token table, one 'client_id:token' per line "
        "('#' comments); default: the REPRO_SERVICE_TOKENS env var "
        "(comma-separated entries), else anonymous mode",
    )
    p_serve.add_argument(
        "--rate", type=float, default=0.0,
        help="per-client submission rate limit in jobs/second "
        "(token bucket; 0 = unlimited)",
    )
    p_serve.add_argument(
        "--burst", type=int, default=None,
        help="token-bucket burst size (default: one second's worth of --rate)",
    )
    p_serve.add_argument(
        "--high-water", dest="high_water", type=int, default=0,
        help="queued-cell admission threshold: at this queue depth new "
        "submissions answer 503 + Retry-After (0 = never shed)",
    )
    p_serve.add_argument(
        "--audit-log", dest="audit_path", default=None,
        help="append-only JSONL audit log of submissions and auth "
        "failures (default: no audit log)",
    )
    p_serve.add_argument(
        "--qos-lanes", dest="qos_lanes",
        action=argparse.BooleanOptionalAction, default=True,
        help="dispatch interactive jobs (single-pair verify, small jobs) "
        "strictly before batch table sweeps, at cell granularity",
    )
    p_serve.add_argument(
        "--interactive-max-cells", dest="interactive_max_cells",
        type=int, default=2,
        help="jobs with at most this many cells ride the interactive lane "
        "(single-pair verify jobs always do)",
    )

    p_sub = sub.add_parser(
        "submit",
        help="submit a job to a running service and stream its progress",
    )
    p_sub.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="service base URL (repro serve prints it on startup)",
    )
    p_sub.add_argument(
        "--token", default=None,
        help="bearer token for authed servers "
        "(default: the REPRO_SERVICE_TOKEN env var)",
    )
    p_sub.add_argument(
        "--retries", type=int, default=5,
        help="extra submission attempts on 429/503, honouring Retry-After "
        "with bounded exponential backoff (0 = fail immediately)",
    )
    p_sub.add_argument(
        "--json", dest="json_path", default=None,
        help="write the rendered table/report JSON (identical format to "
        "the direct table1/numerics commands)",
    )
    p_sub.add_argument(
        "--raw-json", dest="raw_json_path", default=None,
        help="write the raw service result payload (cells + provenance)",
    )
    p_sub.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    job_sub = p_sub.add_subparsers(dest="job_kind", required=True)

    ps_verify = job_sub.add_parser("verify", help="one (functional, condition) pair")
    _add_pair_args(ps_verify)
    ps_verify.add_argument("--budget", type=int, default=400)
    ps_verify.add_argument("--global-budget", type=int, default=50_000)
    ps_verify.add_argument("--threshold", type=float, default=0.05)
    ps_verify.add_argument("--delta", type=float, default=1e-5)

    ps_t1 = job_sub.add_parser("table1", help="a Table I verification slice")
    ps_t1.add_argument("--functionals", default=None,
                       help='comma-separated DFA subset (default: paper DFAs)')
    ps_t1.add_argument("--conditions", default=None,
                       help='comma-separated condition subset (default: all)')
    ps_t1.add_argument("--budget", type=int, default=250)
    ps_t1.add_argument("--global-budget", type=int, default=10_000)

    ps_num = job_sub.add_parser("numerics", help="a numerics analysis slice")
    ps_num.add_argument("--functionals", default=None,
                        help="comma-separated DFA subset (default: all registered)")
    ps_num.add_argument("--components", default="fc",
                        help='comma-separated components, e.g. "fc,fx"')
    ps_num.add_argument("--check", default=None,
                        help="comma-separated subset of "
                        "{continuity, hazards, sensitivity} (default: all)")

    p_stats = sub.add_parser(
        "stats",
        help="per-(functional, condition) timing summary of a campaign store",
    )
    p_stats.add_argument(
        "store_path",
        help="an existing campaign store (*.jsonl / *.sqlite) -- the same "
        "timing history --adaptive learns its cost model from",
    )

    from .statan import all_rule_ids

    p_check = sub.add_parser(
        "check",
        help="static analysis: tape-IR verifier + repo-invariant lint rules",
    )
    p_check.add_argument(
        "paths", nargs="*",
        help="source files/dirs for the lint tier "
        "(default: the whole src/repro tree)",
    )
    p_check.add_argument(
        "--rule", dest="rules", action="append", choices=all_rule_ids(),
        metavar="ID",
        help="run only this rule id, repeatable (TAPE101-110, REP100-105); "
        "unknown ids are rejected at parse time",
    )
    p_check.add_argument(
        "--deep", type=int, default=0,
        help="TAPE108 abstract-interpretation refinement depth: number of "
        "per-axis domain halvings before a maybe-NaN site is reported "
        "(default 0; nightly CI uses 2)",
    )
    p_check.add_argument(
        "--functionals", default=None,
        help='comma-separated DFA slice of the tape corpus, e.g. "PBE,LYP" '
        "(default: the full registry)",
    )
    p_check.add_argument(
        "--conditions", default=None,
        help='comma-separated condition slice of the tape corpus, e.g. '
        '"EC1,EC6" (default: the full catalog)',
    )
    p_check.add_argument(
        "--derivatives", action="store_true",
        help="also verify the derivative tapes of each pair (slower)",
    )
    p_check.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="write the machine-readable report here ('-' = stdout)",
    )

    p_trace = sub.add_parser(
        "trace",
        help="inspect a recorded span trace (see --trace on campaign commands)",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    pt_summary = trace_sub.add_parser(
        "summary",
        help="critical path, top spans by self-time, pool utilization, "
        "per-pair compile/solve breakdown",
    )
    pt_summary.add_argument("trace_file", help="a trace recorded with --trace")
    pt_summary.add_argument(
        "--top", type=int, default=10, help="spans in the self-time ranking"
    )
    pt_export = trace_sub.add_parser(
        "export",
        help="convert to Chrome trace-event JSON (load in ui.perfetto.dev "
        "or chrome://tracing)",
    )
    pt_export.add_argument("trace_file", help="a trace recorded with --trace")
    pt_export.add_argument(
        "--chrome", dest="chrome_path", required=True, metavar="PATH",
        help="write the Chrome trace-event JSON here ('-' = stdout)",
    )
    pt_lint = trace_sub.add_parser(
        "lint",
        help="check structural invariants (span parentage, cell counts); "
        "exit 1 on problems",
    )
    pt_lint.add_argument("trace_file", help="a trace recorded with --trace")
    return parser


def _add_pair_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-f", "--functional", required=True, help='e.g. "PBE"')
    parser.add_argument("-c", "--condition", required=True, help='e.g. "EC1"')


def _add_trace_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", dest="trace_path", default=None, metavar="PATH",
        help="record a span trace of this run as append-only JSONL "
        "(default: the REPRO_TRACE env var; inspect with 'repro trace')",
    )


def _add_campaign_args(parser: argparse.ArgumentParser) -> None:
    _add_trace_arg(parser)
    parser.add_argument(
        "--functionals", default=None,
        help='comma-separated DFA subset, e.g. "PBE,LYP" (default: all paper DFAs)',
    )
    parser.add_argument(
        "--conditions", default=None,
        help='comma-separated condition subset, e.g. "EC1,EC6" (default: all)',
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="process-pool width (0 = in-process sequential)",
    )
    parser.add_argument(
        "--store", dest="store_path", default=None,
        help="persist completed cells here (*.jsonl = append-only checkpoints, "
        "*.sqlite/*.db = SQLite); written incrementally, safe to interrupt",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="serve cells already in --store (matched by content hash) "
        "instead of recomputing them",
    )
    parser.add_argument(
        "--adaptive", action=argparse.BooleanOptionalAction, default=False,
        help="cost-model-driven scheduling: dispatch longest-predicted "
        "pairs first and tune split depth per pair, learned from the "
        "--store timing history (cold-start prior without one); pure "
        "perf knob, results stay bit-identical",
    )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from .obs.logging import configure_logging, log_event

    configure_logging(json_logs=True if args.log_json else None)
    try:
        with _maybe_trace(args):
            return _COMMANDS[args.command](args)
    except _UsageError as exc:
        log_event("cli.usage-error", f"error: {exc}", level="error")
        return 1
    except KeyboardInterrupt:
        # campaign commands normally absorb SIGINT themselves (completed
        # cells are already persisted); this catches an interrupt that
        # lands outside the engine, e.g. during rendering
        log_event("cli.interrupted", "interrupted", level="warning")
        return 130


class _UsageError(Exception):
    pass


@_contextmanager
def _maybe_trace(args):
    """Activate a trace sink around a command that asked for one.

    ``--trace PATH`` wins; commands carrying the flag also honour the
    ``REPRO_TRACE`` env var.  The command span becomes the tracer's
    default parent, so campaign spans opened deep inside library code
    attach under the command that ran them.  The sink closes in a
    ``finally``: an interrupt mid-run still leaves a parseable trace.
    """
    import os

    path = getattr(args, "trace_path", None)
    if path is None and hasattr(args, "trace_path"):
        path = os.environ.get("REPRO_TRACE") or None
    if not path:
        yield
        return
    from .obs.logging import log_event
    from .obs.trace import TraceSink, Tracer, activate_tracer

    sink = TraceSink(path)
    tracer = Tracer(sink)
    try:
        with activate_tracer(tracer):
            command_span = tracer.begin(f"cli:{args.command}", "cli")
            tracer.root = command_span
            try:
                yield
            finally:
                tracer.root = None
                tracer.finish(command_span)
    finally:
        sink.close()
        log_event("trace.written", f"wrote trace {path}", path=path)


def _resolve_pair(args):
    from .conditions import get_condition
    from .functionals import get_functional

    try:
        functional = get_functional(args.functional)
    except KeyError as exc:
        raise _UsageError(str(exc)) from None
    try:
        condition = get_condition(args.condition)
    except KeyError as exc:
        raise _UsageError(str(exc)) from None
    if not condition.applies_to(functional):
        raise _UsageError(
            f"{condition.cid} does not apply to {functional.name} "
            f"(requires {'exchange+correlation' if condition.requires_exchange else 'correlation'})"
        )
    return functional, condition


def _cmd_list(args) -> int:
    from .conditions.catalog import PAPER_CONDITIONS
    from .functionals import all_functionals, paper_functionals

    functionals = paper_functionals() if args.paper_only else all_functionals()
    print("functionals:")
    for f in functionals:
        counts = f.complexity()
        parts = [f"{k[0].upper()}:{v} ops" for k, v in counts.items()]
        print(
            f"  {f.name:10s} {f.family:5s} {f.category:15s} {', '.join(parts)}"
        )
    print("\nconditions:")
    for c in PAPER_CONDITIONS:
        print(f"  {c.cid}  {c.name} ({c.equation})")
    return 0


def _cmd_verify(args) -> int:
    from .verifier import VerifierConfig, Verifier, ascii_map, encode
    from .solver.icp import ICPSolver

    functional, condition = _resolve_pair(args)
    _check_nonnegative(("--batch-size", args.batch_size))
    config = VerifierConfig(
        split_threshold=args.threshold,
        per_call_budget=args.budget,
        global_step_budget=args.global_budget,
        delta=args.delta,
    )
    solver = ICPSolver(
        delta=config.delta,
        precision=config.precision,
        use_newton=args.newton,
        backend=args.backend,
        batch_size=args.batch_size,
    )
    from .obs.trace import current_tracer

    with current_tracer().span(
        f"solve:{functional.name}/{condition.cid}", "solve",
        functional=functional.name, condition=condition.cid,
    ):
        report = Verifier(config, solver=solver).verify(encode(functional, condition))
    print(report.summary())
    bbox = report.counterexample_bbox()
    if bbox is not None:
        print(f"counterexample region: {bbox}")
    if args.map_resolution > 0 and len(functional.variables) >= 2:
        print(ascii_map(report, resolution=args.map_resolution))
    if args.json_path:
        from .analysis.export import report_to_json, write_json

        write_json(args.json_path, report_to_json(report))
        print(f"wrote {args.json_path}")
    if args.csv_path:
        from .analysis.export import report_to_csv, write_csv

        write_csv(args.csv_path, report_to_csv(report))
        print(f"wrote {args.csv_path}")
    return 0


def _cmd_pb(args) -> int:
    from .pb import GridSpec, PBChecker
    from .pb.render import ascii_pb_map

    functional, condition = _resolve_pair(args)
    spec = GridSpec(n_rs=args.points, n_s=args.points)
    result = PBChecker(spec=spec).check(functional, condition)
    print(result.summary())
    bounds = result.violation_bounds()
    if bounds is not None:
        pretty = ", ".join(f"{k} in [{lo:.4g}, {hi:.4g}]" for k, (lo, hi) in bounds.items())
        print(f"violations within: {pretty}")
    if args.map_resolution > 0 and len(functional.variables) >= 2:
        print(ascii_pb_map(result, resolution=args.map_resolution))
    return 0


def _cmd_compare(args) -> int:
    from .analysis.compare import classify_consistency
    from .pb import GridSpec, PBChecker
    from .verifier import Verifier, VerifierConfig, encode

    functional, condition = _resolve_pair(args)
    config = VerifierConfig(
        per_call_budget=args.budget, global_step_budget=args.global_budget
    )
    report = Verifier(config).verify(encode(functional, condition))
    pb_result = PBChecker(spec=GridSpec(n_rs=args.points, n_s=args.points)).check(
        functional, condition
    )
    cell = classify_consistency(pb_result, report, 2.0 * config.split_threshold)
    print(report.summary())
    print(pb_result.summary())
    print(f"consistency: {cell}  (J = consistent, J* = not inconsistent, ? = timeout)")
    return 0


def _check_nonnegative(*flags: tuple[str, int | None]) -> None:
    """One-line usage errors for negative tuning knobs.

    The engine's :class:`~repro.verifier.campaign.CampaignConfig` raises
    the same constraint as a ``ValueError``; catching it here keeps the
    CLI contract (``error: ...`` + exit 1) instead of a traceback.
    """
    for flag, value in flags:
        if value is not None and value < 0:
            raise _UsageError(f"{flag} must be >= 0, got {value}")


def _build_policy(args):
    """The scheduling policy for ``--adaptive`` runs (else ``None``).

    The cost model warms from the ``--store`` timing history; without a
    store (or before its first run) it predicts from the structural
    prior, which still front-loads SCAN-sized pairs.  Purely advisory:
    predictions order and split work, they never enter content keys.
    """
    if not getattr(args, "adaptive", False):
        return None
    from .verifier.costmodel import CostModel, SchedulingPolicy

    return SchedulingPolicy(model=CostModel.from_store(args.store_path))


def _check_store_path(path) -> None:
    """Reject unknown store suffixes up front with a usage error, before
    any compute happens (open_store itself raises only when the store is
    first opened, which for campaigns is after encoding starts)."""
    if path is None:
        return
    from .verifier.store import STORE_SUFFIXES

    if not any(str(path).endswith(suffix) for suffix in STORE_SUFFIXES):
        supported = ", ".join(sorted(STORE_SUFFIXES))
        raise _UsageError(
            f"unknown store suffix for {str(path)!r}: expected one of {supported}"
        )


def _resolve_campaign_slice(args):
    """Resolve the --functionals/--conditions subsets and --store/--resume."""
    from .conditions import get_condition
    from .conditions.catalog import PAPER_CONDITIONS
    from .functionals import get_functional, paper_functionals

    if args.resume and not args.store_path:
        raise _UsageError("--resume requires --store")
    _check_store_path(args.store_path)
    _check_nonnegative(("--workers", args.workers))
    try:
        if args.functionals:
            functionals = tuple(
                get_functional(name.strip())
                for name in args.functionals.split(",")
                if name.strip()
            )
        else:
            functionals = paper_functionals()
        if args.conditions:
            conditions = tuple(
                get_condition(cid.strip())
                for cid in args.conditions.split(",")
                if cid.strip()
            )
        else:
            conditions = PAPER_CONDITIONS
    except KeyError as exc:
        raise _UsageError(str(exc)) from None
    if not functionals or not conditions:
        raise _UsageError("empty --functionals/--conditions slice")
    return functionals, conditions


def _print_campaign_counts(result) -> None:
    from .obs.logging import log_event

    print(
        f"campaign: {len(result.computed)} cells computed, "
        f"{len(result.store_hits)} from store"
        + (" [interrupted]" if result.interrupted else "")
    )
    if result.interrupted:
        log_event(
            "campaign.interrupted",
            "warning: interrupted before completion -- unfinished cells "
            "render as '-' above; re-run with --store/--resume to continue",
            level="warning",
            computed=len(result.computed),
            store_hits=len(result.store_hits),
        )


def _cmd_table1(args) -> int:
    from .analysis import run_table_campaign, table_one_from_reports
    from .verifier import VerifierConfig

    functionals, conditions = _resolve_campaign_slice(args)
    config = VerifierConfig(
        per_call_budget=args.budget, global_step_budget=args.global_budget
    )
    result = run_table_campaign(
        config,
        functionals,
        conditions,
        verbose=True,
        max_workers=args.workers,
        store=args.store_path,
        resume=args.resume,
        policy=_build_policy(args),
    )
    table = table_one_from_reports(result.reports, functionals, conditions)
    print(table.render())
    _print_campaign_counts(result)
    if args.json_path:
        from .analysis.export import table_to_json, write_json

        write_json(args.json_path, table_to_json(table))
        print(f"wrote {args.json_path}")
    if args.markdown_path:
        from .analysis.export import table_to_markdown, write_json

        write_json(args.markdown_path, table_to_markdown(table))
        print(f"wrote {args.markdown_path}")
    return 130 if result.interrupted else 0


def _cmd_table2(args) -> int:
    from .analysis import run_table_campaign, run_table_two
    from .pb import GridSpec, PBChecker
    from .verifier import VerifierConfig

    functionals, conditions = _resolve_campaign_slice(args)
    config = VerifierConfig(
        per_call_budget=args.budget, global_step_budget=args.global_budget
    )
    result = run_table_campaign(
        config,
        functionals,
        conditions,
        max_workers=args.workers,
        store=args.store_path,
        resume=args.resume,
        policy=_build_policy(args),
    )
    checker = PBChecker(spec=GridSpec(n_rs=args.points, n_s=args.points))
    table = run_table_two(
        config, checker, functionals, conditions,
        reports=result.reports, interrupted=result.interrupted,
    )
    print(table.render())
    _print_campaign_counts(result)
    return 130 if result.interrupted else 0


def _cmd_campaign(args) -> int:
    from .analysis.tables import print_cell
    from .conditions import applicable_pairs
    from .verifier import VerifierConfig
    from .verifier.campaign import run_campaign

    functionals, conditions = _resolve_campaign_slice(args)
    _check_nonnegative(
        ("--levels", args.levels), ("--steal-depth", args.steal_depth)
    )
    config = VerifierConfig(
        split_threshold=args.threshold,
        per_call_budget=args.budget,
        global_step_budget=args.global_budget,
        queue_order=args.order,
    )
    pairs = applicable_pairs(functionals, conditions)
    if not pairs:
        raise _UsageError("no applicable (functional, condition) pairs in the slice")

    result = run_campaign(
        pairs,
        config,
        max_workers=args.workers,
        presplit_levels=args.levels,
        steal_depth=args.steal_depth,
        store=args.store_path,
        resume=args.resume,
        on_cell=print_cell,
        policy=_build_policy(args),
    )
    _print_campaign_counts(result)
    if args.json_path:
        from .analysis.export import campaign_to_json, write_json

        write_json(args.json_path, campaign_to_json(result.reports))
        print(f"wrote {args.json_path}")
    return 130 if result.interrupted else 0


def _cmd_numerics(args) -> int:
    if args.all or args.functionals:
        if args.functional:
            raise _UsageError("-f/--functional is incompatible with --all/--functionals")
        if args.component:
            raise _UsageError(
                "--component is single-pair only; campaigns take --components "
                '(e.g. --components fc,fx)'
            )
        if args.ieee:
            raise _UsageError(
                "--ieee is single-pair only; campaigns always run hazard "
                "cells under both reachability semantics"
            )
        return _cmd_numerics_campaign(args)
    if not args.functional:
        raise _UsageError("either -f/--functional or --all/--functionals is required")
    # campaign-only flags error loudly instead of being silently ignored,
    # symmetric with --component being rejected in campaign mode
    campaign_only = [
        ("--json", args.json_path),
        ("--store", args.store_path),
        ("--resume", args.resume or None),
        ("--workers", args.workers or None),
        ("--components", args.components),
        ("--adaptive", args.adaptive),
    ]
    offending = [flag for flag, value in campaign_only if value is not None]
    if offending:
        raise _UsageError(
            f"{', '.join(offending)}: campaign mode only "
            "(add --all or --functionals)"
        )

    from .functionals import get_functional
    from .numerics import check_continuity, check_hazards, sensitivity_map

    try:
        functional = get_functional(args.functional)
    except KeyError as exc:
        raise _UsageError(str(exc)) from None
    checks = {
        part.strip()
        for part in (args.check or "continuity,hazards").split(",")
        if part.strip()
    }
    unknown = checks - {"continuity", "hazards", "sensitivity"}
    if unknown:
        raise _UsageError(f"unknown checks: {sorted(unknown)}")

    component = args.component or "fc"
    expr = getattr(functional, component)()
    domain = functional.domain()
    print(f"{functional.name}.{component} over {domain}")

    if "continuity" in checks:
        report = check_continuity(expr, domain, n_base_points=16)
        print(f"continuity: {report.summary()}")
        worst = report.worst()
        if worst is not None and worst.value_jump > 0:
            print(f"  worst jump: {worst!r}")
        for finding in report.singular_findings()[:1]:
            print(f"  singular boundary: {finding!r}")

    if "hazards" in checks:
        report = check_hazards(expr, domain, branch_aware=not args.ieee)
        print(f"hazards: {report.summary()}")
        for verdict in report.triggered():
            loc = ", ".join(
                f"{k}={v:.5g}" for k, v in sorted((verdict.witness or {}).items())
            )
            print(f"  {verdict.hazard.kind} [{verdict.status}] at {loc}")

    if "sensitivity" in checks:
        per_dim = 33 if functional.family == "MGGA" else 65
        smap = sensitivity_map(functional, component, per_dim=per_dim)
        print(f"sensitivity: {smap.summary()}")
        for var in sorted(smap.kappa):
            peak = smap.argmax(var)
            loc = ", ".join(f"{k}={v:.4g}" for k, v in sorted(peak.items()))
            print(f"  kappa_{var} peaks at {loc}")

    return 0


def _cmd_numerics_campaign(args) -> int:
    from .analysis import table_three_from_cells, table_three_to_json
    from .analysis.export import write_json
    from .functionals import all_functionals, get_functional
    from .numerics import run_numerics_campaign
    from .numerics.campaign import CHECKS, COMPONENTS, payload_summary

    if args.resume and not args.store_path:
        raise _UsageError("--resume requires --store")
    _check_store_path(args.store_path)
    _check_nonnegative(("--workers", args.workers))
    try:
        if args.functionals:
            functionals = [
                get_functional(name.strip())
                for name in args.functionals.split(",")
                if name.strip()
            ]
        else:
            functionals = list(all_functionals())
    except KeyError as exc:
        raise _UsageError(str(exc)) from None
    checks = tuple(
        part.strip()
        for part in (args.check or ",".join(CHECKS)).split(",")
        if part.strip()
    )
    components = tuple(
        part.strip()
        for part in (args.components or "fc").split(",")
        if part.strip()
    )
    if not functionals or not checks or not components:
        raise _UsageError("empty --functionals/--check/--components slice")
    unknown = set(checks) - set(CHECKS)
    if unknown:
        raise _UsageError(f"unknown checks: {sorted(unknown)}")
    unknown = set(components) - set(COMPONENTS)
    if unknown:
        raise _UsageError(f"unknown components: {sorted(unknown)}")

    def on_cell(key, payload, from_store):
        origin = " [store]" if from_store else ""
        print(f"{payload_summary(key, payload)}{origin}")

    result = run_numerics_campaign(
        functionals,
        components=components,
        checks=checks,
        max_workers=args.workers,
        store=args.store_path,
        resume=args.resume,
        on_cell=on_cell,
        policy=_build_policy(args),
    )
    table = table_three_from_cells(result.cells)
    print(table.render())
    print(
        f"numerics campaign: {len(result.computed)} cells computed, "
        f"{len(result.store_hits)} from store"
        + (" [interrupted]" if result.interrupted else "")
    )
    if result.interrupted:
        from .obs.logging import log_event

        log_event(
            "campaign.interrupted",
            "warning: interrupted before completion -- missing cells are "
            "absent above; re-run with --store/--resume to continue",
            level="warning",
            computed=len(result.computed),
            store_hits=len(result.store_hits),
        )
    if args.json_path:
        write_json(args.json_path, table_three_to_json(table))
        print(f"wrote {args.json_path}")
    return 130 if result.interrupted else 0


def _cmd_stats(args) -> int:
    """Print the per-pair timing aggregates a store's cost model sees.

    Rows are sorted by total elapsed descending -- the top row is what
    ``--adaptive`` dispatches first on a warm store.
    """
    import os

    from .verifier.costmodel import aggregate_timings
    from .verifier.store import open_store

    _check_store_path(args.store_path)
    # open_store creates missing files; a stats query must not
    if not os.path.exists(args.store_path):
        raise _UsageError(f"store not found: {args.store_path}")
    store = open_store(args.store_path)
    try:
        timings = aggregate_timings(store.iter_timings())
    finally:
        store.close()
    if not timings:
        raise _UsageError(
            f"no verify-cell timings in {args.store_path} "
            "(run a campaign with --store first)"
        )
    header = (
        f"{'functional':12s} {'condition':9s} {'cells':>5s} "
        f"{'total_s':>9s} {'mean_s':>9s} {'p99_s':>9s} {'compile%':>8s}"
    )
    print(header)
    print("-" * len(header))
    ordered = sorted(
        timings.items(), key=lambda item: (-item[1].total_seconds, item[0])
    )
    for (functional, condition), t in ordered:
        print(
            f"{functional:12s} {condition:9s} {t.count:5d} "
            f"{t.total_seconds:9.3f} {t.mean_seconds:9.4f} "
            f"{t.p99_seconds:9.4f} {100.0 * t.compile_share:7.1f}%"
        )
    print(
        f"{len(timings)} pairs, "
        f"{sum(t.count for t in timings.values())} cells, "
        f"{sum(t.total_seconds for t in timings.values()):.3f}s total elapsed"
    )
    return 0


def _cmd_check(args) -> int:
    """Run both statan tiers; exit 0 clean, 1 on findings, 2 on usage."""
    from .statan import run_check

    # check reports usage errors as exit 2 (not the _UsageError exit 1
    # of the verification commands): CI gates on "1 means findings",
    # so a typo'd invocation must be distinguishable from a dirty tree
    if args.deep < 0:
        print("error: --deep must be >= 0", file=sys.stderr)
        return 2
    try:
        functionals = _split_names(args.functionals)
        conditions = _split_names(args.conditions)
    except _UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = run_check(
            paths=args.paths or None,
            rules=args.rules,
            deep=args.deep,
            functionals=functionals,
            conditions=conditions,
            derivatives=args.derivatives,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:  # unknown functional / condition name
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2

    if args.json_path:
        import json

        payload = json.dumps(report.as_json(), indent=2, sort_keys=True)
        if args.json_path == "-":
            print(payload)
        else:
            with open(args.json_path, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
    for finding in report.sorted_findings():
        print(finding.line())
    print(report.summary())
    return 0 if report.clean else 1


def _cmd_trace(args) -> int:
    """Inspect a recorded trace: summary / lint / Chrome export."""
    import json
    import os

    from .obs.export import (
        chrome_trace,
        lint_trace,
        load_trace,
        summarize_trace,
        write_chrome_trace,
    )

    if not os.path.exists(args.trace_file):
        raise _UsageError(f"trace not found: {args.trace_file}")
    try:
        header, spans = load_trace(args.trace_file)
    except ValueError as exc:
        raise _UsageError(str(exc)) from None

    if args.trace_command == "summary":
        if args.top < 1:
            raise _UsageError(f"--top must be >= 1, got {args.top}")
        print(summarize_trace(header, spans, top=args.top))
        return 0
    if args.trace_command == "export":
        if args.chrome_path == "-":
            print(json.dumps(chrome_trace(header, spans)))
        else:
            write_chrome_trace(header, spans, args.chrome_path)
            print(f"wrote {args.chrome_path} ({len(spans)} spans)")
        return 0
    # lint: CI gates on this -- 0 clean, 1 problems, one line each
    problems = lint_trace(header, spans)
    for problem in problems:
        print(f"trace-lint: {problem}")
    print(
        f"{args.trace_file}: {len(spans)} spans, "
        f"{len(problems)} problem{'s' if len(problems) != 1 else ''}"
    )
    return 1 if problems else 0


def _cmd_serve(args) -> int:
    import asyncio

    from .service.server import serve

    _check_nonnegative(
        ("--workers", args.workers),
        ("--interactive-max-cells", args.interactive_max_cells),
    )
    try:
        return asyncio.run(
            serve(
                args.store_path,
                host=args.host,
                port=args.port,
                max_workers=args.workers,
                tokens_file=args.tokens_file,
                rate=args.rate,
                burst=args.burst,
                high_water=args.high_water,
                audit_path=args.audit_path,
                qos_lanes=args.qos_lanes,
                interactive_max_cells=args.interactive_max_cells,
            )
        )
    except ValueError as exc:  # e.g. unknown store suffix, bad tokens file
        raise _UsageError(str(exc)) from None
    except FileNotFoundError as exc:  # missing tokens file
        raise _UsageError(str(exc)) from None
    except OSError as exc:  # port in use, bind refused
        raise _UsageError(f"cannot bind {args.host}:{args.port}: {exc}") from None


def _split_names(text: str | None) -> list[str] | None:
    if text is None:
        return None
    names = [part.strip() for part in text.split(",") if part.strip()]
    if not names:
        raise _UsageError("empty name list")
    return names


def _submit_spec(args) -> dict:
    """The job payload for the service, mirroring the direct commands'
    defaults so service-rendered artifacts diff clean against them."""
    if args.job_kind == "verify":
        return {
            "kind": "verify",
            "functional": args.functional,
            "condition": args.condition,
            "config": {
                "per_call_budget": args.budget,
                "global_step_budget": args.global_budget,
                "split_threshold": args.threshold,
                "delta": args.delta,
            },
        }
    if args.job_kind == "table1":
        spec: dict = {
            "kind": "table1",
            "config": {
                "per_call_budget": args.budget,
                "global_step_budget": args.global_budget,
            },
        }
        if args.functionals:
            spec["functionals"] = _split_names(args.functionals)
        if args.conditions:
            spec["conditions"] = _split_names(args.conditions)
        return spec
    spec = {"kind": "numerics"}
    if args.functionals:
        spec["functionals"] = _split_names(args.functionals)
    if args.components:
        spec["components"] = _split_names(args.components)
    if args.check:
        spec["checks"] = _split_names(args.check)
    return spec


def _render_submit_result(args, result: dict) -> None:
    """Rebuild the direct command's artifact from service cell payloads."""
    from .analysis.export import write_json

    cells = result["cells"]
    if args.job_kind == "verify":
        from .verifier.store import report_from_payload

        for entry in cells.values():
            if "payload" in entry:
                print(report_from_payload(entry["payload"]).summary())
        return
    if args.job_kind == "table1":
        from .analysis import table_one_from_reports
        from .analysis.export import table_to_json
        from .conditions import get_condition
        from .conditions.catalog import PAPER_CONDITIONS
        from .functionals import get_functional, paper_functionals
        from .verifier.store import report_from_payload

        functionals = (
            tuple(get_functional(n) for n in _split_names(args.functionals))
            if args.functionals
            else paper_functionals()
        )
        conditions = (
            tuple(get_condition(c) for c in _split_names(args.conditions))
            if args.conditions
            else PAPER_CONDITIONS
        )
        reports = {}
        for entry in cells.values():
            if "payload" in entry:
                report = report_from_payload(entry["payload"])
                reports[(report.functional_name, report.condition_id)] = report
        table = table_one_from_reports(reports, functionals, conditions)
        print(table.render())
        if args.json_path:
            write_json(args.json_path, table_to_json(table))
            print(f"wrote {args.json_path}")
        return
    # numerics
    from .analysis import table_three_from_cells, table_three_to_json

    payloads = {
        tuple(address.split("/")): entry["payload"]
        for address, entry in cells.items()
        if "payload" in entry
    }
    table = table_three_from_cells(payloads)
    print(table.render())
    if args.json_path:
        write_json(args.json_path, table_three_to_json(table))
        print(f"wrote {args.json_path}")


def _cmd_submit(args) -> int:
    from .service.client import ServiceClient, ServiceError

    if args.json_path and args.job_kind == "verify":
        raise _UsageError("--json renders tables; verify jobs print summaries")

    last_line = [None]

    def on_progress(event: dict) -> None:
        if args.quiet:
            return
        sources = event["sources"]
        line = (
            f"progress: {event['resolved']}/{event['cells']} cells "
            f"(computed {sources['computed']}, cache {sources['cache']}, "
            f"coalesced {sources['coalesced']})"
        )
        if line != last_line[0]:
            print(line, flush=True)
            last_line[0] = line

    import os

    token = args.token or os.environ.get("REPRO_SERVICE_TOKEN")
    try:
        client = ServiceClient(args.url, token=token)
        result = client.run(
            _submit_spec(args),
            on_progress=on_progress,
            submit_retries=max(0, args.retries),
        )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    sources = result["sources"]
    print(
        f"service job {result['id']} {result['state']}: "
        f"{sources['computed']} computed, {sources['cache']} from cache, "
        f"{sources['coalesced']} coalesced"
    )
    if args.raw_json_path:
        from .analysis.export import job_result_to_json, write_json

        write_json(args.raw_json_path, job_result_to_json(result))
        print(f"wrote {args.raw_json_path}")
    if result["state"] == "failed":
        for address, entry in result["cells"].items():
            if "error" in entry:
                print(f"error: cell {address}: {entry['error']}", file=sys.stderr)
        return 1
    _render_submit_result(args, result)
    if result["state"] == "cancelled":
        print(
            "warning: server drained before completion -- completed cells "
            "are durable in its store; resubmit to continue",
            file=sys.stderr,
        )
        return 130
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "verify": _cmd_verify,
    "pb": _cmd_pb,
    "compare": _cmd_compare,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "campaign": _cmd_campaign,
    "numerics": _cmd_numerics,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "stats": _cmd_stats,
    "check": _cmd_check,
    "trace": _cmd_trace,
}


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
