"""Polymorphic math intrinsics for DFA model code.

Functional model code (the analogue of the Maple sources shipped with
LibXC) is written as ordinary Python using these intrinsics.  Each function
dispatches on its argument type:

* on floats/ints it computes numerically (so model code runs as-is), and
* on :class:`~repro.expr.nodes.Expr` it builds IR (so the symbolic
  execution engine can lift the same code into solver terms).

This mirrors the paper's XCEncoder design, where the Maple implementation
is translated to Python and then symbolically executed into dReal terms.
"""

from __future__ import annotations

import math

from ..expr import builder as _b
from ..expr.nodes import Expr

__all__ = [
    "exp", "log", "sqrt", "cbrt", "atan", "fabs", "lambertw",
    "sin", "cos", "tanh", "erf", "pi", "INTRINSIC_FUNCTIONS",
]

pi = math.pi


def _dispatch(name: str, builder_fn, numeric_fn):
    def fn(x):
        if isinstance(x, Expr):
            return builder_fn(x)
        return numeric_fn(x)

    fn.__name__ = name
    fn.__qualname__ = name
    fn.__intrinsic__ = name
    return fn


def _num_lambertw(x: float) -> float:
    from scipy.special import lambertw as _lw
    return float(_lw(x).real)


def _num_cbrt(x: float) -> float:
    return math.copysign(abs(x) ** (1.0 / 3.0), x)


exp = _dispatch("exp", _b.exp, math.exp)
log = _dispatch("log", _b.log, math.log)
sqrt = _dispatch("sqrt", _b.sqrt, math.sqrt)
cbrt = _dispatch("cbrt", _b.cbrt, _num_cbrt)
atan = _dispatch("atan", _b.atan, math.atan)
fabs = _dispatch("fabs", _b.abs_, abs)
lambertw = _dispatch("lambertw", _b.lambertw, _num_lambertw)
sin = _dispatch("sin", _b.sin, math.sin)
cos = _dispatch("cos", _b.cos, math.cos)
tanh = _dispatch("tanh", _b.tanh, math.tanh)
erf = _dispatch("erf", _b.erf, math.erf)

#: registry used by the symbolic executor to recognise intrinsic calls
INTRINSIC_FUNCTIONS = {
    fn.__intrinsic__: fn
    for fn in (exp, log, sqrt, cbrt, atan, fabs, lambertw, sin, cos, tanh, erf)
}
