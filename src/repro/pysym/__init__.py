"""Symbolic execution of Python DFA model code (XCEncoder front end)."""

from .symexec import SymExecError, lift
from . import intrinsics

__all__ = ["SymExecError", "lift", "intrinsics"]
