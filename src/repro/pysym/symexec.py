"""Symbolic execution of Python model code into expression IR.

This is the reproduction of XCEncoder's front end.  In the paper, LibXC's
Maple sources are translated to Python with Maple's ``CodeGeneration``
package and then symbolically executed by "a symbolic execution engine for
(a subset of) Python" into dReal expressions.  Our DFA model code is
already Python, and :func:`lift` is that engine.

Supported subset (matching the paper's observation that "DFA
implementations do not contain loops, arrays, etc., [but] they do contain
(non-recursive) function calls and if-then-else statements"):

* arithmetic and unary expressions, numeric literals, names, parenthesised
  tuples in assignments,
* simple and tuple assignments, augmented assignments,
* calls to registered intrinsics (:mod:`repro.pysym.intrinsics`) and to
  other pure-Python model functions (inlined recursively, recursion is
  rejected),
* ``if``/``elif``/``else`` on comparisons of symbolic values -- both arms
  are executed and the results merged into :class:`~repro.expr.nodes.Ite`
  terms,
* conditional expressions ``a if cond else b``,
* a single ``return`` per control path.

Anything else raises :class:`SymExecError` with the offending source line.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Callable

from ..expr import builder as b
from ..expr.nodes import Expr, Rel
from .intrinsics import INTRINSIC_FUNCTIONS

__all__ = ["lift", "SymExecError"]


class SymExecError(TypeError):
    """Raised when model code falls outside the supported Python subset."""


_MAX_INLINE_DEPTH = 32


def lift(func: Callable, *args, **kwargs) -> Expr:
    """Symbolically execute ``func`` on expression/number arguments.

    Returns the IR expression for the function's return value.  Arguments
    may be :class:`Expr` nodes or Python numbers.
    """
    return _Executor(depth=0).call(func, list(args), kwargs)


class _ReturnValue(Exception):
    def __init__(self, value):
        self.value = value


class _Executor:
    def __init__(self, depth: int):
        if depth > _MAX_INLINE_DEPTH:
            raise SymExecError("function inlining too deep (recursive model code?)")
        self.depth = depth

    # -- function-level driver ------------------------------------------------
    def call(self, func: Callable, args: list, kwargs: dict) -> Any:
        intrinsic = getattr(func, "__intrinsic__", None)
        if intrinsic is not None:
            if kwargs or len(args) != 1:
                raise SymExecError(f"intrinsic {intrinsic} takes one positional argument")
            return func(args[0])

        try:
            source = textwrap.dedent(inspect.getsource(func))
        except (OSError, TypeError) as exc:
            raise SymExecError(
                f"cannot obtain source for {getattr(func, '__name__', func)!r}"
            ) from exc
        tree = ast.parse(source)
        fdef = tree.body[0]
        if not isinstance(fdef, (ast.FunctionDef, ast.AsyncFunctionDef)):
            raise SymExecError("expected a function definition")

        env: dict[str, Any] = {}
        params = [a.arg for a in fdef.args.args]
        defaults = fdef.args.defaults
        # bind positional
        for name, value in zip(params, args):
            env[name] = _coerce(value)
        # bind keyword
        for name, value in kwargs.items():
            if name not in params:
                raise SymExecError(f"unknown keyword argument {name!r}")
            env[name] = _coerce(value)
        # bind defaults for the trailing unbound params
        unbound = [p for p in params if p not in env]
        if len(unbound) > len(defaults):
            raise SymExecError(
                f"missing arguments for {fdef.name}: {unbound[: len(unbound) - len(defaults)]}"
            )
        for name, node in zip(unbound, defaults[len(defaults) - len(unbound):]):
            env[name] = _coerce(self.eval_expr(node, {}, func))

        result = self.exec_block(fdef.body, env, func)
        if result is _NO_RETURN:
            raise SymExecError(f"{fdef.name} finished without returning a value")
        return result

    # -- statements ------------------------------------------------------------
    def exec_block(self, stmts: list[ast.stmt], env: dict, func: Callable):
        """Execute statements; return the return-value or _NO_RETURN.

        Symbolic ``if`` statements are handled by *continuation folding*:
        the remainder of the block is appended to both arms and each folded
        path is executed in its own environment.  Every control path that
        produces the function's value must end in ``return``; the two
        path results are merged into an :class:`~repro.expr.nodes.Ite`.
        This uniformly supports both ``if/else`` with returns and the
        early-return idiom (``if c: return a`` followed by more code), and
        makes environment merging unnecessary.
        """
        for index, stmt in enumerate(stmts):
            if isinstance(stmt, ast.Return):
                if stmt.value is None:
                    raise SymExecError("bare `return` is not supported")
                return self.eval_expr(stmt.value, env, func)
            if isinstance(stmt, ast.Assign):
                value = self.eval_expr(stmt.value, env, func)
                for target in stmt.targets:
                    self.assign(target, value, env)
                continue
            if isinstance(stmt, ast.AugAssign):
                if not isinstance(stmt.target, ast.Name):
                    raise SymExecError("augmented assignment to non-name")
                current = env.get(stmt.target.id)
                if current is None:
                    raise SymExecError(
                        f"augmented assignment to unbound {stmt.target.id!r}"
                    )
                rhs = self.eval_expr(stmt.value, env, func)
                env[stmt.target.id] = _binop(stmt.op, current, rhs)
                continue
            if isinstance(stmt, ast.If):
                cond = self.eval_cond(stmt.test, env, func)
                rest = stmts[index + 1:]
                if isinstance(cond, bool):
                    branch = list(stmt.body if cond else stmt.orelse) + rest
                    return self.exec_block(branch, env, func)
                then_result = self.exec_block(
                    list(stmt.body) + rest, dict(env), func
                )
                else_result = self.exec_block(
                    list(stmt.orelse) + rest, dict(env), func
                )
                then_returns = then_result is not _NO_RETURN
                else_returns = else_result is not _NO_RETURN
                if not then_returns and not else_returns:
                    return _NO_RETURN
                if then_returns != else_returns:
                    raise SymExecError(
                        "every control path through a symbolic `if` must "
                        f"return a value (line {stmt.lineno})"
                    )
                return b.ite(cond, b.as_expr(then_result), b.as_expr(else_result))
            if isinstance(stmt, (ast.Expr,)) and isinstance(stmt.value, ast.Constant):
                continue  # docstring
            if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if not isinstance(stmt.target, ast.Name):
                    raise SymExecError("annotated assignment to non-name")
                env[stmt.target.id] = self.eval_expr(stmt.value, env, func)
                continue
            if isinstance(stmt, ast.Pass):
                continue
            raise SymExecError(
                f"unsupported statement {type(stmt).__name__} at line {stmt.lineno}"
            )
        return _NO_RETURN

    def assign(self, target: ast.expr, value, env: dict) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
            return
        if isinstance(target, ast.Tuple):
            if not isinstance(value, tuple) or len(value) != len(target.elts):
                raise SymExecError("tuple assignment arity mismatch")
            for tgt, val in zip(target.elts, value):
                self.assign(tgt, val, env)
            return
        raise SymExecError(f"unsupported assignment target {type(target).__name__}")

    # -- expressions -------------------------------------------------------------
    def eval_expr(self, node: ast.expr, env: dict, func: Callable):
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)):
                return float(node.value)
            raise SymExecError(f"unsupported constant {node.value!r}")
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return self.resolve_global(node.id, func)
        if isinstance(node, ast.BinOp):
            left = self.eval_expr(node.left, env, func)
            right = self.eval_expr(node.right, env, func)
            return _binop(node.op, left, right)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval_expr(node.operand, env, func)
            if isinstance(node.op, ast.USub):
                return -operand if not isinstance(operand, Expr) else b.neg(operand)
            if isinstance(node.op, ast.UAdd):
                return operand
            raise SymExecError(f"unsupported unary operator {type(node.op).__name__}")
        if isinstance(node, ast.Call):
            callee = self.eval_expr(node.func, env, func)
            args = [self.eval_expr(a, env, func) for a in node.args]
            kwargs = {
                kw.arg: self.eval_expr(kw.value, env, func) for kw in node.keywords
            }
            if None in kwargs:
                raise SymExecError("**kwargs calls are not supported")
            if all(not isinstance(a, Expr) for a in args) and all(
                not isinstance(v, Expr) for v in kwargs.values()
            ) and getattr(callee, "__intrinsic__", None) is not None:
                return callee(*args, **kwargs)
            return _Executor(self.depth + 1).call(callee, args, kwargs)
        if isinstance(node, ast.IfExp):
            cond = self.eval_cond(node.test, env, func)
            if isinstance(cond, bool):
                return self.eval_expr(node.body if cond else node.orelse, env, func)
            then_val = self.eval_expr(node.body, env, func)
            else_val = self.eval_expr(node.orelse, env, func)
            return b.ite(cond, b.as_expr(then_val), b.as_expr(else_val))
        if isinstance(node, ast.Tuple):
            return tuple(self.eval_expr(e, env, func) for e in node.elts)
        if isinstance(node, ast.Attribute):
            base = self.eval_expr(node.value, env, func)
            try:
                return getattr(base, node.attr)
            except AttributeError as exc:
                raise SymExecError(str(exc)) from exc
        raise SymExecError(
            f"unsupported expression {type(node).__name__} at line {node.lineno}"
        )

    def eval_cond(self, node: ast.expr, env: dict, func: Callable) -> Rel | bool:
        if not isinstance(node, ast.Compare):
            raise SymExecError("if-conditions must be comparisons")
        if len(node.ops) != 1 or len(node.comparators) != 1:
            raise SymExecError("chained comparisons are not supported")
        lhs = self.eval_expr(node.left, env, func)
        rhs = self.eval_expr(node.comparators[0], env, func)
        op_map = {
            ast.LtE: "<=",
            ast.Lt: "<",
            ast.GtE: ">=",
            ast.Gt: ">",
            ast.Eq: "==",
        }
        op = op_map.get(type(node.ops[0]))
        if op is None:
            raise SymExecError(
                f"unsupported comparison {type(node.ops[0]).__name__}"
            )
        if not isinstance(lhs, Expr) and not isinstance(rhs, Expr):
            return {
                "<=": lhs <= rhs,
                "<": lhs < rhs,
                ">=": lhs >= rhs,
                ">": lhs > rhs,
                "==": lhs == rhs,
            }[op]
        return Rel.make(b.as_expr(lhs), b.as_expr(rhs), op)

    def resolve_global(self, name: str, func: Callable):
        if name in INTRINSIC_FUNCTIONS:
            return INTRINSIC_FUNCTIONS[name]
        globals_ = getattr(func, "__globals__", {})
        if name in globals_:
            return _coerce(globals_[name])
        builtins_ = globals_.get("__builtins__", {})
        if isinstance(builtins_, dict) and name in builtins_:
            value = builtins_[name]
        else:
            value = getattr(builtins_, name, None)
        if name == "abs":
            return INTRINSIC_FUNCTIONS["fabs"]
        if value is not None and callable(value):
            raise SymExecError(f"builtin {name!r} is not in the supported subset")
        raise SymExecError(f"unbound name {name!r}")


_NO_RETURN = object()


def _coerce(value):
    if isinstance(value, bool):
        raise SymExecError("boolean values are not supported in model code")
    if isinstance(value, int):
        return float(value)
    return value


def _binop(op: ast.operator, left, right):
    symbolic = isinstance(left, Expr) or isinstance(right, Expr)
    if isinstance(op, ast.Add):
        return b.add(left, right) if symbolic else left + right
    if isinstance(op, ast.Sub):
        return b.sub(left, right) if symbolic else left - right
    if isinstance(op, ast.Mult):
        return b.mul(left, right) if symbolic else left * right
    if isinstance(op, ast.Div):
        return b.div(left, right) if symbolic else left / right
    if isinstance(op, ast.Pow):
        return b.pow_(left, right) if symbolic else left ** right
    raise SymExecError(f"unsupported binary operator {type(op).__name__}")
