"""Static analysis for the reproduction: ``repro check``.

Two tiers, one report:

* **tapecheck** -- a verifier for the compiled tape IR
  (:mod:`repro.solver.tape`): structural well-formedness (SSA, bounds,
  aux consistency), fingerprint/runtime agreement, a silent-NaN
  reachability analysis by abstract interpretation over the interval
  domain, and equivalence audits of the fusion and ``MultiTape``
  optimisers.  Runs over the full functional x condition corpus.
* **rules** -- project-specific AST lint rules (``REP1xx``) with a
  per-file allowlist: rounding discipline, content-key purity, asyncio
  hygiene, fork-safety, loud validation.

See :func:`repro.statan.runner.run_check` for the entry point and the
README's rules reference for the invariant behind each id.
"""

from .report import Finding, Report
from .runner import all_rule_ids, run_check

__all__ = ["Finding", "Report", "all_rule_ids", "run_check"]
