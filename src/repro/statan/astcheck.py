"""Tier 2 engine: AST loading, indexing and matching for the REP rules.

The engine is rule-agnostic: it parses every target module once, builds
parent links and per-function indexes (qualified name, called names,
async-ness), and hands :mod:`repro.statan.rules` the primitives they
share -- dotted call-name resolution, endpoint-name classification,
enclosing-function lookup.  Rules stay small and declarative.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "FunctionInfo",
    "Module",
    "call_name",
    "collect_modules",
    "repo_root",
]

#: a synthetic attribute linking each AST node to its parent; set on our
#: own freshly parsed trees only
_PARENT = "_statan_parent"


def repo_root() -> Path:
    """The repository root (three levels above this package)."""
    return Path(__file__).resolve().parents[3]


@dataclass(eq=False)  # identity semantics: used as dict/set keys
class FunctionInfo:
    """One function definition with the facts the rules consume."""

    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    module: "Module"
    is_async: bool
    #: dotted names of every call in the body, nested defs excluded
    calls: list[tuple[str, ast.Call]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name

    def own_nodes(self):
        """Walk the body, stopping at nested function/class definitions."""
        stack = list(ast.iter_child_nodes(self.node))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))


@dataclass(eq=False)  # identity semantics: used as dict/set keys
class Module:
    """One parsed source file plus its function index."""

    path: Path
    rel: str  # repo-root-relative posix path (or absolute outside it)
    tree: ast.Module
    functions: list[FunctionInfo] = field(default_factory=list)

    def parent(self, node: ast.AST) -> ast.AST | None:
        return getattr(node, _PARENT, None)

    def enclosing_function(self, node: ast.AST) -> FunctionInfo | None:
        by_node = {info.node: info for info in self.functions}
        cur = self.parent(node)
        while cur is not None:
            if cur in by_node:
                return by_node[cur]
            cur = self.parent(cur)
        return None

    def symbol_at(self, node: ast.AST) -> str:
        info = self.enclosing_function(node)
        if info is not None:
            return info.qualname
        cur = self.parent(node)
        while cur is not None:
            if isinstance(cur, ast.ClassDef):
                return cur.name
            cur = self.parent(cur)
        return "<module>"


def call_name(func: ast.AST) -> str:
    """Dotted name of a call target: ``os.environ.get``, ``open``, ...

    Unresolvable pieces (subscripts, nested calls) become ``?`` so the
    suffix stays matchable: ``foo()[0].bar(...)`` -> ``?.bar``.
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("?")
    return ".".join(reversed(parts))


def _link_parents(tree: ast.Module) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, _PARENT, node)


def _index_functions(module: Module) -> None:
    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                info = FunctionInfo(
                    qualname=qual,
                    node=child,
                    module=module,
                    is_async=isinstance(child, ast.AsyncFunctionDef),
                )
                for sub in info.own_nodes():
                    if isinstance(sub, ast.Call):
                        info.calls.append((call_name(sub.func), sub))
                module.functions.append(info)
                visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(module.tree, "")


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def collect_modules(paths) -> list[Module]:
    """Parse every ``.py`` file under ``paths`` into indexed modules.

    Raises ``OSError`` for a missing path and ``SyntaxError`` for an
    unparseable file -- the caller decides how loudly to fail.
    """
    root = repo_root()
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.is_file():
            files.append(p)
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")
    modules: list[Module] = []
    seen: set[Path] = set()
    for path in files:
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        _link_parents(tree)
        module = Module(path=resolved, rel=_rel(path, root), tree=tree)
        _index_functions(module)
        modules.append(module)
    return modules
