"""Orchestration for ``repro check``: both tiers, allowlist, report.

Tier 2 (the REP AST rules) runs over the requested source paths
(default: the whole ``src/repro`` tree).  Tier 1 (the TAPE corpus
verifier) runs whenever any TAPE rule is selected, over the
functional x condition corpus -- optionally sliced for fast targeted
runs.  Findings suppressed by the allowlist never reach the report;
stale allowlist entries surface as REP100 findings on full runs.
"""

from __future__ import annotations

from pathlib import Path

from .allowlist import default_allowlist_path, load_allowlist
from .astcheck import collect_modules, repo_root
from .report import Report
from .rules import REP_RULES, run_rules
from .tapecheck import TAPE_CHECKS, check_corpus

__all__ = ["all_rule_ids", "run_check"]


def all_rule_ids() -> tuple[str, ...]:
    """Every known rule id, TAPE tier first, in registry order."""
    return (*TAPE_CHECKS, *REP_RULES)


def run_check(
    paths=None,
    rules=None,
    deep: int = 0,
    functionals=None,
    conditions=None,
    derivatives: bool = False,
    allowlist_path=None,
    guards=None,
) -> Report:
    """Run ``repro check`` and return the populated :class:`Report`.

    ``paths``: source files/dirs for the AST tier (None = ``src/repro``;
    a full default run also audits allowlist staleness).
    ``rules``: iterable of rule ids to run (None = all; unknown ids
    raise ``ValueError``).
    ``deep``: TAPE108 domain-refinement depth (axis halvings).
    ``functionals``/``conditions``: slice the tape corpus by name.
    ``derivatives``: also compile and check derivative tapes.
    """
    known = all_rule_ids()
    if rules is not None:
        rules = tuple(rules)
        unknown = sorted(set(rules) - set(known))
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {unknown}; known rules: {', '.join(known)}"
            )
        selected = frozenset(rules)
    else:
        selected = frozenset(known)

    full_tree = paths is None
    if full_tree:
        paths = [repo_root() / "src" / "repro"]
    paths = [Path(p) for p in paths]

    report = Report(rules_run=tuple(r for r in known if r in selected))
    allow = load_allowlist(allowlist_path, known_rules=known)
    if "REP100" in selected:
        report.extend(allow.findings)

    # --- tier 2: AST rules over the tree --------------------------------
    rep_selected = {r for r in selected if r.startswith("REP")} - {"REP100"}
    modules = collect_modules(paths)
    report.files_checked = len(modules)
    if rep_selected:
        for finding in run_rules(modules, rep_selected):
            if not allow.suppresses(finding):
                report.findings.append(finding)

    # --- tier 1: tape corpus --------------------------------------------
    tape_selected = {r for r in selected if r.startswith("TAPE")}
    if tape_selected:
        for finding in check_corpus(
            functionals=functionals,
            conditions=conditions,
            deep=deep,
            derivatives=derivatives,
            guards=guards,
            rules=tape_selected,
            report=report,
        ):
            if not allow.suppresses(finding):
                report.findings.append(finding)

    # stale-entry audit only when the run covered everything an entry
    # could match: the default tree, every rule, the default allowlist
    if (
        full_tree
        and rules is None
        and allowlist_path is None
        and "REP100" in selected
    ):
        for entry in allow.unused_entries():
            report.findings.append(
                _stale_entry_finding(entry, default_allowlist_path())
            )
    return report


def _stale_entry_finding(entry, path):
    from .report import Finding

    return Finding(
        "REP100",
        f"{path.name}:{entry.lineno}",
        "allowlist",
        f"stale entry ({entry.rule} {entry.path_glob} {entry.symbol_glob}) "
        "suppresses nothing -- remove it or fix the glob",
    )
