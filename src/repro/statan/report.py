"""Finding records and report rendering shared by both statan tiers.

A :class:`Finding` is one violated invariant: the rule id names the
invariant (``TAPE1xx`` for the tape-IR verifier, ``REP1xx`` for the AST
lint rules), ``where`` locates it (``path:line`` for source findings,
``tape:<label>`` for tape findings), ``symbol`` narrows it to the
enclosing function / instruction, and ``message`` is the one-line
diagnostic ``repro check`` prints.  The :class:`Report` aggregates the
findings of a run together with coverage counters, so "zero findings"
is distinguishable from "checked nothing".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One violated invariant, renderable as a one-line diagnostic."""

    rule: str
    where: str
    symbol: str
    message: str

    def line(self) -> str:
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.rule} {self.where}{sym}: {self.message}"

    def as_json(self) -> dict:
        return {
            "rule": self.rule,
            "where": self.where,
            "symbol": self.symbol,
            "message": self.message,
        }


@dataclass
class Report:
    """Findings plus coverage counters for one ``repro check`` run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    tapes_checked: int = 0
    pairs_checked: int = 0
    rules_run: tuple[str, ...] = ()
    #: abstract-interpretation coverage: partial-function call sites whose
    #: inputs provably stay in-domain vs sites that may go out of domain
    #: but are guarded by the executors' poison masks (an *unguarded*
    #: maybe-site is a TAPE108 finding, so it never lands in a counter)
    nan_sites_safe: int = 0
    nan_sites_guarded: int = 0

    def extend(self, findings) -> None:
        self.findings.extend(findings)

    @property
    def clean(self) -> bool:
        return not self.findings

    def sorted_findings(self) -> list[Finding]:
        return sorted(
            self.findings, key=lambda f: (f.rule, f.where, f.symbol, f.message)
        )

    def summary(self) -> str:
        scope = (
            f"{self.files_checked} files, {self.pairs_checked} pairs, "
            f"{self.tapes_checked} tapes, {len(self.rules_run)} rules"
        )
        if self.clean:
            return f"repro check: clean ({scope})"
        n = len(self.findings)
        return f"repro check: {n} finding{'s' if n != 1 else ''} ({scope})"

    def as_json(self) -> dict:
        return {
            "clean": self.clean,
            "findings": [f.as_json() for f in self.sorted_findings()],
            "files_checked": self.files_checked,
            "tapes_checked": self.tapes_checked,
            "pairs_checked": self.pairs_checked,
            "rules_run": list(self.rules_run),
            "nan_sites_safe": self.nan_sites_safe,
            "nan_sites_guarded": self.nan_sites_guarded,
        }
