"""Tier 1 of ``repro check``: a verifier for the compiled tape IR.

Every latent solver bug the differential fuzzers dug out of PRs 4-8 was
a violation of an invariant :mod:`repro.solver.tape` states in prose.
This module proves those invariants per tape, so the full
functional x condition corpus is machine-checked before every merge:

``TAPE101``  slot and literal-pool bounds (every slot index in range)
``TAPE102``  single assignment: each slot defined exactly once
``TAPE103``  SSA def-before-use in instruction order, root defined
``TAPE104``  ``OP_POW`` aux agrees with the literal pool
``TAPE105``  ``OP_FUNC`` index and aux agree with ``FUNC_NAMES``
``TAPE106``  ``OP_ITE`` operand arity and condition code
``TAPE107``  fingerprint <-> structure agreement: the built runtime is
             exactly what a fresh build of the persistent state produces
``TAPE108``  silent-NaN reachability: abstract interpretation over the
             interval domain; partial-function inputs that may leave
             their safe domain must be guarded by the executors' poison
             masks (the exact defect class of the PR 4 Ite/trig fixes)
``TAPE109``  fusion / dead-slot elimination preserves the defined-output
             set and every slot value bit-for-bit
``TAPE110``  ``MultiTape`` interning + DCE preserves each root's
             batched forward semantics bit-for-bit

Structural checks (101-106) run on the *persistent state* tuple alone,
so corrupt tapes can be audited without ever building a runtime (a
corrupt tape may crash the builder).  The semantic checks (107-110)
need a built :class:`~repro.solver.tape.Tape`.
"""

from __future__ import annotations

import math
from itertools import product
from math import inf, isnan

from ..solver.interval import Interval
from ..solver.tape import (
    COND_EQ,
    COND_LE,
    FUNC_DOMAINS,
    FUNC_NAMES,
    MultiTape,
    OP_ADD2,
    OP_ADDN,
    OP_FUNC,
    OP_ITE,
    OP_MUL2,
    OP_MULN,
    OP_POW,
    Tape,
    _BATCH_FUNC_BAD,
    func_guard_table,
    set_tape_fusion,
    stable_digest,
)
from .report import Finding, Report

__all__ = [
    "TAPE_CHECKS",
    "check_corpus",
    "check_multitape",
    "check_problem",
    "check_state",
    "check_tape",
    "corpus_pairs",
]

#: rule id -> the invariant it proves (the ``repro check`` registry)
TAPE_CHECKS = {
    "TAPE101": "slot and literal-pool indices stay within bounds",
    "TAPE102": "single assignment: every slot defined exactly once",
    "TAPE103": "SSA def-before-use in instruction order",
    "TAPE104": "OP_POW aux encoding agrees with the literal pool",
    "TAPE105": "OP_FUNC index/aux agree with FUNC_NAMES",
    "TAPE106": "OP_ITE operand arity and condition code are valid",
    "TAPE107": "fingerprint and built runtime agree with the persistent state",
    "TAPE108": "out-of-domain inputs to partial functions are NaN-guarded",
    "TAPE109": "constant folding preserves defined slots and values bit-for-bit",
    "TAPE110": "MultiTape interning preserves each root's forward semantics",
}

_KNOWN_OPS = (OP_ADD2, OP_MUL2, OP_ADDN, OP_MULN, OP_POW, OP_FUNC, OP_ITE)

#: cap on sub-boxes the TAPE108 abstract interpretation enumerates per
#: tape: ``--deep`` splits every finite axis in half ``deep`` times, and
#: the product is clamped here so pathological arities stay bounded
_MAX_SUBBOXES = 4096


def _verify_tables() -> None:
    """Cross-check FUNC_DOMAINS against the executors' guard predicates.

    The abstract interpretation trusts ``FUNC_DOMAINS`` to describe the
    same unsafe regions ``_BATCH_FUNC_BAD`` poisons; probe each boundary
    so the tables cannot drift apart without failing loudly at import.
    """
    for idx, dom in enumerate(FUNC_DOMAINS):
        bad = _BATCH_FUNC_BAD[idx]
        if dom is None:
            continue
        if bad is None:  # partial but unguarded: a standing TAPE108 bug
            continue
        kind, bound = dom
        inside = bound if kind in ("le", "ge") else math.nextafter(bound, inf)
        outside = (
            math.nextafter(bound, inf)
            if kind == "le"
            else math.nextafter(bound, -inf) if kind == "ge" else bound
        )
        if bool(bad(inside)) or not bool(bad(outside)):
            raise AssertionError(
                f"FUNC_DOMAINS[{idx}] ({FUNC_NAMES[idx]}) disagrees with "
                f"_BATCH_FUNC_BAD[{idx}] at the domain boundary"
            )


_verify_tables()


def _same_float(a: float, b: float) -> bool:
    """Bit-level float equality: NaN == NaN, -0.0 != 0.0."""
    if isnan(a) or isnan(b):
        return isnan(a) and isnan(b)
    return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)


def _same_value(a, b) -> bool:
    """Structural equality with bit-level float comparison."""
    if isinstance(a, float) or isinstance(b, float):
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            return False
        return _same_float(float(a), float(b))
    if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
        return len(a) == len(b) and all(
            _same_value(x, y) for x, y in zip(a, b)
        )
    return type(a) is type(b) and a == b


# ---------------------------------------------------------------------------
# structural checks over the persistent state (TAPE101-106)
# ---------------------------------------------------------------------------

def check_state(state, label: str) -> list[Finding]:
    """Structural well-formedness of a tape's persistent state tuple.

    ``state`` is ``(instrs, n_slots, root, var_slots, const_slots)`` --
    exactly ``Tape.__getstate__()``.  Runs without building a runtime.
    """
    findings: list[Finding] = []
    where = f"tape:{label}"

    def bad(rule: str, symbol: str, message: str) -> None:
        findings.append(Finding(rule, where, symbol, message))

    try:
        instrs, n_slots, root, var_slots, const_slots = state
    except (TypeError, ValueError):
        bad("TAPE101", "state", "persistent state is not a 5-tuple")
        return findings
    if not isinstance(n_slots, int) or n_slots < 1:
        bad("TAPE101", "state", f"n_slots must be a positive int, got {n_slots!r}")
        return findings

    def in_range(slot) -> bool:
        return isinstance(slot, int) and not isinstance(slot, bool) and 0 <= slot < n_slots

    # --- TAPE101: every slot index within bounds, shapes sane ----------
    defs: dict[int, list[str]] = {}
    for k, entry in enumerate(const_slots):
        sym = f"const[{k}]"
        if not (isinstance(entry, tuple) and len(entry) == 2):
            bad("TAPE101", sym, f"literal-pool entry must be (slot, value), got {entry!r}")
            continue
        slot, value = entry
        if not in_range(slot):
            bad("TAPE101", sym, f"literal slot {slot!r} outside [0, {n_slots})")
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            bad("TAPE101", sym, f"literal value must be a number, got {value!r}")
        defs.setdefault(slot, []).append(sym)
    for k, entry in enumerate(var_slots):
        sym = f"var[{k}]"
        if not (isinstance(entry, tuple) and len(entry) == 2):
            bad("TAPE101", sym, f"var-slot entry must be (name, slot), got {entry!r}")
            continue
        name, slot = entry
        if not isinstance(name, str) or not name:
            bad("TAPE101", sym, f"variable name must be a non-empty str, got {name!r}")
        if not in_range(slot):
            bad("TAPE101", sym, f"variable slot {slot!r} outside [0, {n_slots})")
            continue
        defs.setdefault(slot, []).append(sym)
    if not in_range(root):
        bad("TAPE101", "root", f"root slot {root!r} outside [0, {n_slots})")

    # --- instruction shape + per-opcode aux consistency -----------------
    defined_so_far = set(defs)
    for i, instr in enumerate(instrs):
        sym = f"instr[{i}]"
        if not (isinstance(instr, tuple) and len(instr) == 5):
            bad("TAPE101", sym, f"instruction must be a 5-tuple, got {instr!r}")
            continue
        op, out, a, b, aux = instr
        if op not in _KNOWN_OPS:
            bad("TAPE101", sym, f"unknown opcode {op!r}")
            continue
        if not in_range(out):
            bad("TAPE101", sym, f"out slot {out!r} outside [0, {n_slots})")
        else:
            defs.setdefault(out, []).append(sym)

        if op in (OP_ADDN, OP_MULN, OP_ITE):
            operands = a if isinstance(a, tuple) else None
            if operands is None:
                bad("TAPE101", sym, f"operand list must be a tuple, got {a!r}")
                operands = ()
        else:  # ADD2 / MUL2 / POW / FUNC
            operands = (a, b) if op in (OP_ADD2, OP_MUL2, OP_POW) else (a,)
        bad_slot = False
        for operand in operands:
            if not in_range(operand):
                bad("TAPE101", sym, f"operand slot {operand!r} outside [0, {n_slots})")
                bad_slot = True
        # --- TAPE103: def-before-use in instruction order ---------------
        if not bad_slot and not all(o in defined_so_far for o in operands):
            missing = [o for o in operands if o not in defined_so_far]
            bad(
                "TAPE103", sym,
                f"operand slot(s) {missing} used before definition",
            )
        if in_range(out):
            defined_so_far.add(out)

        # --- TAPE104: POW aux mirrors the literal pool -------------------
        if op == OP_POW:
            const_map = {
                s: v for s, v in const_slots
                if isinstance(s, int) and isinstance(v, (int, float))
            }
            if b in const_map:
                p = const_map[b]
                if float(p).is_integer() and abs(p) < 2**31:
                    expect = ("i", int(p), p)
                else:
                    expect = ("r", p, p)
                if not _same_value(aux, expect):
                    bad(
                        "TAPE104", sym,
                        f"aux {aux!r} disagrees with literal exponent "
                        f"{p!r} (expected {expect!r})",
                    )
            elif aux is not None:
                bad(
                    "TAPE104", sym,
                    f"aux {aux!r} present but exponent slot {b} is not a literal",
                )
        # --- TAPE105: FUNC index and aux name agree ----------------------
        elif op == OP_FUNC:
            if not (isinstance(b, int) and 0 <= b < len(FUNC_NAMES)):
                bad("TAPE105", sym, f"function index {b!r} outside FUNC_NAMES")
            elif aux != FUNC_NAMES[b]:
                bad(
                    "TAPE105", sym,
                    f"aux {aux!r} disagrees with FUNC_NAMES[{b}] = "
                    f"{FUNC_NAMES[b]!r}",
                )
        # --- TAPE106: ITE arity and condition code -----------------------
        elif op == OP_ITE:
            if isinstance(a, tuple) and len(a) != 4:
                bad(
                    "TAPE106", sym,
                    f"ITE needs (lhs, rhs, then, orelse), got {len(a)} operands",
                )
            if not (isinstance(b, int) and COND_LE <= b <= COND_EQ):
                bad("TAPE106", sym, f"condition code {b!r} outside [0, 4]")
            if aux is not None:
                bad("TAPE106", sym, f"ITE aux must be None, got {aux!r}")
        elif op in (OP_ADDN, OP_MULN) and aux is not None:
            bad("TAPE101", sym, f"n-ary aux must be None, got {aux!r}")

    # --- TAPE102: single assignment, no orphan slots --------------------
    for slot, sites in sorted(defs.items()):
        if len(sites) > 1:
            findings.append(Finding(
                "TAPE102", where, sites[1],
                f"slot {slot} defined more than once ({', '.join(sites)})",
            ))
    orphans = sorted(set(range(n_slots)) - set(defs))
    if orphans:
        bad(
            "TAPE102", "slots",
            f"slot(s) {orphans} never defined by a literal, variable or "
            "instruction",
        )
    if in_range(root) and root not in defs:
        bad("TAPE103", "root", f"root slot {root} is never defined")
    return findings


# ---------------------------------------------------------------------------
# semantic checks over a built tape (TAPE107-109)
# ---------------------------------------------------------------------------

def _norm_box(box, names) -> dict[str, Interval]:
    """Normalise a Box / dict to name -> Interval, defaulting unbound vars."""
    bound = dict(box.items()) if box is not None else {}
    return {
        name: bound.get(name, Interval(0.5, 1.5)) for name in names
    }


def _midpoint_box(box: dict[str, Interval]) -> dict[str, Interval]:
    out = {}
    for name, iv in box.items():
        lo = iv.lo if iv.lo != -inf else -1.0
        hi = iv.hi if iv.hi != inf else 1.0
        m = lo + 0.5 * (hi - lo)
        if not math.isfinite(m):
            m = 1.0
        out[name] = Interval(m, m)
    return out


def _subboxes(box: dict[str, Interval], deep: int):
    """Uniform 2**deep-per-axis refinement of ``box`` (capped, sound cover)."""
    if deep <= 0 or not box:
        yield box
        return
    names = list(box)
    k = 2 ** deep
    while k > 1 and k ** len(names) > _MAX_SUBBOXES:
        k //= 2
    axes = []
    for name in names:
        iv = box[name]
        if k <= 1 or not (math.isfinite(iv.lo) and math.isfinite(iv.hi)) or iv.lo >= iv.hi:
            axes.append([iv])
            continue
        cuts = [iv.lo + (iv.hi - iv.lo) * j / k for j in range(1, k)]
        edges = [iv.lo, *cuts, iv.hi]
        axes.append([Interval(edges[j], edges[j + 1]) for j in range(k)])
    for combo in product(*axes):
        yield dict(zip(names, combo))


def _unsafe_func_input(dom, lo: float, hi: float) -> bool:
    """Can an input in [lo, hi] leave the safe domain ``dom``?"""
    if dom is None or lo > hi:  # total function / empty enclosure
        return False
    kind, bound = dom
    if kind == "le":
        return hi > bound
    if kind == "ge":
        return lo < bound
    return lo <= bound  # "gt"


def _unsafe_pow_input(aux, blo, bhi, elo, ehi) -> bool:
    """Can (base, exponent) enclosures hit pow's NaN set?"""
    if blo > bhi:
        return False
    if aux is not None and aux[0] == "i":
        n = aux[1]
        return n < 0 and blo <= 0.0 <= bhi
    if aux is not None:  # ("r", p, p): fractional or huge exponent
        return blo < 0.0 or (aux[1] < 0 and blo <= 0.0 <= bhi)
    # variable exponent: safe only if the base stays strictly positive
    return not blo > 0.0


def _rebuild(state, fusion: bool) -> Tape:
    old = set_tape_fusion(fusion)
    try:
        return Tape(*state)
    finally:
        set_tape_fusion(old)


def check_tape(
    tape: Tape,
    label: str,
    box=None,
    deep: int = 0,
    guards=None,
    rules=None,
    report: Report | None = None,
) -> list[Finding]:
    """Run every tape check against one built tape.

    ``box`` bounds the abstract interpretation (defaults to a unit box
    per variable); ``deep`` refines it by uniform axis splitting;
    ``guards`` overrides the executors' guard table (name -> bool, plus
    the ``"pow"`` key) so tests can seed unguarded configurations;
    ``rules`` restricts which checks run (None = all).
    """
    where = f"tape:{label}"

    def on(rule: str) -> bool:
        return rules is None or rule in rules

    state = tape.__getstate__()
    findings = [
        f for f in check_state(state, label) if on(f.rule)
    ]
    if any(f.rule in ("TAPE101", "TAPE102", "TAPE103") for f in findings):
        # semantic passes interpret the instructions; a structurally
        # broken tape would only cascade noise (or crash the builder)
        return findings

    # --- TAPE107: fingerprint <-> structure agreement -------------------
    if on("TAPE107"):
        try:
            digest = stable_digest(state)
        except TypeError as exc:
            findings.append(Finding(
                "TAPE107", where, "state",
                f"persistent state is not stably encodable: {exc}",
            ))
            digest = None
        if digest is not None and tape.fingerprint() != digest:
            findings.append(Finding(
                "TAPE107", where, "fingerprint",
                "fingerprint() disagrees with the digest of __getstate__()",
            ))
        fresh = _rebuild(state, fusion=len(tape.runtime_program()[0]) < len(state[0]))
        live = tape.runtime_program()
        rebuilt = fresh.runtime_program()
        parts = ("forward program", "batch seed", "init los", "init his")
        for part, a, b in zip(parts, live, rebuilt):
            if not _same_value(a, b):
                findings.append(Finding(
                    "TAPE107", where, part,
                    f"built runtime {part} disagrees with a fresh build of "
                    "the persistent state (post-construction mutation or a "
                    "stale runtime cache)",
                ))
                break

    unfused = _rebuild(state, fusion=False)
    names = [name for name, _ in tape.var_slots]
    domain = _norm_box(box, names)
    probes = [domain, _midpoint_box(domain)]

    # --- TAPE109: fusion preserves defined slots and values -------------
    if on("TAPE109"):
        fwd, seed, _, _ = tape.runtime_program()
        defined = {s for s, _, _ in seed}
        defined.update(out for _, out, _, _, _ in fwd)
        defined.update(slot for _, slot in tape.var_slots)
        expected = set(range(tape.n_slots))
        if defined != expected:
            missing = sorted(expected - defined)
            findings.append(Finding(
                "TAPE109", where, "defined-output set",
                f"fused runtime loses slot(s) {missing} that the unfused "
                "tape defines",
            ))
        else:
            n = tape.n_slots
            for probe in probes:
                f_los, f_his = [0.0] * n, [0.0] * n
                u_los, u_his = [0.0] * n, [0.0] * n
                tape.forward_arrays(probe, f_los, f_his)
                unfused.forward_arrays(probe, u_los, u_his)
                diff = [
                    s for s in range(n)
                    if not (_same_float(f_los[s], u_los[s])
                            and _same_float(f_his[s], u_his[s]))
                ]
                if diff:
                    findings.append(Finding(
                        "TAPE109", where, f"slot {diff[0]}",
                        f"fused and unfused forward passes disagree on "
                        f"slot(s) {diff[:4]} (fusion must be bit-identical)",
                    ))
                    break

    # --- TAPE108: silent-NaN reachability --------------------------------
    if on("TAPE108"):
        if guards is None:
            guard_by_name = dict(zip(FUNC_NAMES, func_guard_table()))
            guard_by_name["pow"] = True
        else:
            guard_by_name = dict(zip(FUNC_NAMES, func_guard_table()))
            guard_by_name["pow"] = True
            guard_by_name.update(guards)
        sites = [
            (i, instr) for i, instr in enumerate(state[0])
            if instr[0] == OP_POW
            or (instr[0] == OP_FUNC and FUNC_DOMAINS[instr[3]] is not None)
        ]
        if sites:
            n = tape.n_slots
            maybe: set[int] = set()
            for sub in _subboxes(domain, deep):
                los, his = [0.0] * n, [0.0] * n
                unfused.forward_arrays(sub, los, his)
                for i, (op, out, a, b, aux) in sites:
                    if i in maybe:
                        continue
                    if op == OP_FUNC:
                        if _unsafe_func_input(FUNC_DOMAINS[b], los[a], his[a]):
                            maybe.add(i)
                    elif _unsafe_pow_input(aux, los[a], his[a], los[b], his[b]):
                        maybe.add(i)
            for i, (op, out, a, b, aux) in sites:
                fname = "pow" if op == OP_POW else FUNC_NAMES[b]
                if i not in maybe:
                    if report is not None:
                        report.nan_sites_safe += 1
                elif guard_by_name.get(fname, False):
                    if report is not None:
                        report.nan_sites_guarded += 1
                else:
                    findings.append(Finding(
                        "TAPE108", where, f"instr[{i}]",
                        f"{fname} may receive out-of-domain input over the "
                        "verification domain but has no NaN guard: a silent "
                        "NaN would flow downstream",
                    ))
    if report is not None:
        report.tapes_checked += 1
    return findings


# ---------------------------------------------------------------------------
# TAPE110: MultiTape equivalence audit
# ---------------------------------------------------------------------------

def check_multitape(
    tapes,
    label: str,
    box=None,
    mt: MultiTape | None = None,
    report: Report | None = None,
) -> list[Finding]:
    """Audit that MultiTape interning/DCE preserves every root's semantics.

    ``mt`` defaults to a fresh ``MultiTape.from_tapes(tapes)``; tests pass
    a (possibly corrupted) instance explicitly.
    """
    findings: list[Finding] = []
    where = f"multitape:{label}"
    tapes = list(tapes)
    if not tapes:
        return findings
    if mt is None:
        mt = MultiTape.from_tapes(tapes)

    if len(mt.roots) != len(tapes):
        findings.append(Finding(
            "TAPE110", where, "roots",
            f"{len(tapes)} tapes merged to {len(mt.roots)} roots",
        ))
        return findings

    # structural: bounds, single assignment, def-before-use on the
    # merged forward program (seed + variables are the initial defs)
    n = mt.n_slots
    defined = {s for s, _, _ in mt.seed}
    defined.update(slot for _, slot in mt.var_slots)
    outs: set[int] = set()
    for i, (op, out, a, b, aux) in enumerate(mt._fwd):
        sym = f"instr[{i}]"
        operands = a if isinstance(a, tuple) else (
            (a,) if op == OP_FUNC else (a, b)
        )
        slots = (out, *operands)
        if not all(isinstance(s, int) and 0 <= s < n for s in slots):
            findings.append(Finding(
                "TAPE110", where, sym, f"slot index outside [0, {n})",
            ))
            return findings
        if out in outs or out in defined:
            findings.append(Finding(
                "TAPE110", where, sym, f"merged slot {out} defined twice",
            ))
        if not all(o in defined for o in operands):
            findings.append(Finding(
                "TAPE110", where, sym,
                "merged operand used before definition",
            ))
        outs.add(out)
        defined.add(out)
    undefined_roots = [r for r in mt.roots if r not in defined]
    if undefined_roots:
        findings.append(Finding(
            "TAPE110", where, "roots",
            f"root slot(s) {undefined_roots} never defined in the merged "
            "program",
        ))
    if findings:
        return findings

    merged_vars = {name for name, _ in mt.var_slots}
    tape_vars = {name for t in tapes for name, _ in t.var_slots}
    if not merged_vars <= tape_vars:
        findings.append(Finding(
            "TAPE110", where, "vars",
            f"merged program invents variable(s) {sorted(merged_vars - tape_vars)}",
        ))

    # differential: each root row must be bit-for-bit the tape's own pass
    names = sorted(tape_vars)
    domain = _norm_box(box, names)
    probes = [domain, _midpoint_box(domain)]
    lo_mat, hi_mat = mt.load_batch(probes)
    # a huge vector_min forces the per-column scalar interpreter: the
    # audit isolates interning/DCE, and the scalar path is the same
    # interpreter forward_arrays runs, so equality must be bit-exact
    # (vector-kernel equivalence is the differential fuzz corpus's job)
    mt.forward_batch(lo_mat, hi_mat, vector_min=1 << 30)
    for t_idx, tape in enumerate(tapes):
        root = mt.roots[t_idx]
        for j, probe in enumerate(probes):
            los = [0.0] * tape.n_slots
            his = [0.0] * tape.n_slots
            tape.forward_arrays(probe, los, his)
            if not (
                _same_float(float(lo_mat[root][j]), los[tape.root])
                and _same_float(float(hi_mat[root][j]), his[tape.root])
            ):
                findings.append(Finding(
                    "TAPE110", where, f"root[{t_idx}]",
                    "merged forward pass disagrees with the tape's own "
                    f"forward pass on probe box {j} (interning or DCE "
                    "changed semantics)",
                ))
                break
    if report is not None:
        report.tapes_checked += 1
    return findings


# ---------------------------------------------------------------------------
# corpus runner: every tape of every applicable (functional, condition)
# ---------------------------------------------------------------------------

def corpus_pairs(functionals=None, conditions=None):
    """Resolve name slices to the applicable (functional, condition) pairs.

    ``None`` means the *full* registry / condition catalog -- wider than
    the paper's evaluation on purpose: the corpus guards every tape the
    campaigns can compile.
    """
    from ..conditions.catalog import PAPER_CONDITIONS, applicable_pairs, get_condition
    from ..functionals.registry import all_functionals, get_functional

    fs = (
        all_functionals()
        if functionals is None
        else tuple(get_functional(name) for name in functionals)
    )
    cs = (
        PAPER_CONDITIONS
        if conditions is None
        else tuple(get_condition(cid) for cid in conditions)
    )
    return applicable_pairs(fs, cs)


def check_problem(
    compiled,
    label: str,
    deep: int = 0,
    guards=None,
    rules=None,
    report: Report | None = None,
) -> list[Finding]:
    """Check every tape of one compiled problem, plus the fused conjunction."""
    findings: list[Finding] = []
    box = compiled.domain

    def run(tape, sub: str) -> None:
        findings.extend(check_tape(
            tape, f"{label}/{sub}", box=box, deep=deep, guards=guards,
            rules=rules, report=report,
        ))

    atom_tapes = []
    for i, atom in enumerate(compiled.negation.atoms):
        run(atom.tape, f"atom{i}")
        atom_tapes.append(atom.tape)
        for name, dtape in sorted((atom.deriv_tapes or {}).items()):
            run(dtape, f"atom{i}/d_{name}")
    run(compiled.psi_lhs, "psi_lhs")
    run(compiled.psi_rhs, "psi_rhs")
    if rules is None or "TAPE110" in rules:
        findings.extend(check_multitape(
            atom_tapes, label, box=box, report=report,
        ))
    if report is not None:
        report.pairs_checked += 1
    return findings


def check_corpus(
    functionals=None,
    conditions=None,
    deep: int = 0,
    derivatives: bool = False,
    guards=None,
    rules=None,
    report: Report | None = None,
) -> list[Finding]:
    """Compile and check the functional x condition tape corpus."""
    from ..verifier.encoder import compile_problem, encode

    findings: list[Finding] = []
    for functional, condition in corpus_pairs(functionals, conditions):
        compiled = compile_problem(
            encode(functional, condition), derivatives=derivatives
        )
        findings.extend(check_problem(
            compiled, f"{functional.name}/{condition.cid}",
            deep=deep, guards=guards, rules=rules, report=report,
        ))
    return findings
