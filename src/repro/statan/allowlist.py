"""The per-file allowlist for deliberate REP1xx exceptions.

Format (one entry per line, ``#`` starts a comment line)::

    RULE  path-glob  symbol-glob  -- one-line justification

``path-glob`` matches the finding's repo-relative posix path and
``symbol-glob`` its enclosing qualified name, both with ``fnmatch``
semantics.  The justification is mandatory: an exception nobody can
explain is a bug with paperwork.  ``REP100`` (emitted by the loader and
the runner) keeps the list honest -- malformed lines, unknown rule ids,
missing justifications and entries that no longer suppress anything are
findings themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

from .report import Finding

__all__ = ["AllowEntry", "Allowlist", "default_allowlist_path", "load_allowlist"]


def default_allowlist_path() -> Path:
    return Path(__file__).resolve().with_name("allowlist.txt")


@dataclass
class AllowEntry:
    rule: str
    path_glob: str
    symbol_glob: str
    justification: str
    lineno: int
    hits: int = 0

    def matches(self, rule: str, rel: str, symbol: str) -> bool:
        return (
            rule == self.rule
            and fnmatch(rel, self.path_glob)
            and fnmatch(symbol, self.symbol_glob)
        )


@dataclass
class Allowlist:
    path: Path
    entries: list[AllowEntry] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)  # REP100 load errors

    def suppresses(self, finding: Finding) -> bool:
        rel = finding.where.rsplit(":", 1)[0]
        for entry in self.entries:
            if entry.matches(finding.rule, rel, finding.symbol):
                entry.hits += 1
                return True
        return False

    def unused_entries(self) -> list[AllowEntry]:
        return [e for e in self.entries if e.hits == 0]


def load_allowlist(path: Path | None = None, known_rules=()) -> Allowlist:
    """Parse ``allowlist.txt``; malformed entries become REP100 findings."""
    path = default_allowlist_path() if path is None else Path(path)
    allow = Allowlist(path=path)
    if not path.exists():
        return allow
    where_base = path.name
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        where = f"{where_base}:{lineno}"
        head, sep, justification = line.partition("--")
        fields = head.split()
        if not sep or len(fields) != 3:
            allow.findings.append(Finding(
                "REP100", where, "allowlist",
                "malformed entry: expected "
                "'RULE path-glob symbol-glob -- justification'",
            ))
            continue
        rule, path_glob, symbol_glob = fields
        justification = justification.strip()
        if not justification:
            allow.findings.append(Finding(
                "REP100", where, "allowlist",
                f"entry for {rule} lacks a justification",
            ))
            continue
        if known_rules and rule not in known_rules:
            allow.findings.append(Finding(
                "REP100", where, "allowlist",
                f"unknown rule id {rule!r}",
            ))
            continue
        allow.entries.append(AllowEntry(
            rule=rule,
            path_glob=path_glob,
            symbol_glob=symbol_glob,
            justification=justification,
            lineno=lineno,
        ))
    return allow
