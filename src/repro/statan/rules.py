"""The project-specific REP1xx lint rules of ``repro check``.

Each rule encodes one invariant the codebase states in prose (module
docstrings, PR discussions, post-mortems of the PR 4-8 fuzzer finds)
but never previously enforced:

``REP100``  allowlist hygiene (malformed/unknown/stale entries)
``REP101``  rounding discipline: interval endpoint arithmetic in the
            solver kernels must live in functions that round outward
            (``nextafter`` or the ``_down``/``_up``/``_chain_*`` helpers)
``REP102``  content-key purity: nothing reachable from the store's
            content-hash roots may read time, randomness, the
            environment, or unsorted dict order
``REP103``  asyncio hygiene: no blocking sqlite/file/sleep calls inside
            ``async def`` bodies off ``asyncio.to_thread``
``REP104``  fork-safety: process pools must be constructed at sanctioned
            sites only (a fork after thread spawn deadlocks, the PR 5
            lazy-fork bug)
``REP105``  loud validation: public config dataclasses reject bad
            values in ``__post_init__`` (the PR 8 CampaignConfig pattern)
``REP106``  clock discipline: traced modules take timestamps through the
            ``obs.clock`` helpers, not raw ``time.time()`` /
            ``time.monotonic()`` / ``time.perf_counter()``, so every
            measurement site is greppable and trace timestamps share one
            clock across processes

Rules report at function granularity where possible (one finding per
offending function, anchored at the first offending expression), so a
clean-up is one edit, not a diff-wide wall of noise.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch

from .astcheck import FunctionInfo, Module, call_name
from .report import Finding

__all__ = ["REP_RULES", "run_rules"]

#: rule id -> (title, rationale) -- the ``repro check`` registry
REP_RULES = {
    "REP100": (
        "allowlist hygiene",
        "an exception nobody can justify, or that suppresses nothing, is a bug",
    ),
    "REP101": (
        "rounding discipline",
        "bare endpoint arithmetic silently drops outward rounding; every "
        "enclosure bug class of PRs 1-4 started here",
    ),
    "REP102": (
        "content-key purity",
        "store keys must be deterministic across processes and runs, or "
        "resumed campaigns silently recompute (or worse, alias) cells",
    ),
    "REP103": (
        "asyncio hygiene",
        "a blocking call in an async body stalls the event loop for every "
        "connected client",
    ),
    "REP104": (
        "fork-safety",
        "forking a process pool after threads exist deadlocks workers "
        "(the PR 5 lazy-fork bug); pools are constructed eagerly at "
        "sanctioned sites",
    ),
    "REP105": (
        "loud validation",
        "config dataclasses that accept nonsense fail far from the typo; "
        "__post_init__ rejects bad values at construction",
    ),
    "REP106": (
        "clock discipline",
        "ad-hoc time.*() calls in traced modules drift from the trace "
        "clock and hide measurement sites; timestamps go through "
        "obs.clock (wall_now/mono_now/perf_now) or get allowlisted",
    ),
}

#: the functions whose return values become store keys: REP102 traces
#: everything reachable from any function *named* like one of these
CONTENT_KEY_ROOTS = frozenset({
    "stable_digest", "_stable_encode", "fingerprint", "semantic_key",
    "content_hash", "pair_content_key", "cell_content_key",
})

#: bare names too generic to follow through the name-based call graph
#: (dict.get, list.append, ... would alias unrelated project functions)
_CALL_GRAPH_SKIP = frozenset({
    "get", "put", "set", "add", "pop", "append", "extend", "update",
    "copy", "items", "keys", "values", "join", "split", "strip", "sort",
    "sorted", "open", "close", "read", "write", "render", "run", "start",
    "stop", "submit", "result", "format", "replace", "lower", "upper",
    "name", "label", "walk",
})

_ROUNDING_CALLS = frozenset({
    "nextafter", "_down", "_up", "_chain_down", "_chain_up",
    "_down_arr", "_up_arr", "_chain_down_arr", "_chain_up_arr",
})

_ROUNDING_FILES = (
    "*solver/kernels.py", "*solver/tape.py", "*solver/interval.py",
)

_BLOCKING_CALLS = frozenset({
    "time.sleep", "sqlite3.connect", "open", "os.system",
    "subprocess.run", "subprocess.call", "subprocess.check_output",
    "subprocess.check_call", "subprocess.Popen",
})

_FORBIDDEN_KEY_PREFIXES = (
    "time.", "random.", "np.random.", "numpy.random.", "uuid.",
    "secrets.", "datetime.",
)
_FORBIDDEN_KEY_CALLS = frozenset({"os.getenv", "os.urandom", "time"})


def _finding(rule: str, module: Module, node: ast.AST, symbol: str, msg: str) -> Finding:
    return Finding(rule, f"{module.rel}:{node.lineno}", symbol, msg)


# ---------------------------------------------------------------------------
# REP101: rounding discipline
# ---------------------------------------------------------------------------

def _endpoint_name(name: str) -> bool:
    low = name.lower()
    return low in ("lo", "hi") or low.endswith(("lo", "hi"))


def _endpoint_array(name: str) -> bool:
    low = name.lower()
    return low in ("los", "his") or low.endswith(("los", "his"))


def _endpointish(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return _endpoint_name(node.id)
    if isinstance(node, ast.Attribute):
        return _endpoint_name(node.attr)
    if isinstance(node, ast.Subscript):
        value = node.value
        return isinstance(value, ast.Name) and _endpoint_array(value.id)
    return False


def _rep101(modules: list[Module]) -> list[Finding]:
    findings = []
    for module in modules:
        if not any(fnmatch(module.rel, g) for g in _ROUNDING_FILES):
            continue
        for info in module.functions:
            rounds = any(
                dotted.rsplit(".", 1)[-1] in _ROUNDING_CALLS
                for dotted, _ in info.calls
            )
            if rounds:
                continue
            for node in info.own_nodes():
                if (
                    isinstance(node, ast.BinOp)
                    and isinstance(
                        node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow)
                    )
                    and (_endpointish(node.left) or _endpointish(node.right))
                ):
                    findings.append(_finding(
                        "REP101", module, node, info.qualname,
                        "bare float endpoint arithmetic outside a "
                        "nextafter-paired helper: enclosure endpoints must "
                        "round outward",
                    ))
                    break
    return findings


# ---------------------------------------------------------------------------
# REP102: content-key purity
# ---------------------------------------------------------------------------

def _reachable_from_roots(modules: list[Module]) -> dict[FunctionInfo, str]:
    """Name-based closure of the content-key roots: info -> root name."""
    by_name: dict[str, list[FunctionInfo]] = {}
    for module in modules:
        for info in module.functions:
            by_name.setdefault(info.name, []).append(info)
    reached: dict[FunctionInfo, str] = {}
    stack = [
        (info, info.name)
        for name in sorted(CONTENT_KEY_ROOTS)
        for info in by_name.get(name, ())
    ]
    while stack:
        info, root = stack.pop()
        if info in reached:
            continue
        reached[info] = root
        for dotted, _ in info.calls:
            callee = dotted.rsplit(".", 1)[-1]
            if callee in _CALL_GRAPH_SKIP:
                continue
            for target in by_name.get(callee, ()):
                if target not in reached:
                    stack.append((target, root))
    return reached


def _rep102(modules: list[Module]) -> list[Finding]:
    findings = []
    reached = _reachable_from_roots(modules)
    for info, root in sorted(
        reached.items(), key=lambda kv: (kv[0].module.rel, kv[0].node.lineno)
    ):
        for dotted, node in info.calls:
            forbidden = (
                dotted in _FORBIDDEN_KEY_CALLS
                or any(dotted.startswith(p) for p in _FORBIDDEN_KEY_PREFIXES)
                or "environ" in dotted
            )
            if forbidden:
                findings.append(_finding(
                    "REP102", info.module, node, info.qualname,
                    f"{dotted}() is reachable from content-key root "
                    f"{root!r}: keys must not depend on time, randomness "
                    "or the environment",
                ))
        # unsorted mapping iteration is checked in the roots themselves,
        # where the emitted key order is decided
        if info.name not in CONTENT_KEY_ROOTS:
            continue
        for dotted, node in info.calls:
            if dotted.rsplit(".", 1)[-1] not in ("items", "keys", "values"):
                continue
            wrapped = False
            cur = info.module.parent(node)
            while cur is not None and not isinstance(
                cur, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if (
                    isinstance(cur, ast.Call)
                    and isinstance(cur.func, ast.Name)
                    and cur.func.id == "sorted"
                ):
                    wrapped = True
                    break
                cur = info.module.parent(cur)
            if not wrapped:
                findings.append(_finding(
                    "REP102", info.module, node, info.qualname,
                    f"{dotted}() iterated without sorted() in a content-key "
                    "root: key bytes must not depend on mapping order",
                ))
    return findings


# ---------------------------------------------------------------------------
# REP103: asyncio hygiene
# ---------------------------------------------------------------------------

def _rep103(modules: list[Module]) -> list[Finding]:
    findings = []
    for module in modules:
        if not fnmatch(module.rel, "*service/*.py"):
            continue
        for info in module.functions:
            if not info.is_async:
                continue
            for dotted, node in info.calls:
                if dotted in _BLOCKING_CALLS:
                    findings.append(_finding(
                        "REP103", module, node, info.qualname,
                        f"blocking {dotted}() inside an async def body "
                        "stalls the event loop; wrap it in "
                        "asyncio.to_thread",
                    ))
    return findings


# ---------------------------------------------------------------------------
# REP104: fork-safety
# ---------------------------------------------------------------------------

def _rep104(modules: list[Module]) -> list[Finding]:
    findings = []
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = call_name(node.func)
            last = dotted.rsplit(".", 1)[-1]
            is_pool = last == "ProcessPoolExecutor" or (
                last == "Pool" and dotted.split(".", 1)[0] in
                ("multiprocessing", "mp")
            )
            if is_pool:
                findings.append(_finding(
                    "REP104", module, node, module.symbol_at(node),
                    "process-pool construction: forking after thread spawn "
                    "deadlocks workers -- only sanctioned (allowlisted) "
                    "eager-construction sites may do this",
                ))
    return findings


# ---------------------------------------------------------------------------
# REP105: loud validation
# ---------------------------------------------------------------------------

def _is_dataclass_decorator(node: ast.AST) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id == "dataclass"
    return isinstance(target, ast.Attribute) and target.attr == "dataclass"


def _rep105(modules: list[Module]) -> list[Finding]:
    findings = []
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name.startswith("_") or not node.name.endswith("Config"):
                continue
            if not any(_is_dataclass_decorator(d) for d in node.decorator_list):
                continue
            has_post_init = any(
                isinstance(item, ast.FunctionDef)
                and item.name == "__post_init__"
                for item in node.body
            )
            if not has_post_init:
                findings.append(_finding(
                    "REP105", module, node, node.name,
                    "public config dataclass without __post_init__ "
                    "validation: bad values must be rejected at "
                    "construction, not deep inside the engine",
                ))
    return findings


# ---------------------------------------------------------------------------
# REP106: clock discipline
# ---------------------------------------------------------------------------

#: the modules the tracer threads spans through: a raw time.*() call here
#: is either a measurement that belongs in a span attribute or a clock
#: that can drift from the trace timestamps
_TRACED_FILES = (
    "*repro/cli.py", "*verifier/campaign.py", "*verifier/verifier.py",
    "*numerics/campaign.py", "*solver/icp.py", "*service/*.py",
    "*obs/*.py",
)

#: the one sanctioned home for raw clock reads
_CLOCK_MODULE = "*obs/clock.py"

_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.monotonic", "time.perf_counter",
})


def _rep106(modules: list[Module]) -> list[Finding]:
    findings = []
    for module in modules:
        if fnmatch(module.rel, _CLOCK_MODULE):
            continue
        if not any(fnmatch(module.rel, g) for g in _TRACED_FILES):
            continue
        for info in module.functions:
            for dotted, node in info.calls:
                if dotted in _WALLCLOCK_CALLS:
                    findings.append(_finding(
                        "REP106", module, node, info.qualname,
                        f"raw {dotted}() in a traced module: use the "
                        "obs.clock helpers (wall_now/mono_now/perf_now) so "
                        "trace timestamps share one clock, or allowlist "
                        "the deliberate measurement site",
                    ))
                    break
    return findings


_RULE_IMPLS = {
    "REP101": _rep101,
    "REP102": _rep102,
    "REP103": _rep103,
    "REP104": _rep104,
    "REP105": _rep105,
    "REP106": _rep106,
}


def run_rules(modules: list[Module], selected=None) -> list[Finding]:
    """Run the selected REP rules (None = all) over parsed modules."""
    findings: list[Finding] = []
    for rule, impl in _RULE_IMPLS.items():
        if selected is None or rule in selected:
            findings.extend(impl(modules))
    return findings
