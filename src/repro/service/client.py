"""Stdlib client for the verification service.

``http.client`` only -- one connection per request, matching the
server's ``Connection: close`` framing.  Connection-level failures
(refused, reset, timeout) raise :class:`ServiceError` with a one-line
message; ``repro submit`` maps that to a clean nonzero exit instead of a
traceback.
"""

from __future__ import annotations

import http.client
import json
import socket
import urllib.parse
from typing import Callable, Iterator

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A request could not be completed (connection or server error)."""

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talks to one service base URL, e.g. ``http://127.0.0.1:8642``."""

    def __init__(self, url: str, timeout: float = 600.0):
        parsed = urllib.parse.urlsplit(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("http", ""):
            raise ServiceError(f"unsupported URL scheme {parsed.scheme!r} in {url!r}")
        if not parsed.hostname:
            raise ServiceError(f"no host in service URL {url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self.url = f"http://{self.host}:{self.port}"

    # -- plumbing ----------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        conn = self._connect()
        try:
            body = None if payload is None else json.dumps(payload).encode()
            headers = {"Content-Type": "application/json"} if body else {}
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
            except (ConnectionError, socket.timeout, OSError) as exc:
                raise ServiceError(
                    f"cannot reach service at {self.url}: {exc}"
                ) from None
            return self._decode(response.status, data, path)
        finally:
            conn.close()

    def _decode(self, status: int, data: bytes, path: str) -> dict:
        try:
            payload = json.loads(data.decode() or "null")
        except json.JSONDecodeError:
            payload = {"error": data.decode(errors="replace")[:200]}
        if status >= 400:
            message = (
                payload.get("error", f"HTTP {status}")
                if isinstance(payload, dict)
                else f"HTTP {status}"
            )
            raise ServiceError(f"{path}: {message}", status=status)
        return payload

    # -- API ---------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, spec: dict) -> dict:
        """Submit a job spec; returns the initial progress snapshot."""
        return self._request("POST", "/jobs", spec)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/result")

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream the job's NDJSON progress snapshots until terminal."""
        conn = self._connect()
        try:
            try:
                conn.request("GET", f"/jobs/{job_id}/events")
                response = conn.getresponse()
            except (ConnectionError, socket.timeout, OSError) as exc:
                raise ServiceError(
                    f"cannot reach service at {self.url}: {exc}"
                ) from None
            if response.status >= 400:
                self._decode(response.status, response.read(), f"/jobs/{job_id}/events")
            while True:
                try:
                    line = response.readline()
                except (ConnectionError, socket.timeout, OSError) as exc:
                    raise ServiceError(
                        f"progress stream from {self.url} broke: {exc}"
                    ) from None
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # a line cut short by a server kill mid-write: the
                    # stream is over, callers re-poll or error cleanly
                    raise ServiceError(
                        f"progress stream from {self.url} ended mid-line"
                    ) from None
        finally:
            conn.close()

    def run(
        self,
        spec: dict,
        on_progress: Callable[[dict], None] | None = None,
    ) -> dict:
        """Submit, follow the progress stream, fetch the final result."""
        snapshot = self.submit(spec)
        job_id = snapshot["id"]
        last = snapshot
        for event in self.events(job_id):
            last = event
            if on_progress is not None:
                on_progress(event)
        if last["state"] not in ("done", "failed", "cancelled"):
            # stream ended early (server drain mid-stream): poll once
            last = self.job(job_id)
        result = self.result(job_id)
        return result
