"""Stdlib client for the verification service (``/v1`` API).

``http.client`` only.  The client keeps ONE keep-alive connection and
reuses it across requests -- the load generator measures the server,
not TCP setup -- reconnecting transparently when the pooled connection
went stale (server restarted, keep-alive idle timeout fired).  The
reconnect-and-retry happens only when the failure proves no response
was started; submissions are content-keyed and idempotent server-side,
so the one retry can never double-compute.

Errors are a typed hierarchy under :class:`ServiceError`, decoded from
the server's uniform error envelope
``{"error": {"code", "message", "retry_after"}}``:

=========================  ============================================
:class:`AuthError`         401 -- missing or invalid bearer token
:class:`RateLimited`       429 -- over the per-client rate, carries
                           ``retry_after`` seconds
:class:`Overloaded`        503 -- queue past the high-water mark or the
                           server is draining; carries ``retry_after``
:class:`JobNotFound`       404 with code ``job_not_found``
:class:`NotReady`          409 -- result fetched before terminal state
=========================  ============================================

Anything else (connection refused, route 404, 400 bad spec) raises the
base :class:`ServiceError` with a one-line message; ``repro submit``
maps that to a clean nonzero exit instead of a traceback.

:meth:`ServiceClient.submit_with_retry` honours ``Retry-After`` with
bounded exponential backoff, which is what makes 503-then-retry
converge under backpressure (the load benchmark pins that).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import urllib.parse
from typing import Callable, Iterator

__all__ = [
    "AuthError",
    "JobNotFound",
    "NotReady",
    "Overloaded",
    "RateLimited",
    "ServiceClient",
    "ServiceError",
]


class ServiceError(RuntimeError):
    """A request could not be completed (connection or server error)."""

    def __init__(
        self,
        message: str,
        status: int | None = None,
        code: str | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code


class AuthError(ServiceError):
    """The server rejected the request's credentials (401)."""


class _Retryable(ServiceError):
    def __init__(self, message, status=None, code=None, retry_after=None):
        super().__init__(message, status=status, code=code)
        self.retry_after = retry_after


class RateLimited(_Retryable):
    """The per-client token bucket is dry (429); retry after a delay."""


class Overloaded(_Retryable):
    """The queue is past the high-water mark or the server drains (503)."""


class JobNotFound(ServiceError):
    """The job id is unknown (expired from retention, or never existed)."""


class NotReady(ServiceError):
    """The result was fetched before the job reached a terminal state."""


#: stale-connection failures that prove no response was started, so a
#: single transparent reconnect+retry of the request is safe
_STALE = (
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
    http.client.ResponseNotReady,
    ConnectionResetError,
    BrokenPipeError,
)


class ServiceClient:
    """Talks to one service base URL, e.g. ``http://127.0.0.1:8642``.

    ``token`` (optional) is sent as ``Authorization: Bearer <token>``
    on every request; servers in anonymous mode ignore it.
    """

    def __init__(self, url: str, timeout: float = 600.0,
                 token: str | None = None):
        parsed = urllib.parse.urlsplit(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("http", ""):
            raise ServiceError(f"unsupported URL scheme {parsed.scheme!r} in {url!r}")
        if not parsed.hostname:
            raise ServiceError(f"no host in service URL {url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self.token = token
        self.url = f"http://{self.host}:{self.port}"
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing ----------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _headers(self, has_body: bool) -> dict:
        headers = {}
        if has_body:
            headers["Content-Type"] = "application/json"
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        return headers

    def close(self) -> None:
        """Drop the pooled keep-alive connection (idempotent)."""
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = None if payload is None else json.dumps(payload).encode()
        headers = self._headers(body is not None)
        for attempt in (0, 1):
            reused = self._conn is not None
            conn = self._conn or self._connect()
            self._conn = conn
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
            except _STALE as exc:
                # the pooled connection died between requests; a fresh
                # connection gets exactly one retry -- but only if this
                # WAS a reused connection (a fresh one failing the same
                # way is a real server problem, not staleness)
                self.close()
                if reused and attempt == 0:
                    continue
                raise ServiceError(
                    f"cannot reach service at {self.url}: {exc}"
                ) from None
            except (ConnectionError, socket.timeout, OSError) as exc:
                self.close()
                raise ServiceError(
                    f"cannot reach service at {self.url}: {exc}"
                ) from None
            if response.will_close:
                self.close()
            return self._decode(response, data, path)
        raise AssertionError("unreachable")  # pragma: no cover

    def _decode(self, response, data: bytes, path: str) -> dict:
        status = response.status
        try:
            payload = json.loads(data.decode() or "null")
        except json.JSONDecodeError:
            payload = {"error": data.decode(errors="replace")[:200]}
        if status < 400:
            return payload
        raise self._error(status, payload, response, path)

    def _error(self, status, payload, response, path) -> ServiceError:
        """Map a non-2xx response to the typed exception hierarchy."""
        code = None
        retry_after = None
        message = f"HTTP {status}"
        if isinstance(payload, dict):
            envelope = payload.get("error")
            if isinstance(envelope, dict):  # the /v1 uniform envelope
                code = envelope.get("code")
                message = envelope.get("message", message)
                retry_after = envelope.get("retry_after")
            elif envelope is not None:  # pre-/v1 servers: a bare string
                message = str(envelope)
        if retry_after is None:
            header = response.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    pass
        message = f"{path}: {message}"
        if status == 401:
            return AuthError(message, status=status, code=code)
        if status == 429:
            return RateLimited(
                message, status=status, code=code, retry_after=retry_after
            )
        if status == 503:
            return Overloaded(
                message, status=status, code=code, retry_after=retry_after
            )
        if status == 404 and code == "job_not_found":
            return JobNotFound(message, status=status, code=code)
        if status == 409:
            return NotReady(message, status=status, code=code)
        return ServiceError(message, status=status, code=code)

    # -- API ---------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def submit(self, spec: dict) -> dict:
        """Submit a job spec; returns the initial progress snapshot."""
        return self._request("POST", "/v1/jobs", spec)

    def submit_with_retry(
        self,
        spec: dict,
        *,
        max_attempts: int = 8,
        max_backoff: float = 8.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> dict:
        """Submit, honouring ``Retry-After`` with bounded exponential
        backoff on 429/503.  Raises the last :class:`RateLimited` /
        :class:`Overloaded` once ``max_attempts`` is exhausted; every
        other failure propagates immediately.
        """
        backoff = 0.25
        for attempt in range(max_attempts):
            try:
                return self.submit(spec)
            except (RateLimited, Overloaded) as exc:
                if attempt == max_attempts - 1:
                    raise
                wait = exc.retry_after if exc.retry_after else backoff
                sleep(min(wait, max_backoff))
                backoff = min(backoff * 2.0, max_backoff)
        raise AssertionError("unreachable")  # pragma: no cover

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream the job's NDJSON progress snapshots until terminal.

        Uses its own connection: the stream is delimited by server
        close, so it cannot share the pooled keep-alive connection.
        """
        conn = self._connect()
        try:
            try:
                conn.request(
                    "GET", f"/v1/jobs/{job_id}/events",
                    headers=self._headers(False),
                )
                response = conn.getresponse()
            except (ConnectionError, socket.timeout, OSError) as exc:
                raise ServiceError(
                    f"cannot reach service at {self.url}: {exc}"
                ) from None
            if response.status >= 400:
                self._decode(response, response.read(), f"/v1/jobs/{job_id}/events")
            while True:
                try:
                    line = response.readline()
                except (ConnectionError, socket.timeout, OSError) as exc:
                    raise ServiceError(
                        f"progress stream from {self.url} broke: {exc}"
                    ) from None
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # a line cut short by a server kill mid-write: the
                    # stream is over, callers re-poll or error cleanly
                    raise ServiceError(
                        f"progress stream from {self.url} ended mid-line"
                    ) from None
        finally:
            conn.close()

    def run(
        self,
        spec: dict,
        on_progress: Callable[[dict], None] | None = None,
        *,
        submit_retries: int = 0,
    ) -> dict:
        """Submit, follow the progress stream, fetch the final result.

        ``submit_retries > 0`` retries a 429/503 submission that many
        extra times with Retry-After-honouring backoff.
        """
        if submit_retries > 0:
            snapshot = self.submit_with_retry(
                spec, max_attempts=1 + submit_retries
            )
        else:
            snapshot = self.submit(spec)
        job_id = snapshot["id"]
        last = snapshot
        for event in self.events(job_id):
            last = event
            if on_progress is not None:
                on_progress(event)
        if last["state"] not in ("done", "failed", "cancelled"):
            # stream ended early (server drain mid-stream): poll once
            last = self.job(job_id)
        result = self.result(job_id)
        return result
