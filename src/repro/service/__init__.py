"""Verification-as-a-service: a resident job server over the campaign engine.

One-shot CLI campaigns recompute (or at best re-open the store) on every
invocation and cannot serve many concurrent clients.  This package turns
the campaign machinery into a long-running daemon:

* :mod:`jobs <repro.service.jobs>` -- job descriptors (verify-pair,
  Table I/II slices, numerics cells) that lower to the existing campaign
  cells, keyed by the same content hashes as the result store, with
  explicit job states and progress snapshots;
* :mod:`scheduler <repro.service.scheduler>` -- the asyncio front-end:
  concurrent jobs interleave fairly at chunk granularity over ONE shared
  process pool, identical in-flight requests coalesce onto a single
  computation, and completed cells are served straight from the store
  without scheduling;
* :mod:`server <repro.service.server>` -- the stdlib-only HTTP/NDJSON
  API (``POST /jobs``, ``GET /jobs/<id>``, streaming progress, result
  fetch) with graceful SIGTERM drain;
* :mod:`client <repro.service.client>` -- the matching stdlib client,
  wired to the ``repro serve`` / ``repro submit`` CLI subcommands.

Results fetched through the service are bit-identical to the direct
:func:`~repro.verifier.campaign.run_campaign` /
:func:`~repro.numerics.campaign.run_numerics_campaign` paths regardless
of concurrency, coalescing or cache state -- pinned by the differential
corpus in ``tests/service/``.
"""

from .client import ServiceClient, ServiceError
from .jobs import Job, JobSpec, JobState, spec_from_payload
from .scheduler import VerificationScheduler
from .server import ServiceServer, ThreadedService, serve

__all__ = [
    "Job",
    "JobSpec",
    "JobState",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ThreadedService",
    "VerificationScheduler",
    "serve",
    "spec_from_payload",
]
