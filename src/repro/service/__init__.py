"""Verification-as-a-service: a resident job server over the campaign engine.

One-shot CLI campaigns recompute (or at best re-open the store) on every
invocation and cannot serve many concurrent clients.  This package turns
the campaign machinery into a long-running daemon:

* :mod:`jobs <repro.service.jobs>` -- job descriptors (verify-pair,
  Table I/II slices, numerics cells) that lower to the existing campaign
  cells, keyed by the same content hashes as the result store, with
  explicit job states and progress snapshots;
* :mod:`scheduler <repro.service.scheduler>` -- the asyncio front-end:
  concurrent jobs interleave fairly at chunk granularity over ONE shared
  process pool, identical in-flight requests coalesce onto a single
  computation, and completed cells are served straight from the store
  without scheduling;
* :mod:`server <repro.service.server>` -- the stdlib-only HTTP/NDJSON
  API, versioned under ``/v1`` (``POST /v1/jobs``, ``GET /v1/jobs/<id>``,
  streaming progress, result fetch, ``GET /v1/metrics``) with keep-alive
  connections, a uniform error envelope and graceful SIGTERM drain;
* the production-hardening middleware: :mod:`auth <repro.service.auth>`
  (bearer tokens, constant-time compare, anonymous mode),
  :mod:`rate_limit <repro.service.rate_limit>` (per-client token
  buckets + queue-depth admission control),
  :mod:`metrics <repro.service.metrics>` (counters, gauges, log-spaced
  latency histograms) and :mod:`audit <repro.service.audit>` (append-only
  JSONL submission log);
* :mod:`client <repro.service.client>` -- the matching stdlib client
  (keep-alive, typed error hierarchy, Retry-After-honouring backoff),
  wired to the ``repro serve`` / ``repro submit`` CLI subcommands.

Results fetched through the service are bit-identical to the direct
:func:`~repro.verifier.campaign.run_campaign` /
:func:`~repro.numerics.campaign.run_numerics_campaign` paths regardless
of concurrency, coalescing or cache state -- pinned by the differential
corpus in ``tests/service/``.
"""

from .audit import AuditLog, read_audit_log
from .auth import Authenticator, resolve_tokens
from .client import (
    AuthError,
    JobNotFound,
    NotReady,
    Overloaded,
    RateLimited,
    ServiceClient,
    ServiceError,
)
from .jobs import Job, JobSpec, JobState, spec_from_payload
from .metrics import ServiceMetrics
from .rate_limit import AdmissionController, RateLimiter
from .scheduler import VerificationScheduler
from .server import ServiceServer, ThreadedService, serve

__all__ = [
    "AdmissionController",
    "AuditLog",
    "AuthError",
    "Authenticator",
    "Job",
    "JobNotFound",
    "JobSpec",
    "JobState",
    "NotReady",
    "Overloaded",
    "RateLimited",
    "RateLimiter",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "ServiceServer",
    "ThreadedService",
    "VerificationScheduler",
    "read_audit_log",
    "resolve_tokens",
    "serve",
    "spec_from_payload",
]
