"""Bearer-token authentication for the verification service.

Stdlib translation of the middleware shape in tritium-sc's
``src/app/auth.py``: a static token table maps secrets to client
identities, the ``Authorization: Bearer <token>`` header is checked with
a constant-time comparison, and the absence of any configured token
selects **anonymous mode** -- every request is accepted as client
``"anonymous"`` -- so tests, benchmarks and local single-user setups
keep working with zero ceremony.

Token sources (first configured one wins):

* ``--tokens-file PATH`` -- one ``client_id:token`` per line, ``#``
  comments and blank lines ignored;
* ``REPRO_SERVICE_TOKENS`` -- the same entries, comma-separated
  (``alice:s3cret,bob:hunter2``).

Tokens identify *clients* (for rate limiting and the audit log), they
are not capabilities: every authenticated client may use every route.
"""

from __future__ import annotations

import hmac
import os

__all__ = [
    "ANONYMOUS",
    "AuthenticationError",
    "Authenticator",
    "load_tokens_env",
    "load_tokens_file",
    "parse_token_entries",
    "resolve_tokens",
]

ANONYMOUS = "anonymous"

TOKENS_ENV = "REPRO_SERVICE_TOKENS"


class AuthenticationError(Exception):
    """A request could not be authenticated.

    ``code`` is the machine-readable error-envelope code the server
    answers with (``missing_token`` | ``invalid_token``).
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


def parse_token_entries(entries, source: str) -> dict[str, str]:
    """``client_id:token`` entries -> ``{token: client_id}``.

    Rejects malformed entries, empty ids/tokens and duplicate tokens
    with a one-line :class:`ValueError` naming the source -- a silently
    dropped token would look exactly like an auth outage to its client.
    """
    tokens: dict[str, str] = {}
    for raw in entries:
        entry = raw.strip()
        if not entry or entry.startswith("#"):
            continue
        client, sep, token = entry.partition(":")
        client, token = client.strip(), token.strip()
        if not sep or not client or not token:
            raise ValueError(
                f"{source}: malformed token entry {entry!r} "
                "(expected 'client_id:token')"
            )
        if token in tokens:
            raise ValueError(
                f"{source}: token for {client!r} duplicates the one for "
                f"{tokens[token]!r} (tokens must identify one client)"
            )
        tokens[token] = client
    return tokens


def load_tokens_file(path) -> dict[str, str]:
    with open(path) as handle:
        return parse_token_entries(handle, str(path))


def load_tokens_env(value: str) -> dict[str, str]:
    return parse_token_entries(value.split(","), TOKENS_ENV)


def resolve_tokens(tokens_file=None, environ=None) -> dict[str, str]:
    """The serve-time token table: explicit file, else env, else empty."""
    if tokens_file is not None:
        return load_tokens_file(tokens_file)
    env_value = (environ if environ is not None else os.environ).get(TOKENS_ENV)
    if env_value:
        return load_tokens_env(env_value)
    return {}


class Authenticator:
    """Maps an ``Authorization`` header to a client identity."""

    def __init__(self, tokens: dict[str, str] | None = None):
        self._tokens = dict(tokens or {})

    @property
    def anonymous(self) -> bool:
        """True when no tokens are configured (every request accepted)."""
        return not self._tokens

    @property
    def clients(self) -> list[str]:
        return sorted(set(self._tokens.values()))

    def identify(self, authorization: str | None) -> str:
        """The client id for the header, or :class:`AuthenticationError`.

        The candidate is compared against *every* configured token with
        :func:`hmac.compare_digest` and no early exit, so response
        timing does not reveal which token prefix matched.
        """
        if self.anonymous:
            return ANONYMOUS
        if not authorization:
            raise AuthenticationError(
                "missing_token", "missing Authorization header"
            )
        scheme, _, candidate = authorization.partition(" ")
        candidate = candidate.strip()
        if scheme.lower() != "bearer" or not candidate:
            raise AuthenticationError(
                "invalid_token", "expected 'Authorization: Bearer <token>'"
            )
        encoded = candidate.encode()
        matched: str | None = None
        for token, client in self._tokens.items():
            if hmac.compare_digest(encoded, token.encode()):
                matched = client
        if matched is None:
            raise AuthenticationError("invalid_token", "unknown token")
        return matched
