"""The service scheduler: asyncio front-end over the campaign engine.

Bridges many concurrent jobs onto ONE shared :class:`ProcessPoolExecutor`
with three properties the one-shot CLI path cannot offer:

* **fair interleaving at chunk granularity** -- jobs lower to campaign
  cells (each cell is one dispatched chunk of the campaign engine's
  work-pulling loop); the dispatcher round-robins over active jobs, one
  cell per turn, so a 31-cell Table I job and a 2-cell verify job make
  progress together instead of the later job waiting behind the earlier
  job's whole queue;
* **single-flight coalescing** -- in-flight cells are registered by
  content key; a second request for the same key (any job, any client)
  attaches to the running computation's future instead of scheduling a
  duplicate.  Cells already in the store are served straight from it at
  submit time, without scheduling at all -- repeated queries are
  O(lookup) instead of O(solve);
* **amortised compilation** -- content keys require the compiled tapes;
  the scheduler's key cache pays that once per (cell, semantic config)
  for the server's lifetime (sound in a resident process: tapes are pure
  functions of registry code).

Cell computations run the *exact* campaign code paths -- verify cells go
through :func:`repro.verifier.campaign.run_campaign` (whose chunks the
shared executor drives via ``drive_chunks``), numerics cells through the
same worker function :func:`repro.numerics.campaign.run_numerics_campaign`
dispatches -- and are persisted under the same content keys, so payloads
served by the service are bit-identical to the direct campaign paths
(``tests/service/test_differential.py``) and the store is interchangeable
between the service and ``--store``/``--resume`` CLI campaigns.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor


from ..numerics.campaign import _numerics_worker, cell_condition_id
from ..verifier.campaign import _campaign_worker_warm, run_campaign
from ..verifier.store import CampaignStore, report_to_payload
from .jobs import CellTask, Job, JobState, attach_future, spec_from_payload
from .metrics import Histogram

__all__ = ["LANES", "SchedulerDraining", "VerificationScheduler"]

#: QoS lanes, in strict dispatch-priority order: the dispatcher always
#: drains interactive work before touching batch work
LANES = ("interactive", "batch")


def _pool_context():
    """Fork where available (Linux), the platform default elsewhere.

    Fork keeps embedding parents working (a REPL, pytest, a heredoc
    script -- anything whose ``__main__`` cannot be re-imported the way
    spawn requires) and costs nothing to boot; the fork-vs-threads
    hazard is handled by :meth:`VerificationScheduler.start` forking
    every worker eagerly while the process is still quiet.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # no fork on this platform (Windows)
        return multiprocessing.get_context()


class SchedulerDraining(RuntimeError):
    """Raised for submissions that arrive while the server is draining."""


class VerificationScheduler:
    """Owns the shared pool, the job registry and the in-flight cell map.

    ``max_workers=0`` computes cells inline in the serving process's
    thread pool (no child processes -- the deterministic test/debug
    mode); any other value (``None`` = CPU count) creates one
    :class:`ProcessPoolExecutor` shared by every cell of every job.
    ``max_inflight`` bounds concurrently executing cells (default: pool
    width + 1, so the pool never starves while one result is absorbed).

    With ``qos_lanes`` on (the default), every job is classified into a
    QoS lane at submit time: single-pair ``verify`` jobs -- and any job
    of at most ``interactive_max_cells`` cells -- ride the
    **interactive** lane, which the dispatcher drains strictly before
    the **batch** lane.  An interactive probe submitted mid-sweep
    therefore preempts a 31-cell Table I job at *cell* granularity: the
    batch cell already executing finishes, the probe's cell dispatches
    next.  Lanes are pure dispatch priority -- cell content keys, single
    -flight coalescing and payloads are lane-blind -- and per-lane queue
    depth, wait-time histograms and preemption counts are exported by
    ``/v1/metrics``.
    """

    def __init__(
        self,
        store: CampaignStore,
        *,
        max_workers: int | None = 0,
        max_inflight: int | None = None,
        max_finished_jobs: int = 256,
        qos_lanes: bool = True,
        interactive_max_cells: int = 2,
    ):
        self._store = store
        self._max_workers = max_workers
        self._pool: ProcessPoolExecutor | None = None
        if max_inflight is None:
            if max_workers == 0:
                max_inflight = 2
            else:
                max_inflight = (max_workers or os.cpu_count() or 1) + 1
        self._max_inflight = max(1, max_inflight)
        self._max_finished_jobs = max(1, max_finished_jobs)
        # cell computes block a thread for a whole solve; they get their
        # own executor so max_inflight of them can never starve asyncio's
        # shared to_thread pool, which submit()'s spec lowering and store
        # lookups (and anything else on the loop) depend on
        self._compute_executor = ThreadPoolExecutor(
            max_workers=self._max_inflight,
            thread_name_prefix="repro-cell",
        )
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, asyncio.Future] = {}
        #: keys whose compute finished (store write included) -- closes
        #: the submit-classification race where a cell completes during
        #: the batched store-lookup await: the stale lookup misses, the
        #: in-flight future is gone, and without this set the cell would
        #: re-register as "computed" (a spurious recompute for any
        #: compute path that does not resume from the store)
        self._completed_keys: set[str] = set()
        self._qos_lanes = qos_lanes
        self._interactive_max_cells = max(0, interactive_max_cells)
        #: per-job pending cells, each carrying its enqueue timestamp
        self._pending: dict[str, deque[tuple[CellTask, float]]] = {}
        #: one round-robin ring per lane; with QoS off every job lands in
        #: the batch ring and dispatch degenerates to the old single ring
        self._rings: dict[str, deque[str]] = {lane: deque() for lane in LANES}
        self._key_cache: dict = {}
        self._next_job = 0
        self._draining = False
        #: scrape-friendly counters (mutated on the event-loop thread,
        #: read by the /v1/metrics handler on the same loop)
        self.stats: dict = {
            "jobs_submitted": 0,
            "jobs_by_kind": {},
            "cells_computed": 0,
            "cells_cache": 0,
            "cells_coalesced": 0,
        }
        #: per-lane dispatch counters + submit->dispatch wait histograms
        #: (event-loop thread only, like ``stats``)
        self.lane_dispatched: dict[str, int] = {lane: 0 for lane in LANES}
        self.lane_wait: dict[str, Histogram] = {lane: Histogram() for lane in LANES}
        #: interactive cells dispatched while batch work sat queued
        self.lane_preemptions = 0
        self.executing = 0  # cells currently on the compute executor
        self._wake: asyncio.Event | None = None
        self._sem: asyncio.Semaphore | None = None
        self._dispatcher: asyncio.Task | None = None
        self._cell_tasks: set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        self._wake = asyncio.Event()
        self._sem = asyncio.Semaphore(self._max_inflight)
        if self._max_workers != 0:
            # The serving process is inherently multi-threaded (event
            # loop, job threads, HTTP handlers), and a fork-based worker
            # forked lazily at first submit can inherit a lock some other
            # thread held at that instant and deadlock in the child --
            # observed as a cell compute that never returns under load.
            # Spawn/forkserver would re-import the parent's __main__,
            # breaking interactive embedding, so instead every fork is
            # forced to happen HERE: before the HTTP listener exists,
            # before any job or to_thread worker runs, while the process
            # is quiet.  The sleeping warm tasks defeat the executor's
            # lazy on-demand spawning (an idle worker suppresses new
            # forks, a busy one does not), and the gather does not return
            # until every worker process is up; the pool never forks
            # again for the server's lifetime.  The warm task also pulls
            # in the campaign worker's module graph (encoder, solver,
            # registries), so a worker's first real chunk only pays the
            # per-problem compile, not the imports.
            width = self._max_workers or os.cpu_count() or 1
            self._pool = ProcessPoolExecutor(
                max_workers=width,
                mp_context=_pool_context(),
            )
            warms = [
                self._pool.submit(_campaign_worker_warm, 0.1)
                for _ in range(width)
            ]
            await asyncio.gather(*(asyncio.wrap_future(f) for f in warms))
        self._dispatcher = asyncio.create_task(self._dispatch())

    async def drain(self) -> None:
        """Graceful shutdown: finish executing cells, cancel queued ones.

        Cells already computing run to completion -- their results are
        committed to the store before the pool goes down, which is what
        makes a SIGTERM'd server resumable: a restart against the same
        store serves everything that finished as cache hits.  Queued
        cells are cancelled; their jobs end ``cancelled`` with partial
        (durable) results.
        """
        self._draining = True
        if self._wake is not None:
            self._wake.set()
        # cancel never-started cells so coalesced waiters unblock too
        for pending in self._pending.values():
            for cell, _enqueued_at in pending:
                future = self._inflight.pop(cell.content_key, None)
                if future is not None and not future.done():
                    future.cancel()
        self._pending.clear()
        for ring in self._rings.values():
            ring.clear()
        if self._dispatcher is not None:
            await self._dispatcher
        if self._cell_tasks:
            await asyncio.gather(*self._cell_tasks, return_exceptions=True)
        if self._pool is not None:
            await asyncio.to_thread(self._pool.shutdown, True)
            self._pool = None
        await asyncio.to_thread(self._compute_executor.shutdown, True)

    # -- submission --------------------------------------------------------
    async def submit(self, payload: dict) -> Job:
        """Validate, lower, classify and enqueue one job.

        Lowering (registry resolution + content-key derivation, i.e. the
        tape compiles the key cache has not seen yet) runs in a worker
        thread so the event loop keeps serving while a cold spec
        compiles.  Every cell is then classified exactly once:

        * stored under its content key -> served immediately (``cache``);
        * an identical cell in flight  -> attach to it (``coalesced``);
        * otherwise                    -> register the single-flight
          future and queue for dispatch (``computed``).
        """
        if self._draining:
            raise SchedulerDraining("server is draining; submission rejected")
        self._evict_finished()
        spec = await asyncio.to_thread(spec_from_payload, payload)
        cells = await asyncio.to_thread(spec.cell_tasks, self._key_cache)
        self._next_job += 1
        job = Job(
            id=f"job-{self._next_job}",
            spec=spec,
            cells=cells,
            lane=self._classify_lane(spec, cells),
        )
        self._jobs[job.id] = job
        # one batched store pass (a single thread hop) for every cell not
        # already in flight; a per-cell await would pay N thread-hop
        # round-trips on a warm job and open N coalescing race windows
        to_lookup = [
            cell for cell in cells if cell.content_key not in self._inflight
        ]
        stored_map = await asyncio.to_thread(
            lambda: {c.content_key: self._store_lookup(c) for c in to_lookup}
        )
        self.stats["jobs_submitted"] += 1
        self.stats["jobs_by_kind"][spec.kind] = (
            self.stats["jobs_by_kind"].get(spec.kind, 0) + 1
        )
        pending: deque[CellTask] = deque()
        for cell in cells:
            # the lookup await yielded the loop: an identical cell may
            # have been registered by a concurrent submission in the
            # meantime -- the in-flight check runs after it, or two jobs
            # would compute the same key twice.
            shared = self._inflight.get(cell.content_key)
            if shared is not None:
                attach_future(job, cell, shared, "coalesced")
                self.stats["cells_coalesced"] += 1
                continue
            stored = stored_map.get(cell.content_key)
            if stored is None and cell.content_key in self._completed_keys:
                # the cell *finished* during the await: the batched
                # lookup predates its store write and the in-flight
                # future is already resolved and gone.  The store write
                # precedes both (same loop-thread finally), so this
                # synchronous re-read always hits -- without it the cell
                # would re-register as a spurious "computed".
                stored = self._store_lookup(cell)
            if stored is not None:
                job.complete_cell(cell, stored, "cache")
                self.stats["cells_cache"] += 1
                continue
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._inflight[cell.content_key] = future
            attach_future(job, cell, future, "computed")
            self.stats["cells_computed"] += 1
            pending.append(cell)
        if pending and not self._draining:
            now = time.monotonic()
            self._pending[job.id] = deque((cell, now) for cell in pending)
            self._rings[job.lane].append(job.id)
            self._wake.set()
        elif pending:
            # drained between the check above and here: cancel cleanly
            for cell in pending:
                future = self._inflight.pop(cell.content_key, None)
                if future is not None and not future.done():
                    future.cancel()
        if not job.done:
            job.state = JobState.RUNNING
        job.touch()
        return job

    def _classify_lane(self, spec, cells) -> str:
        """QoS lane of one job: small/point queries are interactive.

        Single-pair ``verify`` jobs are the service's latency-sensitive
        workload by construction; any other job small enough
        (``interactive_max_cells``) rides along, so a two-cell numerics
        probe is not stuck behind a full table sweep either.
        """
        if not self._qos_lanes:
            return "batch"
        if spec.kind == "verify" or len(cells) <= self._interactive_max_cells:
            return "interactive"
        return "batch"

    def _evict_finished(self) -> None:
        """Drop the oldest terminal jobs beyond the retention bound.

        A resident server would otherwise accumulate every finished job's
        full cell payloads forever; the results themselves are already
        durable in the store, so an evicted job only costs a late client
        its 404-free snapshot (it can resubmit and hit the cache).
        Running jobs are never evicted.
        """
        finished = [job for job in self._jobs.values() if job.done]
        excess = len(finished) - self._max_finished_jobs
        if excess <= 0:
            return
        finished.sort(key=lambda job: (job.finished_at or 0.0, job.id))
        for job in finished[:excess]:
            del self._jobs[job.id]

    def job(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        return list(self._jobs.values())

    # -- observability (read from the event-loop thread) -------------------
    def queue_depth(self) -> int:
        """Cells queued for dispatch (excludes cells already executing).

        This is the quantity admission control gates on: executing cells
        are bounded by ``max_inflight`` already, the queue is the only
        part that can grow without bound.
        """
        return sum(len(pending) for pending in self._pending.values())

    def lane_depths(self) -> dict[str, int]:
        """Queued cells per QoS lane (sums to :meth:`queue_depth`)."""
        depths = {lane: 0 for lane in LANES}
        for job_id, pending in self._pending.items():
            job = self._jobs.get(job_id)
            depths[job.lane if job is not None else "batch"] += len(pending)
        return depths

    @property
    def qos_lanes(self) -> bool:
        return self._qos_lanes

    @property
    def interactive_max_cells(self) -> int:
        return self._interactive_max_cells

    @property
    def max_inflight(self) -> int:
        return self._max_inflight

    @property
    def pool_width(self) -> int:
        """Process-pool width (0 = inline compute mode)."""
        if self._max_workers == 0:
            return 0
        return self._max_workers or os.cpu_count() or 1

    @property
    def store_path(self) -> str:
        return self._store.path

    def store_keys(self) -> int:
        return len(self._store.keys())

    def _store_lookup(self, cell: CellTask) -> dict | None:
        payload = self._store.get_payload(cell.content_key)
        if payload is None:
            return None
        # a key can only hold the cell kind it was hashed for; this is a
        # kind sanity filter, mirroring CampaignStore.get
        has_kind = "kind" in payload
        if cell.kind == "verify" and has_kind:
            return None
        if cell.kind == "numerics" and not has_kind:
            return None
        return payload

    # -- dispatch ----------------------------------------------------------
    def _next_cell(self) -> tuple[str, CellTask] | None:
        """One cell from the highest-priority lane with pending work.

        Within a lane, jobs round-robin (one cell per turn) exactly as
        before; across lanes the interactive ring is drained strictly
        first, which is the preemption: a batch sweep's next cell waits
        whenever any interactive cell is queued.  Lane wait time
        (submit -> dispatch) is observed here, on the dispatching side
        of the queue.
        """
        for lane in LANES:
            ring = self._rings[lane]
            while ring:
                job_id = ring.popleft()
                pending = self._pending.get(job_id)
                if not pending:
                    self._pending.pop(job_id, None)
                    continue
                cell, enqueued_at = pending.popleft()
                if pending:
                    ring.append(job_id)
                else:
                    self._pending.pop(job_id, None)
                if lane == "interactive" and self._rings["batch"]:
                    self.lane_preemptions += 1
                self.lane_dispatched[lane] += 1
                self.lane_wait[lane].observe(time.monotonic() - enqueued_at)
                return job_id, cell
        return None

    def _rings_empty(self) -> bool:
        return not any(self._rings.values())

    async def _dispatch(self) -> None:
        while not self._draining:
            if self._rings_empty():
                self._wake.clear()
                await self._wake.wait()
                continue
            await self._sem.acquire()
            if self._draining:
                self._sem.release()
                return
            item = self._next_cell()
            if item is None:
                self._sem.release()
                continue
            _job_id, cell = item
            task = asyncio.create_task(self._run_cell(cell))
            self._cell_tasks.add(task)
            task.add_done_callback(self._cell_tasks.discard)

    async def _run_cell(self, cell: CellTask) -> None:
        future = self._inflight.get(cell.content_key)
        self.executing += 1
        try:
            payload = await asyncio.get_running_loop().run_in_executor(
                self._compute_executor, self._compute_cell, cell
            )
        except BaseException as exc:  # delivered to every attached job
            if future is not None and not future.done():
                future.set_exception(exc)
                # consumed by attach_future callbacks; never re-raised here
                future.exception()
        else:
            # the store write happened inside _compute_cell, strictly
            # before this: a key in _completed_keys is always readable
            self._completed_keys.add(cell.content_key)
            if future is not None and not future.done():
                future.set_result(payload)
        finally:
            self.executing -= 1
            self._inflight.pop(cell.content_key, None)
            self._sem.release()

    # -- the compute paths (worker threads) --------------------------------
    def _compute_cell(self, cell: CellTask) -> dict:
        """Compute one cell through the exact campaign code path.

        Runs in a worker thread; the actual solving happens on the shared
        process pool (or inline with ``max_workers=0``).  The store write
        happens *before* the single-flight future resolves, so there is
        no window where a key is neither in flight nor in the store.
        """
        if cell.kind == "verify":
            fname, cid = cell.address
            result = run_campaign(
                [(fname, cid)],
                cell.config,
                max_workers=0,
                executor=self._pool,
                store=self._store,
                resume=True,
            )
            return report_to_payload(result.reports[(fname, cid)])
        # numerics: the same worker function run_numerics_campaign dispatches
        args = (cell.config, [cell.address])
        if self._pool is not None:
            out = self._pool.submit(_numerics_worker, args).result()
        else:
            out = _numerics_worker(args)
        (_key, payload), = out
        self._store.put_payload(
            cell.content_key,
            payload,
            functional=cell.address[0],
            condition_id=cell_condition_id(cell.address),
        )
        return payload
