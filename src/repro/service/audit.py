"""Append-only JSONL audit log of service submissions and auth denials.

Mirrors tritium-sc's ``audit_middleware`` shape with the same durability
contract as the campaign store's JSONL backend: one JSON object per
line, flushed per write, and a line cut short by SIGTERM/kill mid-write
is tolerated -- the reader skips the truncated tail, and reopening the
log first seals it with a newline so the next entry starts clean.

What gets logged (one entry per *decision*, never per poll):

* every ``POST /v1/jobs`` outcome: client id, job kind, the job id and
  truncated content-key digests when accepted, the machine-readable
  rejection code when not;
* every authentication failure, on any route.

Entries carry wall-clock ``ts`` and are JSON-safe; nothing secret is
written (tokens never appear, only client ids).
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = ["AuditLog", "read_audit_log"]

#: content keys are sha256 hex; this prefix is plenty to join against
#: the store while keeping accepted-job entries one line
DIGEST_CHARS = 12
#: cap per-entry digests so a huge numerics job cannot bloat the log
MAX_KEYS_LOGGED = 32


def read_audit_log(path) -> list[dict]:
    """Parse an audit log, skipping a tail truncated by a kill mid-write."""
    entries: list[dict] = []
    if not os.path.exists(path):
        return entries
    with open(path) as handle:
        for line in handle.read().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # truncated tail from an interrupted write
    return entries


class AuditLog:
    """One append-only JSONL file; writes are locked and flushed."""

    def __init__(self, path):
        self.path = str(path)
        self._lock = threading.Lock()
        needs_newline = False
        if os.path.exists(self.path):
            with open(self.path) as handle:
                content = handle.read()
            needs_newline = bool(content) and not content.endswith("\n")
        self._handle = open(self.path, "a")
        if needs_newline:
            # seal a line truncated by a kill mid-write so the next
            # entry does not merge into the corrupt tail
            self._handle.write("\n")
            self._handle.flush()

    def _write(self, entry: dict) -> None:
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    # -- the two event shapes ---------------------------------------------
    def submission(
        self,
        client: str,
        kind: str,
        decision: str,
        *,
        job_id: str | None = None,
        cells: int | None = None,
        content_keys=(),
    ) -> None:
        """One ``POST /jobs`` decision: ``accepted`` or ``rejected:<code>``."""
        entry: dict = {
            "ts": time.time(),
            "event": "submit",
            "client": client,
            "kind": kind,
            "decision": decision,
        }
        if job_id is not None:
            entry["job_id"] = job_id
        if cells is not None:
            entry["cells"] = cells
        if content_keys:
            digests = [key[:DIGEST_CHARS] for key in content_keys]
            entry["keys"] = digests[:MAX_KEYS_LOGGED]
            if len(digests) > MAX_KEYS_LOGGED:
                entry["keys_truncated"] = len(digests) - MAX_KEYS_LOGGED
        self._write(entry)

    def auth_failure(self, code: str, path: str) -> None:
        self._write(
            {
                "ts": time.time(),
                "event": "auth",
                "client": "-",
                "decision": f"rejected:{code}",
                "path": path,
            }
        )

    def close(self) -> None:
        with self._lock:
            self._handle.close()
