"""Append-only JSONL audit log of service submissions and auth denials.

Mirrors tritium-sc's ``audit_middleware`` shape with the same durability
contract as the campaign store's JSONL backend -- the shared
skip-truncated-tail / seal-on-reopen discipline now lives in
:mod:`repro.obs.jsonl`, and this log is one thin layer over it: one JSON
object per line, flushed per write, a line cut short by SIGTERM/kill
mid-write is skipped by the reader and sealed on reopen.

What gets logged (one entry per *decision*, never per poll):

* every ``POST /v1/jobs`` outcome: client id, job kind, the job id and
  truncated content-key digests when accepted, the machine-readable
  rejection code when not;
* every authentication failure, on any route.

Entries carry wall-clock ``ts`` and the process ``run_id`` (the join
key against the structured log and trace streams, see
:mod:`repro.obs.logging`) and are JSON-safe; nothing secret is written
(tokens never appear, only client ids).
"""

from __future__ import annotations

from ..obs.clock import wall_now
from ..obs.jsonl import JsonlWriter, read_jsonl
from ..obs.logging import run_id

__all__ = ["AuditLog", "read_audit_log"]

#: content keys are sha256 hex; this prefix is plenty to join against
#: the store while keeping accepted-job entries one line
DIGEST_CHARS = 12
#: cap per-entry digests so a huge numerics job cannot bloat the log
MAX_KEYS_LOGGED = 32


def read_audit_log(path) -> list[dict]:
    """Parse an audit log, skipping a tail truncated by a kill mid-write."""
    return read_jsonl(path)


class AuditLog:
    """One append-only JSONL file; writes are locked and flushed."""

    def __init__(self, path):
        self.path = str(path)
        self._writer = JsonlWriter(self.path)

    def _write(self, entry: dict) -> None:
        entry["run_id"] = run_id()
        self._writer.write(entry)

    # -- the two event shapes ---------------------------------------------
    def submission(
        self,
        client: str,
        kind: str,
        decision: str,
        *,
        job_id: str | None = None,
        cells: int | None = None,
        content_keys=(),
    ) -> None:
        """One ``POST /jobs`` decision: ``accepted`` or ``rejected:<code>``."""
        entry: dict = {
            "ts": wall_now(),
            "event": "submit",
            "client": client,
            "kind": kind,
            "decision": decision,
        }
        if job_id is not None:
            entry["job_id"] = job_id
        if cells is not None:
            entry["cells"] = cells
        if content_keys:
            digests = [key[:DIGEST_CHARS] for key in content_keys]
            entry["keys"] = digests[:MAX_KEYS_LOGGED]
            if len(digests) > MAX_KEYS_LOGGED:
                entry["keys_truncated"] = len(digests) - MAX_KEYS_LOGGED
        self._write(entry)

    def auth_failure(self, code: str, path: str) -> None:
        self._write(
            {
                "ts": wall_now(),
                "event": "auth",
                "client": "-",
                "decision": f"rejected:{code}",
                "path": path,
            }
        )

    def close(self) -> None:
        self._writer.close()
