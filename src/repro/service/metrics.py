"""Runtime observability: counters, gauges and latency histograms.

Everything ``GET /v1/metrics`` exports lives here.  The design follows
the constraint that all mutation happens on the server's event-loop
thread (requests are counted where they are handled), so the structures
are plain dicts with no locks; a scrape is a snapshot assembled on the
same loop and is therefore always internally consistent.

Histograms use **fixed log-spaced buckets** -- half-decade steps from
100 us to ~316 s -- timed with the monotonic clock by the caller.
Bucket counts are *per-bucket* (not cumulative), so the counts always
sum to the observation count; that invariant is what the tests pin and
what makes the JSON trivially diffable across scrapes.
"""

from __future__ import annotations

import math
import time

__all__ = ["Histogram", "ServiceMetrics"]

# half-decade log spacing: 1e-4, 3.16e-4, 1e-3, ... 1e2, 3.16e2 seconds
BUCKET_EDGES: tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 2.0), 10) for exponent in range(-8, 6)
)


class Histogram:
    """Fixed-bucket latency histogram (seconds)."""

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self):
        self.counts = [0] * (len(BUCKET_EDGES) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        index = 0
        for edge in BUCKET_EDGES:
            if seconds <= edge:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.sum += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper edge of the bucket
        holding the q-th observation); exact enough to gate tail latency
        at half-decade resolution, and cheap enough to compute per scrape.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(BUCKET_EDGES):
                    return BUCKET_EDGES[index]
                return self.max
        return self.max

    def snapshot(self) -> dict:
        buckets = {}
        for index, edge in enumerate(BUCKET_EDGES):
            if self.counts[index]:
                buckets[f"le_{edge:g}"] = self.counts[index]
        if self.counts[-1]:
            buckets["inf"] = self.counts[-1]
        return {
            "buckets": buckets,
            "bucket_edges": [f"{edge:g}" for edge in BUCKET_EDGES],
            "count": self.count,
            "sum": round(self.sum, 9),
            "min": round(self.min, 9) if self.count else None,
            "max": round(self.max, 9) if self.count else None,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }


class ServiceMetrics:
    """The server's counters + histograms, and the scrape assembler."""

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._started = clock()
        self.started_at = time.time()
        self.requests_total = 0
        self.requests_by_status: dict[str, int] = {}
        self.requests_by_route: dict[str, int] = {}
        self.deprecated_requests = 0
        self.auth_failures = 0
        self.rate_limited = 0
        self.shed = 0
        self.draining_rejects = 0
        #: per-job-kind submit latency (request receipt -> response ready)
        self.submit_latency: dict[str, Histogram] = {}

    # -- recording (event-loop thread only) --------------------------------
    def record_request(self, route: str, status: int, deprecated: bool) -> None:
        self.requests_total += 1
        self.requests_by_status[str(status)] = (
            self.requests_by_status.get(str(status), 0) + 1
        )
        self.requests_by_route[route] = self.requests_by_route.get(route, 0) + 1
        if deprecated:
            self.deprecated_requests += 1

    def record_submit(self, kind: str, seconds: float) -> None:
        histogram = self.submit_latency.get(kind)
        if histogram is None:
            histogram = self.submit_latency[kind] = Histogram()
        histogram.observe(seconds)

    # -- scraping ----------------------------------------------------------
    def render(self, scheduler, *, auth=None, limiter=None, admission=None) -> dict:
        """The ``/v1/metrics`` document; JSON-safe, sorted-key stable."""
        jobs = scheduler.jobs()
        stats = scheduler.stats
        cache = stats["cells_cache"]
        computed = stats["cells_computed"]
        coalesced = stats["cells_coalesced"]
        classified = cache + computed + coalesced
        executing = scheduler.executing
        max_inflight = scheduler.max_inflight
        return {
            "server": {
                "started_at": self.started_at,
                "uptime_seconds": round(self._clock() - self._started, 3),
            },
            "requests": {
                "total": self.requests_total,
                "by_status": dict(sorted(self.requests_by_status.items())),
                "by_route": dict(sorted(self.requests_by_route.items())),
                "deprecated": self.deprecated_requests,
            },
            "auth": {
                "mode": (
                    "anonymous" if auth is None or auth.anonymous else "token"
                ),
                "failures": self.auth_failures,
            },
            "rate_limit": {
                "enabled": bool(limiter is not None and limiter.enabled),
                "rate_per_second": limiter.rate if limiter is not None else 0.0,
                "burst": limiter.burst if limiter is not None else 0.0,
                "throttled": self.rate_limited,
            },
            "admission": {
                "enabled": bool(admission is not None and admission.enabled),
                "high_water": admission.high_water if admission is not None else 0,
                "queue_depth": scheduler.queue_depth(),
                "shed": self.shed,
                "draining_rejects": self.draining_rejects,
            },
            "jobs": {
                "submitted": stats["jobs_submitted"],
                "by_kind": dict(sorted(stats["jobs_by_kind"].items())),
                "tracked": len(jobs),
                "active": sum(1 for job in jobs if not job.done),
            },
            "cells": {
                "computed": computed,
                "cache": cache,
                "coalesced": coalesced,
                "cache_hit_ratio": (
                    round((cache + coalesced) / classified, 6) if classified else None
                ),
            },
            "pool": {
                "executing": executing,
                "max_inflight": max_inflight,
                "utilisation": round(executing / max_inflight, 6),
                "workers": scheduler.pool_width,
            },
            "lanes": self._render_lanes(scheduler),
            "store": {
                "path": scheduler.store_path,
                "keys": scheduler.store_keys(),
            },
            "latency": {
                "submit_seconds": {
                    kind: histogram.snapshot()
                    for kind, histogram in sorted(self.submit_latency.items())
                },
            },
        }

    @staticmethod
    def _render_lanes(scheduler) -> dict:
        """Per-QoS-lane queue depth, dispatch count and wait histogram.

        ``wait_seconds`` measures submit -> dispatch (time spent queued
        behind other work), the quantity the lanes exist to bound for
        interactive jobs.  Present even with lanes disabled -- everything
        then flows through the batch lane -- so dashboards keep a stable
        shape across configurations.
        """
        depths = scheduler.lane_depths()
        return {
            "enabled": scheduler.qos_lanes,
            "interactive_max_cells": scheduler.interactive_max_cells,
            "preemptions": scheduler.lane_preemptions,
            **{
                lane: {
                    "queue_depth": depths[lane],
                    "dispatched": scheduler.lane_dispatched[lane],
                    "wait_seconds": scheduler.lane_wait[lane].snapshot(),
                }
                for lane in sorted(depths)
            },
        }
