"""The service's ``/v1/metrics`` assembler.

The measurement machinery itself -- the log-spaced
:class:`~repro.obs.metrics.Histogram`, bucket edges and the Prometheus
text renderer -- lives in :mod:`repro.obs.metrics` (the process-wide
metrics core, PR 10); this module re-exports it unchanged and keeps the
server-specific part: :class:`ServiceMetrics`, the counters recorded on
the event-loop thread and the ``/v1/metrics`` JSON document they
assemble.  All mutation happens on the event-loop thread (requests are
counted where they are handled), so the structures are plain dicts with
no locks; a scrape is a snapshot assembled on the same loop and is
therefore always internally consistent.
"""

from __future__ import annotations

import time

from ..obs.metrics import BUCKET_EDGES, Histogram  # noqa: F401  (re-export)

__all__ = ["BUCKET_EDGES", "Histogram", "ServiceMetrics"]


class ServiceMetrics:
    """The server's counters + histograms, and the scrape assembler."""

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._started = clock()
        self.started_at = time.time()
        self.requests_total = 0
        self.requests_by_status: dict[str, int] = {}
        self.requests_by_route: dict[str, int] = {}
        self.deprecated_requests = 0
        self.auth_failures = 0
        self.rate_limited = 0
        self.shed = 0
        self.draining_rejects = 0
        #: per-job-kind submit latency (request receipt -> response ready)
        self.submit_latency: dict[str, Histogram] = {}

    # -- recording (event-loop thread only) --------------------------------
    def record_request(self, route: str, status: int, deprecated: bool) -> None:
        self.requests_total += 1
        self.requests_by_status[str(status)] = (
            self.requests_by_status.get(str(status), 0) + 1
        )
        self.requests_by_route[route] = self.requests_by_route.get(route, 0) + 1
        if deprecated:
            self.deprecated_requests += 1

    def record_submit(self, kind: str, seconds: float) -> None:
        histogram = self.submit_latency.get(kind)
        if histogram is None:
            histogram = self.submit_latency[kind] = Histogram()
        histogram.observe(seconds)

    # -- scraping ----------------------------------------------------------
    def render(self, scheduler, *, auth=None, limiter=None, admission=None) -> dict:
        """The ``/v1/metrics`` document; JSON-safe, sorted-key stable."""
        jobs = scheduler.jobs()
        stats = scheduler.stats
        cache = stats["cells_cache"]
        computed = stats["cells_computed"]
        coalesced = stats["cells_coalesced"]
        classified = cache + computed + coalesced
        executing = scheduler.executing
        max_inflight = scheduler.max_inflight
        return {
            "server": {
                "started_at": self.started_at,
                "uptime_seconds": round(self._clock() - self._started, 3),
            },
            "requests": {
                "total": self.requests_total,
                "by_status": dict(sorted(self.requests_by_status.items())),
                "by_route": dict(sorted(self.requests_by_route.items())),
                "deprecated": self.deprecated_requests,
            },
            "auth": {
                "mode": (
                    "anonymous" if auth is None or auth.anonymous else "token"
                ),
                "failures": self.auth_failures,
            },
            "rate_limit": {
                "enabled": bool(limiter is not None and limiter.enabled),
                "rate_per_second": limiter.rate if limiter is not None else 0.0,
                "burst": limiter.burst if limiter is not None else 0.0,
                "throttled": self.rate_limited,
            },
            "admission": {
                "enabled": bool(admission is not None and admission.enabled),
                "high_water": admission.high_water if admission is not None else 0,
                "queue_depth": scheduler.queue_depth(),
                "shed": self.shed,
                "draining_rejects": self.draining_rejects,
            },
            "jobs": {
                "submitted": stats["jobs_submitted"],
                "by_kind": dict(sorted(stats["jobs_by_kind"].items())),
                "tracked": len(jobs),
                "active": sum(1 for job in jobs if not job.done),
            },
            "cells": {
                "computed": computed,
                "cache": cache,
                "coalesced": coalesced,
                "cache_hit_ratio": (
                    round((cache + coalesced) / classified, 6) if classified else None
                ),
            },
            "pool": {
                "executing": executing,
                "max_inflight": max_inflight,
                "utilisation": round(executing / max_inflight, 6),
                "workers": scheduler.pool_width,
            },
            "lanes": self._render_lanes(scheduler),
            "store": {
                "path": scheduler.store_path,
                "keys": scheduler.store_keys(),
            },
            "latency": {
                "submit_seconds": {
                    kind: histogram.snapshot()
                    for kind, histogram in sorted(self.submit_latency.items())
                },
            },
        }

    @staticmethod
    def _render_lanes(scheduler) -> dict:
        """Per-QoS-lane queue depth, dispatch count and wait histogram.

        ``wait_seconds`` measures submit -> dispatch (time spent queued
        behind other work), the quantity the lanes exist to bound for
        interactive jobs.  Present even with lanes disabled -- everything
        then flows through the batch lane -- so dashboards keep a stable
        shape across configurations.
        """
        depths = scheduler.lane_depths()
        return {
            "enabled": scheduler.qos_lanes,
            "interactive_max_cells": scheduler.interactive_max_cells,
            "preemptions": scheduler.lane_preemptions,
            **{
                lane: {
                    "queue_depth": depths[lane],
                    "dispatched": scheduler.lane_dispatched[lane],
                    "wait_seconds": scheduler.lane_wait[lane].snapshot(),
                }
                for lane in sorted(depths)
            },
        }
