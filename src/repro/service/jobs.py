"""Job descriptors of the verification service.

A *job* is what a client submits: one verify-pair, a Table I/II slice, or
a numerics slice.  Jobs lower to the exact cells the campaign engine
already schedules -- (functional x condition) verification cells and
(functional x component x check x semantics) analysis cells -- keyed by
the **same** content hashes the campaign store files results under
(:func:`repro.verifier.campaign.pair_content_key`,
:func:`repro.numerics.campaign.cell_content_key`).  Sharing the key
derivation is what makes the service a cache over the store instead of a
parallel universe: a cell computed by ``repro table1 --store`` is a
service cache hit, and a cell computed by the service resumes a later
CLI campaign.

The spec wire format is a plain JSON object::

    {"kind": "verify",  "functional": "PBE", "condition": "EC1",
     "config": {"per_call_budget": 250, "global_step_budget": 10000}}
    {"kind": "table1",  "functionals": ["LYP", "Wigner"],
     "conditions": ["EC1", "EC6"], "config": {...}}
    {"kind": "numerics", "functionals": ["SCAN"], "components": ["fc"],
     "checks": ["hazards"], "config": {"delta": 1e-9}}

``config`` entries override fields of
:class:`~repro.verifier.verifier.VerifierConfig` (verify/table1) or
:class:`~repro.numerics.campaign.NumericsConfig` (numerics); unknown
keys, names and kinds raise :class:`ValueError` -- the server maps that
to a 400, never a half-lowered job.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, fields, replace

from ..conditions.catalog import PAPER_CONDITIONS, applicable_pairs, get_condition
from ..functionals.registry import all_functionals, get_functional, paper_functionals
from ..numerics.campaign import (
    CHECKS,
    NumericsConfig,
    cell_content_key,
    numerics_cells,
)
from ..verifier.campaign import pair_content_key
from ..verifier.verifier import VerifierConfig

__all__ = [
    "CellTask",
    "Job",
    "JobSpec",
    "JobState",
    "spec_from_payload",
]


class JobState:
    """Explicit job lifecycle states (plain strings on the wire)."""

    PENDING = "pending"      # accepted, no cell dispatched yet
    RUNNING = "running"      # at least one cell computing or queued
    DONE = "done"            # every cell resolved successfully
    FAILED = "failed"        # some cell raised; partial results retained
    CANCELLED = "cancelled"  # server drained before all cells resolved

    TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass(frozen=True)
class CellTask:
    """One schedulable cell of a job.

    ``content_key`` is the store/coalescing identity: two tasks with the
    same key -- across jobs, clients and server restarts -- are the same
    computation and may share one result.  ``address`` is the
    human-facing cell name: ``(functional, condition)`` for verify cells,
    ``(functional, component, check, semantics)`` for numerics cells.
    """

    kind: str  # "verify" | "numerics"
    address: tuple[str, ...]
    content_key: str
    config: VerifierConfig | NumericsConfig

    @property
    def label(self) -> str:
        return "/".join(self.address)


def _apply_config(base, overrides: dict, what: str):
    """Override dataclass fields from a JSON dict, rejecting unknown keys."""
    if not overrides:
        return base
    if not isinstance(overrides, dict):
        raise ValueError(f"{what} config must be an object, got {overrides!r}")
    known = {f.name for f in fields(base)}
    unknown = sorted(set(overrides) - known)
    if unknown:
        raise ValueError(f"unknown {what} config keys: {unknown}")
    return replace(base, **overrides)


def _name_list(payload: dict, key: str, default: list[str] | None) -> list[str] | None:
    value = payload.get(key, None)
    if value is None:
        return default
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(v, str) for v in value
    ):
        raise ValueError(f"{key} must be a list of names, got {value!r}")
    return list(value)


@dataclass(frozen=True)
class JobSpec:
    """A validated, registry-resolved job description.

    Construction goes through :func:`spec_from_payload`; by the time a
    spec exists every name resolved, every config key was recognised and
    the cell list is non-empty, so lowering cannot fail downstream.
    ``payload`` is the canonical wire form (echoed back to clients).
    """

    kind: str  # "verify" | "table1" | "numerics"
    payload: dict
    pairs: tuple[tuple[str, str], ...] = ()
    vconfig: VerifierConfig | None = None
    cells: tuple[tuple[str, str, str, str], ...] = ()
    nconfig: NumericsConfig | None = None

    def cell_tasks(self, key_cache: dict | None = None) -> list[CellTask]:
        """Lower the spec to content-hash-keyed cells.

        Key derivation needs the compiled tapes, which is the expensive
        part of serving a warm request; ``key_cache`` (owned by the
        scheduler, keyed on the cell address plus its semantic config)
        amortises it across the server's lifetime.  That is sound in a
        resident process: the tapes are pure functions of registry code,
        which cannot change under a running interpreter.
        """
        tasks: list[CellTask] = []
        if self.kind in ("verify", "table1"):
            for fname, cid in self.pairs:
                cache_key = ("verify", fname, cid, self.vconfig.semantic_key())
                content_key = None if key_cache is None else key_cache.get(cache_key)
                if content_key is None:
                    content_key = pair_content_key(fname, cid, self.vconfig)
                    if key_cache is not None:
                        key_cache[cache_key] = content_key
                tasks.append(
                    CellTask("verify", (fname, cid), content_key, self.vconfig)
                )
        else:
            for cell in self.cells:
                fname, component, check, semantics = cell
                cache_key = ("numerics", *cell, self.nconfig.semantic_key(check))
                content_key = None if key_cache is None else key_cache.get(cache_key)
                if content_key is None:
                    content_key = cell_content_key(
                        get_functional(fname), component, check, semantics,
                        self.nconfig,
                    )
                    if key_cache is not None:
                        key_cache[cache_key] = content_key
                tasks.append(CellTask("numerics", cell, content_key, self.nconfig))
        return tasks


def spec_from_payload(payload: dict) -> JobSpec:
    """Validate and resolve a client job payload into a :class:`JobSpec`.

    Raises :class:`ValueError` with a one-line message on any problem:
    unknown kind, unknown functional/condition/component/check name,
    inapplicable verify pair, unknown config key, or an empty slice.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"job spec must be a JSON object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind not in ("verify", "table1", "numerics"):
        raise ValueError(
            f"unknown job kind {kind!r} (expected verify, table1 or numerics)"
        )

    try:
        if kind == "verify":
            vconfig = _apply_config(
                VerifierConfig(), payload.get("config"), "verifier"
            )
            fname, cid = payload.get("functional"), payload.get("condition")
            if not fname or not cid:
                raise ValueError("verify jobs need 'functional' and 'condition'")
            functional = get_functional(fname)
            condition = get_condition(cid)
            if not condition.applies_to(functional):
                raise ValueError(
                    f"{condition.cid} does not apply to {functional.name}"
                )
            return JobSpec(
                kind=kind,
                payload=_canonical(payload),
                pairs=((functional.name, condition.cid),),
                vconfig=vconfig,
            )

        if kind == "table1":
            vconfig = _apply_config(
                VerifierConfig(), payload.get("config"), "verifier"
            )
            names = _name_list(payload, "functionals", None)
            cids = _name_list(payload, "conditions", None)
            functionals = (
                tuple(get_functional(n) for n in names)
                if names is not None
                else paper_functionals()
            )
            conditions = (
                tuple(get_condition(c) for c in cids)
                if cids is not None
                else PAPER_CONDITIONS
            )
            # dict.fromkeys dedupes while preserving order: a duplicate
            # name in the slice must not produce two cells with one
            # address, or the job could never resolve all its cells
            # (the direct path dedupes too, via dedupe_pairs)
            pairs = tuple(dict.fromkeys(
                (f.name, c.cid) for f, c in applicable_pairs(functionals, conditions)
            ))
            if not pairs:
                raise ValueError("empty table1 slice: no applicable pairs")
            return JobSpec(
                kind=kind, payload=_canonical(payload), pairs=pairs, vconfig=vconfig
            )

        # kind == "numerics"
        nconfig = _apply_config(
            NumericsConfig(), payload.get("config"), "numerics"
        )
        names = _name_list(payload, "functionals", None)
        functionals = (
            [get_functional(n) for n in names]
            if names is not None
            else list(all_functionals())
        )
        components = tuple(dict.fromkeys(_name_list(payload, "components", ["fc"])))
        checks = tuple(dict.fromkeys(_name_list(payload, "checks", list(CHECKS))))
        # dedupe duplicate functional names for the same reason as table1
        # pairs: one cell per address, or the job never terminates
        cells = tuple(dict.fromkeys(numerics_cells(functionals, components, checks)))
        if not cells:
            raise ValueError("empty numerics slice: no applicable cells")
        return JobSpec(
            kind=kind, payload=_canonical(payload), cells=cells, nconfig=nconfig
        )
    except KeyError as exc:  # registry lookups raise KeyError with a message
        raise ValueError(str(exc).strip('"')) from None


def _canonical(payload: dict) -> dict:
    """The spec as echoed back to clients (shallow copy, JSON-safe)."""
    return {k: v for k, v in payload.items()}


# ---------------------------------------------------------------------------
# the job object
# ---------------------------------------------------------------------------

@dataclass
class Job:
    """One submitted job: cells, per-cell provenance, progress snapshots.

    Mutated only from the scheduler's event-loop thread, so readers on
    that loop (the HTTP handlers) always see a consistent snapshot.
    ``version`` bumps on every change; :meth:`wait_change` is what the
    NDJSON progress stream blocks on.
    """

    id: str
    spec: JobSpec
    cells: list[CellTask]
    state: str = JobState.PENDING
    #: QoS lane ("interactive" | "batch"), assigned by the scheduler at
    #: submit time -- a pure dispatch-priority attribute, never part of
    #: any content key
    lane: str = "batch"
    created_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    payloads: dict[tuple[str, ...], dict] = field(default_factory=dict)
    #: per-cell provenance: "computed" | "cache" | "coalesced"
    sources: dict[tuple[str, ...], str] = field(default_factory=dict)
    errors: dict[tuple[str, ...], str] = field(default_factory=dict)
    cancelled_cells: list[tuple[str, ...]] = field(default_factory=list)
    version: int = 0
    _event: asyncio.Event | None = field(default=None, repr=False)

    # -- mutation (event-loop thread only) ---------------------------------
    def touch(self) -> None:
        self.version += 1
        if self._event is not None:
            event, self._event = self._event, asyncio.Event()
            event.set()

    def complete_cell(self, cell: CellTask, payload: dict, source: str) -> None:
        self.payloads[cell.address] = payload
        self.sources[cell.address] = source
        self._maybe_finish()
        self.touch()

    def fail_cell(self, cell: CellTask, error: str) -> None:
        self.errors[cell.address] = error
        self._maybe_finish()
        self.touch()

    def cancel_cell(self, cell: CellTask) -> None:
        self.cancelled_cells.append(cell.address)
        self._maybe_finish()
        self.touch()

    def _maybe_finish(self) -> None:
        if self.resolved < len(self.cells):
            self.state = JobState.RUNNING
            return
        if self.errors:
            self.state = JobState.FAILED
        elif self.cancelled_cells:
            self.state = JobState.CANCELLED
        else:
            self.state = JobState.DONE
        self.finished_at = time.time()

    # -- inspection --------------------------------------------------------
    @property
    def resolved(self) -> int:
        return len(self.payloads) + len(self.errors) + len(self.cancelled_cells)

    @property
    def done(self) -> bool:
        return self.state in JobState.TERMINAL

    def source_counts(self) -> dict[str, int]:
        counts = {"computed": 0, "cache": 0, "coalesced": 0}
        for source in self.sources.values():
            counts[source] += 1
        return counts

    def progress(self) -> dict:
        """JSON-safe progress snapshot (one NDJSON stream line)."""
        return {
            "id": self.id,
            "kind": self.spec.kind,
            "lane": self.lane,
            "state": self.state,
            "version": self.version,
            "cells": len(self.cells),
            "resolved": self.resolved,
            "sources": self.source_counts(),
            "failed": len(self.errors),
            "cancelled": len(self.cancelled_cells),
            "created_at": self.created_at,
            "finished_at": self.finished_at,
        }

    def result_payload(self) -> dict:
        """The full job result: every resolved cell's payload + provenance.

        Cell payloads are exactly what the campaign paths produce
        (:func:`~repro.verifier.store.report_to_payload` dicts for verify
        cells, the numerics payload dicts for analysis cells), so a
        client can rebuild reports/tables bit-identically.
        """
        cells = {}
        for cell in self.cells:
            address = cell.label
            if cell.address in self.payloads:
                cells[address] = {
                    "source": self.sources[cell.address],
                    "payload": self.payloads[cell.address],
                }
            elif cell.address in self.errors:
                cells[address] = {"error": self.errors[cell.address]}
            elif cell.address in self.cancelled_cells:
                cells[address] = {"cancelled": True}
        return {
            "id": self.id,
            "kind": self.spec.kind,
            "state": self.state,
            "spec": self.spec.payload,
            "sources": self.source_counts(),
            "cells": cells,
        }

    async def wait_change(self, seen_version: int) -> None:
        """Block until ``version`` moves past ``seen_version``.

        Uses an event-chain: each :meth:`touch` replaces the event after
        setting it, so every waiter wakes exactly once per change and
        re-checks.  Terminal jobs never change again; callers check
        :attr:`done` after waking.
        """
        while self.version == seen_version and not self.done:
            if self._event is None:
                self._event = asyncio.Event()
            await self._event.wait()


def attach_future(
    job: Job,
    cell: CellTask,
    future: "asyncio.Future[dict]",
    source: str,
) -> None:
    """Deliver a shared cell future's outcome into ``job`` when it lands.

    ``source`` records provenance from this job's point of view: the job
    that scheduled the computation sees ``"computed"``, jobs that
    coalesced onto it see ``"coalesced"``.
    """

    def _on_done(fut: "asyncio.Future[dict]") -> None:
        if fut.cancelled():
            job.cancel_cell(cell)
        elif fut.exception() is not None:
            job.fail_cell(cell, f"{type(fut.exception()).__name__}: {fut.exception()}")
        else:
            job.complete_cell(cell, fut.result(), source)

    future.add_done_callback(_on_done)
