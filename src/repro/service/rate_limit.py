"""Per-client token buckets and queue-depth admission control.

Stdlib translation of tritium-sc's ``src/app/rate_limit.py`` middleware
shape, reduced to the two pieces the verification service needs:

* :class:`RateLimiter` -- one token bucket per client id.  A bucket
  holds up to ``burst`` tokens and refills continuously at ``rate``
  tokens/second on the injected monotonic clock; each admitted
  submission spends one token, a dry bucket answers with the exact
  seconds until the next token accrues (the ``Retry-After`` the server
  sends with its 429).  ``rate=0`` disables limiting entirely -- the
  default, so anonymous/local use stays friction-free.

* :class:`AdmissionController` -- backpressure on the *shared* queue:
  when the scheduler's queued-cell depth reaches ``high_water``, new
  submissions are shed with a 503 + ``Retry-After`` instead of growing
  the queue without bound.  ``high_water=0`` disables shedding.

Both are pure decision objects (no I/O, no clock of their own), so the
refill boundaries and the exact flip at the high-water mark are unit
testable with a fake clock.
"""

from __future__ import annotations

import time

__all__ = ["AdmissionController", "RateLimiter", "TokenBucket"]

# buckets for clients idle long enough to be full again are pruned once
# the table grows past this, so an open service cannot be grown without
# bound by a stream of fresh client ids
_MAX_BUCKETS = 4096


class TokenBucket:
    """One client's bucket: continuous refill, unit cost per acquire."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.stamp = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.stamp)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.stamp = now

    def acquire(self, now: float) -> float:
        """0.0 and spend a token, or the seconds until one accrues."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate

    def full(self, now: float) -> bool:
        self._refill(now)
        return self.tokens >= self.burst


class RateLimiter:
    """Per-client-id token buckets on a shared (injectable) clock."""

    def __init__(
        self,
        rate: float = 0.0,
        burst: int | None = None,
        clock=time.monotonic,
    ):
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self.rate = float(rate)
        # default burst: one second's worth, at least 1
        self.burst = float(burst if burst is not None else max(1, round(rate)))
        if self.rate and self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def admit(self, client: str) -> float:
        """0.0 to admit, else the client's ``Retry-After`` in seconds."""
        if not self.enabled:
            return 0.0
        now = self._clock()
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= _MAX_BUCKETS:
                self._prune(now)
            bucket = self._buckets[client] = TokenBucket(
                self.rate, self.burst, now
            )
        return bucket.acquire(now)

    def _prune(self, now: float) -> None:
        """Drop buckets that refilled completely (idle clients)."""
        idle = [
            client
            for client, bucket in self._buckets.items()
            if bucket.full(now)
        ]
        for client in idle:
            del self._buckets[client]


class AdmissionController:
    """Shed submissions once the shared queue is past the high-water mark."""

    def __init__(self, high_water: int = 0, retry_after: float = 1.0):
        if high_water < 0:
            raise ValueError(f"high_water must be >= 0, got {high_water}")
        self.high_water = int(high_water)
        self.retry_after = float(retry_after)

    @property
    def enabled(self) -> bool:
        return self.high_water > 0

    def admit(self, queue_depth: int) -> float:
        """0.0 to admit, else the ``Retry-After`` to shed with.

        The retry hint scales with how far past the mark the queue is,
        capped at 30s -- deep backlogs push clients to back off harder,
        but never so far that a drained server sits idle.
        """
        if not self.enabled or queue_depth < self.high_water:
            return 0.0
        overshoot = 1 + (queue_depth - self.high_water) // max(1, self.high_water)
        return min(30.0, self.retry_after * overshoot)
