"""The verification service's HTTP front door (stdlib only).

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` -- no
framework, no dependency beyond the standard library -- with keep-alive
connections and a middleware pipeline in front of the routes.  The
**versioned** API surface:

====================================  =====================================
``GET  /v1/healthz``                  liveness + store path + job counts
                                      (never requires auth)
``POST /v1/jobs``                     submit a job spec (JSON body);
                                      responds with the job snapshot
``GET  /v1/jobs``                     all job snapshots
``GET  /v1/jobs/<id>``                one job's progress snapshot
``GET  /v1/jobs/<id>/events``         NDJSON stream: a snapshot per
                                      progress change, ending when the
                                      job reaches a terminal state
``GET  /v1/jobs/<id>/result``         the full result payload (409 until
                                      the job is terminal)
``GET  /v1/metrics``                  queue depth, pool utilisation,
                                      cache hit ratio, per-kind submit
                                      latency histograms (JSON)
====================================  =====================================

The pre-/v1 unversioned paths keep answering identically but carry a
``Deprecation: true`` response header; new clients must use ``/v1``.

**Middleware pipeline** (in order, per request):

1. *Auth* (:mod:`.auth`): bearer-token with constant-time comparison;
   anonymous mode when no tokens are configured.  ``/healthz`` is exempt
   so liveness probes never need credentials.
2. *Rate limiting* (:mod:`.rate_limit`): a per-client token bucket on
   ``POST /jobs``; a dry bucket answers 429 with ``Retry-After``.
3. *Admission control*: when the scheduler's queued-cell depth reaches
   the high-water mark, ``POST /jobs`` answers 503 + ``Retry-After``
   instead of queueing unboundedly.
4. *Audit* (:mod:`.audit`): every submission decision and every auth
   failure appends one JSONL entry.
5. *Metrics* (:mod:`.metrics`): request/status counters and
   monotonic-clock submit-latency histograms, scraped by ``/v1/metrics``.

**Errors** are a uniform envelope on every non-2xx response::

    {"error": {"code": "<machine-readable>", "message": "<one line>",
               "retry_after": <seconds, only when retryable>}}

with codes ``bad_request`` (400), ``missing_token``/``invalid_token``
(401), ``not_found``/``job_not_found`` (404), ``not_ready`` (409),
``rate_limited`` (429) and ``overloaded``/``draining`` (503).
Retryable responses also carry a ``Retry-After`` header.

**Graceful drain.**  SIGTERM/SIGINT drain the scheduler first -- new
submissions get 503 ``draining``, executing cells finish (each commits
to the store before its job sees the result), queued cells cancel,
every job reaches a terminal state so progress streams end -- and only
then close the listener and the store.  The ordering matters: streaming
clients still hold connections the listener must answer (their final
result fetch), and on Python >= 3.12.1 ``Server.wait_closed`` blocks on
active connections, so closing the listener before the jobs terminate
would deadlock the drain behind its own event streams.  Idle keep-alive
connections are actively closed by ``stop()`` for the same reason.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import time

from urllib.parse import parse_qs

from ..obs.logging import log_event
from ..obs.metrics import CONTENT_TYPE_PROMETHEUS, prometheus_exposition
from ..verifier.store import open_store
from .audit import AuditLog
from .auth import AuthenticationError, Authenticator, resolve_tokens
from .jobs import Job
from .metrics import ServiceMetrics
from .rate_limit import AdmissionController, RateLimiter
from .scheduler import SchedulerDraining, VerificationScheduler

__all__ = ["ApiError", "ServiceServer", "ThreadedService", "serve"]

_MAX_BODY = 8 * 1024 * 1024  # job specs are small; reject anything absurd

#: seconds an idle keep-alive connection may sit between requests before
#: the server closes it (reclaims handler tasks from vanished clients)
_KEEPALIVE_IDLE = 75.0

_REASONS = {
    200: "OK", 400: "Bad Request", 401: "Unauthorized", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 429: "Too Many Requests",
    503: "Service Unavailable",
}


class ApiError(Exception):
    """One non-2xx response: status + envelope code/message (+ retry)."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: float | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after = retry_after

    def envelope(self) -> dict:
        body: dict = {"code": self.code, "message": str(self)}
        if self.retry_after is not None:
            body["retry_after"] = self.retry_after
        return {"error": body}


class ServiceServer:
    """The asyncio HTTP listener bound to one scheduler.

    The middleware components default to permissive instances (anonymous
    auth, limiting and shedding disabled, no audit log) so embedding a
    bare ``ServiceServer(scheduler)`` keeps PR 5 semantics exactly.
    """

    def __init__(
        self,
        scheduler: VerificationScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        auth: Authenticator | None = None,
        limiter: RateLimiter | None = None,
        admission: AdmissionController | None = None,
        metrics: ServiceMetrics | None = None,
        audit: AuditLog | None = None,
        keepalive_idle: float = _KEEPALIVE_IDLE,
    ):
        self.scheduler = scheduler
        self.host = host
        self.port = port  # 0 = ephemeral; updated to the bound port on start
        self.auth = auth or Authenticator()
        self.limiter = limiter or RateLimiter()
        self.admission = admission or AdmissionController()
        self.metrics = metrics or ServiceMetrics()
        self.audit = audit
        self.keepalive_idle = keepalive_idle
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            # idle keep-alive connections would otherwise block
            # wait_closed (>= 3.12.1) forever; by the time stop() runs
            # the scheduler has drained, so nothing useful is in flight
            for writer in list(self._connections):
                writer.close()
            await self._server.wait_closed()
            self._server = None

    # -- request plumbing --------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._connections.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break  # clean EOF or idle timeout: client is done
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                consumed = await self._middleware(
                    method, path, headers, body, writer, keep_alive
                )
                if consumed:  # an event stream took over the socket
                    break
                if not keep_alive:
                    break
        except _BadRequestLine as exc:
            # malformed head: answer once, then drop the connection (the
            # framing is unknowable, so keep-alive would misparse)
            try:
                await self._send_error(
                    writer,
                    ApiError(400, "bad_request", str(exc)),
                    keep_alive=False,
                )
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request/mid-stream
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        """One request head + body, ``None`` on clean EOF / idle timeout."""
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=self.keepalive_idle
            )
        except asyncio.TimeoutError:
            return None  # idle keep-alive connection: reclaim it
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean close between requests
            raise
        except asyncio.LimitOverrunError:
            # request head beyond the stream's 64 KiB limit: answer with
            # a 400 instead of killing the handler task responselessly
            raise _BadRequestLine("request head too large") from None
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise _BadRequestLine(f"malformed request line {request_line!r}")
        method, path, _version = parts
        headers = {}
        for line in header_lines:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _BadRequestLine(
                f"malformed Content-Length {raw_length!r}"
            ) from None
        if length < 0:
            raise _BadRequestLine(f"negative Content-Length {length}")
        if length > _MAX_BODY:
            raise _BadRequestLine(f"request body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _send_json(
        self,
        writer,
        status: int,
        payload: dict,
        *,
        keep_alive: bool = True,
        extra_headers: dict | None = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        await self._send_raw(
            writer, status, "application/json", body,
            keep_alive=keep_alive, extra_headers=extra_headers,
        )

    async def _send_error(
        self,
        writer,
        exc: ApiError,
        *,
        keep_alive: bool,
        deprecated: bool = False,
        route_label: str = "?",
    ) -> None:
        extra = {}
        if exc.retry_after is not None:
            # integral seconds per RFC 9110 (ceil so "0.2" never reads 0)
            extra["Retry-After"] = str(max(1, int(-(-exc.retry_after // 1))))
        if deprecated:
            extra["Deprecation"] = "true"
        self.metrics.record_request(route_label, exc.status, deprecated)
        await self._send_json(
            writer, exc.status, exc.envelope(),
            keep_alive=keep_alive, extra_headers=extra,
        )

    async def _send_raw(
        self,
        writer,
        status: int,
        ctype: str,
        body: bytes,
        *,
        keep_alive: bool = True,
        extra_headers: dict | None = None,
    ) -> None:
        reason = _REASONS.get(status, "OK")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)
        await writer.drain()

    # -- middleware pipeline -----------------------------------------------
    async def _middleware(self, method, path, headers, body, writer, keep_alive):
        """Version resolution -> auth -> rate limit/admission -> route.

        Returns True when the handler took over the connection (the
        NDJSON event stream); the caller then stops reading requests.
        ApiErrors from any stage are answered here, so per-request
        context (version, route label) never leaks between the
        concurrently-handled connections sharing this loop.
        """
        # 0. split the query string off the route path (?format=... on
        # /metrics; unknown params are ignored, route matching never
        # sees them)
        path, _, query_string = path.partition("?")
        query = parse_qs(query_string)
        # 1. API version: /v1 is canonical, bare paths are deprecated
        if path == "/v1" or path.startswith("/v1/"):
            rel = path[len("/v1"):] or "/"
            deprecated = False
        else:
            rel = path
            deprecated = True
        route_label = f"{method} {_route_pattern(rel)}"
        try:
            # 2. authentication (liveness probes exempt)
            if rel == "/healthz":
                client = "probe"
            else:
                try:
                    client = self.auth.identify(headers.get("authorization"))
                except AuthenticationError as exc:
                    self.metrics.auth_failures += 1
                    if self.audit is not None:
                        self.audit.auth_failure(exc.code, path)
                    raise ApiError(401, exc.code, str(exc)) from None

            # 3. submission gates: rate limit, then admission control
            if method == "POST" and rel == "/jobs":
                kind = _peek_kind(body)
                retry_after = self.limiter.admit(client)
                if retry_after > 0:
                    self.metrics.rate_limited += 1
                    if self.audit is not None:
                        self.audit.submission(
                            client, kind, "rejected:rate_limited"
                        )
                    raise ApiError(
                        429, "rate_limited",
                        f"client {client!r} is over its submission rate",
                        retry_after=retry_after,
                    )
                retry_after = self.admission.admit(self.scheduler.queue_depth())
                if retry_after > 0:
                    self.metrics.shed += 1
                    if self.audit is not None:
                        self.audit.submission(
                            client, kind, "rejected:overloaded"
                        )
                    raise ApiError(
                        503, "overloaded",
                        f"queue depth {self.scheduler.queue_depth()} is at "
                        f"the high-water mark {self.admission.high_water}",
                        retry_after=retry_after,
                    )

            return await self._route(
                method, rel, query, headers, body, writer, client,
                deprecated, route_label,
            )
        except ApiError as exc:
            await self._send_error(
                writer, exc, keep_alive=keep_alive,
                deprecated=deprecated, route_label=route_label,
            )
            return False

    # -- routes ------------------------------------------------------------
    async def _route(self, method, rel, query, headers, body, writer, client,
                     deprecated, route_label):
        extra = {"Deprecation": "true"} if deprecated else None

        async def respond(status: int, payload: dict) -> None:
            self.metrics.record_request(route_label, status, deprecated)
            await self._send_json(writer, status, payload, extra_headers=extra)

        if method == "GET" and rel == "/healthz":
            jobs = self.scheduler.jobs()
            await respond(200, {
                "status": "ok",
                "store": self.scheduler.store_path,
                "jobs": len(jobs),
                "active": sum(1 for j in jobs if not j.done),
            })
            return False
        if method == "GET" and rel == "/metrics":
            doc = self.metrics.render(
                self.scheduler,
                auth=self.auth, limiter=self.limiter, admission=self.admission,
            )
            fmt = (query.get("format") or [""])[0]
            if fmt not in ("", "json", "prometheus"):
                raise ApiError(
                    400, "bad_request",
                    f"unknown metrics format {fmt!r} "
                    "(expected 'json' or 'prometheus')",
                )
            accept = headers.get("accept", "")
            if fmt == "prometheus" or (
                fmt == "" and "text/plain" in accept
                and "application/json" not in accept
            ):
                self.metrics.record_request(route_label, 200, deprecated)
                await self._send_raw(
                    writer, 200, CONTENT_TYPE_PROMETHEUS,
                    prometheus_exposition(doc).encode(),
                    extra_headers=extra,
                )
                return False
            await respond(200, doc)
            return False
        if method == "POST" and rel == "/jobs":
            await self._submit(body, writer, client, respond)
            return False
        if method == "GET" and rel == "/jobs":
            await respond(
                200, {"jobs": [j.progress() for j in self.scheduler.jobs()]}
            )
            return False
        if method == "GET" and rel.startswith("/jobs/"):
            rest = rel[len("/jobs/"):]
            job_id, _, tail = rest.partition("/")
            job = self.scheduler.job(job_id)
            if job is None:
                raise ApiError(404, "job_not_found", f"unknown job {job_id!r}")
            if tail == "":
                await respond(200, job.progress())
                return False
            if tail == "result":
                if not job.done:
                    raise ApiError(
                        409, "not_ready",
                        f"job {job_id} is {job.state}; result not ready",
                    )
                await respond(200, job.result_payload())
                return False
            if tail == "events":
                self.metrics.record_request(route_label, 200, deprecated)
                await self._stream_events(writer, job)
                return True
        raise ApiError(404, "not_found", f"no route for {method} {rel}")

    async def _submit(self, body, writer, client, respond) -> None:
        """POST /jobs: parse, schedule, audit, time into the histogram."""
        started = time.monotonic()
        kind = _peek_kind(body)
        try:
            spec = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            if self.audit is not None:
                self.audit.submission(client, kind, "rejected:bad_request")
            raise ApiError(
                400, "bad_request", f"body is not valid JSON: {exc}"
            ) from None
        try:
            job = await self.scheduler.submit(spec)
        except ValueError as exc:
            if self.audit is not None:
                self.audit.submission(client, kind, "rejected:bad_request")
            raise ApiError(400, "bad_request", str(exc)) from None
        except SchedulerDraining as exc:
            self.metrics.draining_rejects += 1
            if self.audit is not None:
                self.audit.submission(client, kind, "rejected:draining")
            raise ApiError(
                503, "draining", str(exc), retry_after=5.0
            ) from None
        if self.audit is not None:
            self.audit.submission(
                client, job.spec.kind, "accepted",
                job_id=job.id, cells=len(job.cells),
                content_keys=[cell.content_key for cell in job.cells],
            )
        self.metrics.record_submit(job.spec.kind, time.monotonic() - started)
        await respond(200, job.progress())

    async def _stream_events(self, writer, job: Job) -> None:
        """NDJSON progress stream: one snapshot per change, then EOF.

        The response is unframed (``Connection: close`` delimits it);
        each line is flushed as it is produced so clients render progress
        live.
        """
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        while True:
            snapshot = job.progress()
            writer.write((json.dumps(snapshot, sort_keys=True) + "\n").encode())
            await writer.drain()
            if job.done:
                return
            await job.wait_change(snapshot["version"])


class _BadRequestLine(Exception):
    """A request head the framing layer cannot recover from."""


def _route_pattern(rel: str) -> str:
    """Collapse job ids so the by-route counters stay low-cardinality."""
    if rel.startswith("/jobs/"):
        _, _, tail = rel[len("/jobs/"):].partition("/")
        return f"/jobs/<id>/{tail}" if tail else "/jobs/<id>"
    return rel


def _peek_kind(body: bytes) -> str:
    """Best-effort job kind for audit entries on rejected submissions."""
    try:
        spec = json.loads(body.decode() or "null")
        kind = spec.get("kind") if isinstance(spec, dict) else None
        return kind if isinstance(kind, str) else "?"
    except (json.JSONDecodeError, UnicodeDecodeError):
        return "?"


async def serve(
    store_path,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_workers: int | None = 1,
    tokens: dict | None = None,
    tokens_file=None,
    rate: float = 0.0,
    burst: int | None = None,
    high_water: int = 0,
    audit_path=None,
    qos_lanes: bool = True,
    interactive_max_cells: int = 2,
    ready: "asyncio.Event | None" = None,
    stop: "asyncio.Event | None" = None,
    server_box: list | None = None,
) -> int:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    Opens (or resumes) the store at ``store_path``, starts the scheduler
    over one shared process pool (``max_workers=0`` computes inline) and
    serves until ``stop`` is set -- by a signal handler when running on a
    main thread, or programmatically (:class:`ThreadedService`).  On the
    way out: the listener closes first (no new jobs), executing cells
    finish and commit, queued cells cancel, the store closes last.

    Hardening knobs: ``tokens``/``tokens_file`` (else the
    ``REPRO_SERVICE_TOKENS`` env var, else anonymous mode), per-client
    ``rate``/``burst`` token-bucket limiting, ``high_water`` queue-depth
    admission control, ``audit_path`` for the JSONL submission log.
    ``qos_lanes``/``interactive_max_cells`` control the scheduler's
    interactive-over-batch dispatch priority (see
    :class:`~repro.service.scheduler.VerificationScheduler`).
    """
    auth = Authenticator(
        tokens if tokens is not None else resolve_tokens(tokens_file)
    )
    limiter = RateLimiter(rate, burst)
    admission = AdmissionController(high_water)
    audit = AuditLog(audit_path) if audit_path else None
    store = open_store(store_path)
    scheduler = VerificationScheduler(
        store,
        max_workers=max_workers,
        qos_lanes=qos_lanes,
        interactive_max_cells=interactive_max_cells,
    )
    await scheduler.start()
    server = ServiceServer(
        scheduler, host, port,
        auth=auth, limiter=limiter, admission=admission, audit=audit,
    )
    await server.start()
    if server_box is not None:
        server_box.append(server)

    stop = stop or asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signame in ("SIGTERM", "SIGINT"):
        try:
            signum = getattr(signal, signame)
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or platform without signal support
    # stdout (not stderr): launchers parse this line for the bound port
    log_event(
        "service.listening",
        f"repro service listening on http://{server.host}:{server.port} "
        f"(store: {store.path}, workers: {max_workers}, "
        f"auth: {'anonymous' if auth.anonymous else 'token'}"
        + (f", rate: {rate}/s" if limiter.enabled else "")
        + (f", high-water: {high_water}" if admission.enabled else "")
        + ")",
        stream=sys.stdout,
        host=server.host,
        port=server.port,
        store=str(store.path),
    )
    if ready is not None:
        ready.set()
    try:
        await stop.wait()
        log_event("service.draining", "repro service draining ...")
        # Drain the scheduler FIRST, listener last.  The scheduler's
        # draining flag already 503s new submissions, so keeping the
        # listener up costs nothing -- while closing it first would be
        # actively wrong twice over: (a) on Python >= 3.12.1
        # Server.wait_closed blocks until every active connection
        # finishes, and an open /events stream only finishes once drain
        # cancels its job, a deadlock that quietly computes the whole
        # remaining queue instead of cancelling it; (b) a streaming
        # client that just saw its job go terminal still needs one more
        # connection to fetch the partial result -- closed listener,
        # connection refused, and the durable partial result is stranded.
        await scheduler.drain()
        await server.stop()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        store.close()
        if audit is not None:
            audit.close()
    log_event("service.stopped", "repro service stopped")
    return 0


class ThreadedService:
    """Run the whole service on a background thread (tests, benchmarks,
    embedding into an existing process).

    The service's asyncio loop lives on the thread; :meth:`start` blocks
    until the listener is bound and returns the base URL, :meth:`stop`
    triggers the same graceful drain as SIGTERM and joins the thread.
    Extra keyword arguments (``tokens``, ``rate``, ``burst``,
    ``high_water``, ``audit_path``, ...) pass straight through to
    :func:`serve`.
    """

    def __init__(self, store_path, *, max_workers: int | None = 0,
                 host: str = "127.0.0.1", port: int = 0, **serve_kwargs):
        self._store_path = store_path
        self._max_workers = max_workers
        self._host = host
        self._port = port
        self._serve_kwargs = serve_kwargs
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._server_box: list = []
        self.url: str | None = None

    def _main(self) -> None:
        async def body():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            ready = asyncio.Event()

            async def announce():
                await ready.wait()
                server = self._server_box[0]
                self.url = f"http://{server.host}:{server.port}"
                self._ready.set()

            announcer = asyncio.create_task(announce())
            try:
                await serve(
                    self._store_path,
                    host=self._host,
                    port=self._port,
                    max_workers=self._max_workers,
                    ready=ready,
                    stop=self._stop,
                    server_box=self._server_box,
                    **self._serve_kwargs,
                )
            finally:
                announcer.cancel()
                self._ready.set()  # unblock start() even on startup failure

        asyncio.run(body())

    def start(self) -> str:
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        self._ready.wait(timeout=60)
        if self.url is None:
            self._thread.join(timeout=5)
            raise RuntimeError(f"service failed to start on {self._store_path}")
        return self.url

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed (startup failure path)
        if self._thread is not None:
            self._thread.join(timeout=120)

    def __enter__(self) -> "ThreadedService":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
