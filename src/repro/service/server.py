"""The verification service's HTTP front door (stdlib only).

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` -- no
framework, no dependency beyond the standard library, one connection per
request.  The API:

====================================  =====================================
``GET  /healthz``                     liveness + store path + job counts
``POST /jobs``                        submit a job spec (JSON body);
                                      responds with the job snapshot
``GET  /jobs``                        all job snapshots
``GET  /jobs/<id>``                   one job's progress snapshot
``GET  /jobs/<id>/events``            NDJSON stream: a snapshot per
                                      progress change, ending when the
                                      job reaches a terminal state
``GET  /jobs/<id>/result``            the full result payload (409 until
                                      the job is terminal)
====================================  =====================================

Errors are JSON ``{"error": ...}`` with 400 (bad spec), 404 (unknown
job/route), 409 (result before completion) or 503 (submission during
drain).

**Graceful drain.**  SIGTERM/SIGINT drain the scheduler first -- new
submissions get 503, executing cells finish (each commits to the store
before its job sees the result), queued cells cancel, every job reaches
a terminal state so progress streams end -- and only then close the
listener and the store.  The ordering matters: streaming clients still
hold connections the listener must answer (their final result fetch),
and on Python >= 3.12.1 ``Server.wait_closed`` blocks on active
connections, so closing the listener before the jobs terminate would
deadlock the drain behind its own event streams.  Nothing in flight is
lost beyond the cells that never started: a restarted server on the
same store serves every completed cell as a cache hit, so clients
simply resubmit (``tests/integration/test_service_resume.py`` pins
this).
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading

from ..verifier.store import open_store
from .jobs import Job
from .scheduler import SchedulerDraining, VerificationScheduler

__all__ = ["ServiceServer", "ThreadedService", "serve"]

_MAX_BODY = 8 * 1024 * 1024  # job specs are small; reject anything absurd


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServiceServer:
    """The asyncio HTTP listener bound to one scheduler."""

    def __init__(
        self,
        scheduler: VerificationScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.scheduler = scheduler
        self.host = host
        self.port = port  # 0 = ephemeral; updated to the bound port on start
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request plumbing --------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            try:
                method, path, body = await self._read_request(reader)
                await self._route(method, path, body, writer)
            except _HttpError as exc:
                await self._send_json(
                    writer, exc.status, {"error": str(exc)}
                )
            except (ConnectionError, asyncio.IncompleteReadError):
                pass  # client went away mid-request/mid-stream
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader) -> tuple[str, str, bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            # request head beyond the stream's 64 KiB limit: answer with
            # a 400 instead of killing the handler task responselessly
            raise _HttpError(400, "request head too large") from None
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {request_line!r}")
        method, path, _version = parts
        headers = {}
        for line in header_lines:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _HttpError(
                400, f"malformed Content-Length {raw_length!r}"
            ) from None
        if length < 0:
            raise _HttpError(400, f"negative Content-Length {length}")
        if length > _MAX_BODY:
            raise _HttpError(400, f"request body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _send_json(self, writer, status: int, payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        await self._send_raw(writer, status, "application/json", body)

    async def _send_raw(self, writer, status: int, ctype: str, body: bytes) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  409: "Conflict", 503: "Service Unavailable"}.get(status, "OK")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n".encode() + body
        )
        await writer.drain()

    # -- routes ------------------------------------------------------------
    async def _route(self, method: str, path: str, body: bytes, writer) -> None:
        if method == "GET" and path == "/healthz":
            jobs = self.scheduler.jobs()
            await self._send_json(writer, 200, {
                "status": "ok",
                "store": self.scheduler._store.path,
                "jobs": len(jobs),
                "active": sum(1 for j in jobs if not j.done),
            })
            return
        if method == "POST" and path == "/jobs":
            try:
                spec = json.loads(body.decode() or "null")
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise _HttpError(400, f"body is not valid JSON: {exc}") from None
            try:
                job = await self.scheduler.submit(spec)
            except ValueError as exc:
                raise _HttpError(400, str(exc)) from None
            except SchedulerDraining as exc:
                raise _HttpError(503, str(exc)) from None
            await self._send_json(writer, 200, job.progress())
            return
        if method == "GET" and path == "/jobs":
            await self._send_json(
                writer, 200, {"jobs": [j.progress() for j in self.scheduler.jobs()]}
            )
            return
        if method == "GET" and path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, tail = rest.partition("/")
            job = self.scheduler.job(job_id)
            if job is None:
                raise _HttpError(404, f"unknown job {job_id!r}")
            if tail == "":
                await self._send_json(writer, 200, job.progress())
                return
            if tail == "result":
                if not job.done:
                    raise _HttpError(
                        409, f"job {job_id} is {job.state}; result not ready"
                    )
                await self._send_json(writer, 200, job.result_payload())
                return
            if tail == "events":
                await self._stream_events(writer, job)
                return
        raise _HttpError(404, f"no route for {method} {path}")

    async def _stream_events(self, writer, job: Job) -> None:
        """NDJSON progress stream: one snapshot per change, then EOF.

        The response is unframed (``Connection: close`` delimits it);
        each line is flushed as it is produced so clients render progress
        live.
        """
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        while True:
            snapshot = job.progress()
            writer.write((json.dumps(snapshot, sort_keys=True) + "\n").encode())
            await writer.drain()
            if job.done:
                return
            await job.wait_change(snapshot["version"])


async def serve(
    store_path,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_workers: int | None = 1,
    ready: "asyncio.Event | None" = None,
    stop: "asyncio.Event | None" = None,
    server_box: list | None = None,
) -> int:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    Opens (or resumes) the store at ``store_path``, starts the scheduler
    over one shared process pool (``max_workers=0`` computes inline) and
    serves until ``stop`` is set -- by a signal handler when running on a
    main thread, or programmatically (:class:`ThreadedService`).  On the
    way out: the listener closes first (no new jobs), executing cells
    finish and commit, queued cells cancel, the store closes last.
    """
    store = open_store(store_path)
    scheduler = VerificationScheduler(store, max_workers=max_workers)
    await scheduler.start()
    server = ServiceServer(scheduler, host, port)
    await server.start()
    if server_box is not None:
        server_box.append(server)

    stop = stop or asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signame in ("SIGTERM", "SIGINT"):
        try:
            signum = getattr(signal, signame)
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or platform without signal support
    print(
        f"repro service listening on http://{server.host}:{server.port} "
        f"(store: {store.path}, workers: {max_workers})",
        flush=True,
    )
    if ready is not None:
        ready.set()
    try:
        await stop.wait()
        print("repro service draining ...", file=sys.stderr, flush=True)
        # Drain the scheduler FIRST, listener last.  The scheduler's
        # draining flag already 503s new submissions, so keeping the
        # listener up costs nothing -- while closing it first would be
        # actively wrong twice over: (a) on Python >= 3.12.1
        # Server.wait_closed blocks until every active connection
        # finishes, and an open /events stream only finishes once drain
        # cancels its job, a deadlock that quietly computes the whole
        # remaining queue instead of cancelling it; (b) a streaming
        # client that just saw its job go terminal still needs one more
        # connection to fetch the partial result -- closed listener,
        # connection refused, and the durable partial result is stranded.
        await scheduler.drain()
        await server.stop()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        store.close()
    print("repro service stopped", file=sys.stderr, flush=True)
    return 0


class ThreadedService:
    """Run the whole service on a background thread (tests, benchmarks,
    embedding into an existing process).

    The service's asyncio loop lives on the thread; :meth:`start` blocks
    until the listener is bound and returns the base URL, :meth:`stop`
    triggers the same graceful drain as SIGTERM and joins the thread.
    """

    def __init__(self, store_path, *, max_workers: int | None = 0,
                 host: str = "127.0.0.1", port: int = 0):
        self._store_path = store_path
        self._max_workers = max_workers
        self._host = host
        self._port = port
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._server_box: list = []
        self.url: str | None = None

    def _main(self) -> None:
        async def body():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            ready = asyncio.Event()

            async def announce():
                await ready.wait()
                server = self._server_box[0]
                self.url = f"http://{server.host}:{server.port}"
                self._ready.set()

            announcer = asyncio.create_task(announce())
            try:
                await serve(
                    self._store_path,
                    host=self._host,
                    port=self._port,
                    max_workers=self._max_workers,
                    ready=ready,
                    stop=self._stop,
                    server_box=self._server_box,
                )
            finally:
                announcer.cancel()
                self._ready.set()  # unblock start() even on startup failure

        asyncio.run(body())

    def start(self) -> str:
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        self._ready.wait(timeout=60)
        if self.url is None:
            self._thread.join(timeout=5)
            raise RuntimeError(f"service failed to start on {self._store_path}")
        return self.url

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed (startup failure path)
        if self._thread is not None:
            self._thread.join(timeout=120)

    def __enter__(self) -> "ThreadedService":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
