"""Rasterisation and ASCII rendering of region maps (Figures 1 and 2).

The paper's figures classify the (rs, s) rectangle by outcome.  We paint
the verification records onto a grid in record order -- children refine
(paint over) their parents exactly as Algorithm 1's recursion refines
verdicts -- and render the raster as ASCII art or export it as rows.
"""

from __future__ import annotations

import numpy as np

from .regions import Outcome, VerificationReport

#: single-character legend for ASCII maps
OUTCOME_CHARS = {
    None: " ",
    Outcome.VERIFIED: ".",
    Outcome.COUNTEREXAMPLE: "X",
    Outcome.INCONCLUSIVE: "i",
    Outcome.TIMEOUT: "T",
}

#: integer codes for the raster (NaN-free small ints)
OUTCOME_CODES = {
    None: 0,
    Outcome.VERIFIED: 1,
    Outcome.COUNTEREXAMPLE: 2,
    Outcome.INCONCLUSIVE: 3,
    Outcome.TIMEOUT: 4,
}
CODE_OUTCOMES = {v: k for k, v in OUTCOME_CODES.items()}


def rasterize(
    report: VerificationReport,
    x_var: str = "rs",
    y_var: str = "s",
    resolution: int = 64,
    slice_point: dict[str, float] | None = None,
) -> np.ndarray:
    """Paint the report's records onto a ``resolution x resolution`` raster.

    Returns an integer array ``raster[iy, ix]`` of outcome codes with ``iy``
    increasing along ``y_var`` and ``ix`` along ``x_var``.  Extra dimensions
    (e.g. alpha for SCAN) are restricted to ``slice_point``.
    """
    domain = report.domain
    if x_var not in domain.names:
        raise KeyError(f"{x_var!r} is not a domain variable")
    one_dimensional = y_var not in domain.names
    xs = _cell_centers(domain[x_var].lo, domain[x_var].hi, resolution)
    if one_dimensional:
        ys = np.array([0.0])
    else:
        ys = _cell_centers(domain[y_var].lo, domain[y_var].hi, resolution)

    slice_point = dict(slice_point or {})
    raster = np.zeros((len(ys), len(xs)), dtype=np.int8)

    for record in report.records:
        box = record.box
        # restrict to the slice: skip records not containing the slice point
        skip = False
        for name, value in slice_point.items():
            if name in box.names and not box[name].contains(value):
                skip = True
                break
        if skip:
            continue
        ix0, ix1 = _cell_range(xs, box[x_var].lo, box[x_var].hi)
        if one_dimensional:
            iy0, iy1 = 0, 1
        else:
            iy0, iy1 = _cell_range(ys, box[y_var].lo, box[y_var].hi)
        raster[iy0:iy1, ix0:ix1] = OUTCOME_CODES[record.outcome]

    return raster


def _cell_centers(lo: float, hi: float, n: int) -> np.ndarray:
    edges = np.linspace(lo, hi, n + 1)
    return 0.5 * (edges[:-1] + edges[1:])


def _cell_range(centers: np.ndarray, lo: float, hi: float) -> tuple[int, int]:
    inside = np.nonzero((centers >= lo) & (centers <= hi))[0]
    if len(inside) == 0:
        return 0, 0
    return int(inside[0]), int(inside[-1]) + 1


def ascii_map(
    report: VerificationReport,
    x_var: str = "rs",
    y_var: str = "s",
    resolution: int = 48,
    slice_point: dict[str, float] | None = None,
    legend: bool = True,
) -> str:
    """Render a report as an ASCII region map (y increases upward)."""
    raster = rasterize(report, x_var, y_var, resolution, slice_point)
    lines = []
    header = (
        f"{report.functional_name} / {report.condition_id}  "
        f"[{x_var} ->, {y_var} ^]"
    )
    lines.append(header)
    for row in raster[::-1]:
        lines.append("".join(OUTCOME_CHARS[CODE_OUTCOMES[int(c)]] for c in row))
    if legend:
        lines.append(
            "legend: '.'=verified  'X'=counterexample  'i'=inconclusive  "
            "'T'=timeout  ' '=below threshold/unexplored"
        )
    return "\n".join(lines)


def outcome_fractions_from_raster(raster: np.ndarray) -> dict[Outcome | None, float]:
    """Outcome fractions computed on the raster (cross-check of volumes)."""
    total = raster.size
    out: dict[Outcome | None, float] = {}
    for code, outcome in CODE_OUTCOMES.items():
        count = int((raster == code).sum())
        if count:
            out[outcome] = count / total
    return out


def export_rows(
    report: VerificationReport,
) -> list[dict[str, object]]:
    """Flatten the records into plain dict rows (CSV/JSON-friendly)."""
    rows = []
    for record in report.records:
        row: dict[str, object] = {
            "index": record.index,
            "depth": record.depth,
            "outcome": record.outcome.value,
            "solver_steps": record.solver_steps,
        }
        for name, iv in record.box.items():
            row[f"{name}_lo"] = iv.lo
            row[f"{name}_hi"] = iv.hi
        if record.model:
            for name, value in record.model.items():
                row[f"model_{name}"] = value
        rows.append(row)
    return rows
