"""XCEncoder: (functional, condition) -> solver problem.

Pulls together the pieces exactly as Section III-A describes:

1. the functional's model code is lifted into IR by the symbolic-execution
   front end (:mod:`repro.pysym`) -- the analogue of translating LibXC's
   Maple source and symbolically executing it;
2. the condition builder computes any required derivatives symbolically
   and produces the local condition psi;
3. psi is negated into the satisfiability query ``not psi`` whose models
   are condition violations (Equations 11-12 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..conditions.base import Condition
from ..expr.nodes import Rel
from ..functionals.base import Functional
from ..solver.box import Box
from ..solver.constraint import Atom, Conjunction


@dataclass(frozen=True)
class EncodedProblem:
    """A ready-to-solve verification problem.

    ``negation`` is the formula handed to the solver: SAT models are
    candidate counterexamples to psi; UNSAT on a box proves psi there.
    """

    functional: Functional
    condition: Condition
    psi: Rel
    negation: Conjunction
    domain: Box

    @property
    def label(self) -> str:
        return f"{self.functional.name} / {self.condition.cid}"

    def complexity(self) -> int:
        """Operation count of the negated formula (the paper's size metric)."""
        return self.negation.max_operation_count()


def encode(
    functional: Functional,
    condition: Condition,
    domain: Box | None = None,
) -> EncodedProblem:
    """Encode the local condition of ``condition`` for ``functional``."""
    psi = _psi_cached(functional, condition)
    negation = Conjunction.of(Atom.from_rel(psi).negate())
    return EncodedProblem(
        functional=functional,
        condition=condition,
        psi=psi,
        negation=negation,
        domain=domain if domain is not None else functional.domain(),
    )


@lru_cache(maxsize=None)
def _psi_cached(functional: Functional, condition: Condition) -> Rel:
    return condition.local_condition(functional)
