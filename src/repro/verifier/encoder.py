"""XCEncoder: (functional, condition) -> solver problem.

Pulls together the pieces exactly as Section III-A describes:

1. the functional's model code is lifted into IR by the symbolic-execution
   front end (:mod:`repro.pysym`) -- the analogue of translating LibXC's
   Maple source and symbolically executing it;
2. the condition builder computes any required derivatives symbolically
   and produces the local condition psi;
3. psi is negated into the satisfiability query ``not psi`` whose models
   are condition violations (Equations 11-12 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..conditions.base import Condition
from ..expr.nodes import Rel
from ..functionals.base import Functional
from ..solver.box import Box
from ..solver.constraint import Atom, Conjunction


@dataclass(frozen=True)
class EncodedProblem:
    """A ready-to-solve verification problem.

    ``negation`` is the formula handed to the solver: SAT models are
    candidate counterexamples to psi; UNSAT on a box proves psi there.
    """

    functional: Functional
    condition: Condition
    psi: Rel
    negation: Conjunction
    domain: Box

    @property
    def label(self) -> str:
        return f"{self.functional.name} / {self.condition.cid}"

    def complexity(self) -> int:
        """Operation count of the negated formula (the paper's size metric)."""
        return self.negation.max_operation_count()


def encode(
    functional: Functional,
    condition: Condition,
    domain: Box | None = None,
) -> EncodedProblem:
    """Encode the local condition of ``condition`` for ``functional``."""
    psi = _psi_cached(functional, condition)
    negation = Conjunction.of(Atom.from_rel(psi).negate())
    return EncodedProblem(
        functional=functional,
        condition=condition,
        psi=psi,
        negation=negation,
        domain=domain if domain is not None else functional.domain(),
    )


@lru_cache(maxsize=None)
def _psi_cached(functional: Functional, condition: Condition) -> Rel:
    return condition.local_condition(functional)


class CompiledProblem:
    """A verification problem compiled to instruction tapes -- DAG-free.

    Everything Algorithm 1 needs, as flat picklable data: the negated
    formula as a :class:`~repro.solver.tape.CompiledConjunction` (solver
    input), the two sides of the original condition psi as scalar tapes
    (counterexample validation), and the domain box.  Process-pool workers
    deserialize this directly instead of re-running the symbolic encoder;
    the tapes were compiled once in the parent.
    """

    __slots__ = (
        "functional_name", "condition_id", "negation",
        "psi_lhs", "psi_rhs", "psi_op", "domain",
    )

    def __init__(self, functional_name, condition_id, negation, psi_lhs, psi_rhs, psi_op, domain):
        self.functional_name = functional_name
        self.condition_id = condition_id
        self.negation = negation
        self.psi_lhs = psi_lhs
        self.psi_rhs = psi_rhs
        self.psi_op = psi_op
        self.domain = domain

    @property
    def label(self) -> str:
        return f"{self.functional_name} / {self.condition_id}"

    def is_violation(self, model: dict[str, float]) -> bool:
        """The ``valid(x)`` check of Algorithm 1: does ``model`` break psi?"""
        import math

        from ..solver.tape import COND_CODE, cond_holds

        gap = self.psi_lhs.eval_scalar(model) - self.psi_rhs.eval_scalar(model)
        if math.isnan(gap):
            return False
        return not cond_holds(COND_CODE[self.psi_op], gap)

    def content_hash(self, domain: Box | None = None, extra: tuple = ()) -> str:
        """Stable content hash of this problem over ``domain``.

        The hash covers everything that determines verification outcomes:
        the negation's compiled tapes bit-for-bit (instructions + literal
        pool), the psi tapes and relation used for counterexample
        validation, and the domain bounds.  ``extra`` lets callers fold in
        additional outcome-relevant state -- the campaign store passes
        :meth:`VerifierConfig.semantic_key` -- so a store written with one
        configuration is never misread under another.

        Identical (functional, condition) encodings hash identically
        across processes and runs; any change to a functional's model
        code, a condition's derivation, the simplifier, or the tape
        compiler changes the tapes and therefore the key, turning stale
        store entries into clean cache misses.
        """
        from ..solver.interval import KERNEL_SEMANTICS_VERSION
        from ..solver.tape import stable_digest

        domain = domain if domain is not None else self.domain
        bounds = [(name, iv.lo, iv.hi) for name, iv in domain.items()]
        return stable_digest(
            (
                "problem",
                # version-stamps the interval kernel semantics: a sound
                # change to endpoint rounding (e.g. the pow mult-chain
                # tightening) invalidates stored cells as clean misses
                KERNEL_SEMANTICS_VERSION,
                self.negation.fingerprint(),
                self.psi_lhs.fingerprint(),
                self.psi_rhs.fingerprint(),
                self.psi_op,
                bounds,
                list(extra),
            )
        )

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state):
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)


def compile_problem(problem: EncodedProblem, derivatives: bool = False) -> CompiledProblem:
    """Compile an encoded problem into picklable tapes.

    ``derivatives=True`` additionally compiles per-variable derivative
    tapes, required if the consuming solver enables the Newton contractor.
    """
    from ..solver.tape import CompiledConjunction, tape_for

    return CompiledProblem(
        functional_name=problem.functional.name,
        condition_id=problem.condition.cid,
        negation=CompiledConjunction.from_conjunction(
            problem.negation, derivatives=derivatives
        ),
        psi_lhs=tape_for(problem.psi.lhs),
        psi_rhs=tape_for(problem.psi.rhs),
        psi_op=problem.psi.op,
        domain=problem.domain,
    )
