"""XCVerifier core: encoder, Algorithm 1 driver, campaign engine, store."""

from .campaign import CampaignResult, dedupe_pairs, run_campaign
from .encoder import CompiledProblem, EncodedProblem, compile_problem, encode
from .regions import (
    Outcome,
    RegionRecord,
    VerificationReport,
    SYMBOL_COUNTEREXAMPLE,
    SYMBOL_NOT_APPLICABLE,
    SYMBOL_PARTIAL,
    SYMBOL_UNKNOWN,
    SYMBOL_VERIFIED,
)
from .store import (
    CampaignStore,
    iter_reports,
    open_store,
    report_from_payload,
    report_to_payload,
)
from .verifier import Verifier, VerifierConfig, verify_pair
from .render import ascii_map, export_rows, rasterize

__all__ = [
    "CampaignResult", "CampaignStore", "dedupe_pairs", "run_campaign",
    "iter_reports", "open_store", "report_from_payload", "report_to_payload",
    "CompiledProblem", "EncodedProblem", "compile_problem", "encode",
    "Outcome", "RegionRecord",
    "VerificationReport", "Verifier", "VerifierConfig", "verify_pair",
    "ascii_map", "export_rows", "rasterize",
    "SYMBOL_COUNTEREXAMPLE", "SYMBOL_NOT_APPLICABLE", "SYMBOL_PARTIAL",
    "SYMBOL_UNKNOWN", "SYMBOL_VERIFIED",
]
