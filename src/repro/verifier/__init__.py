"""XCVerifier core: encoder, Algorithm 1 driver, regions, rendering."""

from .encoder import CompiledProblem, EncodedProblem, compile_problem, encode
from .regions import (
    Outcome,
    RegionRecord,
    VerificationReport,
    SYMBOL_COUNTEREXAMPLE,
    SYMBOL_NOT_APPLICABLE,
    SYMBOL_PARTIAL,
    SYMBOL_UNKNOWN,
    SYMBOL_VERIFIED,
)
from .verifier import Verifier, VerifierConfig, verify_pair
from .render import ascii_map, export_rows, rasterize

__all__ = [
    "CompiledProblem", "EncodedProblem", "compile_problem", "encode",
    "Outcome", "RegionRecord",
    "VerificationReport", "Verifier", "VerifierConfig", "verify_pair",
    "ascii_map", "export_rows", "rasterize",
    "SYMBOL_COUNTEREXAMPLE", "SYMBOL_NOT_APPLICABLE", "SYMBOL_PARTIAL",
    "SYMBOL_UNKNOWN", "SYMBOL_VERIFIED",
]
