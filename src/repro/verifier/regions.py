"""Region records and verification reports (the output of Algorithm 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..solver.box import Box


class Outcome(Enum):
    """Per-region verdicts, matching the paper's figure legend."""

    VERIFIED = "verified"            # dReal: UNSAT on the region
    COUNTEREXAMPLE = "counterexample"  # delta-SAT with a *valid* model
    INCONCLUSIVE = "inconclusive"    # delta-SAT with a spurious model
    TIMEOUT = "timeout"              # solver budget exhausted


#: Table I cell symbols
SYMBOL_VERIFIED = "OK"        # paper: check mark
SYMBOL_PARTIAL = "OK*"        # paper: check mark with asterisk
SYMBOL_COUNTEREXAMPLE = "CEX"  # paper: cross
SYMBOL_UNKNOWN = "?"
SYMBOL_NOT_APPLICABLE = "-"


@dataclass
class RegionRecord:
    """One VERIFIER call: the box it examined and what it concluded."""

    index: int
    depth: int
    box: Box
    outcome: Outcome
    model: dict[str, float] | None = None
    children: list[int] = field(default_factory=list)
    solver_steps: int = 0

    def own_volume(self, records: list["RegionRecord"]) -> float:
        """Volume attributed to this record after children paint over it."""
        vol = self.box.volume()
        for child_index in self.children:
            vol -= records[child_index].box.volume()
        return max(vol, 0.0)


@dataclass
class VerificationReport:
    """Everything Algorithm 1 learned about one DFA-condition pair."""

    functional_name: str
    condition_id: str
    domain: Box
    records: list[RegionRecord]
    total_solver_steps: int = 0
    elapsed_seconds: float = 0.0
    budget_exhausted: bool = False
    #: wall-clock spent materialising + compiling the problem in workers
    #: (feeds the campaign cost model); ~0.0 when the per-worker compile
    #: cache was warm.  A timing, not an outcome: excluded from
    #: :meth:`identical_to` like ``elapsed_seconds``.
    compile_seconds: float = 0.0

    # -- aggregation -------------------------------------------------------------
    def area_fractions(self) -> dict[Outcome, float]:
        """Domain-volume fraction finally labelled with each outcome."""
        total = self.domain.volume()
        fractions = {outcome: 0.0 for outcome in Outcome}
        for record in self.records:
            fractions[record.outcome] += record.own_volume(self.records)
        if total > 0.0:
            for outcome in fractions:
                fractions[outcome] /= total
        return fractions

    def max_depth(self) -> int:
        """Deepest split level reached (-1 for an empty report)."""
        return max((r.depth for r in self.records), default=-1)

    def identical_to(self, other: "VerificationReport") -> bool:
        """Bit-exact region-tree equality.

        True iff both reports carry the same records in the same order --
        boxes compared on exact endpoints, plus outcomes, models, child
        links, per-record and total step counts, and the exhaustion flag.
        This is the equivalence the campaign engine's stitching guarantees
        against the sequential verifier; wall-clock (``elapsed_seconds``,
        ``compile_seconds``) is deliberately excluded.  The differential test corpus asserts
        field-by-field for readable failures; gates that only need the
        verdict use this.
        """
        if (
            len(self.records) != len(other.records)
            or self.total_solver_steps != other.total_solver_steps
            or self.budget_exhausted != other.budget_exhausted
            or self.domain != other.domain
        ):
            return False
        for a, b in zip(self.records, other.records):
            if (
                a.index != b.index
                or a.depth != b.depth
                or a.box != b.box
                or a.outcome is not b.outcome
                or a.model != b.model
                or a.children != b.children
                or a.solver_steps != b.solver_steps
            ):
                return False
        return True

    def counterexamples(self) -> list[RegionRecord]:
        return [r for r in self.records if r.outcome is Outcome.COUNTEREXAMPLE]

    def has_counterexample(self) -> bool:
        return any(r.outcome is Outcome.COUNTEREXAMPLE for r in self.records)

    def verified_fraction(self) -> float:
        return self.area_fractions()[Outcome.VERIFIED]

    def classification(self) -> str:
        """Table I cell for this pair.

        Precedence follows the paper: a single valid counterexample makes
        the pair CEX; otherwise fully verified -> OK; partially verified
        -> OK*; nothing verified -> ?.
        """
        if self.has_counterexample():
            return SYMBOL_COUNTEREXAMPLE
        fractions = self.area_fractions()
        verified = fractions[Outcome.VERIFIED]
        if verified >= 1.0 - 1e-9:
            return SYMBOL_VERIFIED
        if verified > 1e-9:
            return SYMBOL_PARTIAL
        return SYMBOL_UNKNOWN

    def counterexample_bbox(self) -> Box | None:
        """Hull of the *leaf* counterexample regions (for PB comparison).

        Non-leaf counterexample records exist because Algorithm 1 records
        the verdict and then splits to isolate the violating subregions;
        only the finest-level (childless) regions describe the violation
        set, so the hull is taken over those.
        """
        leaves = [r for r in self.counterexamples() if not r.children]
        boxes = [r.box for r in (leaves or self.counterexamples())]
        if not boxes:
            return None
        names = boxes[0].names
        from ..solver.interval import make
        bounds = {}
        for name in names:
            lo = min(b[name].lo for b in boxes)
            hi = max(b[name].hi for b in boxes)
            bounds[name] = make(lo, hi)
        return Box(bounds)

    def summary(self) -> str:
        fractions = self.area_fractions()
        parts = ", ".join(
            f"{outcome.value}={fraction:.1%}"
            for outcome, fraction in fractions.items()
            if fraction > 0.0
        )
        return (
            f"{self.functional_name}/{self.condition_id}: "
            f"{self.classification()} ({parts}; {len(self.records)} regions, "
            f"{self.total_solver_steps} solver steps)"
        )
