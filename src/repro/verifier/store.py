"""Persistent, resumable campaign result store.

Verification campaigns are expensive (the paper's Table I is 31 jobs with
a two-hour budget per cell) and historically fire-and-forget: a crash lost
everything and a re-run recomputed everything.  This module gives the
campaign engine durable cells:

* every completed (functional, condition, subdomain) cell is written
  **immediately**, so an interrupted campaign (SIGINT, OOM, pre-empted CI
  runner) keeps everything it finished;
* cells are keyed by a **content hash** of the compiled problem tapes,
  the domain bounds and the semantically relevant verifier config
  (:meth:`repro.verifier.encoder.CompiledProblem.content_hash` +
  :meth:`repro.verifier.verifier.VerifierConfig.semantic_key`), so
  ``--resume`` is sound: a changed functional, condition, simplifier or
  budget changes the key and misses cleanly, while pure performance knobs
  (solver backend, batch size) keep hitting;
* reports round-trip **exactly** -- boxes, outcomes, models, child links
  and step counts are restored bit-for-bit (floats survive the JSON
  round-trip because Python serialises them via shortest-repr).

Two interchangeable backends behind one interface, chosen by file suffix
in :func:`open_store`:

* SQLite (``*.sqlite`` / ``*.sqlite3`` / ``*.db``) -- one ``results``
  table, one committed transaction per cell; WAL mode plus a busy
  timeout keep concurrent readers working while a campaign writes;
* JSONL (``*.jsonl``) -- an append-only checkpoint file, one JSON object
  per line, flushed per cell.  Human-greppable, trivially diffable, and
  crash-robust: a write cut short by a kill leaves a truncated last line,
  which the loader skips.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from typing import Iterator

from ..obs.jsonl import JsonlWriter, iter_jsonl
from ..solver.box import Box
from .regions import Outcome, RegionRecord, VerificationReport

__all__ = [
    "CampaignStore",
    "JsonlStore",
    "STORE_SUFFIXES",
    "SqliteStore",
    "iter_reports",
    "open_store",
    "report_to_payload",
    "report_from_payload",
]

#: bump when the payload layout changes; mismatched stores refuse to load
#: rather than silently misread old campaigns
SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# exact report (de)serialisation
# ---------------------------------------------------------------------------

def _box_payload(box: Box) -> dict[str, list[float]]:
    return {name: [iv.lo, iv.hi] for name, iv in box.items()}


def _box_from_payload(payload: dict[str, list[float]]) -> Box:
    return Box.from_bounds({name: (lo, hi) for name, (lo, hi) in payload.items()})


def report_to_payload(report: VerificationReport) -> dict:
    """Serialise a report to a JSON-safe dict, losslessly.

    Floats go through Python's shortest-repr JSON encoding, which
    round-trips every finite double exactly; ``json`` also round-trips
    the infinities.  This is the storage format -- the human-facing
    summaries live in :mod:`repro.analysis.export`.
    """
    return {
        "v": SCHEMA_VERSION,
        "functional": report.functional_name,
        "condition": report.condition_id,
        "domain": _box_payload(report.domain),
        "total_solver_steps": report.total_solver_steps,
        "elapsed_seconds": report.elapsed_seconds,
        "compile_seconds": report.compile_seconds,
        "budget_exhausted": report.budget_exhausted,
        "records": [
            {
                "index": r.index,
                "depth": r.depth,
                "box": _box_payload(r.box),
                "outcome": r.outcome.value,
                "model": r.model,
                "children": r.children,
                "solver_steps": r.solver_steps,
            }
            for r in report.records
        ],
    }


def report_from_payload(payload: dict) -> VerificationReport:
    """Rebuild a report from :func:`report_to_payload` output, exactly."""
    version = payload.get("v")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"store payload schema v{version} does not match v{SCHEMA_VERSION}"
        )
    records = [
        RegionRecord(
            index=r["index"],
            depth=r["depth"],
            box=_box_from_payload(r["box"]),
            outcome=Outcome(r["outcome"]),
            model=r["model"],
            children=list(r["children"]),
            solver_steps=r["solver_steps"],
        )
        for r in payload["records"]
    ]
    return VerificationReport(
        functional_name=payload["functional"],
        condition_id=payload["condition"],
        domain=_box_from_payload(payload["domain"]),
        records=records,
        total_solver_steps=payload["total_solver_steps"],
        elapsed_seconds=payload["elapsed_seconds"],
        # absent in pre-compile-cache payloads: a timing, not an outcome,
        # so old stores stay readable without a schema bump
        compile_seconds=payload.get("compile_seconds", 0.0),
        budget_exhausted=payload["budget_exhausted"],
    )


# ---------------------------------------------------------------------------
# store backends
# ---------------------------------------------------------------------------

class CampaignStore:
    """Interface shared by the SQLite and JSONL backends.

    A store maps content-hash keys to JSON-safe *cell payloads*.  The
    original (and still primary) cell kind is the verification report,
    accessed through :meth:`get`/:meth:`put`; analysis campaigns (the
    Section VI-C numerics sweep) persist their own payload kinds through
    the generic :meth:`get_payload`/:meth:`put_payload`, distinguished by
    a ``"kind"`` entry -- report payloads carry none, so old stores read
    back unchanged and mixed stores are fine.  ``put``/``put_payload``
    are durable on return (committed / flushed), which is the property
    the resume machinery rests on.
    """

    path: str

    def get_payload(self, key: str) -> dict | None:
        raise NotImplementedError

    def put_payload(
        self, key: str, payload: dict, *, functional: str = "", condition_id: str = ""
    ) -> None:
        raise NotImplementedError

    def get(self, key: str) -> VerificationReport | None:
        """The verification report stored under ``key``, if any.

        Payloads of other kinds (numerics cells) return None: a key can
        only ever hold the cell kind it was content-hashed for, so this
        is a kind filter, not a collision risk.
        """
        payload = self.get_payload(key)
        if payload is None or "kind" in payload:
            return None
        return report_from_payload(payload)

    def put(self, key: str, report: VerificationReport) -> None:
        self.put_payload(
            key,
            report_to_payload(report),
            functional=report.functional_name,
            condition_id=report.condition_id,
        )

    def keys(self) -> list[str]:
        raise NotImplementedError

    def created_at(self, key: str) -> float | None:
        raise NotImplementedError

    def iter_timings(self) -> Iterator[dict]:
        """Yield one timing row per stored *verify* cell, in store order.

        This is the query API the cost model (:mod:`.costmodel`) and
        ``repro stats`` learn from: every verification report carries
        ``elapsed_seconds`` and ``compile_seconds``, and the row exposes
        them alongside the pair identity without materialising full
        :class:`VerificationReport` objects (a timing scan over a
        thousand-cell store must not rebuild a thousand region trees).
        Analysis-cell payloads (``"kind"``-tagged) carry no timings by
        design -- they are compared bit-exactly against the sequential
        path -- and are skipped.
        """
        for key in self.keys():
            payload = self.get_payload(key)
            if payload is None or "kind" in payload:
                continue
            yield {
                "key": key,
                "functional": payload["functional"],
                "condition": payload["condition"],
                "elapsed_seconds": payload["elapsed_seconds"],
                "compile_seconds": payload.get("compile_seconds", 0.0),
                "total_solver_steps": payload["total_solver_steps"],
                "region_count": len(payload["records"]),
            }

    def close(self) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SqliteStore(CampaignStore):
    """SQLite-backed store: one committed transaction per completed cell.

    Opened in WAL mode with a busy timeout, so a reader iterating reports
    while a campaign (or the verification service) commits cells blocks
    briefly instead of failing with "database is locked", and concurrent
    readers proceed against the last committed snapshot.  One store
    object may be shared across threads (the service's job threads all
    write through one store): the connection is opened with
    ``check_same_thread=False`` and every statement runs under an
    internal lock.
    """

    #: how long a writer waits on a locked database before giving up
    BUSY_TIMEOUT_SECONDS = 30.0

    def __init__(self, path: str):
        self.path = str(path)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            self.path,
            timeout=self.BUSY_TIMEOUT_SECONDS,
            check_same_thread=False,
        )
        # WAL lets readers run against the last committed snapshot while
        # a writer commits; the busy timeout covers the residual
        # checkpoint/exclusive windows.  On filesystems that refuse WAL
        # the pragma is a no-op and the busy timeout alone still protects
        # readers.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(
            f"PRAGMA busy_timeout={int(self.BUSY_TIMEOUT_SECONDS * 1000)}"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            " key TEXT PRIMARY KEY,"
            " functional TEXT NOT NULL,"
            " condition_id TEXT NOT NULL,"
            " created_at REAL NOT NULL,"
            " payload TEXT NOT NULL)"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (k TEXT PRIMARY KEY, v TEXT NOT NULL)"
        )
        row = self._conn.execute(
            "SELECT v FROM meta WHERE k = 'schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (k, v) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            self._conn.commit()
        elif int(row[0]) != SCHEMA_VERSION:
            self._conn.close()
            raise ValueError(
                f"store {self.path} has schema v{row[0]}, expected v{SCHEMA_VERSION}"
            )

    def get_payload(self, key: str) -> dict | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return None
        return json.loads(row[0])

    def put_payload(
        self, key: str, payload: dict, *, functional: str = "", condition_id: str = ""
    ) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO results"
                " (key, functional, condition_id, created_at, payload)"
                " VALUES (?, ?, ?, ?, ?)",
                (key, functional, condition_id, time.time(),
                 json.dumps(payload, sort_keys=True)),
            )
            self._conn.commit()

    def keys(self) -> list[str]:
        with self._lock:
            return [
                row[0]
                for row in self._conn.execute(
                    "SELECT key FROM results ORDER BY created_at, key"
                )
            ]

    def created_at(self, key: str) -> float | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT created_at FROM results WHERE key = ?", (key,)
            ).fetchone()
        return None if row is None else row[0]

    def close(self) -> None:
        with self._lock:
            self._conn.close()


class JsonlStore(CampaignStore):
    """Append-only JSONL checkpoint file: one cell per line, flushed per put.

    Re-put keys append a new line; the latest line wins on load.  A line
    cut short by a kill mid-write fails to parse and is skipped, so an
    interrupted campaign's store is always loadable.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._entries: dict[str, dict] = {}
        self._created: dict[str, float] = {}
        # skip-truncated-tail on read; the writer seals the tail on open
        # (the shared JSONL discipline, see repro.obs.jsonl)
        for entry in iter_jsonl(self.path):
            payload = entry["payload"]
            if payload.get("v") != SCHEMA_VERSION:
                raise ValueError(
                    f"store {self.path} contains schema "
                    f"v{payload.get('v')}, expected v{SCHEMA_VERSION}"
                )
            self._entries[entry["key"]] = payload
            self._created[entry["key"]] = entry["created_at"]
        # fsync per cell: a completed cell must survive power loss, not
        # just the process dying
        self._writer = JsonlWriter(self.path, fsync=True)

    def get_payload(self, key: str) -> dict | None:
        return self._entries.get(key)

    def put_payload(
        self, key: str, payload: dict, *, functional: str = "", condition_id: str = ""
    ) -> None:
        created = time.time()
        self._writer.write(
            {
                "key": key,
                "functional": functional,
                "condition": condition_id,
                "created_at": created,
                "payload": payload,
            }
        )
        self._entries[key] = payload
        self._created[key] = created

    def keys(self) -> list[str]:
        return list(self._entries)

    def created_at(self, key: str) -> float | None:
        return self._created.get(key)

    def close(self) -> None:
        self._writer.close()


#: recognised store file suffixes and the backends they select
STORE_SUFFIXES: dict[str, type] = {
    ".jsonl": JsonlStore,
    ".sqlite": SqliteStore,
    ".sqlite3": SqliteStore,
    ".db": SqliteStore,
}


def open_store(path: str) -> CampaignStore:
    """Open (creating if needed) the store at ``path``.

    The backend is selected by file suffix: ``.jsonl`` is the append-only
    JSONL checkpoint format; ``.sqlite`` / ``.sqlite3`` / ``.db`` select
    SQLite.  Any other suffix (``.db.tmp``, an extensionless path, a
    typo) raises :class:`ValueError` naming the supported suffixes --
    silently defaulting a backend for e.g. a temp-file rename pattern
    would create a store the next run cannot identify.
    """
    text = str(path)
    for suffix, backend in STORE_SUFFIXES.items():
        if text.endswith(suffix):
            return backend(path)
    supported = ", ".join(sorted(STORE_SUFFIXES))
    raise ValueError(
        f"unknown store suffix for {text!r}: expected one of {supported}"
    )


def iter_reports(store: CampaignStore) -> Iterator[tuple[str, VerificationReport]]:
    """Yield every (key, report) in the store, in insertion order."""
    for key in store.keys():
        report = store.get(key)
        if report is not None:
            yield key, report
